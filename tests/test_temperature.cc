/**
 * @file
 * Tests for the temperature table, its hardware quantization and the
 * §III-E cost model.
 */

#include <gtest/gtest.h>

#include "core/temperature_table.hh"

using namespace libra;

TEST(TemperatureTable, AccumulatesPerTile)
{
    TemperatureTable table(16);
    table.addDramAccess(3, 5);
    table.addDramAccess(3);
    table.addInstructions(3, 100);
    EXPECT_EQ(table.dramAccesses(3), 6u);
    EXPECT_EQ(table.instructions(3), 100u);
    EXPECT_EQ(table.dramAccesses(2), 0u);
    table.reset();
    EXPECT_EQ(table.dramAccesses(3), 0u);
}

TEST(TemperatureTable, QuantizationBasics)
{
    // ratio = accesses/instructions in 15-bit fixed point (scale 2^15).
    EXPECT_EQ(TemperatureTable::quantizeTemperature(0, 1000), 0u);
    const auto half = TemperatureTable::quantizeTemperature(500, 1000);
    EXPECT_EQ(half, TemperatureTable::ratioScale / 2);
    // Higher ratio → higher temperature.
    EXPECT_GT(TemperatureTable::quantizeTemperature(900, 1000),
              TemperatureTable::quantizeTemperature(100, 1000));
}

TEST(TemperatureTable, QuantizationSaturates)
{
    // Counter saturation: 16-bit accesses, 24-bit instructions.
    const auto a = TemperatureTable::quantizeTemperature(1u << 20,
                                                         1u << 26);
    const auto b = TemperatureTable::quantizeTemperature(0xffffu,
                                                         0xffffffu);
    EXPECT_EQ(a, b);
    // Ratio field saturates at 15 bits.
    EXPECT_EQ(TemperatureTable::quantizeTemperature(1u << 16, 1),
              (1u << 15) - 1);
}

TEST(TemperatureTable, ZeroInstructionsSafe)
{
    EXPECT_NO_THROW(TemperatureTable::quantizeTemperature(100, 0));
}

TEST(TemperatureTable, RankOrdersHotToCold)
{
    const TileGrid grid(128, 128, 32); // 4x4 tiles
    TemperatureTable table(grid.tileCount());
    for (TileId t = 0; t < grid.tileCount(); ++t) {
        table.addInstructions(t, 1000);
        table.addDramAccess(t, t * 10); // hotter with larger id
    }
    const auto ranks = table.rank(grid, 1);
    ASSERT_EQ(ranks.size(), grid.tileCount());
    for (std::size_t i = 1; i < ranks.size(); ++i)
        EXPECT_GE(ranks[i - 1].temperature, ranks[i].temperature);
    EXPECT_EQ(ranks.front().id, grid.tileCount() - 1);
    EXPECT_EQ(ranks.back().id, 0u);
}

TEST(TemperatureTable, RankAggregatesSuperTiles)
{
    const TileGrid grid(128, 128, 32); // 4x4 tiles, 2x2 STs → 4 STs
    TemperatureTable table(grid.tileCount());
    // Make supertile (1,1) (tiles with x>=2, y>=2) hot.
    for (TileId t = 0; t < grid.tileCount(); ++t) {
        table.addInstructions(t, 1000);
        if (grid.tileX(t) >= 2 && grid.tileY(t) >= 2)
            table.addDramAccess(t, 500);
        else
            table.addDramAccess(t, 10);
    }
    const auto ranks = table.rank(grid, 2);
    ASSERT_EQ(ranks.size(), 4u);
    EXPECT_EQ(ranks.front().id, 3u); // bottom-right supertile hottest
    EXPECT_EQ(ranks.front().accesses, 4u * 500u);
    EXPECT_EQ(ranks.front().instructions, 4u * 1000u);
}

TEST(TemperatureTable, TiesBreakById)
{
    const TileGrid grid(128, 128, 32);
    TemperatureTable table(grid.tileCount());
    for (TileId t = 0; t < grid.tileCount(); ++t) {
        table.addInstructions(t, 100);
        table.addDramAccess(t, 7);
    }
    const auto ranks = table.rank(grid, 1);
    for (std::size_t i = 1; i < ranks.size(); ++i)
        EXPECT_LT(ranks[i - 1].id, ranks[i].id);
}

TEST(TemperatureTable, LoadReplacesState)
{
    TemperatureTable table(4);
    table.load({1, 2, 3, 4}, {10, 20, 30, 40});
    EXPECT_EQ(table.dramAccesses(2), 3u);
    EXPECT_EQ(table.instructions(3), 40u);
}

TEST(HardwareCost, MatchesPaperNumbers)
{
    // §III-E: 64-bit entries; 510 2x2 supertiles at FHD; the ranking
    // upper bound is 3 * 4587 = 13761 cycles.
    const HardwareCost cost = TemperatureTable::hardwareCost(510);
    EXPECT_EQ(cost.entryBits, 64u);
    EXPECT_EQ(cost.storageBits, 510u * 64u);
    // ~4 KB of storage, as the paper states.
    EXPECT_NEAR(static_cast<double>(cost.storageBits) / 8.0 / 1024.0,
                4.0, 0.25);
    EXPECT_EQ(cost.rankingCycles, 13761u);
}

TEST(HardwareCost, RankingHidesUnderTypicalGeometryPhase)
{
    // The paper reports ~270k geometry cycles per frame on average; the
    // ranking upper bound must be far below that for every supported
    // supertile size at FHD.
    const TileGrid grid(1920, 1080, 32);
    for (const std::uint32_t st : {2u, 4u, 8u, 16u}) {
        const auto cost =
            TemperatureTable::hardwareCost(grid.superTileCount(st));
        EXPECT_LT(cost.rankingCycles, 270000u) << "st=" << st;
    }
}

TEST(HardwareCost, DegenerateSizes)
{
    EXPECT_EQ(TemperatureTable::hardwareCost(0).rankingCycles, 0u);
    EXPECT_EQ(TemperatureTable::hardwareCost(1).rankingCycles, 0u);
    EXPECT_GT(TemperatureTable::hardwareCost(2).rankingCycles, 0u);
}

TEST(TemperatureTableDeathTest, OutOfRangeTilePanics)
{
    TemperatureTable table(4);
    EXPECT_DEATH(table.addDramAccess(4), "out of range");
}
