/**
 * @file
 * Unit tests for the sim-farm building blocks: the NDJSON wire
 * protocol (round-trips, config specs, error attribution) and the
 * persistent result cache (key identity, store/lookup byte-exactness,
 * corruption and mismatch degradation, deterministic eviction).
 *
 * The live server (socket, coalescing, journal recovery) is exercised
 * end-to-end by bench/farm_smoke.cpp; these tests pin the pieces it is
 * built from, without spinning up threads or running simulations.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "check/result_cache.hh"
#include "check/snapshot.hh"
#include "farm/farm_protocol.hh"
#include "gpu/gpu_config.hh"
#include "gpu/policy_registry.hh"
#include "trace/json.hh"

using namespace libra;

namespace
{

/** Fresh temp directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const char *tag)
        : path_(std::string("/tmp/libra_farm_test_") + tag)
    {
        std::filesystem::remove_all(path_);
    }

    ~TempDir() { std::filesystem::remove_all(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

ResultCacheKey
sampleKey()
{
    ResultCacheKey key;
    key.configHash = 0x0123456789abcdefull;
    key.sceneHash = 0xfedcba9876543210ull;
    key.frames = 4;
    key.firstFrame = 2;
    return key;
}

} // namespace

// --- wire protocol ---------------------------------------------------

TEST(FarmProtocol, RequestRoundTripsAllFields)
{
    FarmRequest req;
    req.op = FarmOp::Simulate;
    req.id = "fig9-ccs-libra";
    req.benchmark = "CCS";
    req.width = 1280;
    req.height = 720;
    req.frames = 8;
    req.firstFrame = 3;
    req.config = "supertile:4:2x4";
    req.simThreads = 2;
    req.figure = "fig9";

    Result<FarmRequest> back = parseFarmRequest(farmRequestLine(req));
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back->op, FarmOp::Simulate);
    EXPECT_EQ(back->id, req.id);
    EXPECT_EQ(back->benchmark, req.benchmark);
    EXPECT_EQ(back->width, req.width);
    EXPECT_EQ(back->height, req.height);
    EXPECT_EQ(back->frames, req.frames);
    EXPECT_EQ(back->firstFrame, req.firstFrame);
    EXPECT_EQ(back->config, req.config);
    EXPECT_EQ(back->simThreads, req.simThreads);
    EXPECT_EQ(back->figure, req.figure);
}

TEST(FarmProtocol, NonSimulateOpsRoundTrip)
{
    for (const FarmOp op :
         {FarmOp::Ping, FarmOp::Stats, FarmOp::Shutdown}) {
        FarmRequest req;
        req.op = op;
        req.id = farmOpName(op);
        Result<FarmRequest> back =
            parseFarmRequest(farmRequestLine(req));
        ASSERT_TRUE(back.isOk()) << back.status().toString();
        EXPECT_EQ(back->op, op);
        EXPECT_EQ(back->id, farmOpName(op));
    }
}

TEST(FarmProtocol, RequestParseRejectsGarbage)
{
    EXPECT_FALSE(parseFarmRequest("not json").isOk());
    EXPECT_FALSE(parseFarmRequest("{}").isOk()); // missing schema
    EXPECT_FALSE(
        parseFarmRequest(R"({"schema":"libra.other/1","op":"ping"})")
            .isOk());
    EXPECT_FALSE(parseFarmRequest(
                     R"({"schema":"libra.farm_request/1","op":"fly"})")
                     .isOk());
}

TEST(FarmProtocol, ResponseRoundTripsIncludingPayload)
{
    FarmResponse resp;
    resp.id = "r1";
    resp.status = "ok";
    resp.cache = FarmCacheState::Coalesced;
    resp.key = sampleKey().toString();
    resp.reportBytes = 12345;
    resp.payload = R"({"cache_hits":3,"simulations":2})";

    Result<FarmResponse> back =
        parseFarmResponse(farmResponseLine(resp));
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_TRUE(back->ok());
    EXPECT_EQ(back->id, resp.id);
    EXPECT_EQ(back->cache, FarmCacheState::Coalesced);
    EXPECT_EQ(back->key, resp.key);
    EXPECT_EQ(back->reportBytes, resp.reportBytes);
    // The payload must survive re-serialization byte-exactly: clients
    // parse it as JSON (stats counters), and numbers must not be
    // mangled through a double round-trip.
    EXPECT_EQ(back->payload, resp.payload);
}

TEST(FarmProtocol, ErrorResponseCarriesAttribution)
{
    FarmResponse resp;
    resp.id = "bad";
    resp.status = "error";
    resp.code = "invalid_argument";
    resp.message = "unknown benchmark 'NOPE'";

    Result<FarmResponse> back =
        parseFarmResponse(farmResponseLine(resp));
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_FALSE(back->ok());
    EXPECT_EQ(back->code, "invalid_argument");
    EXPECT_EQ(back->message, "unknown benchmark 'NOPE'");
}

// --- config specs ----------------------------------------------------

TEST(FarmProtocol, ConfigSpecsMatchPresets)
{
    Result<GpuConfig> baseline = parseConfigSpec("baseline:2");
    ASSERT_TRUE(baseline.isOk());
    EXPECT_EQ(baseline->configHash(), GpuConfig::baseline(2).configHash());

    Result<GpuConfig> ptr = parseConfigSpec("ptr:2x4");
    ASSERT_TRUE(ptr.isOk());
    EXPECT_EQ(ptr->configHash(), GpuConfig::ptr(2, 4).configHash());

    Result<GpuConfig> libra = parseConfigSpec("libra:2x4");
    ASSERT_TRUE(libra.isOk());
    EXPECT_EQ(libra->configHash(), GpuConfig::libra(2, 4).configHash());

    Result<GpuConfig> super = parseConfigSpec("supertile:4:2x4");
    ASSERT_TRUE(super.isOk());
    EXPECT_EQ(super->configHash(),
              GpuConfig::staticSupertile(4, 2, 4).configHash());

    // Defaults when the geometry suffix is omitted.
    Result<GpuConfig> bare = parseConfigSpec("libra");
    ASSERT_TRUE(bare.isOk());
    EXPECT_EQ(bare->configHash(), GpuConfig::libra().configHash());

    // Rendering Elimination presets: the ptr/libra machine with the
    // mechanism flag set.
    GpuConfig re_want = GpuConfig::ptr(2, 4);
    re_want.renderingElimination = true;
    Result<GpuConfig> re = parseConfigSpec("re:2x4");
    ASSERT_TRUE(re.isOk());
    EXPECT_EQ(re->configHash(), re_want.configHash());

    GpuConfig re_libra_want = GpuConfig::libra(4, 2);
    re_libra_want.renderingElimination = true;
    Result<GpuConfig> re_libra = parseConfigSpec("re-libra:4x2");
    ASSERT_TRUE(re_libra.isOk());
    EXPECT_EQ(re_libra->configHash(), re_libra_want.configHash());
}

TEST(FarmProtocol, PolicyPresetsProduceDistinctCacheKeys)
{
    // The result cache keys on configHash; every registry preset
    // applied to the same machine must hash apart — in particular the
    // renderingElimination flag (new in cache code version 2) must be
    // part of the chain, or an RE run could be answered with a cached
    // non-RE result.
    std::set<std::uint64_t> hashes;
    for (const PolicyInfo &p : policyRegistry()) {
        GpuConfig cfg = GpuConfig::ptr(2, 4);
        ASSERT_TRUE(applyPolicy(cfg, p.name).isOk()) << p.name;
        EXPECT_TRUE(hashes.insert(cfg.configHash()).second)
            << p.name << " collides with another preset";
    }
    EXPECT_GE(hashes.size(), 7u);

    // The flag alone separates otherwise-identical configs.
    GpuConfig off = GpuConfig::ptr(2, 4);
    GpuConfig on = off;
    on.renderingElimination = true;
    EXPECT_NE(off.configHash(), on.configHash());
}

TEST(FarmProtocol, ConfigSpecRejectsMalformedSpecs)
{
    for (const char *bad : {"", "warp-drive", "libra:2x", "libra:x4",
                            "ptr:0x4", "baseline:", "supertile",
                            "supertile:4:2x4:extra", "libra:2x4x8"}) {
        Result<GpuConfig> cfg = parseConfigSpec(bad);
        EXPECT_FALSE(cfg.isOk()) << "accepted spec '" << bad << "'";
        if (!cfg.isOk())
            EXPECT_EQ(cfg.status().code(), ErrorCode::InvalidArgument)
                << bad;
    }
}

TEST(FarmProtocol, RequestConfigAppliesResolutionAndThreads)
{
    FarmRequest req;
    req.benchmark = "CCS";
    req.width = 640;
    req.height = 360;
    req.config = "libra:2x2";
    req.simThreads = 2;

    Result<GpuConfig> cfg = farmRequestConfig(req);
    ASSERT_TRUE(cfg.isOk()) << cfg.status().toString();
    EXPECT_EQ(cfg->screenWidth, 640u);
    EXPECT_EQ(cfg->screenHeight, 360u);
    EXPECT_EQ(cfg->simThreads, 2u);
    EXPECT_EQ(cfg->rasterUnits, 2u);
    EXPECT_EQ(cfg->coresPerRu, 2u);
}

TEST(FarmProtocol, RequestConfigRejectsInvalidResolution)
{
    FarmRequest req;
    req.config = "libra:2x2";
    req.width = 0;
    EXPECT_FALSE(farmRequestConfig(req).isOk());
}

// --- result-cache key ------------------------------------------------

TEST(ResultCacheTest, KeyToStringIsCanonical)
{
    EXPECT_EQ(sampleKey().toString(),
              "cfg:0123456789abcdef:scene:fedcba9876543210:f4@2:v2");
}

TEST(ResultCacheTest, KeyDistinguishesEveryField)
{
    const ResultCacheKey base = sampleKey();
    ResultCacheKey k = base;
    k.configHash ^= 1;
    EXPECT_FALSE(k == base);
    EXPECT_NE(k.toString(), base.toString());
    k = base;
    k.sceneHash ^= 1;
    EXPECT_NE(k.toString(), base.toString());
    k = base;
    k.frames = 5;
    EXPECT_NE(k.toString(), base.toString());
    k = base;
    k.firstFrame = 0;
    EXPECT_NE(k.toString(), base.toString());
    k = base;
    k.codeVersion = 1;
    EXPECT_NE(k.toString(), base.toString());
}

// --- entry image -----------------------------------------------------

TEST(ResultCacheTest, EntryImageRoundTripsReportBytes)
{
    const std::string report =
        R"({"schema":"libra.run_report/1","cycles":123})";
    std::vector<std::uint8_t> image =
        buildResultCacheEntry(sampleKey(), report);
    Result<std::string> back =
        parseResultCacheEntry(sampleKey(), std::move(image));
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(*back, report);
}

TEST(ResultCacheTest, EntryImageRejectsKeyMismatch)
{
    std::vector<std::uint8_t> image =
        buildResultCacheEntry(sampleKey(), "{}");
    ResultCacheKey other = sampleKey();
    other.configHash ^= 1;
    Result<std::string> back =
        parseResultCacheEntry(other, std::move(image));
    ASSERT_FALSE(back.isOk());
    EXPECT_EQ(back.status().code(), ErrorCode::FailedPrecondition);
}

TEST(ResultCacheTest, EntryImageRejectsBitFlip)
{
    const std::string report(256, 'r');
    std::vector<std::uint8_t> image =
        buildResultCacheEntry(sampleKey(), report);
    image[image.size() / 2] ^= 0x40; // inside the CRC-framed section
    Result<std::string> back =
        parseResultCacheEntry(sampleKey(), std::move(image));
    ASSERT_FALSE(back.isOk());
    EXPECT_EQ(back.status().code(), ErrorCode::CorruptData);
}

// --- directory cache -------------------------------------------------

TEST(ResultCacheTest, StoreThenLookupIsByteExact)
{
    const TempDir dir("store");
    Result<ResultCache> cache = ResultCache::open(dir.str());
    ASSERT_TRUE(cache.isOk()) << cache.status().toString();

    const std::string report =
        R"({"schema":"libra.run_report/1","cycles":9001})";
    EXPECT_FALSE(cache->contains(sampleKey()));
    ASSERT_TRUE(cache->store(sampleKey(), report).isOk());
    EXPECT_TRUE(cache->contains(sampleKey()));

    Result<std::string> got = cache->lookup(sampleKey());
    ASSERT_TRUE(got.isOk()) << got.status().toString();
    EXPECT_EQ(*got, report);

    // Overwrite with new bytes: last store wins, still byte-exact.
    const std::string updated =
        R"({"schema":"libra.run_report/1","cycles":9002})";
    ASSERT_TRUE(cache->store(sampleKey(), updated).isOk());
    EXPECT_EQ(*cache->lookup(sampleKey()), updated);
}

TEST(ResultCacheTest, MissIsNotFound)
{
    const TempDir dir("miss");
    Result<ResultCache> cache = ResultCache::open(dir.str());
    ASSERT_TRUE(cache.isOk());
    Result<std::string> got = cache->lookup(sampleKey());
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), ErrorCode::NotFound);
}

TEST(ResultCacheTest, TruncatedEntryDegradesToCorruptData)
{
    const TempDir dir("trunc");
    Result<ResultCache> cache = ResultCache::open(dir.str());
    ASSERT_TRUE(cache.isOk());
    ASSERT_TRUE(cache->store(sampleKey(), std::string(512, 'x')).isOk());

    const std::string file =
        dir.str() + "/" + ResultCache::entryFileName(sampleKey());
    const auto size = std::filesystem::file_size(file);
    std::filesystem::resize_file(file, size / 2);

    Result<std::string> got = cache->lookup(sampleKey());
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), ErrorCode::CorruptData);
    EXPECT_FALSE(cache->contains(sampleKey()));
}

TEST(ResultCacheTest, ForeignEntryFileDegradesToFailedPrecondition)
{
    // An entry stored under one key but renamed to another key's file
    // name (or a hash-function change) must be refused at lookup, not
    // served as the wrong report.
    const TempDir dir("mismatch");
    Result<ResultCache> cache = ResultCache::open(dir.str());
    ASSERT_TRUE(cache.isOk());
    ASSERT_TRUE(cache->store(sampleKey(), "{}").isOk());

    ResultCacheKey other = sampleKey();
    other.sceneHash ^= 0xff;
    std::filesystem::rename(
        dir.str() + "/" + ResultCache::entryFileName(sampleKey()),
        dir.str() + "/" + ResultCache::entryFileName(other));

    Result<std::string> got = cache->lookup(other);
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), ErrorCode::FailedPrecondition);
}

TEST(ResultCacheTest, TrimEvictsDownToBoundDeterministically)
{
    const TempDir dir("trim");
    Result<ResultCache> cache = ResultCache::open(dir.str());
    ASSERT_TRUE(cache.isOk());

    std::vector<ResultCacheKey> keys;
    for (std::uint32_t i = 0; i < 5; ++i) {
        ResultCacheKey key = sampleKey();
        key.configHash = i;
        keys.push_back(key);
        ASSERT_TRUE(cache->store(key, "{}").isOk());
    }
    Result<std::vector<std::string>> files = cache->entries();
    ASSERT_TRUE(files.isOk());
    ASSERT_EQ(files->size(), 5u);

    // All five share one mtime resolution window, so eviction order
    // falls back to the name tie-break — deterministic by contract.
    Result<std::uint64_t> removed = cache->trim(2);
    ASSERT_TRUE(removed.isOk()) << removed.status().toString();
    EXPECT_EQ(*removed, 3u);
    files = cache->entries();
    ASSERT_TRUE(files.isOk());
    EXPECT_EQ(files->size(), 2u);

    // trim(0) trims *to* zero — "0 disables" is the FarmOptions
    // contract, enforced by the server before it ever calls trim.
    Result<std::uint64_t> all = cache->trim(0);
    ASSERT_TRUE(all.isOk());
    EXPECT_EQ(*all, 2u);
    EXPECT_EQ(cache->entries()->size(), 0u);
}

TEST(ResultCacheTest, SceneHashBindsBenchmarkAndResolution)
{
    // The scene hash is the request-side half of the key: any change to
    // benchmark or resolution must change it, or two different scenes
    // would share cache entries.
    const std::uint64_t base = snapshotSceneHash("CCS", 256, 128);
    EXPECT_NE(base, snapshotSceneHash("SPT", 256, 128));
    EXPECT_NE(base, snapshotSceneHash("CCS", 512, 128));
    EXPECT_NE(base, snapshotSceneHash("CCS", 256, 256));
    EXPECT_EQ(base, snapshotSceneHash("CCS", 256, 128));
}
