/**
 * @file
 * Snapshot container tests (DESIGN.md §10).
 *
 * Three layers: the writer/reader round-trip (framing, CRCs, sticky
 * errors), the corruption corpus (every damaged image must surface as
 * a recoverable Status — CorruptData or FailedPrecondition — never a
 * crash or a silently-wrong restore), and the runner's fallback
 * contract: a run pointed at a corrupt, truncated or wrong-version
 * snapshot degrades to a cold run whose results are byte-identical to
 * never having checkpointed at all. Plus the manifest's selection
 * rules.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "check/fault_injector.hh"
#include "check/snapshot.hh"
#include "common/status.hh"
#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t kWidth = 128;
constexpr std::uint32_t kHeight = 64;
constexpr std::uint32_t kFrames = 4;

GpuConfig
smallConfig()
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;
    return cfg;
}

/** Fresh scratch directory under the build tree. */
std::string
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / ("libra_snap_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** A real snapshot image: render two frames and capture. */
std::vector<std::uint8_t>
captureImage(const Scene &scene, const GpuConfig &cfg)
{
    CheckpointPlan plan;
    plan.captureAfter = std::make_shared<std::vector<std::uint8_t>>();
    plan.captureAfterFrames = 2;
    Result<RunResult> r = runBenchmark(scene, cfg, 2, 0, plan);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_FALSE(plan.captureAfter->empty());
    return *plan.captureAfter;
}

} // namespace

TEST(SnapshotContainer, WriterReaderRoundTrip)
{
    SnapshotHeader h;
    h.configHash = 0x1122334455667788ull;
    h.warmPrefixHash = 0x99aabbccddeeff00ull;
    h.sceneHash = 42;
    h.firstFrame = 3;
    h.framesDone = 7;

    SnapshotWriter w(h);
    w.beginSection(SnapSection::Result);
    w.putU8(0xab);
    w.putU32(123456u);
    w.putU64(0xdeadbeefcafef00dull);
    w.putDouble(0.3259375);
    w.putBool(true);
    w.putString("counter.name");
    w.endSection();
    w.beginSection(SnapSection::Trace);
    w.putString(""); // empty strings must survive
    w.endSection();
    const std::vector<std::uint8_t> bytes = w.finish();

    Result<SnapshotReader> parsed = SnapshotReader::parse(bytes);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    SnapshotReader r = std::move(*parsed);
    EXPECT_EQ(r.header().configHash, h.configHash);
    EXPECT_EQ(r.header().warmPrefixHash, h.warmPrefixHash);
    EXPECT_EQ(r.header().sceneHash, h.sceneHash);
    EXPECT_EQ(r.header().codeVersion, kSnapshotCodeVersion);
    EXPECT_EQ(r.header().firstFrame, 3u);
    EXPECT_EQ(r.header().framesDone, 7u);

    r.openSection(SnapSection::Result);
    EXPECT_EQ(r.takeU8(), 0xab);
    EXPECT_EQ(r.takeU32(), 123456u);
    EXPECT_EQ(r.takeU64(), 0xdeadbeefcafef00dull);
    EXPECT_EQ(r.takeDouble(), 0.3259375);
    EXPECT_TRUE(r.takeBool());
    EXPECT_EQ(r.takeString(), "counter.name");
    r.closeSection();
    r.openSection(SnapSection::Trace);
    EXPECT_EQ(r.takeString(), "");
    r.closeSection();
    EXPECT_TRUE(r.finish().isOk()) << r.finish().toString();
}

TEST(SnapshotContainer, ReaderErrorsAreSticky)
{
    SnapshotHeader h;
    Result<SnapshotReader> parsed =
        SnapshotReader::parse(SnapshotWriter(h).finish());
    // Zero-section image parses fine; opening a section it doesn't
    // have sticks a CorruptData, and every later take is a zero no-op.
    ASSERT_TRUE(parsed.isOk());
    SnapshotReader r = std::move(*parsed);
    r.openSection(SnapSection::Result);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.takeU64(), 0u);
    EXPECT_EQ(r.takeString(), "");
    EXPECT_EQ(r.finish().code(), ErrorCode::CorruptData);
}

TEST(SnapshotContainer, SectionOrderIsEnforced)
{
    SnapshotHeader h;
    SnapshotWriter w(h);
    w.beginSection(SnapSection::Result);
    w.putU32(1);
    w.endSection();
    w.beginSection(SnapSection::Trace);
    w.putU32(2);
    w.endSection();
    Result<SnapshotReader> parsed =
        SnapshotReader::parse(w.finish());
    ASSERT_TRUE(parsed.isOk());
    SnapshotReader r = std::move(*parsed);
    r.openSection(SnapSection::Trace); // out of order
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::CorruptData);
}

TEST(SnapshotContainer, CorruptionCorpusIsRecoverable)
{
    // Every mangled variant of a real image must come back as a
    // Status, never a crash: that is what lets the runner fall back to
    // a cold run on any damaged checkpoint dir. corruptTrace() is the
    // same corpus generator the .ltrc corruption suite uses; on top of
    // it, truncations at every framing boundary and a sweep of single
    // bit flips through the header region.
    const GpuConfig cfg = smallConfig();
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    const std::vector<std::uint8_t> image = captureImage(scene, cfg);

    std::vector<std::vector<std::uint8_t>> corpus;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        corpus.push_back(corruptTrace(
            image, TraceCorruption::TruncateMidRecord, seed));
        corpus.push_back(
            corruptTrace(image, TraceCorruption::BitFlipHeader, seed));
    }
    for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                  std::size_t{43}, std::size_t{44},
                                  std::size_t{45}, image.size() - 1}) {
        corpus.emplace_back(image.begin(),
                            image.begin()
                                + static_cast<std::ptrdiff_t>(cut));
    }
    for (std::size_t byte = 0; byte < 44 && byte < image.size();
         byte += 5) {
        std::vector<std::uint8_t> flipped = image;
        flipped[byte] ^= 0x10;
        corpus.push_back(std::move(flipped));
    }

    int rejected = 0;
    for (const std::vector<std::uint8_t> &bad : corpus) {
        Result<SnapshotReader> parsed = SnapshotReader::parse(bad);
        if (!parsed.isOk()) {
            EXPECT_EQ(parsed.status().code(), ErrorCode::CorruptData);
            ++rejected;
            continue;
        }
        // Some header flips survive parsing (hash fields carry no
        // CRC by design — they are *keys*); those must then fail the
        // restore's key checks instead. Exercise exactly that path.
        CheckpointPlan plan;
        plan.warmStart = std::make_shared<std::vector<std::uint8_t>>(
            bad);
        Result<RunResult> run =
            runBenchmark(scene, cfg, kFrames, 0, plan);
        ASSERT_TRUE(run.isOk()) << run.status().toString();
    }
    EXPECT_GT(rejected, 0) << "corpus never hit the parse layer";
}

TEST(SnapshotContainer, WrongFormatAndCodeVersionRefused)
{
    const GpuConfig cfg = smallConfig();
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    std::vector<std::uint8_t> image = captureImage(scene, cfg);

    // Bytes 4..7 are the little-endian container format version.
    std::vector<std::uint8_t> bad_format = image;
    bad_format[4] = 0xee;
    Result<SnapshotReader> parsed = SnapshotReader::parse(bad_format);
    ASSERT_FALSE(parsed.isOk());
    EXPECT_EQ(parsed.status().code(), ErrorCode::CorruptData);

    // Bytes 32..35 are the code version: parses (the container is
    // intact) but any restore must refuse it as FailedPrecondition.
    std::vector<std::uint8_t> bad_code = image;
    bad_code[32] = 0xee;
    ASSERT_TRUE(SnapshotReader::parse(bad_code).isOk());
    CheckpointPlan plan;
    plan.warmStart =
        std::make_shared<std::vector<std::uint8_t>>(bad_code);
    Result<RunResult> run = runBenchmark(scene, cfg, kFrames, 0, plan);
    // Falls back to a cold run, which must equal the never-checkpointed
    // reference exactly.
    ASSERT_TRUE(run.isOk()) << run.status().toString();
    Result<RunResult> cold = runBenchmark(scene, cfg, kFrames, 0);
    ASSERT_TRUE(cold.isOk());
    EXPECT_EQ(run->counters, cold->counters);
}

TEST(SnapshotContainer, CorruptDirSnapshotFallsBackToColdRun)
{
    const GpuConfig cfg = smallConfig();
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    const std::string dir = scratchDir("fallback");

    // Write real periodic checkpoints.
    CheckpointPlan writing;
    writing.dir = dir;
    writing.every = 1;
    Result<RunResult> seeded =
        runBenchmark(scene, cfg, kFrames, 0, writing);
    ASSERT_TRUE(seeded.isOk()) << seeded.status().toString();
    Result<std::vector<SnapshotManifestEntry>> manifest =
        loadSnapshotManifest(dir);
    ASSERT_TRUE(manifest.isOk()) << manifest.status().toString();
    ASSERT_FALSE(manifest->empty());

    // Damage every snapshot file in place.
    for (const SnapshotManifestEntry &e : *manifest) {
        const std::string path =
            (std::filesystem::path(dir) / e.file).string();
        Result<std::vector<std::uint8_t>> bytes =
            readSnapshotFile(path);
        ASSERT_TRUE(bytes.isOk());
        std::vector<std::uint8_t> bad = corruptTrace(
            std::move(*bytes), TraceCorruption::TruncateMidRecord, 5);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bad.data()),
                  static_cast<std::streamsize>(bad.size()));
    }

    // A restoring run over the damaged dir must degrade to a cold run
    // with identical results — and never crash.
    CheckpointPlan restoring;
    restoring.dir = dir;
    restoring.restore = true;
    Result<RunResult> restored =
        runBenchmark(scene, cfg, kFrames, 0, restoring);
    ASSERT_TRUE(restored.isOk()) << restored.status().toString();
    EXPECT_EQ(restored->counters, seeded->counters);
    std::filesystem::remove_all(dir);
}

TEST(SnapshotManifest, MissingDirIsEmptyAndEntriesSelect)
{
    Result<std::vector<SnapshotManifestEntry>> none =
        loadSnapshotManifest("/nonexistent/libra/snapdir");
    ASSERT_TRUE(none.isOk()) << none.status().toString();
    EXPECT_TRUE(none->empty());

    const std::string dir = scratchDir("manifest");
    SnapshotManifestEntry e;
    e.configHash = 7;
    e.sceneHash = 9;
    e.codeVersion = kSnapshotCodeVersion;
    e.firstFrame = 0;
    e.framesDone = 2;
    e.file = snapshotFileName(7, 9, 2);
    ASSERT_TRUE(recordSnapshotInManifest(dir, e).isOk());
    e.framesDone = 3;
    e.file = snapshotFileName(7, 9, 3);
    ASSERT_TRUE(recordSnapshotInManifest(dir, e).isOk());

    Result<std::vector<SnapshotManifestEntry>> loaded =
        loadSnapshotManifest(dir);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    ASSERT_EQ(loaded->size(), 2u);

    // Freshest usable entry wins; a cap below it picks the older one;
    // wrong keys find nothing.
    const SnapshotManifestEntry *best =
        findSnapshotEntry(*loaded, 7, 9, 0, 10);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->framesDone, 3u);
    const SnapshotManifestEntry *capped =
        findSnapshotEntry(*loaded, 7, 9, 0, 2);
    ASSERT_NE(capped, nullptr);
    EXPECT_EQ(capped->framesDone, 2u);
    EXPECT_EQ(findSnapshotEntry(*loaded, 8, 9, 0, 10), nullptr);
    EXPECT_EQ(findSnapshotEntry(*loaded, 7, 9, 1, 10), nullptr);
    std::filesystem::remove_all(dir);
}

TEST(SnapshotManifest, SceneHashIsStable)
{
    // The scene hash keys snapshots across processes; it must be a
    // pure function of (benchmark, resolution).
    const std::uint64_t a = snapshotSceneHash("CCS", 128, 64);
    EXPECT_EQ(a, snapshotSceneHash("CCS", 128, 64));
    EXPECT_NE(a, snapshotSceneHash("SuS", 128, 64));
    EXPECT_NE(a, snapshotSceneHash("CCS", 256, 64));
}

TEST(SnapshotManifest, EqualFreshnessTieBreaksOnPathDeterministically)
{
    // Regression: two equally-fresh snapshots (same framesDone — e.g.
    // written by concurrent sweeps into one directory) used to resolve
    // by manifest enumeration order, so resume could restore different
    // bytes depending on append order. The pinned total order is
    // framesDone descending, then file path ascending.
    SnapshotManifestEntry a;
    a.configHash = 7;
    a.sceneHash = 9;
    a.codeVersion = kSnapshotCodeVersion;
    a.firstFrame = 0;
    a.framesDone = 2;
    a.file = "snap_b.lsnp";
    SnapshotManifestEntry b = a;
    b.file = "snap_a.lsnp";

    const std::vector<SnapshotManifestEntry> forward{a, b};
    const std::vector<SnapshotManifestEntry> reversed{b, a};
    const SnapshotManifestEntry *fwd =
        findSnapshotEntry(forward, 7, 9, 0, 10);
    const SnapshotManifestEntry *rev =
        findSnapshotEntry(reversed, 7, 9, 0, 10);
    ASSERT_NE(fwd, nullptr);
    ASSERT_NE(rev, nullptr);
    EXPECT_EQ(fwd->file, "snap_a.lsnp");
    EXPECT_EQ(rev->file, "snap_a.lsnp");

    // Freshness still dominates the path tie-break.
    SnapshotManifestEntry fresher = a;
    fresher.framesDone = 3;
    fresher.file = "snap_z.lsnp";
    const std::vector<SnapshotManifestEntry> mixed{a, fresher, b};
    const SnapshotManifestEntry *best =
        findSnapshotEntry(mixed, 7, 9, 0, 10);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->file, "snap_z.lsnp");
}
