/**
 * @file
 * Tests for the tile grid, Z-order traversal and supertile mapping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/morton.hh"
#include "gpu/tiling/tile_grid.hh"

using namespace libra;

TEST(TileGrid, FhdDimensionsMatchPaper)
{
    // FHD at 32x32 tiles: 60x34 grid; 510 2x2 supertiles (§III-E).
    const TileGrid grid(1920, 1080, 32);
    EXPECT_EQ(grid.tilesX(), 60u);
    EXPECT_EQ(grid.tilesY(), 34u);
    EXPECT_EQ(grid.tileCount(), 2040u);
    EXPECT_EQ(grid.superTileCount(2), 510u);
}

TEST(TileGrid, TileRectCoversScreenExactly)
{
    const TileGrid grid(100, 70, 32); // ragged edges
    std::uint64_t area = 0;
    for (TileId t = 0; t < grid.tileCount(); ++t) {
        const IRect r = grid.tileRect(t);
        EXPECT_FALSE(r.empty());
        EXPECT_LE(r.x1, 100);
        EXPECT_LE(r.y1, 70);
        area += static_cast<std::uint64_t>(r.width()) * r.height();
    }
    EXPECT_EQ(area, 100u * 70u);
}

TEST(TileGrid, TileCoordRoundTrip)
{
    const TileGrid grid(1920, 1080, 32);
    for (TileId t = 0; t < grid.tileCount(); ++t) {
        EXPECT_EQ(grid.tileAt(grid.tileX(t), grid.tileY(t)), t);
    }
}

TEST(TileGrid, ZOrderIsPermutation)
{
    const TileGrid grid(1920, 1080, 32);
    const auto &order = grid.zOrder();
    EXPECT_EQ(order.size(), grid.tileCount());
    std::set<TileId> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), grid.tileCount());
}

TEST(TileGrid, ZOrderFollowsMortonCodes)
{
    const TileGrid grid(256, 256, 32); // 8x8 grid, no clipping
    const auto &order = grid.zOrder();
    for (std::uint32_t code = 0; code < order.size(); ++code) {
        EXPECT_EQ(order[code],
                  grid.tileAt(mortonDecodeX(code), mortonDecodeY(code)));
    }
}

TEST(TileGrid, ScanlineOrderIsRowMajor)
{
    const TileGrid grid(128, 96, 32);
    const auto order = grid.scanlineOrder();
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], static_cast<TileId>(i));
}

class SuperTileSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(SuperTileSweep, SuperTilesPartitionTheGrid)
{
    const std::uint32_t st = GetParam();
    const TileGrid grid(1920, 1080, 32);
    std::set<TileId> seen;
    for (SuperTileId s = 0; s < grid.superTileCount(st); ++s) {
        for (const TileId t : grid.tilesInSuperTile(s, st)) {
            EXPECT_EQ(grid.superTileOf(t, st), s);
            EXPECT_TRUE(seen.insert(t).second)
                << "tile " << t << " in two supertiles";
        }
    }
    EXPECT_EQ(seen.size(), grid.tileCount());
}

TEST_P(SuperTileSweep, TilesWithinSuperTileAreAdjacent)
{
    const std::uint32_t st = GetParam();
    const TileGrid grid(1920, 1080, 32);
    for (SuperTileId s = 0; s < grid.superTileCount(st); ++s) {
        const auto tiles = grid.tilesInSuperTile(s, st);
        ASSERT_FALSE(tiles.empty());
        std::uint32_t min_x = ~0u, max_x = 0, min_y = ~0u, max_y = 0;
        for (const TileId t : tiles) {
            min_x = std::min(min_x, grid.tileX(t));
            max_x = std::max(max_x, grid.tileX(t));
            min_y = std::min(min_y, grid.tileY(t));
            max_y = std::max(max_y, grid.tileY(t));
        }
        EXPECT_LT(max_x - min_x, st);
        EXPECT_LT(max_y - min_y, st);
    }
}

TEST_P(SuperTileSweep, SuperTileZOrderIsPermutation)
{
    const std::uint32_t st = GetParam();
    const TileGrid grid(1920, 1080, 32);
    const auto order = grid.superTileZOrder(st);
    EXPECT_EQ(order.size(), grid.superTileCount(st));
    std::set<SuperTileId> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), order.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SuperTileSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(TileGrid, SuperTileSizeOneIsIdentity)
{
    const TileGrid grid(640, 480, 32);
    for (TileId t = 0; t < grid.tileCount(); ++t) {
        EXPECT_EQ(grid.superTileOf(t, 1), t);
        const auto tiles = grid.tilesInSuperTile(t, 1);
        ASSERT_EQ(tiles.size(), 1u);
        EXPECT_EQ(tiles[0], t);
    }
}

TEST(TileGrid, BorderSuperTilesArePartial)
{
    const TileGrid grid(1920, 1080, 32); // 60x34 tiles
    // With 8x8 supertiles the bottom row only has 34-32=2 tile rows.
    const std::uint32_t st = 8;
    const SuperTileId bottom_left =
        (grid.superTilesY(st) - 1) * grid.superTilesX(st);
    const auto tiles = grid.tilesInSuperTile(bottom_left, st);
    EXPECT_EQ(tiles.size(), 8u * 2u);
}
