/**
 * @file
 * Tests for the TBR extensions beyond the paper's baseline:
 * transaction elimination, framebuffer compression and the scanline
 * traversal ablation.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "gpu/runner.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 512;
constexpr std::uint32_t H = 288;

GpuConfig
sized(GpuConfig cfg)
{
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    return cfg;
}

/** A scene with NO animation: every frame is identical. */
BenchmarkSpec
staticSpec()
{
    BenchmarkSpec spec = findBenchmark("CCS");
    spec.spriteSpeed = 0.0f;
    spec.hotspotDrift = 0.0f;
    spec.bgScrollX = 0.0f;
    spec.bgScrollY = 0.0f;
    spec.epochFrames = 100000;
    return spec;
}

} // namespace

TEST(TransactionElimination, StaticFramesElideAllFlushes)
{
    const BenchmarkSpec spec = staticSpec();
    GpuConfig cfg = sized(GpuConfig::baseline(4));
    cfg.transactionElimination = true;
    const Scene scene(spec, W, H);
    Gpu gpu(cfg);

    const FrameStats f0 = gpu.renderFrame(scene.frame(0),
                                          scene.textures());
    // First frame: nothing to compare against, all tiles flush.
    const std::uint64_t fb_lines = static_cast<std::uint64_t>(W) * H * 4
        / 64;
    EXPECT_GE(f0.dramWrites, fb_lines);

    // Wobble animations are frozen but sprites still use per-frame
    // sine phases at t=0 vs t=1... the scene is a pure function of the
    // frame index, so rendering index 0 twice gives identical content.
    const FrameStats f1 = gpu.renderFrame(scene.frame(0),
                                          scene.textures());
    // Every tile's content matches: frame-buffer writes collapse.
    EXPECT_LT(f1.dramWrites, fb_lines / 4);
}

TEST(TransactionElimination, ChangedTilesStillFlush)
{
    // A sparsely animated scene: a handful of moving sprites dirty
    // their tiles, while tiles covered only by the static background
    // elide their flush. (Dense suite entries like CCS touch nearly
    // every tile each frame at this resolution, so build a sparse one.)
    BenchmarkSpec spec = findBenchmark("CCS");
    spec.spriteCount = 10;
    spec.bgScrollX = 0.0f;
    spec.bgScrollY = 0.0f;
    GpuConfig cfg = sized(GpuConfig::baseline(4));
    cfg.transactionElimination = true;

    const Scene scene(spec, W, H);
    const TileGrid grid(W, H, cfg.tileSize);
    Gpu gpu(cfg);
    const FrameStats f0 = gpu.renderFrame(scene.frame(0),
                                          scene.textures());
    const std::uint64_t writes_frame0 = f0.dramWrites;
    const FrameStats f1 = gpu.renderFrame(scene.frame(1),
                                          scene.textures());
    // Some flushes happen (animated tiles), but fewer bytes than the
    // cold first frame, which flushed everything.
    EXPECT_GT(f1.dramWrites, 0u);
    EXPECT_LT(f1.dramWrites, writes_frame0);
    (void)grid;
}

TEST(TransactionElimination, OutputUnaffected)
{
    const BenchmarkSpec &spec = findBenchmark("SuS");
    auto image_of = [&](bool te) {
        GpuConfig cfg = sized(GpuConfig::libra(2, 4));
        cfg.transactionElimination = te;
        cfg.captureImage = true;
        const Scene scene(spec, W, H);
        Gpu gpu(cfg);
        gpu.renderFrame(scene.frame(0), scene.textures());
        return gpu.renderFrame(scene.frame(1), scene.textures()).image;
    };
    EXPECT_EQ(image_of(false), image_of(true));
}

TEST(FbCompression, ReducesFrameBufferTraffic)
{
    const BenchmarkSpec &spec = findBenchmark("CCS");
    auto writes_of = [&](double ratio) {
        GpuConfig cfg = sized(GpuConfig::baseline(4));
        cfg.fbCompressionRatio = ratio;
        const RunResult r = runBenchmark(spec, cfg, 2).value();
        return r.frames.back().dramWrites;
    };
    const auto full = writes_of(1.0);
    const auto half = writes_of(0.5);
    EXPECT_LT(half, full * 3 / 4);
    EXPECT_GT(half, full / 4);
}

TEST(Scanline, PolicyRendersCorrectly)
{
    const BenchmarkSpec &spec = findBenchmark("CoC");
    GpuConfig morton = sized(GpuConfig::ptr(2, 4));
    GpuConfig scan = morton;
    scan.sched.policy = SchedulerPolicy::Scanline;
    morton.captureImage = true;
    scan.captureImage = true;

    const Scene scene(spec, W, H);
    Gpu gm(morton), gs(scan);
    const auto im = gm.renderFrame(scene.frame(0), scene.textures());
    const auto is = gs.renderFrame(scene.frame(0), scene.textures());
    EXPECT_EQ(im.image, is.image);
    EXPECT_EQ(im.fragments, is.fragments);
}

TEST(Scanline, MortonAtLeastAsCacheFriendly)
{
    // The reason the baseline uses Morton order (§II-B): traversal
    // locality. Scanline must not beat Morton's texture hit ratio by
    // any meaningful margin on a texture-heavy scene.
    const BenchmarkSpec &spec = findBenchmark("CCS");
    GpuConfig morton = sized(GpuConfig::ptr(2, 4));
    GpuConfig scan = morton;
    scan.sched.policy = SchedulerPolicy::Scanline;
    const RunResult rm = runBenchmark(spec, morton, 3).value();
    const RunResult rs = runBenchmark(spec, scan, 3).value();
    EXPECT_GE(rm.textureHitRatio() + 0.02, rs.textureHitRatio());
}
