/**
 * @file
 * SmallCallback semantics and the zero-allocation guarantee of the
 * event-loop hot path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

#include "cache/mem_system.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"

using namespace libra;

// ---------------------------------------------------------------------
// Global allocation counter: every path through operator new bumps it.
// Linked into this test binary only; lets tests assert that a region of
// code performed zero heap allocations.
// ---------------------------------------------------------------------

namespace
{

std::atomic<std::uint64_t> g_allocs{0};

/** Allocations since construction. */
class AllocCounter
{
  public:
    AllocCounter() : start(g_allocs.load()) {}
    std::uint64_t count() const { return g_allocs.load() - start; }

  private:
    std::uint64_t start;
};

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

// ---------------------------------------------------------------------
// Basic semantics.
// ---------------------------------------------------------------------

TEST(SmallCallback, InvokesStoredCallable)
{
    int hits = 0;
    SmallCallback<void(), 40> cb([&hits]() { ++hits; });
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(SmallCallback, DefaultAndNullptrAreEmpty)
{
    SmallCallback<void(), 40> a;
    SmallCallback<void(), 40> b(nullptr);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_FALSE(static_cast<bool>(b));
}

TEST(SmallCallback, ArgumentsAndReturnValue)
{
    SmallCallback<int(int, int), 16> add(
        [](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);
}

TEST(SmallCallback, CaptureUpToCapacityFitsInline)
{
    // Exactly at capacity: 40 bytes of capture in a 40-byte callback.
    struct Fat
    {
        std::uint64_t a, b, c, d, e;
    };
    static_assert(sizeof(Fat) == 40);
    Fat fat{1, 2, 3, 4, 5};
    AllocCounter allocs;
    SmallCallback<void(), 40> cb(
        [fat]() mutable { fat.a += fat.e; });
    cb();
    EXPECT_EQ(allocs.count(), 0u)
        << "at-capacity capture must live inline";
    using Cb40 = SmallCallback<void(), 40>;
    EXPECT_EQ(Cb40::capacity(), 40u);
}

TEST(SmallCallback, MoveOnlyCapture)
{
    auto value = std::make_unique<int>(42);
    SmallCallback<int(), 16> cb(
        [v = std::move(value)]() { return *v; });
    EXPECT_EQ(cb(), 42);
}

TEST(SmallCallback, MoveTransfersAndEmptiesSource)
{
    int hits = 0;
    SmallCallback<void(), 40> a([&hits]() { ++hits; });
    SmallCallback<void(), 40> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    SmallCallback<void(), 40> c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 2);
}

namespace
{

/** Counts how many times captures are destroyed. */
struct DtorProbe
{
    int *counter;
    explicit DtorProbe(int *c) : counter(c) {}
    DtorProbe(DtorProbe &&other) noexcept : counter(other.counter)
    {
        other.counter = nullptr;
    }
    DtorProbe(const DtorProbe &) = delete;
    ~DtorProbe()
    {
        if (counter)
            ++*counter;
    }
};

} // namespace

TEST(SmallCallback, CaptureDestroyedExactlyOnce)
{
    int destroyed = 0;
    {
        SmallCallback<void(), 16> cb(
            [p = DtorProbe(&destroyed)]() {});
        EXPECT_EQ(destroyed, 0);
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(SmallCallback, CaptureDestroyedExactlyOnceThroughMoves)
{
    int destroyed = 0;
    {
        SmallCallback<void(), 16> a(
            [p = DtorProbe(&destroyed)]() {});
        SmallCallback<void(), 16> b(std::move(a));
        SmallCallback<void(), 16> c;
        c = std::move(b);
        EXPECT_EQ(destroyed, 0);
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(SmallCallback, AssignmentDestroysPreviousCapture)
{
    int first = 0, second = 0;
    SmallCallback<void(), 16> cb([p = DtorProbe(&first)]() {});
    cb = SmallCallback<void(), 16>([p = DtorProbe(&second)]() {});
    EXPECT_EQ(first, 1) << "overwritten capture must be destroyed";
    EXPECT_EQ(second, 0);
}

// ---------------------------------------------------------------------
// The acceptance criterion: scheduling is allocation-free.
// ---------------------------------------------------------------------

TEST(SmallCallback, ScheduleIsAllocationFree)
{
    EventQueue q; // reserves its event-heap capacity up front
    std::uint64_t sum = 0;

    AllocCounter allocs;
    for (int i = 0; i < 512; ++i) {
        // The largest audited in-tree shape: 40 bytes of capture — a
        // reference plus three words plus a completion tick.
        struct
        {
            std::uint64_t a, b, c;
        } fake{1, 2, static_cast<std::uint64_t>(i)};
        Tick done = static_cast<Tick>(i);
        q.schedule(static_cast<Tick>(i % 7),
                   [&sum, fake, done]() mutable {
                       sum += fake.c + done;
                   });
    }
    EXPECT_EQ(allocs.count(), 0u)
        << "EventQueue::schedule must not touch the heap";

    q.runUntil();
    EXPECT_EQ(q.eventsExecuted(), 512u);
    EXPECT_GT(sum, 0u);
}

TEST(SmallCallback, MemCallbackShapeIsAllocationFree)
{
    // The cache/DRAM completion path wraps a MemCallback + Tick into an
    // EventCallback; both layers must stay inline.
    EventQueue q;
    std::uint64_t seen = 0;

    AllocCounter allocs;
    struct
    {
        void *a;
        std::uint64_t c;
    } flight{&q, 7};
    MemCallback cb([&seen, flight](Tick when) mutable {
        seen += flight.c + static_cast<std::uint64_t>(when);
    });
    Tick done = 12;
    q.schedule(done, [cb = std::move(cb), done]() mutable {
        cb(done);
    });
    EXPECT_EQ(allocs.count(), 0u);

    q.runUntil();
    EXPECT_EQ(seen, 19u);
}
