/**
 * @file
 * Tests for the Early-Z stage.
 */

#include <gtest/gtest.h>

#include "gpu/raster/early_z.hh"

using namespace libra;

namespace
{

Quad
fullQuad(int px, int py, float z)
{
    Quad q;
    q.px = static_cast<std::uint16_t>(px);
    q.py = static_cast<std::uint16_t>(py);
    q.mask = 0xf;
    for (float &zi : q.z)
        zi = z;
    return q;
}

} // namespace

TEST(EarlyZ, FirstQuadAlwaysPasses)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad q = fullQuad(0, 0, 0.5f);
    EXPECT_EQ(z.testQuad(q, true), 0xf);
    EXPECT_EQ(z.quadsKilled.value(), 0u);
}

TEST(EarlyZ, NearerQuadKillsFarther)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad near_q = fullQuad(4, 4, 0.2f);
    z.testQuad(near_q, true);
    Quad far_q = fullQuad(4, 4, 0.8f);
    EXPECT_EQ(z.testQuad(far_q, true), 0u);
    EXPECT_EQ(z.quadsKilled.value(), 1u);
    EXPECT_EQ(z.fragmentsKilled.value(), 4u);
}

TEST(EarlyZ, FartherFirstThenNearerBothPass)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad far_q = fullQuad(4, 4, 0.8f);
    EXPECT_EQ(z.testQuad(far_q, true), 0xf);
    Quad near_q = fullQuad(4, 4, 0.2f);
    EXPECT_EQ(z.testQuad(near_q, true), 0xf);
    EXPECT_EQ(z.quadsKilled.value(), 0u);
}

TEST(EarlyZ, EqualDepthFails)
{
    // LESS, not LESS-EQUAL: resubmitting the same surface is culled.
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad a = fullQuad(0, 0, 0.5f);
    z.testQuad(a, true);
    Quad b = fullQuad(0, 0, 0.5f);
    EXPECT_EQ(z.testQuad(b, true), 0u);
}

TEST(EarlyZ, BlendedQuadTestsButDoesNotWrite)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad translucent = fullQuad(0, 0, 0.3f);
    EXPECT_EQ(z.testQuad(translucent, false), 0xf); // no depth write
    // An opaque quad behind the translucent one still passes, because
    // the translucent one did not write depth.
    Quad opaque = fullQuad(0, 0, 0.6f);
    EXPECT_EQ(z.testQuad(opaque, true), 0xf);
}

TEST(EarlyZ, PartialMaskRespected)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad q = fullQuad(0, 0, 0.4f);
    q.mask = 0b0101;
    EXPECT_EQ(z.testQuad(q, true), 0b0101);
    // The uncovered pixels still hold far depth.
    Quad fill = fullQuad(0, 0, 0.6f);
    EXPECT_EQ(z.testQuad(fill, true), 0b1010);
}

TEST(EarlyZ, PerPixelIndependence)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad q = fullQuad(2, 2, 0.5f);
    q.z[0] = 0.1f;
    q.z[1] = 0.2f;
    q.z[2] = 0.3f;
    q.z[3] = 0.4f;
    z.testQuad(q, true);
    Quad probe = fullQuad(2, 2, 0.25f);
    // Pixels 0 and 1 hold depths 0.1/0.2 < 0.25 → killed; 2,3 pass.
    EXPECT_EQ(z.testQuad(probe, true), 0b1100);
}

TEST(EarlyZ, BeginTileResetsDepth)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad q = fullQuad(0, 0, 0.1f);
    z.testQuad(q, true);
    z.beginTile({0, 0, 32, 32});
    Quad again = fullQuad(0, 0, 0.9f);
    EXPECT_EQ(z.testQuad(again, true), 0xf);
}

TEST(EarlyZ, WorksWithNonZeroTileOrigin)
{
    EarlyZ z(32);
    z.beginTile({64, 96, 96, 128});
    Quad q = fullQuad(70, 100, 0.5f);
    EXPECT_EQ(z.testQuad(q, true), 0xf);
    Quad behind = fullQuad(70, 100, 0.9f);
    EXPECT_EQ(z.testQuad(behind, true), 0u);
}

TEST(EarlyZDeathTest, OutsideTilePanics)
{
    EarlyZ z(32);
    z.beginTile({0, 0, 32, 32});
    Quad q = fullQuad(40, 0, 0.5f);
    EXPECT_DEATH(z.testQuad(q, true), "outside the current tile");
}
