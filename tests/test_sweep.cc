/**
 * @file
 * SweepRunner / SceneCache: determinism across worker counts, scene
 * sharing, and per-job error isolation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "sim/sweep.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t kWidth = 256;
constexpr std::uint32_t kHeight = 128;

GpuConfig
smallConfig(GpuConfig cfg)
{
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;
    return cfg;
}

std::vector<SweepJob>
mixedJobs(const BenchmarkSpec &ccs, const BenchmarkSpec &gdl)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({&ccs, smallConfig(GpuConfig::baseline(8)), 2, 0});
    jobs.push_back({&ccs, smallConfig(GpuConfig::ptr(2, 4)), 2, 0});
    jobs.push_back({&ccs, smallConfig(GpuConfig::libra(2, 4)), 2, 0});
    jobs.push_back({&gdl, smallConfig(GpuConfig::baseline(8)), 2, 0});
    jobs.push_back({&gdl, smallConfig(GpuConfig::libra(2, 4)), 2, 0});
    return jobs;
}

/** Every observable counter of one frame, for bit-exact comparison. */
void
expectFramesIdentical(const FrameStats &a, const FrameStats &b)
{
    EXPECT_EQ(a.frameIndex, b.frameIndex);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.geomCycles, b.geomCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramActivates, b.dramActivates);
    EXPECT_EQ(a.avgDramReadLatency, b.avgDramReadLatency);
    EXPECT_EQ(a.textureHitRatio, b.textureHitRatio);
    EXPECT_EQ(a.avgTextureLatency, b.avgTextureLatency);
    EXPECT_EQ(a.textureRequests, b.textureRequests);
    EXPECT_EQ(a.textureMisses, b.textureMisses);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.fragments, b.fragments);
    EXPECT_EQ(a.warps, b.warps);
    EXPECT_EQ(a.quads, b.quads);
    EXPECT_EQ(a.temperatureOrder, b.temperatureOrder);
    EXPECT_EQ(a.supertileSize, b.supertileSize);
    EXPECT_EQ(a.tileDram, b.tileDram);
    EXPECT_EQ(a.tileInstr, b.tileInstr);
}

} // namespace

TEST(SweepRunner, ResultsIdenticalAcrossWorkerCounts)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const BenchmarkSpec &gdl = findBenchmark("GDL");

    SweepRunner serial(1);
    SweepRunner pool(8);
    SceneCache cache_serial, cache_pool;
    std::vector<Result<RunResult>> a =
        serial.run(mixedJobs(ccs, gdl), &cache_serial);
    std::vector<Result<RunResult>> b =
        pool.run(mixedJobs(ccs, gdl), &cache_pool);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].isOk()) << a[i].status().toString();
        ASSERT_TRUE(b[i].isOk()) << b[i].status().toString();
        EXPECT_EQ((*a[i]).benchmark, (*b[i]).benchmark);
        ASSERT_EQ((*a[i]).frames.size(), (*b[i]).frames.size());
        for (std::size_t f = 0; f < (*a[i]).frames.size(); ++f)
            expectFramesIdentical((*a[i]).frames[f], (*b[i]).frames[f]);
    }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const BenchmarkSpec &gdl = findBenchmark("GDL");

    SweepRunner pool(4);
    std::vector<Result<RunResult>> out =
        pool.run(mixedJobs(ccs, gdl), nullptr);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ((*out[0]).benchmark, "CCS");
    EXPECT_EQ((*out[2]).benchmark, "CCS");
    EXPECT_EQ((*out[3]).benchmark, "GDL");
    EXPECT_EQ((*out[4]).benchmark, "GDL");
}

TEST(SweepRunner, WorkerCountDefaultsAndOverrides)
{
    EXPECT_GE(SweepRunner(0).workers(), 1u);
    EXPECT_EQ(SweepRunner(1).workers(), 1u);
    EXPECT_EQ(SweepRunner(6).workers(), 6u);
}

TEST(SceneCache, OneBuildPerBenchmarkUnderConcurrency)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const BenchmarkSpec &gdl = findBenchmark("GDL");

    // 5 jobs over 2 distinct (benchmark, resolution) keys, run on 8
    // workers: the cache must build each scene exactly once however
    // the workers race.
    SweepRunner pool(8);
    SceneCache cache;
    std::vector<Result<RunResult>> out =
        pool.run(mixedJobs(ccs, gdl), &cache);
    for (const auto &r : out)
        ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(cache.builds(), 2u);

    // A second sweep over the same keys reuses the cached scenes.
    std::vector<Result<RunResult>> again =
        pool.run(mixedJobs(ccs, gdl), &cache);
    EXPECT_EQ(cache.builds(), 2u);
}

TEST(SceneCache, DistinctResolutionsAreDistinctScenes)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    SceneCache cache;
    auto a = cache.get(ccs, 256, 128);
    auto b = cache.get(ccs, 256, 128);
    auto c = cache.get(ccs, 128, 64);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.builds(), 2u);
}

TEST(SweepRunner, FailedJobDoesNotKillTheSweep)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");

    std::vector<SweepJob> jobs;
    jobs.push_back({&ccs, smallConfig(GpuConfig::baseline(8)), 2, 0});
    // Invalid: zero raster units fails config validation.
    GpuConfig bad = smallConfig(GpuConfig::baseline(8));
    bad.rasterUnits = 0;
    jobs.push_back({&ccs, bad, 2, 0});
    jobs.push_back({&ccs, smallConfig(GpuConfig::libra(2, 4)), 2, 0});

    SweepRunner pool(2);
    std::vector<Result<RunResult>> out = pool.run(std::move(jobs));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[0].isOk());
    EXPECT_FALSE(out[1].isOk());
    EXPECT_TRUE(out[2].isOk());
}

TEST(SweepRunner, NullSpecIsAnErrorNotACrash)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({nullptr, GpuConfig::baseline(8), 2, 0});
    SweepRunner pool(1);
    std::vector<Result<RunResult>> out = pool.run(std::move(jobs));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].isOk());
}

TEST(SweepRunner, EmptyJobListIsFine)
{
    SweepRunner pool(4);
    EXPECT_TRUE(pool.run({}).empty());
}
