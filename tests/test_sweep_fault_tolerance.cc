/**
 * @file
 * Fault-tolerant sweep execution (SweepRunner::runWithPolicy):
 * default-policy equivalence with run(), attributed failure messages,
 * transient-failure retries, wall-clock deadlines, quarantine, the
 * crash-safe journal with resume, and the kill-and-resume round trip
 * whose final report must be byte-identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/fault_injector.hh"
#include "gpu/gpu_config.hh"
#include "sim/sweep.hh"
#include "sim/sweep_journal.hh"
#include "trace/json.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t kWidth = 256;
constexpr std::uint32_t kHeight = 128;

GpuConfig
smallConfig(GpuConfig cfg)
{
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;
    return cfg;
}

std::vector<SweepJob>
smallJobs(const BenchmarkSpec &ccs, std::size_t count = 3)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({&ccs, smallConfig(GpuConfig::baseline(8)), 2, 0});
    if (count > 1)
        jobs.push_back({&ccs, smallConfig(GpuConfig::ptr(2, 4)), 2, 0});
    if (count > 2)
        jobs.push_back(
            {&ccs, smallConfig(GpuConfig::libra(2, 4)), 2, 0});
    return jobs;
}

/** Self-deleting temp path for journal files. */
class JournalPath
{
  public:
    explicit JournalPath(const char *tag)
        : path_(std::string("/tmp/libra_journal_")
                + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()
                + "_" + tag + ".jsonl")
    {
        std::remove(path_.c_str());
    }
    ~JournalPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** Report-set document of a SweepOutcome, the way the benches build
 *  it: completed runs in order plus the failures section. */
std::string
outcomeReport(const std::vector<SweepJob> &jobs,
              const SweepOutcome &outcome)
{
    std::vector<RunResult> runs;
    std::vector<ReportFailure> failures;
    for (std::size_t i = 0; i < outcome.jobs.size(); ++i) {
        const JobOutcome &o = outcome.jobs[i];
        if (o.result.isOk()) {
            runs.push_back(*o.result);
            continue;
        }
        const Status &st = o.result.status();
        failures.push_back({i, sweepJobKey(jobs[i]),
                            errorCodeName(st.code()),
                            std::string(st.message()), o.attempts,
                            o.quarantined, o.notRun});
    }
    return sweepReportJson(runs, failures);
}

} // namespace

TEST(SweepPolicy, DefaultPolicyMatchesPlainRun)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");

    SweepRunner pool(4);
    SceneCache cache_a, cache_b;
    std::vector<Result<RunResult>> plain =
        pool.run(smallJobs(ccs), &cache_a);
    SweepOutcome policied =
        pool.runWithPolicy(smallJobs(ccs), SweepPolicy{}, &cache_b);

    ASSERT_EQ(plain.size(), policied.jobs.size());
    EXPECT_FALSE(policied.killed);
    EXPECT_EQ(policied.replayedFromJournal, 0u);
    EXPECT_EQ(policied.failureCount(), 0u);
    for (std::size_t i = 0; i < plain.size(); ++i) {
        ASSERT_TRUE(plain[i].isOk());
        ASSERT_TRUE(policied.jobs[i].result.isOk());
        EXPECT_EQ(policied.jobs[i].attempts, 1u);
        EXPECT_FALSE(policied.jobs[i].fromJournal);
        // Byte-identical results, not merely statistically close.
        EXPECT_EQ(runReportJson(*plain[i]),
                  runReportJson(*policied.jobs[i].result));
    }
}

TEST(SweepPolicy, FailureMessagesAreAttributed)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    std::vector<SweepJob> jobs = smallJobs(ccs, 1);
    jobs[0].config.rasterUnits = 0; // fails config validation
    const std::string key = sweepJobKey(jobs[0]);

    SweepRunner pool(1);
    SweepOutcome out = pool.runWithPolicy(std::move(jobs),
                                          SweepPolicy{});
    ASSERT_EQ(out.jobs.size(), 1u);
    ASSERT_FALSE(out.jobs[0].result.isOk());
    const std::string msg(out.jobs[0].result.status().message());
    EXPECT_EQ(msg.rfind("job 0 [" + key + "]: ", 0), 0u) << msg;
    // The key carries benchmark, resolution and the config hash.
    EXPECT_NE(key.find("CCS"), std::string::npos);
    EXPECT_NE(key.find("256x128"), std::string::npos);
    EXPECT_NE(key.find(":cfg:"), std::string::npos);
}

TEST(SweepPolicy, InjectedTransientFailureRetriesToSuccess)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");

    SweepPolicy policy;
    policy.maxRetries = 2;
    policy.backoffMs = 0; // keep the test fast
    Result<FaultPlan> plan = FaultPlan::parse("transient@job=1,count=2");
    ASSERT_TRUE(plan.isOk());
    policy.faults = *plan;

    SweepRunner pool(2);
    SceneCache cache, cache_ref;
    SweepOutcome out =
        pool.runWithPolicy(smallJobs(ccs), policy, &cache);
    ASSERT_EQ(out.jobs.size(), 3u);
    EXPECT_EQ(out.failureCount(), 0u);
    EXPECT_EQ(out.jobs[0].attempts, 1u);
    EXPECT_EQ(out.jobs[1].attempts, 3u); // 2 injected failures + 1 ok
    EXPECT_EQ(out.jobs[2].attempts, 1u);

    // Sweep-layer faults never perturb the simulation: results are
    // byte-identical to a fault-free sweep.
    std::vector<Result<RunResult>> ref =
        pool.run(smallJobs(ccs), &cache_ref);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(ref[i].isOk());
        EXPECT_EQ(runReportJson(*ref[i]),
                  runReportJson(*out.jobs[i].result));
    }
}

TEST(SweepPolicy, TransientFailureWithoutRetriesIsReported)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");

    SweepPolicy policy; // maxRetries = 0
    Result<FaultPlan> plan = FaultPlan::parse("transient@job=0,count=1");
    ASSERT_TRUE(plan.isOk());
    policy.faults = *plan;

    SweepRunner pool(1);
    SweepOutcome out = pool.runWithPolicy(smallJobs(ccs, 1), policy);
    ASSERT_EQ(out.jobs.size(), 1u);
    ASSERT_FALSE(out.jobs[0].result.isOk());
    const Status &st = out.jobs[0].result.status();
    EXPECT_EQ(st.code(), ErrorCode::Unavailable);
    EXPECT_TRUE(isTransientFailure(st.code()));
    EXPECT_NE(std::string(st.message()).find(
                  "injected transient failure"),
              std::string::npos);
    EXPECT_EQ(out.jobs[0].attempts, 1u);
}

TEST(SweepPolicy, ExpiredDeadlineAbortsWithDeadlineExceeded)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");

    SweepPolicy policy;
    policy.deadlineMs = 1; // expires before the event loop's first poll

    SweepRunner pool(1);
    SweepOutcome out = pool.runWithPolicy(smallJobs(ccs, 1), policy);
    ASSERT_EQ(out.jobs.size(), 1u);
    ASSERT_FALSE(out.jobs[0].result.isOk());
    EXPECT_EQ(out.jobs[0].result.status().code(),
              ErrorCode::DeadlineExceeded);
    EXPECT_TRUE(
        isTransientFailure(out.jobs[0].result.status().code()));
}

TEST(SweepPolicy, QuarantineFastFailsRepeatOffenders)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");

    GpuConfig bad = smallConfig(GpuConfig::baseline(8));
    bad.rasterUnits = 0;
    std::vector<SweepJob> jobs;
    jobs.push_back({&ccs, bad, 2, 0});
    jobs.push_back({&ccs, bad, 2, 0}); // same config hash
    jobs.push_back({&ccs, smallConfig(GpuConfig::libra(2, 4)), 2, 0});

    SweepPolicy policy;
    policy.quarantineThreshold = 1;

    SweepRunner pool(4);
    SweepOutcome out = pool.runWithPolicy(std::move(jobs), policy);
    ASSERT_EQ(out.jobs.size(), 3u);

    ASSERT_FALSE(out.jobs[0].result.isOk());
    EXPECT_FALSE(out.jobs[0].quarantined);
    EXPECT_EQ(out.jobs[0].result.status().code(),
              ErrorCode::InvalidArgument);

    ASSERT_FALSE(out.jobs[1].result.isOk());
    EXPECT_TRUE(out.jobs[1].quarantined);
    EXPECT_EQ(out.jobs[1].result.status().code(),
              ErrorCode::FailedPrecondition);
    EXPECT_NE(std::string(out.jobs[1].result.status().message())
                  .find("quarantined"),
              std::string::npos);

    // An unrelated config is untouched by the quarantine.
    EXPECT_TRUE(out.jobs[2].result.isOk());
}

TEST(SweepJournalTest, RunResultJsonRoundTripIsExact)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    GpuConfig cfg = smallConfig(GpuConfig::libra(2, 4));
    cfg.captureImage = true; // exercise the image-hash path too
    Result<RunResult> r = runBenchmark(ccs, cfg, 2);
    ASSERT_TRUE(r.isOk()) << r.status().toString();

    JsonWriter w1;
    runResultToJson(w1, *r);
    const std::string first = w1.str();

    Result<JsonValue> parsed = parseJson(first);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    Result<RunResult> back = runResultFromJson(*parsed);
    ASSERT_TRUE(back.isOk()) << back.status().toString();

    // Exact fidelity: serializing the deserialized result reproduces
    // the document byte for byte (u64 counters, %.17g doubles, image
    // hashes — nothing may lose precision through the journal).
    JsonWriter w2;
    runResultToJson(w2, *back);
    EXPECT_EQ(first, w2.str());
    EXPECT_EQ(r->counters, back->counters);
    ASSERT_EQ(r->frames.size(), back->frames.size());
    EXPECT_EQ(r->frames[1].totalCycles, back->frames[1].totalCycles);
}

TEST(SweepJournalTest, JournalWritesLoadAndResumeSkipsCompletedJobs)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const JournalPath journal("rt");

    SweepPolicy policy;
    policy.journalPath = journal.str();

    SweepRunner pool(2);
    SceneCache cache;
    SweepOutcome first =
        pool.runWithPolicy(smallJobs(ccs), policy, &cache);
    ASSERT_EQ(first.failureCount(), 0u);

    Result<std::vector<JournalRecord>> records =
        SweepJournal::load(journal.str());
    ASSERT_TRUE(records.isOk()) << records.status().toString();
    ASSERT_EQ(records->size(), 3u);
    for (const JournalRecord &rec : *records)
        EXPECT_TRUE(rec.ok);

    policy.resume = true;
    SweepOutcome second =
        pool.runWithPolicy(smallJobs(ccs), policy, &cache);
    EXPECT_EQ(second.replayedFromJournal, 3u);
    EXPECT_EQ(second.failureCount(), 0u);
    for (std::size_t i = 0; i < second.jobs.size(); ++i) {
        EXPECT_TRUE(second.jobs[i].fromJournal) << "job " << i;
        ASSERT_TRUE(second.jobs[i].result.isOk());
        EXPECT_EQ(runReportJson(*first.jobs[i].result),
                  runReportJson(*second.jobs[i].result));
    }
}

TEST(SweepJournalTest, MissingJournalLoadsEmpty)
{
    Result<std::vector<JournalRecord>> records =
        SweepJournal::load("/tmp/libra_journal_does_not_exist.jsonl");
    ASSERT_TRUE(records.isOk());
    EXPECT_TRUE(records->empty());
}

TEST(SweepJournalTest, KillAndResumeReportIsByteIdentical)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const JournalPath journal("kill");

    // Reference: the same sweep, never interrupted, no journal.
    SweepRunner pool(1); // deterministic execution order for the kill
    SceneCache cache;
    const std::string reference = outcomeReport(
        smallJobs(ccs),
        pool.runWithPolicy(smallJobs(ccs), SweepPolicy{}, &cache));

    // The "process" dies during the second journal append: one job is
    // durable, the second append is torn, the third job never starts.
    SweepPolicy dying;
    dying.journalPath = journal.str();
    Result<FaultPlan> plan = FaultPlan::parse("kill@append=2");
    ASSERT_TRUE(plan.isOk());
    dying.faults = *plan;

    SweepOutcome crashed =
        pool.runWithPolicy(smallJobs(ccs), dying, &cache);
    EXPECT_TRUE(crashed.killed);
    EXPECT_GE(crashed.failureCount(), 1u);
    ASSERT_TRUE(crashed.jobs[0].result.isOk());
    EXPECT_TRUE(crashed.jobs[2].notRun);

    // The torn trailing line must not poison the load.
    Result<std::vector<JournalRecord>> records =
        SweepJournal::load(journal.str());
    ASSERT_TRUE(records.isOk()) << records.status().toString();
    ASSERT_EQ(records->size(), 1u);
    EXPECT_TRUE(records->front().ok);

    // Resume without faults: replay the survivor, run the rest, and
    // the final report is byte-identical to the uninterrupted run.
    SweepPolicy resuming;
    resuming.journalPath = journal.str();
    resuming.resume = true;
    SweepOutcome resumed =
        pool.runWithPolicy(smallJobs(ccs), resuming, &cache);
    EXPECT_FALSE(resumed.killed);
    EXPECT_EQ(resumed.replayedFromJournal, 1u);
    EXPECT_EQ(resumed.failureCount(), 0u);
    EXPECT_EQ(outcomeReport(smallJobs(ccs), resumed), reference);
}

TEST(SweepJournalTest, DuplicateEntriesForOneKeyReplayLastWriteWins)
{
    // A journal can hold several records for one job key: a re-run
    // sweep appends again (the journal is append-only), and a crashed
    // farm can leave a success followed by later re-executions. Replay
    // must be deterministic: the LAST ok record for a key wins,
    // regardless of what precedes it.
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const JournalPath journal("dup");

    SweepPolicy policy;
    policy.journalPath = journal.str();

    SweepRunner pool(1);
    SceneCache cache;
    SweepOutcome first =
        pool.runWithPolicy(smallJobs(ccs), policy, &cache);
    ASSERT_EQ(first.failureCount(), 0u);

    // Append a conflicting duplicate for job 0's key whose payload is
    // distinguishable from the genuine result.
    const std::string key0 = sweepJobKey(smallJobs(ccs)[0]);
    {
        Result<SweepJournal> j = SweepJournal::open(journal.str());
        ASSERT_TRUE(j.isOk()) << j.status().toString();
        JournalRecord dup;
        dup.key = key0;
        dup.ok = true;
        dup.attempts = 7;
        dup.result = *first.jobs[0].result;
        dup.result.counters["journal.duplicate_marker"] = 1;
        ASSERT_TRUE(j->append(dup).isOk());
    }

    policy.resume = true;
    SweepOutcome resumed =
        pool.runWithPolicy(smallJobs(ccs), policy, &cache);
    EXPECT_EQ(resumed.replayedFromJournal, 3u);
    ASSERT_TRUE(resumed.jobs[0].result.isOk());
    EXPECT_TRUE(resumed.jobs[0].fromJournal);
    // The later record — marker and all — is what replays.
    EXPECT_EQ(resumed.jobs[0].result->counters.count(
                  "journal.duplicate_marker"),
              1u);
    // Unrelated keys are untouched by the duplicate.
    ASSERT_TRUE(resumed.jobs[1].result.isOk());
    EXPECT_EQ(runReportJson(*first.jobs[1].result),
              runReportJson(*resumed.jobs[1].result));
}

TEST(SweepJournalTest, FailureRecordAfterSuccessDoesNotMaskReplay)
{
    // Conflicting records of mixed outcome: a success followed by a
    // later failure record for the same key (e.g. a re-run attempt that
    // died). Failed records never mask a durable success — resume
    // replays the ok record and the final report is byte-identical to
    // an uninterrupted sweep.
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const JournalPath journal("conflict");

    SweepRunner pool(1);
    SceneCache cache;
    const std::string reference = outcomeReport(
        smallJobs(ccs),
        pool.runWithPolicy(smallJobs(ccs), SweepPolicy{}, &cache));

    SweepPolicy policy;
    policy.journalPath = journal.str();
    SweepOutcome first =
        pool.runWithPolicy(smallJobs(ccs), policy, &cache);
    ASSERT_EQ(first.failureCount(), 0u);

    {
        Result<SweepJournal> j = SweepJournal::open(journal.str());
        ASSERT_TRUE(j.isOk()) << j.status().toString();
        JournalRecord failed;
        failed.key = sweepJobKey(smallJobs(ccs)[1]);
        failed.ok = false;
        failed.attempts = 1;
        failed.code = ErrorCode::Unavailable;
        failed.message = "fabricated post-success failure";
        ASSERT_TRUE(j->append(failed).isOk());
    }

    SweepPolicy resuming;
    resuming.journalPath = journal.str();
    resuming.resume = true;
    SweepOutcome resumed =
        pool.runWithPolicy(smallJobs(ccs), resuming, &cache);
    EXPECT_EQ(resumed.replayedFromJournal, 3u);
    EXPECT_EQ(resumed.failureCount(), 0u);
    EXPECT_EQ(outcomeReport(smallJobs(ccs), resumed), reference);
}

TEST(SweepJournalTest, DuplicateReplayIsByteIdenticalToCleanRun)
{
    // The acceptance bar for last-write-wins: duplicates of identical
    // payload (the common append-twice case) replay to a report byte-
    // identical to a sweep that never touched a journal.
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    const JournalPath journal("dup2");

    SweepRunner pool(1);
    SceneCache cache;
    const std::string reference = outcomeReport(
        smallJobs(ccs),
        pool.runWithPolicy(smallJobs(ccs), SweepPolicy{}, &cache));

    SweepPolicy policy;
    policy.journalPath = journal.str();
    ASSERT_EQ(pool.runWithPolicy(smallJobs(ccs), policy, &cache)
                  .failureCount(),
              0u);
    // Second run appends a full second copy of every record.
    ASSERT_EQ(pool.runWithPolicy(smallJobs(ccs), policy, &cache)
                  .failureCount(),
              0u);
    Result<std::vector<JournalRecord>> records =
        SweepJournal::load(journal.str());
    ASSERT_TRUE(records.isOk());
    EXPECT_EQ(records->size(), 6u); // 3 jobs x 2 appends

    policy.resume = true;
    SweepOutcome resumed =
        pool.runWithPolicy(smallJobs(ccs), policy, &cache);
    EXPECT_EQ(resumed.replayedFromJournal, 3u);
    EXPECT_EQ(outcomeReport(smallJobs(ccs), resumed), reference);
}
