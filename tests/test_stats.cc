/**
 * @file
 * Tests for the statistics registry.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace libra;

TEST(Counter, BasicOps)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    c.inc();
    c.inc(10);
    EXPECT_EQ(c.value(), 16u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.set(99);
    EXPECT_EQ(c.value(), 99u);
}

TEST(StatGroup, PrefixesNames)
{
    Counter hits;
    StatGroup group("cache");
    group.add("hits", &hits);
    hits += 3;
    const auto values = group.values();
    ASSERT_EQ(values.size(), 1u);
    EXPECT_EQ(values.at("cache.hits"), 3u);
}

TEST(StatGroup, ChildrenNestPrefixes)
{
    Counter a, b;
    StatGroup child("l1");
    child.add("misses", &a);
    StatGroup parent("gpu");
    parent.add("cycles", &b);
    parent.addChild(child);
    a += 7;
    b += 2;
    const auto values = parent.values();
    EXPECT_EQ(values.at("gpu.l1.misses"), 7u);
    EXPECT_EQ(values.at("gpu.cycles"), 2u);
}

TEST(StatGroup, SumMatching)
{
    Counter a, b, c;
    StatGroup group("g");
    group.add("ru0.tex.hits", &a);
    group.add("ru1.tex.hits", &b);
    group.add("ru0.tex.misses", &c);
    a += 5;
    b += 6;
    c += 100;
    EXPECT_EQ(group.sumMatching(".hits"), 11u);
    EXPECT_EQ(group.sumMatching("ru0"), 105u);
    EXPECT_EQ(group.sumMatching("nothing"), 0u);
}

TEST(StatGroup, SumMatchingEmptyGroup)
{
    StatGroup group("g");
    EXPECT_EQ(group.sumMatching("anything"), 0u);
    EXPECT_EQ(group.sumMatching(""), 0u);
    EXPECT_EQ(group.sumMatching(".hits"), 0u);
}

TEST(StatGroup, SumMatchingComponentBoundaries)
{
    // "ru1" must not absorb "ru10": matches align to dot-separated
    // component boundaries.
    Counter a, b, c, d;
    StatGroup group("gpu");
    group.add("ru1.tex.hits", &a);
    group.add("ru10.tex.hits", &b);
    group.add("ru1.tex.misses", &c);
    group.add("xru1.tex.hits", &d);
    a += 1;
    b += 10;
    c += 100;
    d += 1000;
    EXPECT_EQ(group.sumMatching("ru1"), 101u);
    EXPECT_EQ(group.sumMatching("ru10"), 10u);
    // Multi-component needles still respect both outer boundaries.
    EXPECT_EQ(group.sumMatching("ru1.tex"), 101u);
    EXPECT_EQ(group.sumMatching("tex.hits"), 1011u);
    // Anchored needles: trailing/leading dot pins that side.
    EXPECT_EQ(group.sumMatching(".hits"), 1011u);
    EXPECT_EQ(group.sumMatching("gpu."), 1111u);
    // A partial component never matches.
    EXPECT_EQ(group.sumMatching("ru"), 0u);
    EXPECT_EQ(group.sumMatching("hit"), 0u);
}

TEST(StatGroup, SumMatchingEmptyNeedleSumsEverything)
{
    Counter a, b;
    StatGroup group("g");
    group.add("a", &a);
    group.add("b", &b);
    a += 3;
    b += 4;
    EXPECT_EQ(group.sumMatching(""), 7u);
}

TEST(StatGroup, ResetAll)
{
    Counter a, b;
    StatGroup group("g");
    group.add("a", &a);
    group.add("b", &b);
    a += 1;
    b += 2;
    group.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatSnapshot, DeltaBetweenSnapshots)
{
    Counter a;
    StatGroup group("g");
    group.add("a", &a);
    a += 10;
    const StatSnapshot before(group);
    a += 32;
    const StatSnapshot after(group);
    const auto delta = before.deltaTo(after);
    EXPECT_EQ(delta.at("g.a"), 32u);
    EXPECT_EQ(before.get("g.a"), 10u);
    EXPECT_EQ(after.get("g.a"), 42u);
    EXPECT_EQ(after.get("missing"), 0u);
}

TEST(StatSnapshot, DeltaOfEmptyGroup)
{
    StatGroup group("g");
    const StatSnapshot before(group);
    const StatSnapshot after(group);
    EXPECT_TRUE(before.deltaTo(after).empty());
}

TEST(StatSnapshot, CounterResetBetweenSnapshotsClampsToZero)
{
    // A counter that went backwards (reset mid-run) must not produce a
    // wrapped-around huge delta.
    Counter a;
    StatGroup group("g");
    group.add("a", &a);
    a += 50;
    const StatSnapshot before(group);
    a.reset();
    a += 7;
    const StatSnapshot after(group);
    const auto delta = before.deltaTo(after);
    EXPECT_EQ(delta.at("g.a"), 0u);
}

TEST(StatSnapshot, CounterAddedAfterFirstSnapshot)
{
    Counter a, b;
    StatGroup group("g");
    group.add("a", &a);
    a += 1;
    const StatSnapshot before(group);
    group.add("b", &b);
    b += 9;
    const StatSnapshot after(group);
    const auto delta = before.deltaTo(after);
    // A stat unknown to the earlier snapshot counts from zero.
    EXPECT_EQ(delta.at("g.b"), 9u);
    EXPECT_EQ(delta.at("g.a"), 0u);
}

TEST(StatGroupDeathTest, NullCounterPanics)
{
    StatGroup group("g");
    EXPECT_DEATH(group.add("x", nullptr), "null counter");
}
