/**
 * @file
 * Tests for GpuConfig::validate(): every shipped preset must pass, and
 * each class of misconfiguration must be rejected with InvalidArgument
 * before a simulation is built on top of it.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"

using namespace libra;

namespace
{

void
expectInvalid(const GpuConfig &cfg, const char *what)
{
    const Status st = cfg.validate();
    EXPECT_FALSE(st.isOk()) << what;
    EXPECT_EQ(st.code(), ErrorCode::InvalidArgument) << what;
    EXPECT_FALSE(st.message().empty()) << what;
}

} // namespace

TEST(GpuConfigValidate, ShippedPresetsAreValid)
{
    EXPECT_TRUE(GpuConfig().validate().isOk());
    EXPECT_TRUE(GpuConfig::baseline(8).validate().isOk());
    EXPECT_TRUE(GpuConfig::ptr(2, 4).validate().isOk());
    EXPECT_TRUE(GpuConfig::libra(2, 4).validate().isOk());
    EXPECT_TRUE(GpuConfig::libra(4, 2).validate().isOk());
    EXPECT_TRUE(GpuConfig::staticSupertile(8).validate().isOk());
}

TEST(GpuConfigValidate, BenchResolutionsAreValid)
{
    for (const auto [w, h] : {std::pair<std::uint32_t, std::uint32_t>
                              {960, 544}, {1920, 1080}, {512, 288}}) {
        GpuConfig cfg = GpuConfig::libra(2, 4);
        cfg.screenWidth = w;
        cfg.screenHeight = h;
        EXPECT_TRUE(cfg.validate().isOk()) << w << "x" << h;
    }
}

TEST(GpuConfigValidate, RejectsBadScreen)
{
    GpuConfig cfg;
    cfg.screenWidth = 0;
    expectInvalid(cfg, "zero width");

    cfg = GpuConfig();
    cfg.screenHeight = 0;
    expectInvalid(cfg, "zero height");

    cfg = GpuConfig();
    cfg.screenWidth = 1u << 20;
    expectInvalid(cfg, "absurd width");
}

TEST(GpuConfigValidate, RejectsBadTileSize)
{
    GpuConfig cfg;
    cfg.tileSize = 0;
    expectInvalid(cfg, "zero tile");

    cfg = GpuConfig();
    cfg.tileSize = 4096;
    expectInvalid(cfg, "tile above the hard cap");

    // A tile larger than the whole screen in both dimensions can never
    // be filled.
    cfg = GpuConfig();
    cfg.screenWidth = 128;
    cfg.screenHeight = 128;
    cfg.tileSize = 256;
    expectInvalid(cfg, "tile exceeds screen");

    // But a tile covering the screen in one dimension only is a legal
    // (single-column) grid.
    cfg = GpuConfig();
    cfg.screenWidth = 1920;
    cfg.screenHeight = 32;
    cfg.tileSize = 32;
    EXPECT_TRUE(cfg.validate().isOk());
}

TEST(GpuConfigValidate, RejectsBadOrganization)
{
    GpuConfig cfg;
    cfg.rasterUnits = 0;
    expectInvalid(cfg, "zero RUs");

    cfg = GpuConfig();
    cfg.rasterUnits = 1000;
    expectInvalid(cfg, "absurd RU count");

    cfg = GpuConfig();
    cfg.coresPerRu = 0;
    expectInvalid(cfg, "zero cores");

    cfg = GpuConfig();
    cfg.warpsPerCore = 0;
    expectInvalid(cfg, "zero warp slots");

    // A warp wider than a whole tile can never be assembled.
    cfg = GpuConfig();
    cfg.tileSize = 8;
    cfg.warpQuads = 32;
    expectInvalid(cfg, "warp exceeds tile");
}

TEST(GpuConfigValidate, RejectsBadThroughputsAndFifo)
{
    GpuConfig cfg;
    cfg.rasterQuadsPerCycle = 0;
    expectInvalid(cfg, "zero raster throughput");

    cfg = GpuConfig();
    cfg.vertexProcessors = 0;
    expectInvalid(cfg, "zero vertex processors");

    cfg = GpuConfig();
    cfg.fifoDepth = 1;
    expectInvalid(cfg, "FIFO too shallow");
}

TEST(GpuConfigValidate, RejectsBadCacheGeometry)
{
    GpuConfig cfg;
    cfg.textureCache.sizeBytes = 0;
    expectInvalid(cfg, "zero cache size");

    cfg = GpuConfig();
    cfg.textureCache.lineBytes = 48; // not a power of two
    expectInvalid(cfg, "non-pow2 line");

    cfg = GpuConfig();
    cfg.l2.sizeBytes = 100000; // not ways x line aligned
    expectInvalid(cfg, "unaligned cache size");

    cfg = GpuConfig();
    cfg.tileCache.mshrs = 0;
    expectInvalid(cfg, "zero MSHRs");
}

TEST(GpuConfigValidate, RejectsBadDramGeometry)
{
    GpuConfig cfg;
    cfg.dram.channels = 0;
    expectInvalid(cfg, "zero channels");

    cfg = GpuConfig();
    cfg.dram.rowBytes = cfg.dram.lineBytes + 1;
    expectInvalid(cfg, "row not line-aligned");

    cfg = GpuConfig();
    cfg.dram.writeLowWatermark = cfg.dram.writeHighWatermark + 1;
    expectInvalid(cfg, "inverted watermarks");
}

TEST(GpuConfigValidate, RejectsBadScheduling)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.sched.hotRasterUnits = 2; // all RUs hot: no cold end left
    expectInvalid(cfg, "hot RUs = all RUs");

    cfg = GpuConfig::libra(2, 4);
    cfg.sched.hotRasterUnits = 0;
    expectInvalid(cfg, "zero hot RUs");

    // With a single RU the hot/cold split is unused: do not reject.
    cfg = GpuConfig::baseline(8);
    cfg.sched.hotRasterUnits = 1;
    EXPECT_TRUE(cfg.validate().isOk());

    cfg = GpuConfig::libra(2, 4);
    cfg.sched.minSupertileSize = 8;
    cfg.sched.maxSupertileSize = 4;
    expectInvalid(cfg, "empty supertile range");
}

TEST(GpuConfigValidate, RejectsBadCompressionRatio)
{
    GpuConfig cfg;
    cfg.fbCompressionRatio = 0.0;
    expectInvalid(cfg, "zero ratio");

    cfg = GpuConfig();
    cfg.fbCompressionRatio = 1.5;
    expectInvalid(cfg, "ratio above 1");
}
