/**
 * @file
 * Tests for the InvariantChecker: the unit-level conservation laws, the
 * Gpu wiring behind GpuConfig::checkInvariants, and fault injection —
 * an intentionally dropped hit increment must surface as a failing
 * InvariantViolation Status, never as an abort.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "check/invariant_checker.hh"
#include "gpu/gpu.hh"
#include "gpu/runner.hh"
#include "sim/event_queue.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 256;
constexpr std::uint32_t H = 128;

GpuConfig
checkedConfig(GpuConfig cfg)
{
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    cfg.checkInvariants = true;
    return cfg;
}

} // namespace

TEST(InvariantChecker, StartsCleanAndCollectsViolations)
{
    InvariantChecker checker;
    EXPECT_TRUE(checker.ok());
    EXPECT_TRUE(checker.status().isOk());

    checker.violation("first: ", 1);
    checker.violation("second");
    EXPECT_FALSE(checker.ok());
    ASSERT_EQ(checker.violations().size(), 2u);
    EXPECT_EQ(checker.violations()[0], "first: 1");

    const Status st = checker.status();
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), ErrorCode::InvariantViolation);
    // Every message is carried, joined into one Status.
    EXPECT_NE(st.message().find("first: 1"), std::string::npos);
    EXPECT_NE(st.message().find("second"), std::string::npos);

    checker.clear();
    EXPECT_TRUE(checker.ok());
    EXPECT_TRUE(checker.status().isOk());
}

TEST(InvariantChecker, DramAttributionLaw)
{
    InvariantChecker checker;
    checker.checkDramAttribution({1, 2, 3}, 6);
    EXPECT_TRUE(checker.ok());
    checker.checkDramAttribution({1, 2, 3}, 7);
    EXPECT_FALSE(checker.ok());
}

TEST(InvariantChecker, TileCoverageLaw)
{
    InvariantChecker checker;
    checker.checkTileCoverage({1, 1, 1});
    EXPECT_TRUE(checker.ok());
    checker.checkTileCoverage({1, 0, 2});
    // Both the missed tile and the double-flushed tile are reported.
    EXPECT_EQ(checker.violations().size(), 2u);
}

TEST(InvariantChecker, TileCoverageLawCountsSkippedTiles)
{
    // Under Rendering Elimination the law generalizes to
    // flushed + skipped == 1: a skipped tile is covered, a tile both
    // flushed and skipped (or neither) is a violation.
    InvariantChecker checker;
    checker.checkTileCoverage({1, 0, 1}, {0, 1, 0});
    EXPECT_TRUE(checker.ok());

    checker.checkTileCoverage({1, 0}, {1, 0});
    EXPECT_EQ(checker.violations().size(), 2u);

    // A skip vector of mismatched size is itself a violation, never
    // an out-of-bounds read.
    InvariantChecker sized;
    sized.checkTileCoverage({1, 1}, {0});
    EXPECT_FALSE(sized.ok());
}

TEST(InvariantChecker, PhasePartitionLaw)
{
    InvariantChecker checker;
    std::array<std::uint64_t, kNumRuPhases> phases{};
    phases[0] = 70;
    phases[1] = 30;
    checker.checkPhasePartition(0, phases, 100);
    EXPECT_TRUE(checker.ok());
    checker.checkPhasePartition(1, phases, 99);
    EXPECT_FALSE(checker.ok());
}

TEST(InvariantChecker, EnergyLawToleratesRoundingOnly)
{
    InvariantChecker checker;
    EnergyBreakdown e;
    e.coreMj = 1.0;
    e.cacheMj = 2.0;
    e.dramMj = 3.0;
    e.fixedFunctionMj = 0.5;
    e.staticMj = 4.0;
    e.totalMj = 10.5;
    checker.checkEnergyBreakdown(e);
    EXPECT_TRUE(checker.ok());

    e.totalMj = 10.6; // far beyond rounding
    checker.checkEnergyBreakdown(e);
    EXPECT_FALSE(checker.ok());
}

TEST(InvariantChecker, CacheConservationLaw)
{
    // Drive a real cache with mixed hit/miss/coalesced traffic: the
    // conservation law must hold at the quiescent point.
    EventQueue queue;
    IdealMemory mem(queue, 50);
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.ways = 4;
    cfg.lineBytes = 64;
    cfg.mshrs = 4;
    Cache cache(queue, cfg, mem);

    for (int i = 0; i < 3; ++i)
        cache.access(MemReq{0x1000, 4, false, TrafficClass::Texture,
                            invalidId, nullptr});
    queue.runUntil();
    cache.access(MemReq{0x1000, 4, false, TrafficClass::Texture,
                        invalidId, nullptr});
    queue.runUntil();

    InvariantChecker checker;
    checker.checkCacheConservation(cache);
    EXPECT_TRUE(checker.ok()) << checker.status().toString();

    // Injecting the accounting bug breaks the law.
    cache.testDropHitAccounting = true;
    cache.access(MemReq{0x1000, 4, false, TrafficClass::Texture,
                        invalidId, nullptr});
    queue.runUntil();
    checker.checkCacheConservation(cache);
    ASSERT_FALSE(checker.ok());
    EXPECT_EQ(checker.status().code(), ErrorCode::InvariantViolation);
}

TEST(Invariants, CleanRunPassesEveryLaw)
{
    // A real multi-frame simulation with every law armed must succeed
    // for the baseline, PTR and full-LIBRA organizations.
    const Scene scene(findBenchmark("CCS"), W, H);
    for (const GpuConfig &base :
         {GpuConfig::baseline(8), GpuConfig::ptr(2, 4),
          GpuConfig::libra(2, 4)}) {
        const Result<RunResult> r =
            runBenchmark(scene, checkedConfig(base), 3);
        ASSERT_TRUE(r.isOk()) << r.status().toString();
        EXPECT_EQ(r->frames.size(), 3u);
    }
}

TEST(Invariants, CheckingNeverPerturbsTheSimulation)
{
    // The checker is observational: armed vs unarmed runs must be
    // counter-identical.
    const Scene scene(findBenchmark("CCS"), W, H);
    GpuConfig off = checkedConfig(GpuConfig::libra(2, 4));
    off.checkInvariants = false;
    const Result<RunResult> checked =
        runBenchmark(scene, checkedConfig(GpuConfig::libra(2, 4)), 2);
    const Result<RunResult> plain = runBenchmark(scene, off, 2);
    ASSERT_TRUE(checked.isOk());
    ASSERT_TRUE(plain.isOk());
    EXPECT_EQ(checked->counters, plain->counters);
}

TEST(Invariants, InjectedAccountingErrorIsCaughtAsStatus)
{
    // The acceptance criterion: drop L2 hit increments under the test
    // hook and the frame must fail with InvariantViolation — reported
    // as a recoverable Status, not an abort, and not a wedged GPU.
    const Scene scene(findBenchmark("CCS"), W, H);
    Gpu gpu(checkedConfig(GpuConfig::libra(2, 4)));
    gpu.testL2Cache().testDropHitAccounting = true;

    const Result<FrameStats> fs =
        gpu.tryRenderFrame(scene.frame(0), scene.textures());
    ASSERT_FALSE(fs.isOk());
    EXPECT_EQ(fs.status().code(), ErrorCode::InvariantViolation);
    EXPECT_NE(fs.status().message().find("l2"), std::string::npos)
        << fs.status().message();
    // Observational failure: the simulation state itself is consistent,
    // so the GPU is not wedged (unlike a watchdog error).
    EXPECT_FALSE(gpu.wedged());
}

TEST(Invariants, RunnerPropagatesViolationAsError)
{
    // Through runBenchmark, a violation is a run-fatal error (it is a
    // model bug, not a transient), unlike watchdog skips.
    GpuConfig cfg = checkedConfig(GpuConfig::ptr(2, 4));
    const Scene scene(findBenchmark("CCS"), W, H);
    Gpu gpu(cfg);
    gpu.testL2Cache().testDropHitAccounting = true;
    Result<FrameStats> first =
        gpu.tryRenderFrame(scene.frame(0), scene.textures());
    ASSERT_FALSE(first.isOk());

    // A later frame on the same (unwedged) GPU still reports the
    // still-broken cumulative law instead of crashing.
    Result<FrameStats> second =
        gpu.tryRenderFrame(scene.frame(1), scene.textures());
    ASSERT_FALSE(second.isOk());
    EXPECT_EQ(second.status().code(), ErrorCode::InvariantViolation);
}
