/**
 * @file
 * Exporter validity tests for the TraceSink: the chrome-trace JSON it
 * emits must parse with the in-tree parser, every synchronous B/E pair
 * must balance per lane, every async b/e pair must balance per
 * (name, id), and timestamps must be non-decreasing.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/trace_sink.hh"
#include "trace/json.hh"

using namespace libra;

namespace
{

/**
 * Minimal chrome-trace checker. Walks a parsed document and verifies
 * the structural invariants every exporter output must satisfy; used
 * by both the unit tests here and the whole-GPU exporter test.
 */
struct TraceCheck
{
    std::string error; //!< empty = valid

    static TraceCheck
    run(const JsonValue &doc)
    {
        TraceCheck c;
        const JsonValue *events = doc.find("traceEvents");
        if (events == nullptr || !events->isArray()) {
            c.error = "missing traceEvents array";
            return c;
        }
        std::map<std::uint64_t, int> sync_depth; //!< per tid
        std::map<std::string, int> async_open;   //!< per name/id key
        double last_ts = 0.0;
        bool have_ts = false;
        for (const JsonValue &e : events->items) {
            const JsonValue *ph = e.find("ph");
            if (ph == nullptr || !ph->isString()) {
                c.error = "event without ph";
                return c;
            }
            if (ph->str == "M")
                continue; // metadata carries no timestamp
            const JsonValue *ts = e.find("ts");
            const JsonValue *tid = e.find("tid");
            if (ts == nullptr || !ts->isNumber() || tid == nullptr) {
                c.error = "event without ts/tid";
                return c;
            }
            if (have_ts && ts->number < last_ts) {
                c.error = "timestamps decrease";
                return c;
            }
            last_ts = ts->number;
            have_ts = true;

            const auto tid_v =
                static_cast<std::uint64_t>(tid->number);
            if (ph->str == "B") {
                ++sync_depth[tid_v];
            } else if (ph->str == "E") {
                if (--sync_depth[tid_v] < 0) {
                    c.error = "E without matching B";
                    return c;
                }
            } else if (ph->str == "b" || ph->str == "e") {
                const JsonValue *name = e.find("name");
                const JsonValue *id = e.find("id");
                if (name == nullptr || id == nullptr) {
                    c.error = "async event without name/id";
                    return c;
                }
                const std::string key =
                    name->str + "#"
                    + std::to_string(
                          static_cast<std::uint64_t>(id->number));
                if (ph->str == "b") {
                    ++async_open[key];
                } else if (--async_open[key] < 0) {
                    c.error = "async end without begin: " + key;
                    return c;
                }
            } else if (ph->str != "C" && ph->str != "i") {
                c.error = "unknown phase " + ph->str;
                return c;
            }
        }
        for (const auto &[tid_v, depth] : sync_depth) {
            if (depth != 0) {
                c.error = "unbalanced B/E on tid "
                    + std::to_string(tid_v);
                return c;
            }
        }
        for (const auto &[key, open] : async_open) {
            if (open != 0) {
                c.error = "unclosed async span " + key;
                return c;
            }
        }
        return c;
    }
};

} // namespace

TEST(TraceSink, ExportsValidBalancedTrace)
{
    TraceSink sink;
    TraceSink::Lane &a = sink.lane("a");
    TraceSink::Lane &b = sink.lane("b");
    const std::uint32_t frame = sink.nameId("frame");
    const std::uint32_t tile = sink.nameId("tile");
    const std::uint32_t bw = sink.nameId("bw");

    a.begin(frame, 0, 7);
    b.asyncBegin(tile, 1, 2);
    b.asyncBegin(tile, 2, 3); // overlapping tiles are legal
    b.counter(bw, 5, 42);
    b.asyncEnd(tile, 1, 8);
    b.asyncEnd(tile, 2, 9);
    a.end(10);

    const auto doc = parseJson(sink.chromeTraceJson());
    ASSERT_TRUE(doc.isOk()) << doc.status().toString();
    const TraceCheck check = TraceCheck::run(*doc);
    EXPECT_EQ(check.error, "");

    // Lane metadata names both pseudo-threads.
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    int meta = 0;
    for (const JsonValue &e : events->items) {
        if (e.find("ph")->str == "M")
            ++meta;
    }
    EXPECT_EQ(meta, 2);
    // 2 metadata + 7 recorded events.
    EXPECT_EQ(events->items.size(), 9u);
    EXPECT_EQ(sink.eventCount(), 7u);
}

TEST(TraceSink, CheckerCatchesBrokenTraces)
{
    // The checker itself must reject what it claims to reject.
    const auto unbalanced = parseJson(
        "{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"x\",\"ts\":1,"
        "\"pid\":0,\"tid\":0}]}");
    ASSERT_TRUE(unbalanced.isOk());
    EXPECT_NE(TraceCheck::run(*unbalanced).error, "");

    const auto decreasing = parseJson(
        "{\"traceEvents\":["
        "{\"ph\":\"i\",\"name\":\"x\",\"s\":\"t\",\"ts\":5,\"pid\":0,"
        "\"tid\":0},"
        "{\"ph\":\"i\",\"name\":\"x\",\"s\":\"t\",\"ts\":4,\"pid\":0,"
        "\"tid\":0}]}");
    ASSERT_TRUE(decreasing.isOk());
    EXPECT_EQ(TraceCheck::run(*decreasing).error,
              "timestamps decrease");

    const auto stray_end = parseJson(
        "{\"traceEvents\":[{\"ph\":\"e\",\"name\":\"t\",\"cat\":\"c\","
        "\"id\":3,\"ts\":1,\"pid\":0,\"tid\":0}]}");
    ASSERT_TRUE(stray_end.isOk());
    EXPECT_NE(TraceCheck::run(*stray_end).error, "");
}

TEST(TraceSink, ExportIsSortedAcrossLanes)
{
    // Events appended out of global order (each lane is locally
    // ordered) come out merged by tick.
    TraceSink sink;
    TraceSink::Lane &a = sink.lane("a");
    TraceSink::Lane &b = sink.lane("b");
    const std::uint32_t n = sink.nameId("x");
    a.instant(n, 10);
    a.instant(n, 30);
    b.instant(n, 5);
    b.instant(n, 20);

    const auto doc = parseJson(sink.chromeTraceJson());
    ASSERT_TRUE(doc.isOk());
    std::vector<double> ts;
    for (const JsonValue &e : doc->find("traceEvents")->items) {
        if (e.find("ph")->str != "M")
            ts.push_back(e.find("ts")->number);
    }
    EXPECT_EQ(ts, (std::vector<double>{5, 10, 20, 30}));
}

TEST(TraceSink, DisabledSinkDropsEvents)
{
    TraceSink sink;
    TraceSink::Lane &a = sink.lane("a");
    const std::uint32_t n = sink.nameId("x");
    sink.setEnabled(false);
    a.instant(n, 1);
    a.begin(n, 2);
    a.end(3);
    EXPECT_EQ(sink.eventCount(), 0u);
    sink.setEnabled(true);
    a.instant(n, 4);
    EXPECT_EQ(sink.eventCount(), 1u);
}

TEST(TraceSink, LanesAndNamesAreInterned)
{
    TraceSink sink;
    TraceSink::Lane &a1 = sink.lane("a");
    TraceSink::Lane &a2 = sink.lane("a");
    EXPECT_EQ(&a1, &a2);
    EXPECT_EQ(sink.nameId("x"), sink.nameId("x"));
    EXPECT_NE(sink.nameId("x"), sink.nameId("y"));
}

TEST(TraceSink, ExportIsDeterministic)
{
    const auto build = [] {
        TraceSink sink;
        TraceSink::Lane &a = sink.lane("a");
        TraceSink::Lane &b = sink.lane("b");
        const std::uint32_t s = sink.nameId("span");
        a.begin(s, 1, 2);
        b.counter(sink.nameId("c"), 1, 3);
        a.end(4);
        return sink.chromeTraceJson();
    };
    EXPECT_EQ(build(), build());
}

TEST(IntervalSampler, BucketsByInterval)
{
    IntervalSampler s;
    s.reset(1000, 100);
    s.record(1000);
    s.record(1099);
    s.record(1100);
    s.record(1550, 4);
    s.record(900); // before the origin: dropped
    const auto &buckets = s.samples();
    ASSERT_EQ(buckets.size(), 6u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[5], 4u);
    EXPECT_EQ(s.intervalTicks(), 100u);
    EXPECT_EQ(s.originTick(), 1000u);
}

TEST(IntervalSampler, ResetClearsAndRebases)
{
    IntervalSampler s;
    s.reset(0, 10);
    s.record(5);
    s.reset(100, 50);
    EXPECT_TRUE(s.samples().empty());
    s.record(149);
    ASSERT_EQ(s.samples().size(), 1u);
    EXPECT_EQ(s.samples()[0], 1u);
}

TEST(IntervalSampler, FlushToEmitsCounterEvents)
{
    IntervalSampler s;
    s.reset(200, 100);
    s.record(210);
    s.record(350, 2);

    TraceSink sink;
    TraceSink::Lane &lane = sink.lane("dram");
    s.flushTo(lane, sink.nameId("bw"));
    ASSERT_EQ(sink.eventCount(), 2u);
    const auto doc = parseJson(sink.chromeTraceJson());
    ASSERT_TRUE(doc.isOk());
    std::vector<std::pair<double, double>> samples;
    for (const JsonValue &e : doc->find("traceEvents")->items) {
        if (e.find("ph")->str == "C") {
            samples.emplace_back(
                e.find("ts")->number,
                e.find("args")->find("value")->number);
        }
    }
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0], (std::pair<double, double>{200, 1}));
    EXPECT_EQ(samples[1], (std::pair<double, double>{300, 2}));
}
