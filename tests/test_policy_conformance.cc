/**
 * @file
 * Policy-conformance harness: every entry of the policy registry must
 * satisfy the same behavioral contract (DESIGN.md §13). The suite is
 * parameterized over the registry, so registering a new policy
 * automatically subjects it to all four legs:
 *
 *  (a) the invariant checker stays clean (conservation laws, exactly-
 *      once tile coverage — skipped tiles included);
 *  (b) running the same configuration twice yields byte-identical
 *      counter dumps (no hidden global state in the policy object);
 *  (c) one simulation thread and four produce identical counters (the
 *      policy makes decisions only on the shared event domain);
 *  (d) snapshotting at frame k and restoring equals the uninterrupted
 *      run (exportState/importState capture the policy's whole state).
 *
 * The scene is ChE (Chess Elite): a UI-heavy title whose frames keep
 * a nonzero set of tiles bit-stable, so the Rendering Elimination
 * entries exercise real skips — leg (d) in particular proves the RE
 * signature tables survive a snapshot round-trip, because a restored
 * run that lost them would re-render tiles the cold run skipped and
 * diverge in every downstream counter.
 *
 * The file also pins the scheduler-phase attribution contract
 * (rankingCycles belongs to the policy layer: a policy that ranks
 * nothing reports zero, every frame) and the observable Rendering
 * Elimination behavior the EXPERIMENTS.md ablation relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/policy_registry.hh"
#include "gpu/runner.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 320;
constexpr std::uint32_t H = 192;
constexpr std::uint32_t kFrames = 4;
constexpr std::uint32_t kCheckpointFrame = 2;

/** The conformance machine: the paper's 2x4 PTR shape with the named
 *  policy applied and every conservation law armed. */
GpuConfig
policyConfig(const std::string &name)
{
    GpuConfig cfg = GpuConfig::ptr(2, 4);
    const Status st = applyPolicy(cfg, name);
    EXPECT_TRUE(st.isOk()) << st.toString();
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    cfg.checkInvariants = true;
    return cfg;
}

/** Shared scene: regenerating geometry per run would dominate. */
const Scene &
conformanceScene()
{
    static const Scene scene(findBenchmark("ChE"), W, H);
    return scene;
}

RunResult
run(const GpuConfig &cfg, std::uint32_t frames = kFrames)
{
    Result<RunResult> r = runBenchmark(conformanceScene(), cfg, frames);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    return r.isOk() ? std::move(*r) : RunResult{};
}

/** Frame-level fingerprint: cycle counts catch timing divergence that
 *  cumulative counters could mask by coincidence. */
std::vector<std::uint64_t>
frameCycles(const RunResult &r)
{
    std::vector<std::uint64_t> cycles;
    for (const FrameStats &fs : r.frames)
        cycles.push_back(fs.totalCycles);
    return cycles;
}

class PolicyConformance
    : public ::testing::TestWithParam<std::string>
{
};

std::vector<std::string>
registryNames()
{
    std::vector<std::string> names;
    for (const PolicyInfo &p : policyRegistry())
        names.push_back(p.name);
    return names;
}

} // namespace

// Legs (a) + (b): invariants clean, and two runs of the same config
// are byte-identical in counters and per-frame cycles.
TEST_P(PolicyConformance, CleanAndRepeatable)
{
    const GpuConfig cfg = policyConfig(GetParam());
    const RunResult first = run(cfg);
    const RunResult second = run(cfg);
    ASSERT_FALSE(first.frames.empty());
    EXPECT_EQ(first.counters, second.counters);
    EXPECT_EQ(frameCycles(first), frameCycles(second));
}

// Leg (c): the sharded engine at 4 threads matches itself at 1 thread.
// Policy decisions and RE skips happen at scheduler handout on the
// shared event domain, so thread count must be invisible.
TEST_P(PolicyConformance, ShardCountInvisible)
{
    GpuConfig one = policyConfig(GetParam());
    one.simThreads = 1;
    GpuConfig four = one;
    four.simThreads = 4;
    const RunResult a = run(one);
    const RunResult b = run(four);
    ASSERT_FALSE(a.frames.empty());
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(frameCycles(a), frameCycles(b));
}

// Leg (d): snapshot at frame k, fork, finish — identical to the
// uninterrupted run. Exercises the policy's exportState/importState
// (adaptive controller state, RE signature tables).
TEST_P(PolicyConformance, SnapshotRestoreEqualsColdRun)
{
    const GpuConfig cfg = policyConfig(GetParam());
    const RunResult cold = run(cfg);
    ASSERT_EQ(cold.frames.size(), kFrames);

    CheckpointPlan capture;
    capture.captureAfter =
        std::make_shared<std::vector<std::uint8_t>>();
    capture.captureAfterFrames = kCheckpointFrame;
    Result<RunResult> prefix = runBenchmark(
        conformanceScene(), cfg, kCheckpointFrame, 0, capture);
    ASSERT_TRUE(prefix.isOk()) << prefix.status().toString();
    ASSERT_FALSE(capture.captureAfter->empty());

    CheckpointPlan fork;
    fork.warmStart = capture.captureAfter;
    Result<RunResult> forked =
        runBenchmark(conformanceScene(), cfg, kFrames, 0, fork);
    ASSERT_TRUE(forked.isOk()) << forked.status().toString();

    EXPECT_EQ(cold.counters, forked->counters);
    EXPECT_EQ(frameCycles(cold), frameCycles(*forked));
}

INSTANTIATE_TEST_SUITE_P(
    Registry, PolicyConformance, ::testing::ValuesIn(registryNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// Phase attribution: rankingCycles belongs to the policy layer.
// ---------------------------------------------------------------------

// A policy that never ranks must report zero ranking cycles on every
// frame. The FramePlan is rebuilt by value each frame, so a stale
// value from a previous policy or frame cannot leak in.
TEST(PolicyPhaseAttribution, NonRankingPoliciesReportZero)
{
    for (const char *name : {"zorder", "scanline", "supertile", "re"}) {
        const RunResult r = run(policyConfig(name));
        ASSERT_FALSE(r.frames.empty()) << name;
        for (const FrameStats &fs : r.frames)
            EXPECT_EQ(fs.rankingCycles, 0u)
                << name << " frame " << fs.frameIndex;
    }
}

// The temperature policy ranks on every frame that has feedback:
// frame 0 has none (zero cycles), every later frame pays the
// TemperatureTable's modeled hardware cost.
TEST(PolicyPhaseAttribution, TemperatureRanksOnceFeedbackExists)
{
    const RunResult r = run(policyConfig("temperature"));
    ASSERT_EQ(r.frames.size(), kFrames);
    EXPECT_EQ(r.frames[0].rankingCycles, 0u);
    for (std::size_t f = 1; f < r.frames.size(); ++f)
        EXPECT_GT(r.frames[f].rankingCycles, 0u) << "frame " << f;
}

// ---------------------------------------------------------------------
// Rendering Elimination behavior pins (EXPERIMENTS.md ablation).
// ---------------------------------------------------------------------

namespace
{

/** RE behavior runs on a larger screen where ChE keeps ~1/3 of its
 *  tiles bit-stable frame over frame (the skip signal scales with
 *  resolution: more tiles -> more tiles no moving sprite touches). */
RunResult
runReBehavior(const char *policy_name)
{
    GpuConfig cfg = GpuConfig::ptr(2, 4);
    const Status st = applyPolicy(cfg, policy_name);
    EXPECT_TRUE(st.isOk()) << st.toString();
    cfg.screenWidth = 512;
    cfg.screenHeight = 288;
    cfg.checkInvariants = true;
    static const Scene scene(findBenchmark("ChE"), 512, 288);
    Result<RunResult> r = runBenchmark(scene, cfg, 3);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    return r.isOk() ? std::move(*r) : RunResult{};
}

} // namespace

TEST(RenderingElimination, SkipsStableTilesAfterFirstFrame)
{
    const RunResult r = runReBehavior("re");
    ASSERT_EQ(r.frames.size(), 3u);

    // Frame 0 has no previous signatures: nothing may be skipped.
    EXPECT_EQ(r.frames[0].reTilesSkipped, 0u);

    // ChE keeps a large stable region; later frames must skip.
    std::uint64_t total = 0;
    for (const FrameStats &fs : r.frames) {
        total += fs.reTilesSkipped;
        // The per-tile mask agrees with the scalar count.
        std::uint64_t marked = 0;
        for (const std::uint8_t s : fs.reSkippedTiles)
            marked += s;
        EXPECT_EQ(marked, fs.reTilesSkipped)
            << "frame " << fs.frameIndex;
    }
    EXPECT_GT(r.frames[1].reTilesSkipped, 0u);
    EXPECT_GT(r.frames[2].reTilesSkipped, 0u);

    // The cumulative counter is the sum of the per-frame counts, and
    // the weak/strong aliasing guard sees no collisions on real
    // content.
    const auto skipped = r.counters.find("gpu.re.tiles_skipped");
    ASSERT_NE(skipped, r.counters.end());
    EXPECT_EQ(skipped->second, total);
    const auto collisions =
        r.counters.find("gpu.re.signature_collisions");
    ASSERT_NE(collisions, r.counters.end());
    EXPECT_EQ(collisions->second, 0u);
}

TEST(RenderingElimination, SkippingSavesCyclesAndDram)
{
    const RunResult off = runReBehavior("zorder");
    const RunResult on = runReBehavior("re");
    ASSERT_EQ(off.frames.size(), 3u);
    ASSERT_EQ(on.frames.size(), 3u);

    // Frame 0 renders everything under both configs.
    EXPECT_EQ(off.frames[0].totalCycles, on.frames[0].totalCycles);

    // Steady frames skip a third of the screen: strictly cheaper.
    for (std::size_t f = 1; f < 3; ++f) {
        EXPECT_LT(on.frames[f].totalCycles, off.frames[f].totalCycles)
            << "frame " << f;
        EXPECT_LT(on.frames[f].dramWrites, off.frames[f].dramWrites)
            << "frame " << f;
    }
}

// RE-off configurations must not even register the re.* counters —
// the golden counter dump (test_perf_contracts) depends on the
// counter tree being exactly the pre-RE tree when the flag is off.
TEST(RenderingElimination, CountersAbsentWhenDisabled)
{
    const RunResult r = run(policyConfig("zorder"));
    ASSERT_FALSE(r.counters.empty());
    for (const auto &[name, value] : r.counters)
        EXPECT_EQ(name.find("re."), std::string::npos) << name;
}

// ---------------------------------------------------------------------
// Registry hygiene.
// ---------------------------------------------------------------------

TEST(PolicyRegistry, NamesAreUniqueAndRoundTrip)
{
    std::vector<std::string> seen;
    for (const PolicyInfo &p : policyRegistry()) {
        for (const std::string &other : seen)
            EXPECT_NE(other, p.name);
        seen.push_back(p.name);

        // findPolicy and applyPolicy agree with the entry.
        const PolicyInfo *found = findPolicy(p.name);
        ASSERT_NE(found, nullptr) << p.name;
        EXPECT_EQ(found->sched, p.sched);
        EXPECT_EQ(found->renderingElimination, p.renderingElimination);

        GpuConfig cfg = GpuConfig::ptr(2, 4);
        ASSERT_TRUE(applyPolicy(cfg, p.name).isOk());
        EXPECT_EQ(cfg.sched.policy, p.sched);
        EXPECT_EQ(cfg.renderingElimination, p.renderingElimination);
        EXPECT_STREQ(policyNameFor(cfg), p.name);
    }
    EXPECT_GE(seen.size(), 7u);
}

TEST(PolicyRegistry, UnknownNameIsAnAttributableError)
{
    GpuConfig cfg = GpuConfig::ptr(2, 4);
    const Status st = applyPolicy(cfg, "no-such-policy");
    ASSERT_FALSE(st.isOk());
    // The error names the registered policies so a CLI user can
    // self-serve.
    EXPECT_NE(st.toString().find("zorder"), std::string::npos);
    EXPECT_EQ(findPolicy("no-such-policy"), nullptr);
}
