/**
 * @file
 * Unit and property tests for the non-blocking cache model.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "cache/cache.hh"
#include "cache/mem_system.hh"
#include "check/invariant_checker.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

using namespace libra;

namespace
{

/** Memory that records every request it receives. */
class RecordingMemory : public MemSink
{
  public:
    RecordingMemory(EventQueue &eq, Tick latency)
        : queue(eq), lat(latency)
    {}

    void
    access(MemReq req) override
    {
        reads += !req.write;
        writes += req.write;
        addrs.push_back(req.addr);
        if (req.onComplete) {
            const Tick done = queue.now() + lat;
            auto cb = std::move(req.onComplete);
            queue.schedule(done, [cb = std::move(cb), done]() mutable {
                cb(done);
            });
        }
    }

    EventQueue &queue;
    Tick lat;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::vector<Addr> addrs;
};

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 1024; // 16 lines
    cfg.ways = 4;         // 4 sets
    cfg.lineBytes = 64;
    cfg.hitLatency = 2;
    cfg.mshrs = 4;
    cfg.portsPerCycle = 1;
    return cfg;
}

/** Functional set-associative LRU reference model. */
class RefCache
{
  public:
    RefCache(std::uint32_t sets, std::uint32_t ways)
        : numSets(sets), numWays(ways), lru(sets)
    {}

    /** @return true on hit; updates state like the real cache. */
    bool
    touch(Addr line)
    {
        auto &set = lru[(line / 64) % numSets];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == line) {
                set.erase(it);
                set.push_front(line);
                return true;
            }
        }
        set.push_front(line);
        if (set.size() > numWays)
            set.pop_back();
        return false;
    }

  private:
    std::uint32_t numSets;
    std::uint32_t numWays;
    std::vector<std::list<Addr>> lru;
};

} // namespace

TEST(Cache, MissThenHit)
{
    EventQueue eq;
    RecordingMemory mem(eq, 50);
    Cache cache(eq, smallCache(), mem);

    Tick first_done = 0, second_done = 0;
    cache.access(MemReq{0x1000, 64, false, TrafficClass::Texture, 0,
                        [&](Tick t) { first_done = t; }});
    eq.runUntil();
    cache.access(MemReq{0x1000, 64, false, TrafficClass::Texture, 0,
                        [&](Tick t) { second_done = t; }});
    eq.runUntil();

    EXPECT_EQ(cache.misses.value(), 1u);
    EXPECT_EQ(cache.hits.value(), 1u);
    EXPECT_EQ(mem.reads, 1u);
    // Miss: port(0) + next-level 50 + fill-to-use hitLatency.
    EXPECT_GE(first_done, 50u);
    // Hit completes after hit latency only.
    EXPECT_EQ(second_done, first_done + smallCache().hitLatency);
}

TEST(Cache, HitLatencyTiming)
{
    EventQueue eq;
    RecordingMemory mem(eq, 50);
    Cache cache(eq, smallCache(), mem);
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    eq.runUntil();

    Tick done = 0;
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0,
                        [&](Tick t) { done = t; }});
    const Tick start = eq.now();
    eq.runUntil();
    EXPECT_EQ(done, start + smallCache().hitLatency);
}

TEST(Cache, MshrCoalescesSameLine)
{
    EventQueue eq;
    RecordingMemory mem(eq, 100);
    Cache cache(eq, smallCache(), mem);

    int completed = 0;
    for (int i = 0; i < 5; ++i) {
        cache.access(MemReq{0x2000, 64, false, TrafficClass::Texture, 0,
                            [&](Tick) { ++completed; }});
    }
    eq.runUntil();
    EXPECT_EQ(completed, 5);
    EXPECT_EQ(cache.misses.value(), 1u);
    EXPECT_EQ(cache.mshrCoalesced.value(), 4u);
    EXPECT_EQ(mem.reads, 1u); // one fill serves all
}

TEST(Cache, MshrExhaustionStallsAndRecovers)
{
    EventQueue eq;
    RecordingMemory mem(eq, 100);
    Cache cache(eq, smallCache(), mem); // 4 MSHRs

    int completed = 0;
    for (int i = 0; i < 8; ++i) {
        cache.access(MemReq{static_cast<Addr>(0x10000 + i * 64), 64,
                            false, TrafficClass::Texture, 0,
                            [&](Tick) { ++completed; }});
    }
    EXPECT_EQ(cache.mshrStalls.value(), 4u);
    eq.runUntil();
    EXPECT_EQ(completed, 8);
    EXPECT_EQ(mem.reads, 8u);
    // Stalled requests were counted once each (as misses), not again on
    // retry.
    EXPECT_EQ(cache.misses.value(), 8u);
    EXPECT_EQ(cache.readAccesses.value(), 8u);
}

TEST(Cache, LruEviction)
{
    EventQueue eq;
    RecordingMemory mem(eq, 10);
    Cache cache(eq, smallCache(), mem); // 4 ways per set

    // Five lines mapping to the same set (stride = sets * lineBytes).
    const Addr stride = 4 * 64;
    for (Addr i = 0; i < 5; ++i) {
        cache.access(MemReq{i * stride, 64, false, TrafficClass::Texture,
                            0, nullptr});
        eq.runUntil();
    }
    EXPECT_EQ(cache.misses.value(), 5u);

    // Line 0 was LRU and must have been evicted; lines 1..4 resident.
    cache.access(MemReq{1 * stride, 64, false, TrafficClass::Texture, 0,
                        nullptr});
    eq.runUntil();
    EXPECT_EQ(cache.hits.value(), 1u);
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    eq.runUntil();
    EXPECT_EQ(cache.misses.value(), 6u);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    EventQueue eq;
    RecordingMemory mem(eq, 10);
    Cache cache(eq, smallCache(), mem);

    const Addr stride = 4 * 64;
    cache.access(MemReq{0, 64, true, TrafficClass::ParameterBuffer, 0,
                        nullptr});
    eq.runUntil();
    // Fill conflicting lines until line 0 is evicted.
    for (Addr i = 1; i <= 4; ++i) {
        cache.access(MemReq{i * stride, 64, false,
                            TrafficClass::Texture, 0, nullptr});
        eq.runUntil();
    }
    EXPECT_EQ(cache.writebacks.value(), 1u);
    EXPECT_EQ(mem.writes, 1u);
}

TEST(Cache, WriteHitMarksDirtyWithoutTraffic)
{
    EventQueue eq;
    RecordingMemory mem(eq, 10);
    Cache cache(eq, smallCache(), mem);
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    eq.runUntil();
    const auto reads_before = mem.reads;
    cache.access(MemReq{0, 64, true, TrafficClass::Texture, 0, nullptr});
    eq.runUntil();
    EXPECT_EQ(mem.reads, reads_before);
    EXPECT_EQ(mem.writes, 0u); // dirty, not written through
    EXPECT_EQ(cache.hits.value(), 1u);
}

TEST(Cache, NoWriteAllocateForwardsWrites)
{
    EventQueue eq;
    RecordingMemory mem(eq, 10);
    CacheConfig cfg = smallCache();
    cfg.writeAllocate = false;
    Cache cache(eq, cfg, mem);
    cache.access(MemReq{0x5000, 64, true, TrafficClass::FrameBuffer, 0,
                        nullptr});
    eq.runUntil();
    EXPECT_EQ(mem.writes, 1u);
    // A later read to the same line still misses (it was not allocated).
    cache.access(MemReq{0x5000, 64, false, TrafficClass::Texture, 0,
                        nullptr});
    eq.runUntil();
    EXPECT_EQ(cache.misses.value(), 2u);
}

TEST(Cache, MultiLineRequestSplitsAndCompletesOnce)
{
    EventQueue eq;
    RecordingMemory mem(eq, 20);
    Cache cache(eq, smallCache(), mem);
    int completions = 0;
    cache.access(MemReq{0x100, 256, false, TrafficClass::Geometry, 0,
                        [&](Tick) { ++completions; }});
    eq.runUntil();
    EXPECT_EQ(completions, 1);
    // 0x100..0x1ff spans lines 0x100,0x140,0x180,0x1c0.
    EXPECT_EQ(cache.misses.value(), 4u);
}

TEST(Cache, InvalidateAllDropsCleanWritesBackDirty)
{
    EventQueue eq;
    RecordingMemory mem(eq, 10);
    Cache cache(eq, smallCache(), mem);
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    cache.access(MemReq{64, 64, true, TrafficClass::ParameterBuffer, 0,
                        nullptr});
    eq.runUntil();
    cache.invalidateAll();
    EXPECT_EQ(mem.writes, 1u); // only the dirty line
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    eq.runUntil();
    EXPECT_EQ(cache.misses.value(), 3u); // cold again
}

TEST(Cache, AlwaysHitNeverForwards)
{
    EventQueue eq;
    RecordingMemory mem(eq, 10);
    CacheConfig cfg = smallCache();
    cfg.alwaysHit = true;
    Cache cache(eq, cfg, mem);
    Tick done = 0;
    cache.access(MemReq{0x7780, 64, false, TrafficClass::Texture, 0,
                        [&](Tick t) { done = t; }});
    eq.runUntil();
    EXPECT_EQ(mem.reads, 0u);
    EXPECT_EQ(cache.hits.value(), 1u);
    EXPECT_EQ(done, cfg.hitLatency);
}

TEST(Cache, PortArbitrationSerializesAccesses)
{
    EventQueue eq;
    RecordingMemory mem(eq, 0);
    CacheConfig cfg = smallCache();
    cfg.portsPerCycle = 1;
    Cache cache(eq, cfg, mem);
    // Warm two lines.
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    cache.access(MemReq{64, 64, false, TrafficClass::Texture, 0,
                        nullptr});
    eq.runUntil();
    const Tick start = eq.now();
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i) {
        cache.access(MemReq{static_cast<Addr>((i % 2) * 64), 64, false,
                            TrafficClass::Texture, 0,
                            [&](Tick t) { done.push_back(t); }});
    }
    eq.runUntil();
    ASSERT_EQ(done.size(), 4u);
    // One access per cycle: completions one cycle apart, the first no
    // earlier than the hit latency.
    EXPECT_GE(done[0], start + cfg.hitLatency);
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(done[static_cast<std::size_t>(i)],
                  done[static_cast<std::size_t>(i - 1)] + 1);
    }
}

TEST(Cache, HitRatioAccessor)
{
    EventQueue eq;
    RecordingMemory mem(eq, 1);
    Cache cache(eq, smallCache(), mem);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 1.0); // vacuous
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    eq.runUntil();
    cache.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    eq.runUntil();
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.5);
}

/**
 * Property test: with accesses fully drained between requests, the
 * timing cache's hit/miss sequence must match a functional LRU
 * reference model exactly.
 */
TEST(CacheProperty, MatchesReferenceLruModel)
{
    EventQueue eq;
    RecordingMemory mem(eq, 5);
    Cache cache(eq, smallCache(), mem); // 4 sets x 4 ways
    RefCache ref(4, 4);
    Rng rng(2024);

    for (int i = 0; i < 5000; ++i) {
        // Cluster addresses so hits actually happen.
        const Addr line = rng.below(40) * 64;
        const auto hits_before = cache.hits.value();
        cache.access(MemReq{line, 64, false, TrafficClass::Texture, 0,
                            nullptr});
        eq.runUntil();
        const bool cache_hit = cache.hits.value() > hits_before;
        const bool ref_hit = ref.touch(line);
        ASSERT_EQ(cache_hit, ref_hit) << "access " << i << " line "
                                      << line;
    }
}

/** Parameterized sweep: geometry combinations behave sanely. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{};

TEST_P(CacheGeometry, FillsWholeCapacityWithoutEviction)
{
    const auto [size_kb, ways] = GetParam();
    EventQueue eq;
    RecordingMemory mem(eq, 3);
    CacheConfig cfg = smallCache();
    cfg.sizeBytes = size_kb * 1024;
    cfg.ways = ways;
    Cache cache(eq, cfg, mem);

    const std::uint32_t lines = cfg.sizeBytes / cfg.lineBytes;
    for (std::uint32_t i = 0; i < lines; ++i) {
        cache.access(MemReq{static_cast<Addr>(i) * 64, 64, false,
                            TrafficClass::Texture, 0, nullptr});
        eq.runUntil();
    }
    EXPECT_EQ(cache.misses.value(), lines);
    EXPECT_EQ(cache.writebacks.value(), 0u);
    // Re-touch everything: all hits, capacity exactly holds the set.
    for (std::uint32_t i = 0; i < lines; ++i) {
        cache.access(MemReq{static_cast<Addr>(i) * 64, 64, false,
                            TrafficClass::Texture, 0, nullptr});
        eq.runUntil();
    }
    EXPECT_EQ(cache.hits.value(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1u, 4u, 32u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

// ---------------------------------------------------------------------
// MSHR accounting conservation: hits + misses + mshr_coalesced must
// equal read_accesses + write_accesses at every quiescent point, under
// coalescing, MSHR stalls and multi-line splits alike (the law the
// InvariantChecker enforces per frame).
// ---------------------------------------------------------------------

TEST(CacheConservation, HoldsUnderCoalescing)
{
    EventQueue eq;
    RecordingMemory mem(eq, 20);
    Cache cache(eq, smallCache(), mem);

    // Three back-to-back reads of one line: one miss, two coalesced.
    for (int i = 0; i < 3; ++i)
        cache.access(MemReq{0x2000, 4, false, TrafficClass::Texture,
                            invalidId, nullptr});
    eq.runUntil();

    EXPECT_EQ(cache.misses.value(), 1u);
    EXPECT_EQ(cache.mshrCoalesced.value(), 2u);
    EXPECT_EQ(cache.hits.value() + cache.misses.value() +
                  cache.mshrCoalesced.value(),
              cache.readAccesses.value() + cache.writeAccesses.value());

    InvariantChecker checker;
    checker.checkCacheConservation(cache);
    EXPECT_TRUE(checker.ok()) << checker.status().toString();
}

TEST(CacheConservation, HoldsUnderMshrStalls)
{
    EventQueue eq;
    RecordingMemory mem(eq, 50);
    Cache cache(eq, smallCache(), mem); // 4 MSHRs

    // More distinct-line misses than MSHRs: the excess stalls and
    // retries, but each request is still counted exactly once.
    for (Addr line = 0; line < 8; ++line)
        cache.access(MemReq{0x4000 + line * 64, 4, false,
                            TrafficClass::Texture, invalidId, nullptr});
    eq.runUntil();

    EXPECT_EQ(cache.misses.value(), 8u);
    EXPECT_GT(cache.mshrStalls.value(), 0u);
    // Stalls are extra bookkeeping, not part of the partition.
    EXPECT_EQ(cache.hits.value() + cache.misses.value() +
                  cache.mshrCoalesced.value(),
              cache.readAccesses.value() + cache.writeAccesses.value());

    InvariantChecker checker;
    checker.checkCacheConservation(cache);
    EXPECT_TRUE(checker.ok()) << checker.status().toString();
}

TEST(CacheConservation, HoldsUnderMultiLineSplits)
{
    EventQueue eq;
    RecordingMemory mem(eq, 10);
    Cache cache(eq, smallCache(), mem);

    // A 128-byte request spans two 64-byte lines: the splitter turns it
    // into two accesses, and each part keeps the law balanced.
    cache.access(MemReq{0x6000, 128, false, TrafficClass::Texture,
                        invalidId, nullptr});
    eq.runUntil();
    EXPECT_EQ(cache.readAccesses.value(), 2u);
    EXPECT_EQ(cache.misses.value(), 2u);

    // An unaligned write straddling a line boundary.
    cache.access(MemReq{0x6000 + 60, 8, true, TrafficClass::FrameBuffer,
                        invalidId, nullptr});
    eq.runUntil();

    EXPECT_EQ(cache.hits.value() + cache.misses.value() +
                  cache.mshrCoalesced.value(),
              cache.readAccesses.value() + cache.writeAccesses.value());

    InvariantChecker checker;
    checker.checkCacheConservation(cache);
    EXPECT_TRUE(checker.ok()) << checker.status().toString();
}

TEST(Cache, InvalidateDiscardsInFlightFill)
{
    // Regression: invalidateAll() used to ignore outstanding MSHR
    // fills, so the late fill re-installed a stale line after the
    // invalidation. The fill must be discarded (waiters still complete
    // with correct timing) and a re-access must go back to memory.
    EventQueue eq;
    RecordingMemory mem(eq, 30);
    Cache cache(eq, smallCache(), mem);

    bool completed = false;
    cache.access(MemReq{0x8000, 4, false, TrafficClass::Texture,
                        invalidId,
                        [&completed](Tick) { completed = true; }});
    EXPECT_EQ(mem.reads, 1u);

    // Invalidate while the fill is still in flight.
    cache.invalidateAll();
    eq.runUntil();
    EXPECT_TRUE(completed); // the waiter is never dropped
    EXPECT_EQ(cache.invalidatedFills.value(), 1u);

    // The line was NOT installed: touching it again misses to memory.
    cache.access(MemReq{0x8000, 4, false, TrafficClass::Texture,
                        invalidId, nullptr});
    eq.runUntil();
    EXPECT_EQ(mem.reads, 2u);
    EXPECT_EQ(cache.hits.value(), 0u);

    InvariantChecker checker;
    checker.checkCacheConservation(cache);
    EXPECT_TRUE(checker.ok()) << checker.status().toString();
}
