/**
 * @file
 * Tests for the table/heatmap reporting utilities and the run helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gpu/runner.hh"
#include "gpu/tiling/tile_grid.hh"
#include "trace/heatmap.hh"
#include "trace/report.hh"

using namespace libra;

TEST(Table, AlignsColumns)
{
    Table table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "22"});
    const std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Header and two rows plus separator.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvFormat)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.csv(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCells)
{
    // RFC 4180: cells containing commas, quotes or newlines are quoted
    // and embedded quotes doubled — a benchmark title like
    // "Clash, Royale" must stay one cell.
    Table table({"title", "note"});
    table.addRow({"Clash, Royale", "plain"});
    table.addRow({"say \"hi\"", "line1\nline2"});
    EXPECT_EQ(table.csv(),
              "title,note\n"
              "\"Clash, Royale\",plain\n"
              "\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(Table, CsvQuoteRules)
{
    EXPECT_EQ(Table::csvQuote("plain"), "plain");
    EXPECT_EQ(Table::csvQuote(""), "");
    EXPECT_EQ(Table::csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(Table::csvQuote("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(Table::csvQuote("a\nb"), "\"a\nb\"");
    EXPECT_EQ(Table::csvQuote("a\rb"), "\"a\rb\"");
    EXPECT_EQ(Table::csvQuote("\""), "\"\"\"\"");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(10.0, 0), "10");
    EXPECT_EQ(Table::pct(0.209), "20.9%");
    EXPECT_EQ(Table::pct(0.5, 0), "50%");
}

TEST(TableDeathTest, RowWidthMismatchPanics)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row width mismatch");
}

TEST(Heatmap, AsciiShape)
{
    const TileGrid grid(128, 64, 32); // 4x2 tiles
    std::vector<std::uint64_t> values{0, 1, 2, 3, 4, 5, 6, 7};
    const std::string art = heatmapAscii(grid, values);
    // 2 rows of 4 characters plus newlines.
    EXPECT_EQ(art.size(), 2u * (4u + 1u));
    EXPECT_EQ(art[4], '\n');
    // Max value gets the hottest glyph, zero the coldest.
    EXPECT_EQ(art[0], ' ');
}

TEST(Heatmap, PpmRoundTrip)
{
    const TileGrid grid(128, 64, 32);
    std::vector<std::uint64_t> values{0, 10, 20, 30, 40, 50, 60, 70};
    const std::string path = "/tmp/libra_test_heatmap.ppm";
    ASSERT_TRUE(writeHeatmapPpm(path, grid, values, 4));
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    ASSERT_NE(fp, nullptr);
    char magic[3] = {0};
    ASSERT_EQ(std::fscanf(fp, "%2s", magic), 1);
    EXPECT_STREQ(magic, "P6");
    int w = 0, h = 0;
    ASSERT_EQ(std::fscanf(fp, "%d %d", &w, &h), 2);
    EXPECT_EQ(w, 16); // 4 tiles * 4 px cells
    EXPECT_EQ(h, 8);
    std::fclose(fp);
    std::remove(path.c_str());
}

TEST(Runner, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Runner, GeomeanSkipsNonPositiveValues)
{
    // A zero or negative sample (e.g. a skipped frame) must not abort
    // the whole report: it is dropped with a warning and the mean is
    // taken over the remaining values.
    EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 4.0}), 4.0);
    EXPECT_NEAR(geomean({-2.0, 1.0, 9.0}), 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({-1.0, 0.0}), 0.0);
}

TEST(Runner, SpeedupDefinition)
{
    RunResult slow, fast;
    FrameStats f;
    f.totalCycles = 2000;
    slow.frames.push_back(f);
    f.totalCycles = 1000;
    fast.frames.push_back(f);
    EXPECT_DOUBLE_EQ(speedup(slow, fast), 2.0);
    EXPECT_DOUBLE_EQ(speedup(fast, slow), 0.5);
}

TEST(Runner, FpsFromCycles)
{
    RunResult r;
    FrameStats f;
    f.totalCycles = 8000000; // 10 ms at 800 MHz
    r.frames.push_back(f);
    EXPECT_NEAR(r.fps(800e6), 100.0, 1e-9);
}
