/**
 * @file
 * Checkpoint restore-contract tests (DESIGN.md §10).
 *
 * The contract under test is byte-identity: a run restored from a
 * frame-F snapshot must finish with counter dumps, RunReports and
 * Chrome traces identical to the uninterrupted run — under the
 * sequential loop and under --sim-threads N, with and without an armed
 * fault plan. On top sit the sweep-layer behaviors: warm-prefix
 * forking of threshold sweeps (fig19-style), periodic checkpoint
 * files + manifest rows, and the kill-mid-sweep → restore round trip.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "check/fault_injector.hh"
#include "check/snapshot.hh"
#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "sim/sweep.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t kWidth = 128;
constexpr std::uint32_t kHeight = 64;
constexpr std::uint32_t kFrames = 4;

GpuConfig
smallConfig(std::uint32_t sim_threads = 0)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;
    cfg.simThreads = sim_threads;
    return cfg;
}

std::string
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / ("libra_ckpt_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** Render @p prefix frames and return the captured snapshot image. */
std::shared_ptr<std::vector<std::uint8_t>>
capturePrefix(const Scene &scene, const GpuConfig &cfg,
              std::uint32_t prefix)
{
    CheckpointPlan plan;
    plan.captureAfter = std::make_shared<std::vector<std::uint8_t>>();
    plan.captureAfterFrames = prefix;
    Result<RunResult> r = runBenchmark(scene, cfg, prefix, 0, plan);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_FALSE(plan.captureAfter->empty());
    return plan.captureAfter;
}

/** Fork a full run from @p image. */
RunResult
forkFrom(const Scene &scene, const GpuConfig &cfg,
         std::shared_ptr<std::vector<std::uint8_t>> image)
{
    CheckpointPlan plan;
    plan.warmStart = std::move(image);
    Result<RunResult> r = runBenchmark(scene, cfg, kFrames, 0, plan);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    return std::move(*r);
}

} // namespace

TEST(Checkpoint, ForkVsColdByteIdenticalSequentialAndSharded)
{
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    for (const std::uint32_t threads : {0u, 4u}) {
        GpuConfig cfg = smallConfig(threads);
        cfg.traceEvents = true;

        Result<RunResult> cold = runBenchmark(scene, cfg, kFrames, 0);
        ASSERT_TRUE(cold.isOk()) << cold.status().toString();

        for (std::uint32_t ckpt = 1; ckpt < kFrames; ++ckpt) {
            const RunResult forked = forkFrom(
                scene, cfg, capturePrefix(scene, cfg, ckpt));
            // Byte identity at every level: full counter dump,
            // serialized report, Chrome trace export.
            EXPECT_EQ(forked.counters, cold->counters)
                << "threads=" << threads << " ckpt=" << ckpt;
            EXPECT_EQ(runReportJson(forked), runReportJson(*cold))
                << "threads=" << threads << " ckpt=" << ckpt;
            ASSERT_NE(forked.trace, nullptr);
            ASSERT_NE(cold->trace, nullptr);
            EXPECT_EQ(forked.trace->chromeTraceJson(),
                      cold->trace->chromeTraceJson())
                << "threads=" << threads << " ckpt=" << ckpt;
        }
    }
}

TEST(Checkpoint, WarmPrefixHashAcceptsThresholdVariants)
{
    // The whole point of warm-prefix forking: a snapshot captured
    // under one threshold setting restores into a run whose config
    // differs only in the thresholds — and the result equals that
    // run's own cold execution.
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    GpuConfig donor = smallConfig();
    donor.sched.resizeThreshold = 0.0025;
    GpuConfig variant = smallConfig();
    variant.sched.resizeThreshold = 0.05;
    ASSERT_NE(donor.configHash(), variant.configHash());
    ASSERT_EQ(donor.warmPrefixHash(), variant.warmPrefixHash());

    const auto image = capturePrefix(scene, donor, 2);
    const RunResult forked = forkFrom(scene, variant, image);
    Result<RunResult> cold = runBenchmark(scene, variant, kFrames, 0);
    ASSERT_TRUE(cold.isOk()) << cold.status().toString();
    EXPECT_EQ(forked.counters, cold->counters);

    // A config differing in *machine shape* must be refused (and fall
    // back cold) — warmPrefixHash covers thresholds only.
    GpuConfig other = smallConfig();
    other.sched.policy = SchedulerPolicy::Scanline;
    ASSERT_NE(other.warmPrefixHash(), donor.warmPrefixHash());
    const RunResult fallback = forkFrom(scene, other, image);
    Result<RunResult> other_cold =
        runBenchmark(scene, other, kFrames, 0);
    ASSERT_TRUE(other_cold.isOk());
    EXPECT_EQ(fallback.counters, other_cold->counters);
}

TEST(Checkpoint, RestoreUnderFaultsMatchesAcrossThreadCounts)
{
    // checkpoint x fault-injection x --sim-threads interplay: with a
    // fault plan armed, a restore executed under 4 simulation threads
    // must be byte-identical to the same restore executed under 1
    // thread (the sharded engine's determinism contract survives both
    // the injected faults and the restored starting state).
    Result<FaultPlan> plan = FaultPlan::parse(
        "seed=7;dropfill:l2@every=64;dramstall@every=256,ticks=120");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);

    const auto run_restored = [&](std::uint32_t threads) {
        GpuConfig cfg = smallConfig(threads);
        // The snapshot is captured fault-free (the quiesced prefix);
        // the fault plan arms the *resumed* frames.
        const auto image = capturePrefix(scene, cfg, 2);
        GpuConfig faulty = cfg;
        faulty.faults = std::make_shared<FaultInjector>(*plan, 0);
        CheckpointPlan restore;
        restore.warmStart = image;
        Result<RunResult> r =
            runBenchmark(scene, faulty, kFrames, 0, restore);
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        return std::move(*r);
    };

    const RunResult one = run_restored(1);
    const RunResult four = run_restored(4);
    EXPECT_EQ(one.counters, four.counters);
    EXPECT_EQ(runReportJson(one), runReportJson(four));
}

TEST(Checkpoint, WarmPrefixSweepMatchesColdSweepAndCountsForks)
{
    // A fig19-style threshold sweep forked from one shared warm
    // prefix must produce exactly the cold sweep's results, and the
    // outcome must report every group member as forked.
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    std::vector<SweepJob> jobs;
    for (const double thr : {0.0, 0.0025, 0.01, 0.05}) {
        GpuConfig cfg = smallConfig();
        cfg.sched.resizeThreshold = thr;
        jobs.push_back(SweepJob{&ccs, cfg, kFrames, 0});
    }
    // A singleton job (different benchmark) must not join any group.
    const BenchmarkSpec &sus = findBenchmark("SuS");
    jobs.push_back(SweepJob{&sus, smallConfig(), kFrames, 0});

    SweepRunner pool(2);
    SceneCache cache;
    SweepOutcome cold =
        pool.runWithPolicy(jobs, SweepPolicy{}, &cache);
    SweepPolicy warm_policy;
    warm_policy.checkpoint.warmPrefixFrames = 2;
    SweepOutcome warm = pool.runWithPolicy(jobs, warm_policy, &cache);

    ASSERT_EQ(cold.jobs.size(), warm.jobs.size());
    EXPECT_EQ(warm.warmPrefixForks, 4u);
    EXPECT_EQ(cold.warmPrefixForks, 0u);
    for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
        ASSERT_TRUE(cold.jobs[i].result.isOk())
            << cold.jobs[i].result.status().toString();
        ASSERT_TRUE(warm.jobs[i].result.isOk())
            << warm.jobs[i].result.status().toString();
        EXPECT_EQ(cold.jobs[i].result->counters,
                  warm.jobs[i].result->counters)
            << "job " << i;
        EXPECT_EQ(runReportJson(*cold.jobs[i].result),
                  runReportJson(*warm.jobs[i].result))
            << "job " << i;
    }
}

TEST(Checkpoint, WarmPrefixForkingDisabledUnderFaultPlan)
{
    // Injected faults are positional; forking would change what each
    // job observes, so an armed plan must turn forking off while the
    // sweep still completes deterministically.
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    std::vector<SweepJob> jobs;
    for (const double thr : {0.0, 0.05}) {
        GpuConfig cfg = smallConfig();
        cfg.sched.resizeThreshold = thr;
        jobs.push_back(SweepJob{&ccs, cfg, kFrames, 0});
    }
    SweepPolicy policy;
    policy.checkpoint.warmPrefixFrames = 2;
    Result<FaultPlan> plan =
        FaultPlan::parse("seed=3;dropfill:l2@every=128");
    ASSERT_TRUE(plan.isOk());
    policy.faults = *plan;

    SweepRunner pool(2);
    SceneCache cache;
    SweepOutcome out = pool.runWithPolicy(jobs, policy, &cache);
    EXPECT_EQ(out.warmPrefixForks, 0u);
    for (const JobOutcome &o : out.jobs)
        ASSERT_TRUE(o.result.isOk()) << o.result.status().toString();
}

TEST(Checkpoint, KillMidRunResumesFromFreshestSnapshot)
{
    // The CI round trip in miniature: a run dies mid-way (simulated by
    // only rendering a prefix), a second invocation restores from the
    // checkpoint dir and must finish with the uninterrupted run's
    // exact results.
    const GpuConfig cfg = smallConfig();
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    const std::string dir = scratchDir("resume");

    Result<RunResult> cold = runBenchmark(scene, cfg, kFrames, 0);
    ASSERT_TRUE(cold.isOk());

    // "Killed" after 3 of 4 frames, checkpointing every frame.
    CheckpointPlan writing;
    writing.dir = dir;
    writing.every = 1;
    Result<RunResult> partial =
        runBenchmark(scene, cfg, 3, 0, writing);
    ASSERT_TRUE(partial.isOk()) << partial.status().toString();

    Result<std::vector<SnapshotManifestEntry>> manifest =
        loadSnapshotManifest(dir);
    ASSERT_TRUE(manifest.isOk());
    // Frames 1 and 2 are checkpointed; the final frame of a run never
    // is (the run is already done).
    EXPECT_EQ(manifest->size(), 2u);

    CheckpointPlan resume;
    resume.dir = dir;
    resume.restore = true;
    Result<RunResult> resumed =
        runBenchmark(scene, cfg, kFrames, 0, resume);
    ASSERT_TRUE(resumed.isOk()) << resumed.status().toString();
    EXPECT_EQ(resumed->counters, cold->counters);
    EXPECT_EQ(runReportJson(*resumed), runReportJson(*cold));
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, PeriodicWritesSkipFinalFrameAndRespectEvery)
{
    const GpuConfig cfg = smallConfig();
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    const std::string dir = scratchDir("every");

    CheckpointPlan plan;
    plan.dir = dir;
    plan.every = 2;
    Result<RunResult> r = runBenchmark(scene, cfg, kFrames, 0, plan);
    ASSERT_TRUE(r.isOk()) << r.status().toString();

    Result<std::vector<SnapshotManifestEntry>> manifest =
        loadSnapshotManifest(dir);
    ASSERT_TRUE(manifest.isOk());
    // 4 frames, every 2: only frame 2 qualifies (frame 4 is final).
    ASSERT_EQ(manifest->size(), 1u);
    EXPECT_EQ((*manifest)[0].framesDone, 2u);
    EXPECT_EQ((*manifest)[0].configHash, cfg.configHash());
    std::filesystem::remove_all(dir);
}
