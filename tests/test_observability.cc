/**
 * @file
 * Whole-GPU observability tests: per-RU phase attribution, the
 * DRAM-bandwidth interval sampler, the chrome-trace exporter on a real
 * simulation, and the RunReport document.
 */

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <string>

#include "gpu/gpu.hh"
#include "gpu/runner.hh"
#include "trace/json.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 512;
constexpr std::uint32_t H = 288;

GpuConfig
sized(GpuConfig cfg)
{
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    return cfg;
}

RunResult
run(GpuConfig cfg, std::uint32_t frames = 2)
{
    const Scene scene(findBenchmark("CCS"), W, H);
    Result<RunResult> r = runBenchmark(scene, cfg, frames);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    return std::move(*r);
}

} // namespace

TEST(PhaseAttribution, PhasesSumToFrameCycles)
{
    // The acceptance property of the phase tracker: at every frame the
    // six phases of every Raster Unit partition the frame's cycles
    // exactly — no gap, no double counting.
    const RunResult r = run(sized(GpuConfig::ptr(2, 4)), 3);
    ASSERT_EQ(r.frames.size(), 3u);
    for (const FrameStats &fs : r.frames) {
        ASSERT_EQ(fs.ruPhases.size(), 2u);
        for (const auto &phases : fs.ruPhases) {
            const std::uint64_t sum =
                std::accumulate(phases.begin(), phases.end(),
                                std::uint64_t{0});
            EXPECT_EQ(sum, fs.totalCycles);
        }
    }
}

TEST(PhaseAttribution, BaselineSingleRuAlsoPartitions)
{
    const RunResult r = run(sized(GpuConfig::baseline(8)), 2);
    for (const FrameStats &fs : r.frames) {
        ASSERT_EQ(fs.ruPhases.size(), 1u);
        const auto &phases = fs.ruPhases.front();
        EXPECT_EQ(std::accumulate(phases.begin(), phases.end(),
                                  std::uint64_t{0}),
                  fs.totalCycles);
        // A real frame must spend cycles actually shading, and the RU
        // is idle at least during the geometry phase.
        EXPECT_GT(phases[static_cast<std::size_t>(RuPhase::Shade)], 0u);
        EXPECT_GT(phases[static_cast<std::size_t>(RuPhase::Idle)], 0u);
    }
}

TEST(PhaseAttribution, CountersExposedThroughStatGroup)
{
    const RunResult r = run(sized(GpuConfig::ptr(2, 4)), 2);
    // The cumulative counter dump carries the same attribution under
    // "gpu.ru<N>.phase_<name>".
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < kNumRuPhases; ++p) {
        const std::string name = std::string("gpu.ru0.phase_")
            + ruPhaseName(static_cast<RuPhase>(p));
        const auto it = r.counters.find(name);
        ASSERT_NE(it, r.counters.end()) << name;
        total += it->second;
    }
    std::uint64_t frame_cycles = 0;
    for (const FrameStats &fs : r.frames)
        frame_cycles += fs.totalCycles;
    EXPECT_EQ(total, frame_cycles);
}

TEST(DramTimeline, SamplerMatchesFrameTotals)
{
    GpuConfig cfg = sized(GpuConfig::ptr(2, 4));
    cfg.dramTimelineInterval = 2000;
    const RunResult r = run(cfg, 2);
    for (const FrameStats &fs : r.frames) {
        EXPECT_EQ(fs.dramTimelineInterval, 2000u);
        ASSERT_FALSE(fs.dramTimeline.empty());
        // Every sampled request happened inside the raster phase, so
        // the bucket count cannot exceed the phase's duration.
        EXPECT_LE((fs.dramTimeline.size() - 1) * 2000u,
                  fs.rasterCycles);
        const std::uint64_t sampled = std::accumulate(
            fs.dramTimeline.begin(), fs.dramTimeline.end(),
            std::uint64_t{0});
        EXPECT_GT(sampled, 0u);
        // The sampler counts raster-phase DRAM requests; the frame's
        // total covers the geometry phase too.
        EXPECT_LE(sampled, fs.dramReads + fs.dramWrites);
    }
}

TEST(TraceExport, RealRunProducesValidTrace)
{
    GpuConfig cfg = sized(GpuConfig::ptr(2, 4));
    cfg.traceEvents = true;
    const RunResult r = run(cfg, 2);
    ASSERT_NE(r.trace, nullptr);
#if !LIBRA_TRACING_ENABLED
    // Tracing compiled out: the sink is attached but the macros are
    // no-ops, so the export must be an empty (still valid) trace.
    EXPECT_EQ(r.trace->eventCount(), 0u);
    GTEST_SKIP() << "built with LIBRA_TRACING=OFF";
#endif
    EXPECT_GT(r.trace->eventCount(), 0u);

    const auto doc = parseJson(r.trace->chromeTraceJson());
    ASSERT_TRUE(doc.isOk()) << doc.status().toString();
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Walk the stream: balanced sync spans per lane, balanced async
    // (tile) spans per id, non-decreasing timestamps.
    std::map<double, int> sync_depth;
    std::map<std::string, int> async_open;
    double last_ts = 0.0;
    std::size_t tile_spans = 0;
    for (const JsonValue &e : events->items) {
        const std::string &ph = e.find("ph")->str;
        if (ph == "M")
            continue;
        const double ts = e.find("ts")->number;
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
        const double tid = e.find("tid")->number;
        if (ph == "B") {
            ++sync_depth[tid];
        } else if (ph == "E") {
            ASSERT_GE(--sync_depth[tid], 0);
        } else if (ph == "b" || ph == "e") {
            const std::string key = e.find("name")->str + "#"
                + std::to_string(
                      static_cast<std::uint64_t>(
                          e.find("id")->number));
            if (ph == "b") {
                ++async_open[key];
                ++tile_spans;
            } else {
                ASSERT_GE(--async_open[key], 0) << key;
            }
        }
    }
    for (const auto &[tid, depth] : sync_depth)
        EXPECT_EQ(depth, 0) << "tid " << tid;
    for (const auto &[key, open] : async_open)
        EXPECT_EQ(open, 0) << key;

    // Every tile of every frame got an async residency span.
    const TileGrid grid(W, H, cfg.tileSize);
    EXPECT_EQ(tile_spans,
              static_cast<std::size_t>(grid.tileCount()) * 2u);
}

TEST(TraceExport, NoSinkMeansNoTrace)
{
    const RunResult r = run(sized(GpuConfig::ptr(2, 4)), 2);
    EXPECT_EQ(r.trace, nullptr);
}

TEST(RunReport, DocumentParsesAndCarriesSchema)
{
    GpuConfig cfg = sized(GpuConfig::libra(2, 4));
    const RunResult r = run(cfg, 2);
    const std::string json = runReportJson(r);

    const auto doc = parseJson(json);
    ASSERT_TRUE(doc.isOk()) << doc.status().toString();
    EXPECT_EQ(doc->find("schema")->str, kRunReportSchema);

    const JsonValue *config = doc->find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(config->find("benchmark")->str, "CCS");
    EXPECT_DOUBLE_EQ(config->find("raster_units")->number, 2.0);
    EXPECT_EQ(config->find("scheduler")->str, "libra");

    const JsonValue *frames = doc->find("frames");
    ASSERT_NE(frames, nullptr);
    ASSERT_EQ(frames->items.size(), 2u);
    for (const JsonValue &f : frames->items) {
        const auto total = static_cast<std::uint64_t>(
            f.find("total_cycles")->number);
        const JsonValue *rus = f.find("ru_phases");
        ASSERT_NE(rus, nullptr);
        ASSERT_EQ(rus->items.size(), 2u);
        for (const JsonValue &ru : rus->items) {
            std::uint64_t sum = 0;
            for (const auto &[name, v] : ru.members)
                sum += static_cast<std::uint64_t>(v.number);
            EXPECT_EQ(sum, total);
        }
        const JsonValue *tl = f.find("dram_timeline");
        ASSERT_NE(tl, nullptr);
        EXPECT_TRUE(tl->find("samples")->isArray());
    }

    const JsonValue *counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_FALSE(counters->members.empty());
    // Spot-check a counter that must exist on this config.
    EXPECT_NE(counters->find("gpu.ru1.tiles_rendered"), nullptr);
}

TEST(RunReport, SweepReportWrapsRuns)
{
    const RunResult r = run(sized(GpuConfig::baseline(8)), 2);
    const std::string json = sweepReportJson({r, r});
    const auto doc = parseJson(json);
    ASSERT_TRUE(doc.isOk()) << doc.status().toString();
    EXPECT_EQ(doc->find("schema")->str, kRunReportSetSchema);
    ASSERT_NE(doc->find("runs"), nullptr);
    ASSERT_EQ(doc->find("runs")->items.size(), 2u);
    EXPECT_EQ(doc->find("runs")->items[0].find("schema")->str,
              kRunReportSchema);
}
