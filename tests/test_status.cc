/**
 * @file
 * Tests for the recoverable-error layer: Status and Result<T>.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"

using namespace libra;

TEST(Status, DefaultIsOk)
{
    const Status st;
    EXPECT_TRUE(st.isOk());
    EXPECT_TRUE(static_cast<bool>(st));
    EXPECT_EQ(st.code(), ErrorCode::Ok);
    EXPECT_EQ(st.message(), "");
    EXPECT_EQ(st.toString(), "ok");
}

TEST(Status, OkFactoryMatchesDefault)
{
    EXPECT_TRUE(Status::ok().isOk());
    EXPECT_EQ(Status::ok().code(), ErrorCode::Ok);
}

TEST(Status, ErrorCarriesCodeAndFormattedMessage)
{
    const Status st =
        Status::error(ErrorCode::CorruptData, "bad count ", 42);
    EXPECT_FALSE(st.isOk());
    EXPECT_FALSE(static_cast<bool>(st));
    EXPECT_EQ(st.code(), ErrorCode::CorruptData);
    EXPECT_EQ(st.message(), "bad count 42");
    EXPECT_EQ(st.toString(), "corrupt data: bad count 42");
}

TEST(Status, EveryCodeHasAName)
{
    for (const ErrorCode code :
         {ErrorCode::Ok, ErrorCode::InvalidArgument, ErrorCode::NotFound,
          ErrorCode::IoError, ErrorCode::CorruptData,
          ErrorCode::WatchdogExpired, ErrorCode::NoProgress,
          ErrorCode::FailedPrecondition}) {
        EXPECT_STRNE(errorCodeName(code), "");
        EXPECT_STRNE(errorCodeName(code), "?");
    }
}

TEST(Result, HoldsValue)
{
    const Result<int> r(7);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.status().isOk());
    EXPECT_EQ(r.value(), 7);
    EXPECT_EQ(*r, 7);
}

TEST(Result, HoldsError)
{
    const Result<int> r =
        Status::error(ErrorCode::NotFound, "no such thing");
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);
    EXPECT_EQ(r.status().message(), "no such thing");
}

TEST(Result, MoveOnlyValueWorks)
{
    // Result must not require copyable T.
    Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
    ASSERT_TRUE(r.isOk());
    const std::unique_ptr<int> owned = std::move(*r);
    EXPECT_EQ(*owned, 9);
}

TEST(Result, ArrowOperatorReachesMembers)
{
    Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r->size(), 3u);
}

TEST(Result, StatusPropagationViaImplicitConversion)
{
    // `return st;` inside a Result-returning function must compile and
    // carry the error through, the way the loaders use it.
    auto inner = []() -> Status {
        return Status::error(ErrorCode::IoError, "disk on fire");
    };
    auto outer = [&]() -> Result<double> {
        if (Status st = inner(); !st.isOk())
            return st;
        return 1.0;
    };
    const Result<double> r = outer();
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::IoError);
}

TEST(ResultDeathTest, ValueOnErrorIsACallerBug)
{
    const Result<int> r = Status::error(ErrorCode::NotFound, "gone");
    EXPECT_DEATH({ (void)r.value(); }, "value\\(\\) on error Result");
}
