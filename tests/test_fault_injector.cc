/**
 * @file
 * Fault-injection framework unit tests: spec grammar round-trips,
 * validation errors, the seeded plan fuzzer, and the per-job injector
 * queries the engine hooks rely on.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/fault_injector.hh"

using namespace libra;

TEST(FaultPlan, EmptySpecIsTheEmptyPlan)
{
    const Result<FaultPlan> plan = FaultPlan::parse("");
    ASSERT_TRUE(plan.isOk());
    EXPECT_TRUE(plan->empty());
    EXPECT_EQ(plan->toString(), "");
}

TEST(FaultPlan, SpecRoundTripsThroughParseAndToString)
{
    const std::string spec =
        "seed=42;watchdog@frame=1;dropfill:l2@every=64;"
        "dramstall@every=128,ticks=500;transient@job=3,count=2;"
        "corrupt:truncate@offset=7;kill@append=5";
    const Result<FaultPlan> plan = FaultPlan::parse(spec);
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    EXPECT_EQ(plan->seed, 42u);
    ASSERT_EQ(plan->faults.size(), 6u);
    EXPECT_EQ(plan->toString(), spec);

    // And the rendering reparses to the same plan (full round trip).
    const Result<FaultPlan> again = FaultPlan::parse(plan->toString());
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again->toString(), spec);
}

TEST(FaultPlan, MalformedSpecsAreInvalidArgument)
{
    for (const char *bad : {
             "nonsense",                //!< unknown keyword
             "watchdog@frames=1",       //!< unknown parameter
             "dropfill@every=64",       //!< dropfill without a target
             "dropfill:l2",             //!< dropfill without a period
             "dramstall@ticks=10",      //!< dramstall without a period
             "transient@job=1x",        //!< trailing garbage in number
             "seed=",                   //!< empty value
         }) {
        const Result<FaultPlan> plan = FaultPlan::parse(bad);
        EXPECT_FALSE(plan.isOk()) << bad;
        if (!plan.isOk()) {
            EXPECT_EQ(plan.status().code(), ErrorCode::InvalidArgument)
                << bad;
        }
    }
}

TEST(FaultPlan, FuzzerIsDeterministicAndSoakSafe)
{
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const FaultPlan a = fuzzFaultPlan(seed, 8);
        const FaultPlan b = fuzzFaultPlan(seed, 8);
        EXPECT_EQ(a.toString(), b.toString()) << "seed " << seed;
        // The generated spec must survive its own grammar.
        const Result<FaultPlan> reparsed = FaultPlan::parse(a.toString());
        ASSERT_TRUE(reparsed.isOk())
            << "seed " << seed << ": " << a.toString();
        EXPECT_EQ(reparsed->toString(), a.toString());
        // Kill points and trace corruption need a cooperating harness;
        // the soak arms them separately.
        for (const FaultSpec &f : a.faults) {
            EXPECT_NE(f.kind, FaultKind::KillPoint) << "seed " << seed;
            EXPECT_NE(f.kind, FaultKind::CorruptTrace)
                << "seed " << seed;
            if (f.kind == FaultKind::TransientFail) {
                EXPECT_LT(f.job, 8u) << "seed " << seed;
            }
        }
    }
}

TEST(FaultInjector, WatchdogTripMatchesExactFrame)
{
    const Result<FaultPlan> plan =
        FaultPlan::parse("watchdog@frame=2");
    ASSERT_TRUE(plan.isOk());
    FaultInjector inj(*plan, 0);
    EXPECT_FALSE(inj.tripWatchdogAtFrame(0));
    EXPECT_FALSE(inj.tripWatchdogAtFrame(1));
    EXPECT_TRUE(inj.tripWatchdogAtFrame(2));
    EXPECT_FALSE(inj.tripWatchdogAtFrame(3));
}

TEST(FaultInjector, FrameCounterIsMonotonicAcrossQueries)
{
    FaultInjector inj(FaultPlan{}, 0);
    EXPECT_EQ(inj.frameStarted(), 0u);
    EXPECT_EQ(inj.frameStarted(), 1u);
    EXPECT_EQ(inj.frameStarted(), 2u);
}

TEST(FaultInjector, DropFillMatchesCacheNamePrefix)
{
    const Result<FaultPlan> plan = FaultPlan::parse(
        "dropfill:l2@every=64;dropfill:tex@every=32");
    ASSERT_TRUE(plan.isOk());
    const FaultInjector inj(*plan, 0);
    EXPECT_EQ(inj.dropFillEvery("l2"), 64u);
    EXPECT_EQ(inj.dropFillEvery("tex0"), 32u);  // prefix match: L1s
    EXPECT_EQ(inj.dropFillEvery("tex13"), 32u);
    EXPECT_EQ(inj.dropFillEvery("tile_cache"), 0u);
    EXPECT_EQ(inj.dropFillEvery("vertex_cache"), 0u);
}

TEST(FaultInjector, DramStallAndKillPointReadBack)
{
    const Result<FaultPlan> plan = FaultPlan::parse(
        "dramstall@every=128,ticks=500;kill@append=3");
    ASSERT_TRUE(plan.isOk());
    const FaultInjector inj(*plan, 0);
    EXPECT_EQ(inj.dramStallEvery(), 128u);
    EXPECT_EQ(inj.dramStallTicks(), Tick{500});
    EXPECT_EQ(inj.killAtAppend(), 3u);

    const FaultInjector none(FaultPlan{}, 0);
    EXPECT_EQ(none.dramStallEvery(), 0u);
    EXPECT_EQ(none.killAtAppend(), 0u);
}

TEST(FaultInjector, TransientFailureTargetsJobAndAttemptWindow)
{
    const Result<FaultPlan> plan =
        FaultPlan::parse("transient@job=3,count=2");
    ASSERT_TRUE(plan.isOk());

    const FaultInjector hit(*plan, 3);
    EXPECT_TRUE(hit.failAttempt(0));
    EXPECT_TRUE(hit.failAttempt(1));
    EXPECT_FALSE(hit.failAttempt(2)); // third attempt succeeds

    const FaultInjector miss(*plan, 4);
    EXPECT_FALSE(miss.failAttempt(0));
}
