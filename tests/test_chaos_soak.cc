/**
 * @file
 * Chaos soak: ≥100 seeded fault plans from fuzzFaultPlan() pushed
 * through SweepRunner::runWithPolicy. Two invariants are locked down:
 *
 *  - Plans containing only sweep-layer faults (transient job failures)
 *    never perturb the simulation: with retries enabled, every result
 *    is byte-identical to the fault-free reference.
 *  - Plans containing model-level faults (watchdog trips, dropped
 *    fills, DRAM stalls) legitimately change results — for those the
 *    contract is determinism: running the same plan twice yields
 *    byte-identical outcomes, and every job ends in a well-formed
 *    state (ok, or an attributed recoverable Status).
 *
 * CI runs this suite plain and under ASan/UBSan; the soak is also the
 * allocation/overread stress for the injection hooks themselves.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/fault_injector.hh"
#include "gpu/gpu_config.hh"
#include "sim/sweep.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

// Tiny jobs: the soak's value is breadth (many plans), not per-run
// depth, and the whole suite has to stay inside the test timeout.
constexpr std::uint32_t kWidth = 128;
constexpr std::uint32_t kHeight = 64;
constexpr std::uint64_t kPlans = 100;

GpuConfig
soakConfig(GpuConfig cfg)
{
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;
    return cfg;
}

std::vector<SweepJob>
soakJobs(const BenchmarkSpec &ccs)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({&ccs, soakConfig(GpuConfig::baseline(8)), 2, 0});
    jobs.push_back({&ccs, soakConfig(GpuConfig::libra(2, 4)), 2, 0});
    return jobs;
}

bool
perturbsTheModel(const FaultPlan &plan)
{
    for (const FaultSpec &f : plan.faults) {
        if (f.kind == FaultKind::WatchdogTrip
            || f.kind == FaultKind::DropCacheFill
            || f.kind == FaultKind::DramStall)
            return true;
    }
    return false;
}

/** Comparable digest of an outcome: per-job report bytes or the full
 *  failure identity. */
std::vector<std::string>
digest(const SweepOutcome &outcome)
{
    std::vector<std::string> out;
    for (const JobOutcome &o : outcome.jobs) {
        if (o.result.isOk()) {
            out.push_back(runReportJson(*o.result));
        } else {
            const Status &st = o.result.status();
            out.push_back(std::string("FAIL ")
                          + errorCodeName(st.code()) + " "
                          + std::string(st.message()));
        }
    }
    return out;
}

} // namespace

TEST(ChaosSoak, HundredSeededPlansBehaveAndDeterministic)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    SweepRunner pool(4);
    SceneCache cache;

    // Fault-free reference, computed once.
    SweepOutcome ref_outcome =
        pool.runWithPolicy(soakJobs(ccs), SweepPolicy{}, &cache);
    ASSERT_EQ(ref_outcome.failureCount(), 0u);
    const std::vector<std::string> reference = digest(ref_outcome);

    std::uint64_t transient_only = 0, model_fault = 0;
    for (std::uint64_t seed = 0; seed < kPlans; ++seed) {
        const FaultPlan plan =
            fuzzFaultPlan(seed, soakJobs(ccs).size());

        SweepPolicy policy;
        policy.faults = plan;
        policy.maxRetries = 2; // covers the fuzzer's count <= 2
        policy.backoffMs = 0;

        SweepOutcome out =
            pool.runWithPolicy(soakJobs(ccs), policy, &cache);
        ASSERT_EQ(out.jobs.size(), 2u) << "seed " << seed;
        EXPECT_FALSE(out.killed) << "seed " << seed;

        // Well-formedness for every plan: each job ran, failures (if
        // any) carry an attributed message.
        for (std::size_t i = 0; i < out.jobs.size(); ++i) {
            const JobOutcome &o = out.jobs[i];
            EXPECT_FALSE(o.notRun) << "seed " << seed;
            EXPECT_GE(o.attempts, 1u) << "seed " << seed;
            if (!o.result.isOk()) {
                EXPECT_EQ(std::string(o.result.status().message())
                              .rfind("job ", 0),
                          0u)
                    << "seed " << seed;
            }
        }

        if (!perturbsTheModel(plan)) {
            // Sweep-layer faults only: with retries enabled the sweep
            // must fully recover, byte-identically.
            ++transient_only;
            EXPECT_EQ(out.failureCount(), 0u)
                << "seed " << seed << ": " << plan.toString();
            EXPECT_EQ(digest(out), reference)
                << "seed " << seed << ": " << plan.toString();
        } else {
            // Model faults change results by design; the contract is
            // reproducibility of the whole outcome.
            ++model_fault;
            SweepOutcome again =
                pool.runWithPolicy(soakJobs(ccs), policy, &cache);
            EXPECT_EQ(digest(out), digest(again))
                << "seed " << seed << ": " << plan.toString();
        }
    }

    // The fuzzer's mix must actually exercise both classes — if the
    // distribution collapses, the soak silently stops testing one side.
    EXPECT_GE(transient_only, 5u);
    EXPECT_GE(model_fault, 10u);
    std::printf("soak: %llu transient-only, %llu model-fault plans\n",
                static_cast<unsigned long long>(transient_only),
                static_cast<unsigned long long>(model_fault));
}

TEST(ChaosSoak, ArmedEmptyPlanIsByteIdenticalToNoPlan)
{
    const BenchmarkSpec &ccs = findBenchmark("CCS");
    SweepRunner pool(2);
    SceneCache cache;

    // A plan with a seed but no faults arms nothing: the injection
    // hooks must be exact no-ops, not merely statistically invisible.
    Result<FaultPlan> empty = FaultPlan::parse("seed=12345");
    ASSERT_TRUE(empty.isOk());
    ASSERT_TRUE(empty->empty());

    SweepPolicy armed;
    armed.faults = *empty;

    const std::vector<std::string> a = digest(
        pool.runWithPolicy(soakJobs(ccs), SweepPolicy{}, &cache));
    const std::vector<std::string> b =
        digest(pool.runWithPolicy(soakJobs(ccs), armed, &cache));
    EXPECT_EQ(a, b);
}
