/**
 * @file
 * Tests for the simulation watchdog: the unit-level triggers, livelock
 * detection over a real event queue, the Gpu-level structured error
 * with its diagnostic dump, and the runner's skip-and-continue
 * degradation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>

#include "gpu/gpu.hh"
#include "gpu/runner.hh"
#include "sim/event_queue.hh"
#include "sim/watchdog.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

TEST(Watchdog, DisabledNeverFires)
{
    const WatchdogConfig cfg; // both triggers 0 = off
    const Watchdog wd(cfg, 0);
    EXPECT_TRUE(wd.check(0).isOk());
    EXPECT_TRUE(wd.check(maxTick / 2).isOk());
}

TEST(Watchdog, CycleBudgetTrips)
{
    WatchdogConfig cfg;
    cfg.cycleBudget = 100;
    const Watchdog wd(cfg, 1000); // budget is relative to the start
    EXPECT_TRUE(wd.check(1000).isOk());
    EXPECT_TRUE(wd.check(1100).isOk());
    const Status st = wd.check(1101);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), ErrorCode::WatchdogExpired);
}

TEST(Watchdog, NoProgressTripsAndProgressRearms)
{
    WatchdogConfig cfg;
    cfg.noProgressCycles = 50;
    Watchdog wd(cfg, 0);
    EXPECT_TRUE(wd.check(50).isOk());
    EXPECT_EQ(wd.check(51).code(), ErrorCode::NoProgress);

    wd.progress(40);
    EXPECT_TRUE(wd.check(90).isOk());
    EXPECT_EQ(wd.lastProgress(), 40u);
    EXPECT_EQ(wd.check(91).code(), ErrorCode::NoProgress);

    // progress() never moves the mark backwards.
    wd.progress(10);
    EXPECT_EQ(wd.lastProgress(), 40u);
}

TEST(Watchdog, DetectsEventQueueLivelock)
{
    // A self-rescheduling event keeps the queue busy forever without
    // any milestone: exactly the failure mode the no-progress trigger
    // exists for.
    EventQueue queue;
    std::function<void()> spin = [&] { queue.scheduleAfter(1, spin); };
    queue.scheduleAfter(1, spin);

    WatchdogConfig cfg;
    cfg.noProgressCycles = 200;
    const Watchdog wd(cfg, queue.now());

    Status st = Status::ok();
    for (int i = 0; i < 100000 && st.isOk(); ++i) {
        ASSERT_TRUE(queue.runOne());
        st = wd.check(queue.now());
    }
    ASSERT_FALSE(st.isOk()) << "livelock not detected";
    EXPECT_EQ(st.code(), ErrorCode::NoProgress);
    EXPECT_LE(queue.now(), 202u); // caught promptly, not after 100k
}

TEST(Watchdog, GpuBudgetExceededReturnsDiagnostics)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    // Far below what any real frame needs: the frame must trip it.
    cfg.watchdog.cycleBudget = 50;

    const Scene scene(findBenchmark("CCS"), 256, 128);
    Gpu gpu(cfg);
    const Result<FrameStats> fs =
        gpu.tryRenderFrame(scene.frame(0), scene.textures());
    ASSERT_FALSE(fs.isOk());
    EXPECT_EQ(fs.status().code(), ErrorCode::WatchdogExpired);

    // The error must carry the diagnostic state dump.
    const std::string &msg = fs.status().message();
    EXPECT_NE(msg.find("tiles flushed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("RU0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("DRAM"), std::string::npos) << msg;

    // A wedged GPU refuses further frames instead of simulating on
    // inconsistent state.
    EXPECT_TRUE(gpu.wedged());
    const Result<FrameStats> again =
        gpu.tryRenderFrame(scene.frame(1), scene.textures());
    ASSERT_FALSE(again.isOk());
    EXPECT_EQ(again.status().code(), ErrorCode::FailedPrecondition);
}

TEST(Watchdog, GpuGenerousBudgetDoesNotFire)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    cfg.watchdog.cycleBudget = std::uint64_t(1) << 40;
    cfg.watchdog.noProgressCycles = std::uint64_t(1) << 32;

    const Scene scene(findBenchmark("CCS"), 256, 128);
    Gpu gpu(cfg);
    const Result<FrameStats> fs =
        gpu.tryRenderFrame(scene.frame(0), scene.textures());
    ASSERT_TRUE(fs.isOk()) << fs.status().toString();
    EXPECT_GT(fs->totalCycles, 0u);
    EXPECT_FALSE(gpu.wedged());

    // Armed-but-untripped must match the unwatched simulation exactly.
    GpuConfig plain = cfg;
    plain.watchdog = WatchdogConfig{};
    Gpu ref(plain);
    const FrameStats rs = ref.renderFrame(scene.frame(0),
                                          scene.textures());
    EXPECT_EQ(fs->totalCycles, rs.totalCycles);
}

TEST(Watchdog, RunnerSkipsWedgedFramesAndContinues)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    cfg.watchdog.cycleBudget = 50;

    const Result<RunResult> r =
        runBenchmark(findBenchmark("CCS"), cfg, 2);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r->frames.size(), 0u);
    ASSERT_EQ(r->skippedFrames.size(), 2u);
    EXPECT_EQ(r->skippedFrames[0], 0u);
    EXPECT_EQ(r->skippedFrames[1], 1u);
}

TEST(Watchdog, RunnerRejectsInvalidConfigUpFront)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.tileSize = 0;
    const Result<RunResult> r =
        runBenchmark(findBenchmark("CCS"), cfg, 1);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(r.status().message().find("CCS"), std::string::npos);
}

TEST(Watchdog, WedgedFrameCountersSurviveTheRebuild)
{
    // Regression: runBenchmark rebuilt the Gpu after a wedged frame
    // without dumping the wedged instance's stats, silently dropping
    // all the work that frame did before the watchdog fired. Counters
    // are now merged across rebuilds.
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    cfg.watchdog.cycleBudget = 50; // wedges every frame

    const Result<RunResult> one =
        runBenchmark(findBenchmark("CCS"), cfg, 1);
    ASSERT_TRUE(one.isOk()) << one.status().toString();
    ASSERT_EQ(one->skippedFrames.size(), 1u);

    // The partial frame ran for ~50 cycles before being killed: its
    // counters must appear in the dump.
    std::uint64_t total = 0;
    for (const auto &[name, value] : one->counters)
        total += value;
    EXPECT_GT(total, 0u);

    // A second wedged frame strictly adds: entrywise >= and a larger
    // grand total (the sum over two partial frames).
    const Result<RunResult> two =
        runBenchmark(findBenchmark("CCS"), cfg, 2);
    ASSERT_TRUE(two.isOk()) << two.status().toString();
    ASSERT_EQ(two->skippedFrames.size(), 2u);
    std::uint64_t total2 = 0;
    for (const auto &[name, value] : two->counters) {
        total2 += value;
        const auto it = one->counters.find(name);
        ASSERT_NE(it, one->counters.end()) << name;
        EXPECT_GE(value, it->second) << name;
    }
    EXPECT_GT(total2, total);
}
