/**
 * @file
 * Unit tests for the Tile Fetcher, driven against mock RasterSinks so
 * the exact delivered stream is observable.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "cache/cache.hh"
#include "cache/mem_system.hh"
#include "core/tile_scheduler.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "gpu/tiling/tile_fetcher.hh"
#include "sim/event_queue.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

/** Records the pushed stream; frees FIFO space on demand. */
class MockSink : public RasterSink
{
  public:
    explicit MockSink(std::size_t depth = 8) : depth_(depth) {}

    bool canPush() const override { return occupancy < depth_; }

    void
    push(const RasterWork &work) override
    {
        ++occupancy;
        stream.push_back(work);
    }

    /** Consume @p n entries (as the raster front would). */
    void
    consume(std::size_t n = 1)
    {
        occupancy = n >= occupancy ? 0 : occupancy - n;
        if (onSpaceFreed)
            onSpaceFreed();
    }

    std::size_t occupancy = 0;
    std::vector<RasterWork> stream;

  private:
    std::size_t depth_;
};

/** Small frame: 2x2 tile grid with known per-tile primitive lists. */
struct Rig
{
    Rig(std::uint32_t num_sinks, std::size_t depth = 64)
        : grid(64, 64, 32), mem(eq, 5),
          cache(eq, CacheConfig{"tile_cache", 32 * 1024, 4, 64, 2, 16,
                                2, true, false},
                mem),
          sched_cfg{}, scheduler(sched_cfg, grid, num_sinks)
    {
        for (std::uint32_t i = 0; i < num_sinks; ++i)
            sinks.push_back(std::make_unique<MockSink>(depth));
        std::vector<RasterSink *> ptrs;
        for (auto &sink : sinks)
            ptrs.push_back(sink.get());
        fetcher = std::make_unique<TileFetcher>(eq, cache, ptrs,
                                                scheduler);

        // Build a frame where tile t holds (t + 1) triangles.
        FrameData frame;
        DrawCall draw;
        for (TileId t = 0; t < grid.tileCount(); ++t) {
            const IRect r = grid.tileRect(t);
            for (TileId k = 0; k <= t; ++k) {
                Triangle tri;
                tri.v[0] = {{static_cast<float>(r.x0) + 2,
                             static_cast<float>(r.y0) + 2, 0.5f},
                            {0, 0}};
                tri.v[1] = {{static_cast<float>(r.x0) + 20,
                             static_cast<float>(r.y0) + 2, 0.5f},
                            {1, 0}};
                tri.v[2] = {{static_cast<float>(r.x0) + 2,
                             static_cast<float>(r.y0) + 20, 0.5f},
                            {0, 1}};
                draw.tris.push_back(tri);
            }
        }
        draw.vertexCount = 3;
        frame.draws.push_back(std::move(draw));
        binned = binFrame(frame, grid);
    }

    void
    run()
    {
        scheduler.beginFrame(FrameFeedback{});
        fetcher->beginFrame(binned);
        // Consume continuously until the stream drains.
        while (!eq.empty() || !fetcher->drained()) {
            eq.runUntil(eq.nextEventTick());
            for (auto &sink : sinks)
                sink->consume(sink->occupancy);
            if (eq.empty() && !fetcher->drained())
                break; // deadlock guard for the test
        }
    }

    EventQueue eq;
    TileGrid grid;
    IdealMemory mem;
    Cache cache;
    SchedulerConfig sched_cfg;
    TileScheduler scheduler;
    std::vector<std::unique_ptr<MockSink>> sinks;
    std::unique_ptr<TileFetcher> fetcher;
    BinnedFrame binned;
};

} // namespace

TEST(TileFetcher, DeliversEveryTileOnce)
{
    Rig rig(1);
    rig.run();
    EXPECT_TRUE(rig.fetcher->drained());
    std::set<TileId> begins, ends;
    for (const auto &work : rig.sinks[0]->stream) {
        if (work.kind == RasterWork::Kind::TileBegin)
            EXPECT_TRUE(begins.insert(work.tile).second);
        if (work.kind == RasterWork::Kind::TileEnd)
            EXPECT_TRUE(ends.insert(work.tile).second);
    }
    EXPECT_EQ(begins.size(), rig.grid.tileCount());
    EXPECT_EQ(ends.size(), rig.grid.tileCount());
}

TEST(TileFetcher, StreamIsWellFormed)
{
    // Begin → prims → End per tile; prims carry the owning tile id.
    Rig rig(1);
    rig.run();
    bool in_tile = false;
    TileId current = invalidId;
    for (const auto &work : rig.sinks[0]->stream) {
        switch (work.kind) {
          case RasterWork::Kind::TileBegin:
            EXPECT_FALSE(in_tile);
            in_tile = true;
            current = work.tile;
            break;
          case RasterWork::Kind::Prim:
            EXPECT_TRUE(in_tile);
            EXPECT_EQ(work.tile, current);
            break;
          case RasterWork::Kind::TileEnd:
            EXPECT_TRUE(in_tile);
            EXPECT_EQ(work.tile, current);
            in_tile = false;
            break;
        }
    }
    EXPECT_FALSE(in_tile);
}

TEST(TileFetcher, DeliversFullPrimitiveListsInOrder)
{
    Rig rig(1);
    rig.run();
    std::map<TileId, std::vector<std::uint32_t>> delivered;
    for (const auto &work : rig.sinks[0]->stream) {
        if (work.kind == RasterWork::Kind::Prim)
            delivered[work.tile].push_back(work.primIndex);
    }
    for (TileId t = 0; t < rig.grid.tileCount(); ++t) {
        EXPECT_EQ(delivered[t], rig.binned.tileLists[t])
            << "tile " << t;
    }
}

TEST(TileFetcher, SplitsTilesAcrossSinks)
{
    Rig rig(2);
    rig.run();
    std::set<TileId> tiles0, tiles1;
    for (const auto &work : rig.sinks[0]->stream) {
        if (work.kind == RasterWork::Kind::TileBegin)
            tiles0.insert(work.tile);
    }
    for (const auto &work : rig.sinks[1]->stream) {
        if (work.kind == RasterWork::Kind::TileBegin)
            tiles1.insert(work.tile);
    }
    EXPECT_FALSE(tiles0.empty());
    EXPECT_FALSE(tiles1.empty());
    EXPECT_EQ(tiles0.size() + tiles1.size(), rig.grid.tileCount());
    for (const TileId t : tiles0)
        EXPECT_EQ(tiles1.count(t), 0u);
}

TEST(TileFetcher, RespectsFifoBackpressure)
{
    // With a tiny FIFO and no consumption, the fetcher must stop after
    // filling it (no overflow pushes).
    Rig rig(1, 4);
    rig.scheduler.beginFrame(FrameFeedback{});
    rig.fetcher->beginFrame(rig.binned);
    rig.eq.runUntil();
    EXPECT_LE(rig.sinks[0]->occupancy, 4u);
    EXPECT_FALSE(rig.fetcher->drained());
    // Consuming unblocks it.
    for (int i = 0; i < 10000 && !rig.fetcher->drained(); ++i) {
        rig.sinks[0]->consume(rig.sinks[0]->occupancy);
        rig.eq.runUntil();
    }
    EXPECT_TRUE(rig.fetcher->drained());
}

TEST(TileFetcher, GeneratesParameterBufferTraffic)
{
    Rig rig(1);
    rig.run();
    EXPECT_GT(rig.fetcher->listLineReads.value(), 0u);
    EXPECT_GT(rig.fetcher->recordReads.value(), 0u);
    // One record read per delivered primitive.
    EXPECT_EQ(rig.fetcher->recordReads.value(),
              rig.fetcher->primsFetched.value());
    // Reads hit the tile cache with the ParameterBuffer class.
    EXPECT_GT(rig.cache.readAccesses.value(), 0u);
}

TEST(TileFetcher, CountsTilesAndPrims)
{
    Rig rig(1);
    rig.run();
    EXPECT_EQ(rig.fetcher->tilesFetched.value(), rig.grid.tileCount());
    std::uint64_t expected_prims = 0;
    for (const auto &list : rig.binned.tileLists)
        expected_prims += list.size();
    EXPECT_EQ(rig.fetcher->primsFetched.value(), expected_prims);
}
