/**
 * @file
 * Differential equivalence: configurations that are nominally different
 * but model the same machine must produce counter-identical runs.
 *
 *  - PTR with one Raster Unit is literally the baseline organization.
 *  - LIBRA with every adaptation pinned (min == max == initial
 *    supertile, thresholds set so neither the ordering nor the size
 *    ever changes) degenerates to StaticSupertile.
 *  - A supertile of side 1 is plain Z-order traversal.
 *
 * Comparisons use RunResult::counters — the flat registry of every
 * component's cumulative counters — rather than the JSON report, whose
 * config echo legitimately differs between the two sides.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 256;
constexpr std::uint32_t H = 128;
constexpr std::uint32_t kFrames = 3;

/** Render @p frames of CCS and return the cumulative counter dump. */
std::map<std::string, std::uint64_t>
runCounters(GpuConfig cfg)
{
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    cfg.checkInvariants = true; // the laws ride along for free
    const Scene scene(findBenchmark("CCS"), W, H);
    const Result<RunResult> r = runBenchmark(scene, cfg, kFrames);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    return r.isOk() ? r->counters
                    : std::map<std::string, std::uint64_t>{};
}

/**
 * LIBRA with its adaptive controller pinned: one legal supertile size
 * (min == max == initial == S), a hit-ratio threshold of zero so the
 * "memory not congested -> Z-order" rule always holds, and an order-
 * switch threshold no variation can exceed so the controller never
 * re-evaluates or escapes. Must equal StaticSupertile(S).
 */
GpuConfig
pinnedLibra(std::uint32_t s)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.sched.minSupertileSize = s;
    cfg.sched.maxSupertileSize = s;
    cfg.sched.initialSupertileSize = s;
    cfg.sched.staticSupertileSize = s;
    cfg.sched.hitRatioThreshold = 0.0;
    cfg.sched.orderSwitchThreshold = 1e30;
    return cfg;
}

} // namespace

TEST(DiffEquivalence, SingleRuPtrIsTheBaseline)
{
    // ptr(1, 8) and baseline(8) build the identical machine: one RU,
    // eight cores, Z-order dispatch.
    const auto ptr = runCounters(GpuConfig::ptr(1, 8));
    const auto base = runCounters(GpuConfig::baseline(8));
    ASSERT_FALSE(ptr.empty());
    EXPECT_EQ(ptr, base);
}

TEST(DiffEquivalence, PinnedLibraIsStaticSupertile)
{
    for (const std::uint32_t s : {1u, 2u, 4u}) {
        const auto libra = runCounters(pinnedLibra(s));
        const auto fixed =
            runCounters(GpuConfig::staticSupertile(s, 2, 4));
        ASSERT_FALSE(libra.empty());
        EXPECT_EQ(libra, fixed) << "supertile side " << s;
    }
}

TEST(DiffEquivalence, UnitSupertileIsZOrder)
{
    // A 1x1 supertile is a single tile, so StaticSupertile(1) visits
    // tiles in exactly the plain Morton order of the PTR baseline.
    const auto fixed = runCounters(GpuConfig::staticSupertile(1, 2, 4));
    const auto zorder = runCounters(GpuConfig::ptr(2, 4));
    ASSERT_FALSE(fixed.empty());
    EXPECT_EQ(fixed, zorder);
}

TEST(DiffEquivalence, DistinctMachinesDoDiffer)
{
    // Sanity for the harness itself: the comparison is sharp enough to
    // tell genuinely different organizations apart.
    const auto one = runCounters(GpuConfig::ptr(1, 8));
    const auto two = runCounters(GpuConfig::ptr(2, 4));
    EXPECT_NE(one, two);
}
