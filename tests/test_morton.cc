/**
 * @file
 * Property tests for Morton (Z-order) encoding.
 */

#include <gtest/gtest.h>

#include "common/morton.hh"
#include "common/rng.hh"

using namespace libra;

TEST(Morton, KnownValues)
{
    EXPECT_EQ(mortonEncode(0, 0), 0u);
    EXPECT_EQ(mortonEncode(1, 0), 1u);
    EXPECT_EQ(mortonEncode(0, 1), 2u);
    EXPECT_EQ(mortonEncode(1, 1), 3u);
    EXPECT_EQ(mortonEncode(2, 0), 4u);
    EXPECT_EQ(mortonEncode(7, 7), 63u);
}

TEST(Morton, RoundTripExhaustiveSmall)
{
    for (std::uint32_t x = 0; x < 64; ++x) {
        for (std::uint32_t y = 0; y < 64; ++y) {
            const std::uint32_t code = mortonEncode(x, y);
            EXPECT_EQ(mortonDecodeX(code), x);
            EXPECT_EQ(mortonDecodeY(code), y);
        }
    }
}

TEST(Morton, RoundTripRandom16Bit)
{
    Rng rng(123);
    for (int i = 0; i < 10000; ++i) {
        const auto x = static_cast<std::uint32_t>(rng.below(1u << 16));
        const auto y = static_cast<std::uint32_t>(rng.below(1u << 16));
        const std::uint32_t code = mortonEncode(x, y);
        EXPECT_EQ(mortonDecodeX(code), x);
        EXPECT_EQ(mortonDecodeY(code), y);
    }
}

TEST(Morton, CodesAreUniqueOnGrid)
{
    // Bijectivity on a 32x32 grid.
    std::vector<bool> seen(32 * 32, false);
    for (std::uint32_t x = 0; x < 32; ++x) {
        for (std::uint32_t y = 0; y < 32; ++y) {
            const std::uint32_t code = mortonEncode(x, y);
            ASSERT_LT(code, seen.size());
            EXPECT_FALSE(seen[code]);
            seen[code] = true;
        }
    }
}

TEST(Morton, ConsecutiveCodesAreSpatiallyAdjacentOften)
{
    // The Z curve's locality: consecutive codes differ by a small
    // Manhattan distance most of the time (this is why it is the
    // cache-friendly baseline traversal).
    int close = 0;
    const int total = 1023;
    for (std::uint32_t code = 0; code < static_cast<std::uint32_t>(total);
         ++code) {
        const int x0 = static_cast<int>(mortonDecodeX(code));
        const int y0 = static_cast<int>(mortonDecodeY(code));
        const int x1 = static_cast<int>(mortonDecodeX(code + 1));
        const int y1 = static_cast<int>(mortonDecodeY(code + 1));
        if (std::abs(x0 - x1) + std::abs(y0 - y1) <= 2)
            ++close;
    }
    EXPECT_GT(close, total * 3 / 4);
}

TEST(Morton, SpreadCompactInverse)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = static_cast<std::uint32_t>(rng.below(1u << 16));
        EXPECT_EQ(mortonCompact(mortonSpread(v)), v);
    }
}
