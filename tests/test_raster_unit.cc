/**
 * @file
 * Unit tests for one Raster Unit, driven directly through its FIFO
 * interface with hand-built binned frames and ideal memory.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "cache/mem_system.hh"
#include "gpu/raster/raster_unit.hh"
#include "sim/event_queue.hh"

using namespace libra;

namespace
{

struct Rig
{
    explicit Rig(std::uint32_t cores = 2, bool capture = true,
                 Tick mem_latency = 5)
        : grid(64, 64, 32), mem(eq, mem_latency)
    {
        tex_id = pool.create(64, 64).id();

        CacheConfig l1_cfg{"tex", 32 * 1024, 4, 64, 2, 16, 2, true,
                           false};
        for (std::uint32_t i = 0; i < cores; ++i) {
            l1s.push_back(std::make_unique<Cache>(eq, l1_cfg, mem));
        }
        std::vector<Cache *> l1_ptrs;
        for (auto &l1 : l1s)
            l1_ptrs.push_back(l1.get());

        RasterUnitConfig cfg;
        cfg.cores = cores;
        cfg.tileSize = 32;
        cfg.fifoDepth = 64;
        cfg.captureImage = capture;
        ru = std::make_unique<RasterUnit>(eq, cfg, grid, mem, l1_ptrs);
        ru->onTileDone = [this](const TileDoneInfo &info) {
            done.push_back(info);
            if (info.colorBuffer)
                images.push_back(*info.colorBuffer);
        };
    }

    /** Add a right triangle covering the top-left of tile @p tile. */
    void
    addTriangle(TileId tile, float depth = 0.5f, bool blend = false,
                float size = 24.0f)
    {
        const IRect r = grid.tileRect(tile);
        Triangle tri;
        tri.textureId = tex_id;
        tri.blend = blend;
        tri.shaderAluOps = 4;
        tri.v[0] = {{static_cast<float>(r.x0), static_cast<float>(r.y0),
                     depth},
                    {0.0f, 0.0f}};
        tri.v[1] = {{static_cast<float>(r.x0) + size,
                     static_cast<float>(r.y0), depth},
                    {1.0f, 0.0f}};
        tri.v[2] = {{static_cast<float>(r.x0),
                     static_cast<float>(r.y0) + size, depth},
                    {0.0f, 1.0f}};
        const auto index = static_cast<std::uint32_t>(frame.tris.size());
        frame.tris.push_back(tri);
        frame.triVertexCost.push_back(8);
        if (frame.tileLists.empty())
            frame.tileLists.resize(grid.tileCount());
        frame.tileLists[tile].push_back(index);
    }

    /** Stream a full tile through the FIFO. */
    void
    streamTile(TileId tile)
    {
        ru->push({RasterWork::Kind::TileBegin, tile, 0});
        if (!frame.tileLists.empty()) {
            for (const auto prim : frame.tileLists[tile])
                ru->push({RasterWork::Kind::Prim, tile, prim});
        }
        ru->push({RasterWork::Kind::TileEnd, tile, 0});
    }

    void
    begin()
    {
        if (frame.tileLists.empty())
            frame.tileLists.resize(grid.tileCount());
        ru->beginFrame(frame, pool);
    }

    EventQueue eq;
    TileGrid grid;
    IdealMemory mem;
    TexturePool pool;
    std::uint32_t tex_id;
    std::vector<std::unique_ptr<Cache>> l1s;
    std::unique_ptr<RasterUnit> ru;
    BinnedFrame frame;
    std::vector<TileDoneInfo> done;
    std::vector<std::vector<std::uint64_t>> images;
};

} // namespace

TEST(RasterUnit, EmptyTileCompletesAndFlushes)
{
    Rig rig;
    rig.begin();
    rig.streamTile(0);
    rig.eq.runUntil();
    ASSERT_EQ(rig.done.size(), 1u);
    EXPECT_EQ(rig.done[0].tile, 0u);
    EXPECT_EQ(rig.done[0].instructions, 0u);
    EXPECT_EQ(rig.done[0].warps, 0u);
    // Flush still writes the (clear-color) tile: 32*32*4 B.
    EXPECT_EQ(rig.ru->flushBytes.value(), 32u * 32u * 4u);
    EXPECT_TRUE(rig.ru->idle());
}

TEST(RasterUnit, SingleTriangleTileProducesWork)
{
    Rig rig;
    rig.addTriangle(0);
    rig.begin();
    rig.streamTile(0);
    rig.eq.runUntil();
    ASSERT_EQ(rig.done.size(), 1u);
    EXPECT_GT(rig.done[0].instructions, 0u);
    EXPECT_GT(rig.done[0].fragments, 0u);
    EXPECT_EQ(rig.ru->primsRasterized.value(), 1u);
    EXPECT_GT(rig.ru->warpsLaunched.value(), 0u);
    // A 24x24 right triangle at pixel centers covers
    // sum_{y=0}^{22}(23-y) = 276 fragments (the hypotenuse's centers
    // land exactly on the edge and are excluded by the fill rule).
    EXPECT_EQ(rig.done[0].fragments, 276u);
}

TEST(RasterUnit, EarlyZKillsOccludedOpaque)
{
    Rig near_first;
    near_first.addTriangle(0, 0.2f);
    near_first.addTriangle(0, 0.8f); // behind, same footprint
    near_first.begin();
    near_first.streamTile(0);
    near_first.eq.runUntil();

    Rig far_first;
    far_first.addTriangle(0, 0.8f);
    far_first.addTriangle(0, 0.2f); // in front, drawn second
    far_first.begin();
    far_first.streamTile(0);
    far_first.eq.runUntil();

    // Front-to-back order shades half the fragments of back-to-front.
    EXPECT_EQ(near_first.done[0].fragments, 276u);
    EXPECT_EQ(far_first.done[0].fragments, 552u);
}

TEST(RasterUnit, BlendedDoesNotWriteDepth)
{
    Rig rig;
    rig.addTriangle(0, 0.2f, true);  // translucent in front
    rig.addTriangle(0, 0.8f, false); // opaque behind, drawn later
    rig.begin();
    rig.streamTile(0);
    rig.eq.runUntil();
    // Both layers shade: the translucent one must not occlude.
    EXPECT_EQ(rig.done[0].fragments, 552u);
}

TEST(RasterUnit, ImageHashDependsOnPrimitiveOrder)
{
    // Blending is order-sensitive; swapping two translucent layers
    // must change the image (and our in-order commit must therefore
    // preserve program order even when warps retire out of order).
    auto run_order = [](std::uint32_t first, std::uint32_t second) {
        Rig rig;
        rig.addTriangle(0, 0.5f, true);
        rig.addTriangle(0, 0.4f, true);
        rig.begin();
        rig.ru->push({RasterWork::Kind::TileBegin, 0, 0});
        rig.ru->push({RasterWork::Kind::Prim, 0, first});
        rig.ru->push({RasterWork::Kind::Prim, 0, second});
        rig.ru->push({RasterWork::Kind::TileEnd, 0, 0});
        rig.eq.runUntil();
        EXPECT_EQ(rig.images.size(), 1u);
        return rig.images.at(0);
    };
    EXPECT_NE(run_order(0, 1), run_order(1, 0));
}

TEST(RasterUnit, MultipleTilesCompleteInSubmissionOrder)
{
    Rig rig;
    for (TileId t = 0; t < 4; ++t)
        rig.addTriangle(t);
    rig.begin();
    for (TileId t = 0; t < 4; ++t)
        rig.streamTile(t);
    rig.eq.runUntil();
    ASSERT_EQ(rig.done.size(), 4u);
    for (TileId t = 0; t < 4; ++t)
        EXPECT_EQ(rig.done[t].tile, t);
    for (std::size_t i = 1; i < rig.done.size(); ++i)
        EXPECT_GE(rig.done[i].flushedAt, rig.done[i - 1].flushedAt);
}

TEST(RasterUnit, RunAheadOverlapsTiles)
{
    // With slow memory, two tiles back-to-back must finish faster than
    // twice a single tile (tile 1 rasterizes under tile 0's shading).
    auto run_tiles = [](int n) {
        Rig rig(2, false, 200);
        for (TileId t = 0; t < static_cast<TileId>(n); ++t) {
            rig.addTriangle(t, 0.5f, false, 32.0f);
        }
        rig.begin();
        for (TileId t = 0; t < static_cast<TileId>(n); ++t)
            rig.streamTile(t);
        rig.eq.runUntil();
        return rig.eq.now();
    };
    const Tick one = run_tiles(1);
    const Tick two = run_tiles(2);
    EXPECT_LT(two, 2 * one);
}

TEST(RasterUnit, FifoBackpressureExposed)
{
    Rig rig;
    rig.begin();
    int freed = 0;
    rig.ru->onSpaceFreed = [&] { ++freed; };
    rig.streamTile(0);
    EXPECT_TRUE(rig.ru->canPush());
    rig.eq.runUntil();
    EXPECT_GT(freed, 0);
}

TEST(RasterUnit, InstructionCountMatchesWarpMath)
{
    Rig rig;
    rig.addTriangle(0);
    rig.begin();
    rig.streamTile(0);
    rig.eq.runUntil();
    // 300 fragments in quads of up to 8 per warp with aluOps=4,
    // 1 sample per quad, tail 2: instructions = sum over warps of
    // (4 + quads + 2). Cross-check against the RU counters.
    const std::uint64_t warps = rig.done[0].warps;
    const std::uint64_t quads = rig.ru->quadsProduced.value();
    EXPECT_EQ(rig.done[0].instructions, warps * (4 + 2) + quads);
}

TEST(RasterUnitDeathTest, PushWithoutTilePanics)
{
    Rig rig;
    rig.addTriangle(0);
    rig.begin();
    // push() advances the front synchronously, so the panic fires
    // inside the push itself.
    EXPECT_DEATH(rig.ru->push({RasterWork::Kind::Prim, 0, 0}),
                 "primitive outside any tile");
}
