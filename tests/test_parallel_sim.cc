/**
 * @file
 * Sharded-engine contract tests (DESIGN.md §8).
 *
 * The deterministic parallel engine's whole value is one equality:
 * counters, RunReports and chrome traces must be byte-identical for
 * --sim-threads 1 and --sim-threads N, for any N, run after run. These
 * tests pin that contract across the diff_check machine shapes, check
 * the conservative-window invariant directly (no shared-domain
 * completion ever delivers inside the window that produced it), and
 * cover the SimThreadPool / oversubscription-clamp building blocks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "check/fault_injector.hh"
#include "gpu/gpu.hh"
#include "gpu/runner.hh"
#include "sim/sim_thread_pool.hh"
#include "sim/sweep.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

// Small frames: the suite's value is the 1-vs-N equality, not per-run
// depth, and it has to stay inside the test timeout on 1-core CI.
constexpr std::uint32_t kWidth = 128;
constexpr std::uint32_t kHeight = 64;
constexpr std::uint32_t kFrames = 2;

GpuConfig
at(GpuConfig cfg, std::uint32_t threads)
{
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;
    cfg.simThreads = threads;
    return cfg;
}

/** The diff_check machine shapes, one per scheduler code path. */
std::vector<GpuConfig>
matrixShapes()
{
    return {GpuConfig::ptr(2, 4), GpuConfig::libra(2, 4),
            GpuConfig::staticSupertile(2, 2, 4)};
}

} // namespace

TEST(ParallelSim, OneVsFourThreadsByteIdentical)
{
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    for (const GpuConfig &shape : matrixShapes()) {
        GpuConfig one = at(shape, 1);
        GpuConfig four = at(shape, 4);
        one.traceEvents = true;
        four.traceEvents = true;

        Result<RunResult> a = runBenchmark(scene, one, kFrames);
        Result<RunResult> b = runBenchmark(scene, four, kFrames);
        ASSERT_TRUE(a.isOk()) << a.status().toString();
        ASSERT_TRUE(b.isOk()) << b.status().toString();

        // Counter dump, serialized report and trace export — all to
        // the byte. (configHash mixes only "sharded or not", so the
        // reports really are comparable.)
        EXPECT_EQ(a->counters, b->counters);
        EXPECT_EQ(runReportJson(*a), runReportJson(*b));
        ASSERT_NE(a->trace, nullptr);
        ASSERT_NE(b->trace, nullptr);
        EXPECT_EQ(a->trace->chromeTraceJson(),
                  b->trace->chromeTraceJson());
    }
}

TEST(ParallelSim, RunTwiceAtFourThreadsIsDeterministic)
{
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    GpuConfig cfg = at(GpuConfig::libra(2, 4), 4);
    cfg.traceEvents = true;

    Result<RunResult> first = runBenchmark(scene, cfg, kFrames);
    Result<RunResult> second = runBenchmark(scene, cfg, kFrames);
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    ASSERT_TRUE(second.isOk()) << second.status().toString();
    EXPECT_EQ(first->counters, second->counters);
    EXPECT_EQ(runReportJson(*first), runReportJson(*second));
    EXPECT_EQ(first->trace->chromeTraceJson(),
              second->trace->chromeTraceJson());
}

TEST(ParallelSim, WindowBarrierNeverDeliversEarly)
{
    // Drive the engine directly and read its invariant counters: work
    // crossed the RU/shared boundary, windows ran in parallel, and no
    // completion was ever scheduled inside the window that produced it
    // (the conservative-lookahead safety property).
    const Scene scene(findBenchmark("CCS"), kWidth, kHeight);
    Gpu gpu(at(GpuConfig::libra(2, 4), 2));
    for (std::uint32_t f = 0; f < kFrames; ++f)
        gpu.renderFrame(scene.frame(f), scene.textures());

    const ShardEngine *engine = gpu.shardEngine();
    ASSERT_NE(engine, nullptr);
    const ShardEngine::Stats &st = engine->stats();
    EXPECT_GT(st.windows, 0u);
    EXPECT_GT(st.crossMessages, 0u);
    EXPECT_EQ(st.earlyDeliveries, 0u)
        << "a shared-domain completion was scheduled inside its own "
           "window — the lookahead bound is broken";
    EXPECT_EQ(engine->lookahead(), gpu.cfg().shardLookahead());

    // The sequential engine must not exist at simThreads = 0.
    Gpu sequential(at(GpuConfig::libra(2, 4), 0));
    EXPECT_EQ(sequential.shardEngine(), nullptr);
}

TEST(ParallelSim, ArmedFaultsStayDeterministicAcrossThreadCounts)
{
    // Model-level faults (dropped fills in both domains, DRAM stalls)
    // must not break the 1-vs-N contract: the injection hooks are
    // shard-local or coordinator-applied, never racy.
    Result<FaultPlan> plan = FaultPlan::parse(
        "seed=7;dropfill:l2@every=64;dropfill:tex_l1_ru0_c0@every=32;"
        "dramstall@every=256,ticks=120");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();

    const BenchmarkSpec &ccs = findBenchmark("CCS");
    SweepPolicy policy;
    policy.faults = *plan;

    SweepRunner pool(2);
    SceneCache cache;
    const auto digest = [&](std::uint32_t threads) {
        std::vector<SweepJob> jobs;
        jobs.push_back(
            {&ccs, at(GpuConfig::libra(2, 4), threads), kFrames, 0});
        SweepOutcome out =
            pool.runWithPolicy(std::move(jobs), policy, &cache);
        std::vector<std::string> d;
        for (const JobOutcome &o : out.jobs) {
            d.push_back(o.result.isOk()
                            ? runReportJson(*o.result)
                            : "FAIL " + o.result.status().toString());
        }
        return d;
    };

    const std::vector<std::string> one = digest(1);
    EXPECT_EQ(one, digest(4));
    EXPECT_EQ(one, digest(1)); // run-twice under faults
}

TEST(SimThreadPool, PartitionsAllIndicesExactlyOnce)
{
    SimThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    std::vector<std::atomic<std::uint32_t>> hits(1000);
    pool.parallelFor(1000, [&](std::uint32_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint32_t i = 0; i < 1000; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << i;
}

TEST(SimThreadPool, ReusableAndHandlesEdgeCounts)
{
    SimThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(0, [&](std::uint32_t) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 0u);
    pool.parallelFor(1, [&](std::uint32_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 1u);
    // Back-to-back windows exercise the epoch/parking handshake.
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(7, [&](std::uint32_t) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 1u + 50u * 7u);
}

TEST(SimThreadPool, SingleLanePoolRunsInline)
{
    SimThreadPool pool(1);
    std::uint64_t sum = 0; // no atomics needed: everything is inline
    pool.parallelFor(100, [&](std::uint32_t i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
}

TEST(OversubscriptionClamp, JobsTimesLanesBoundedByHardware)
{
    // 8 jobs x 4 lanes on a 16-CPU box: clamp to 4 jobs.
    EXPECT_EQ(clampOversubscribedJobs(8, 4, 16), 4u);
    // Fits: untouched.
    EXPECT_EQ(clampOversubscribedJobs(4, 4, 16), 4u);
    EXPECT_EQ(clampOversubscribedJobs(16, 1, 16), 16u);
    // Sequential engine (0 lanes) counts as one lane.
    EXPECT_EQ(clampOversubscribedJobs(16, 0, 16), 16u);
    EXPECT_EQ(clampOversubscribedJobs(32, 0, 16), 16u);
    // Unknown hardware: leave the request alone.
    EXPECT_EQ(clampOversubscribedJobs(8, 4, 0), 8u);
    // Never below one job, even when lanes alone oversubscribe.
    EXPECT_EQ(clampOversubscribedJobs(4, 8, 4), 1u);
    EXPECT_EQ(clampOversubscribedJobs(0, 2, 4), 1u);
}

TEST(GpuConfigSharding, LookaheadAndValidation)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    EXPECT_EQ(cfg.shardLookahead(), cfg.l2.hitLatency);
    cfg.l2.hitLatency = 0;
    EXPECT_EQ(cfg.shardLookahead(), 1u);

    GpuConfig bad = at(GpuConfig::libra(2, 4), 65);
    EXPECT_FALSE(bad.validate().isOk());
    EXPECT_TRUE(at(GpuConfig::libra(2, 4), 64).validate().isOk());

    // The thread count is not model identity — only the engine is.
    const std::uint64_t seq = at(GpuConfig::libra(2, 4), 0).configHash();
    const std::uint64_t one = at(GpuConfig::libra(2, 4), 1).configHash();
    const std::uint64_t four =
        at(GpuConfig::libra(2, 4), 4).configHash();
    EXPECT_EQ(one, four);
    EXPECT_NE(seq, one);
}
