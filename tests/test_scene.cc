/**
 * @file
 * Tests for the synthetic scene generator: determinism, frame-to-frame
 * coherence, screen coverage and genre properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

const std::uint32_t W = 960;
const std::uint32_t H = 544;

/** Centroid of all triangles of a draw. */
Vec2
centroid(const DrawCall &draw)
{
    Vec2 sum{0, 0};
    int n = 0;
    for (const auto &tri : draw.tris) {
        for (const auto &v : tri.v) {
            sum = sum + v.pos.xy();
            ++n;
        }
    }
    return n == 0 ? sum : sum * (1.0f / static_cast<float>(n));
}

} // namespace

TEST(Scene, FrameIsPureFunctionOfIndex)
{
    const Scene scene(findBenchmark("CCS"), W, H);
    const FrameData a = scene.frame(7);
    const FrameData b = scene.frame(7);
    ASSERT_EQ(a.draws.size(), b.draws.size());
    for (std::size_t d = 0; d < a.draws.size(); ++d) {
        ASSERT_EQ(a.draws[d].tris.size(), b.draws[d].tris.size());
        for (std::size_t t = 0; t < a.draws[d].tris.size(); ++t) {
            for (int v = 0; v < 3; ++v) {
                EXPECT_EQ(a.draws[d].tris[t].v[v].pos,
                          b.draws[d].tris[t].v[v].pos);
                EXPECT_EQ(a.draws[d].tris[t].v[v].uv,
                          b.draws[d].tris[t].v[v].uv);
            }
        }
    }
}

TEST(Scene, IdenticalAcrossInstances)
{
    const Scene a(findBenchmark("SuS"), W, H);
    const Scene b(findBenchmark("SuS"), W, H);
    const FrameData fa = a.frame(3);
    const FrameData fb = b.frame(3);
    ASSERT_EQ(fa.triangleCount(), fb.triangleCount());
    EXPECT_EQ(fa.draws[5].tris[0].v[0].pos.x,
              fb.draws[5].tris[0].v[0].pos.x);
}

TEST(Scene, StructureStableAcrossFrames)
{
    const Scene scene(findBenchmark("HCR"), W, H);
    const FrameData f0 = scene.frame(0);
    const FrameData f5 = scene.frame(5);
    EXPECT_EQ(f0.draws.size(), f5.draws.size());
    EXPECT_EQ(f0.triangleCount(), f5.triangleCount());
    EXPECT_EQ(f0.vertexCount(), f5.vertexCount());
}

TEST(Scene, FrameToFrameCoherence)
{
    // Consecutive frames: object centroids move by small deltas (the
    // property Fig. 8 depends on).
    const Scene scene(findBenchmark("CCS"), W, H);
    const FrameData f0 = scene.frame(10);
    const FrameData f1 = scene.frame(11);
    ASSERT_EQ(f0.draws.size(), f1.draws.size());
    // Particles teleport every frame by design; everything else moves
    // smoothly. Require the vast majority of draws to be coherent.
    int coherent = 0, total = 0;
    for (std::size_t d = 0; d < f0.draws.size(); ++d) {
        if (f0.draws[d].tris.empty())
            continue;
        const Vec2 c0 = centroid(f0.draws[d]);
        const Vec2 c1 = centroid(f1.draws[d]);
        const float dist = std::hypot(c1.x - c0.x, c1.y - c0.y);
        ++total;
        coherent += dist < 40.0f;
    }
    const BenchmarkSpec &spec = findBenchmark("CCS");
    EXPECT_GE(coherent,
              total - static_cast<int>(spec.particleCount));
}

TEST(Scene, MostTrianglesOnScreen)
{
    const Scene scene(findBenchmark("CoC"), W, H);
    const FrameData frame = scene.frame(2);
    int on = 0, total = 0;
    const IRect vp{0, 0, static_cast<std::int32_t>(W),
                   static_cast<std::int32_t>(H)};
    for (const auto &draw : frame.draws) {
        for (const auto &tri : draw.tris) {
            ++total;
            on += !tri.boundingBox(vp).empty();
        }
    }
    EXPECT_GT(on, total * 3 / 4);
}

TEST(Scene, DepthsWithinUnitRange)
{
    const Scene scene(findBenchmark("SuS"), W, H);
    const FrameData frame = scene.frame(0);
    for (const auto &draw : frame.draws) {
        for (const auto &tri : draw.tris) {
            for (const auto &v : tri.v) {
                EXPECT_GE(v.pos.z, 0.0f);
                EXPECT_LE(v.pos.z, 1.0f);
            }
        }
    }
}

TEST(Scene, TextureIdsValid)
{
    const Scene scene(findBenchmark("RoM"), W, H);
    const FrameData frame = scene.frame(1);
    for (const auto &draw : frame.draws) {
        for (const auto &tri : draw.tris)
            EXPECT_LT(tri.textureId, scene.textures().count());
    }
}

TEST(Scene, HudDrawnLastAndBlended)
{
    const BenchmarkSpec &spec = findBenchmark("SuS");
    ASSERT_GT(spec.hudBars, 0u);
    const Scene scene(spec, W, H);
    const FrameData frame = scene.frame(0);
    // The last hudBars draws are the HUD: translucent, near depth.
    for (std::uint32_t i = 0; i < spec.hudBars; ++i) {
        const auto &draw = frame.draws[frame.draws.size() - 1 - i];
        ASSERT_FALSE(draw.tris.empty());
        EXPECT_TRUE(draw.tris[0].blend);
        EXPECT_LT(draw.tris[0].v[0].pos.z, 0.1f);
    }
}

TEST(Scene, G3dOpaqueFrontToBack)
{
    const BenchmarkSpec &spec = findBenchmark("SuS"); // 3D runner
    ASSERT_EQ(spec.genre, Genre::G3D);
    const Scene scene(spec, W, H);
    const FrameData frame = scene.frame(0);
    // Opaque prefix must have non-decreasing depth (front-to-back).
    float last_depth = -1.0f;
    for (const auto &draw : frame.draws) {
        if (draw.tris.empty() || draw.tris[0].blend)
            break;
        const float z = draw.tris[0].v[0].pos.z;
        EXPECT_GE(z + 0.36f, last_depth); // mesh rows span ~0.35 depth
        last_depth = z;
    }
}

TEST(Scene, SpritesShareArtRegions)
{
    // With few regions per sheet, at least two sprites must sample the
    // identical uv rectangle (the footprint-bounding property).
    const BenchmarkSpec &spec = findBenchmark("CCS");
    const Scene scene(spec, W, H);
    const FrameData frame = scene.frame(0);
    std::map<std::pair<float, float>, int> region_use;
    for (const auto &draw : frame.draws) {
        if (draw.tris.size() != 2)
            continue;
        const auto &uv = draw.tris[0].v[0].uv;
        region_use[{uv.x, uv.y}]++;
    }
    int shared = 0;
    for (const auto &[region, uses] : region_use)
        shared += uses > 1;
    EXPECT_GT(shared, 0);
}

TEST(Scene, SceneCutChangesHotspotsAbruptly)
{
    const BenchmarkSpec &spec = findBenchmark("CCS");
    const Scene scene(spec, W, H);
    const std::uint32_t e = spec.epochFrames;
    // Across the epoch boundary the layout changes far more than
    // within an epoch.
    const FrameData before = scene.frame(e - 1);
    const FrameData after = scene.frame(e);
    const FrameData within = scene.frame(e - 2);
    double cut_delta = 0.0, smooth_delta = 0.0;
    for (std::size_t d = 0; d < before.draws.size(); ++d) {
        if (before.draws[d].tris.empty())
            continue;
        const Vec2 b = centroid(before.draws[d]);
        const Vec2 a = centroid(after.draws[d]);
        const Vec2 w = centroid(within.draws[d]);
        cut_delta += std::hypot(a.x - b.x, a.y - b.y);
        smooth_delta += std::hypot(b.x - w.x, b.y - w.y);
    }
    EXPECT_GT(cut_delta, smooth_delta * 3.0);
}

TEST(Scene, AllSuiteEntriesGenerate)
{
    for (const auto &spec : benchmarkSuite()) {
        const Scene scene(spec, 640, 360);
        const FrameData frame = scene.frame(0);
        EXPECT_GT(frame.triangleCount(), 10u) << spec.abbrev;
        EXPECT_GT(scene.textures().count(), 0u) << spec.abbrev;
        EXPECT_GT(scene.textures().totalBytes(), 0u) << spec.abbrev;
    }
}
