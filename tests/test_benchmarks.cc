/**
 * @file
 * Tests for the 32-entry benchmark suite definition (Table II stand-in).
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/benchmarks.hh"

using namespace libra;

TEST(Benchmarks, SuiteHas32Entries)
{
    EXPECT_EQ(benchmarkSuite().size(), 32u);
}

TEST(Benchmarks, HalfMemoryHalfCompute)
{
    // Paper §III-A: 16 of the 32 are memory-intensive.
    EXPECT_EQ(memoryIntensiveSet().size(), 16u);
    EXPECT_EQ(computeIntensiveSet().size(), 16u);
}

TEST(Benchmarks, AbbreviationsUnique)
{
    std::set<std::string> seen;
    for (const auto &spec : benchmarkSuite())
        EXPECT_TRUE(seen.insert(spec.abbrev).second) << spec.abbrev;
}

TEST(Benchmarks, SeedsUnique)
{
    std::set<std::uint64_t> seen;
    for (const auto &spec : benchmarkSuite())
        EXPECT_TRUE(seen.insert(spec.seed).second) << spec.abbrev;
}

TEST(Benchmarks, PaperNamedTitlesPresent)
{
    // Every abbreviation the paper's figures mention must exist.
    for (const char *abbrev :
         {"AAt", "AmU", "BBR", "BlB", "CCS", "CoC", "Gra", "GrT", "HCR",
          "HoW", "Jet", "RoK", "RoM", "SuS", "GDL", "CrS"}) {
        EXPECT_NO_FATAL_FAILURE(findBenchmark(abbrev)) << abbrev;
    }
}

TEST(Benchmarks, GenreCoverage)
{
    // Table II covers 2D, 2.5D and 3D titles.
    int g2d = 0, g25d = 0, g3d = 0;
    for (const auto &spec : benchmarkSuite()) {
        g2d += spec.genre == Genre::G2D;
        g25d += spec.genre == Genre::G25D;
        g3d += spec.genre == Genre::G3D;
    }
    EXPECT_GT(g2d, 4);
    EXPECT_GT(g25d, 4);
    EXPECT_GT(g3d, 4);
}

TEST(Benchmarks, MemoryIntensiveHaveHeavierTextures)
{
    // The designed-memory-intensive half uses denser, mip-less art on
    // average — the knob that drives DRAM pressure.
    double mem_detail = 0.0, cmp_detail = 0.0;
    int mem_mips = 0, cmp_mips = 0;
    for (const auto &spec : benchmarkSuite()) {
        if (spec.memoryIntensive) {
            mem_detail += spec.spriteDetail;
            mem_mips += spec.spriteUseMips;
        } else {
            cmp_detail += spec.spriteDetail;
            cmp_mips += spec.spriteUseMips;
        }
    }
    EXPECT_GT(mem_detail, cmp_detail);
    EXPECT_LT(mem_mips, cmp_mips);
}

TEST(Benchmarks, ComputeIntensiveHaveHeavierShaders)
{
    double mem_alu = 0.0, cmp_alu = 0.0;
    for (const auto &spec : benchmarkSuite()) {
        (spec.memoryIntensive ? mem_alu : cmp_alu) += spec.spriteAluOps;
    }
    EXPECT_GT(cmp_alu, mem_alu * 2.0);
}

TEST(Benchmarks, GenreNames)
{
    EXPECT_STREQ(genreName(Genre::G2D), "2D");
    EXPECT_STREQ(genreName(Genre::G25D), "2.5D");
    EXPECT_STREQ(genreName(Genre::G3D), "3D");
}

TEST(BenchmarksDeathTest, UnknownAbbrevIsFatal)
{
    EXPECT_EXIT(findBenchmark("nope"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Benchmarks, TryFindKnownAbbrev)
{
    const Result<const BenchmarkSpec *> r = tryFindBenchmark("CCS");
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ((*r)->abbrev, "CCS");
    EXPECT_EQ(*r, &findBenchmark("CCS"));
}

TEST(Benchmarks, TryFindUnknownAbbrevReturnsNotFound)
{
    const Result<const BenchmarkSpec *> r = tryFindBenchmark("nope");
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);
    // The message should help the caller: it lists the valid names.
    EXPECT_NE(r.status().message().find("CCS"), std::string::npos);
}
