/**
 * @file
 * Tests for textures, mip chains and the texture pool.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/mem_system.hh"
#include "common/rng.hh"
#include "workload/texture.hh"

using namespace libra;

TEST(Texture, MipChainDepth)
{
    TexturePool pool;
    const Texture &tex = pool.create(256, 256);
    EXPECT_EQ(tex.mipLevels(), 9u); // 256..1
    EXPECT_EQ(tex.mipWidth(0), 256u);
    EXPECT_EQ(tex.mipWidth(8), 1u);
    EXPECT_EQ(tex.mipHeight(3), 32u);
}

TEST(Texture, DimensionsRoundUpToPow2)
{
    TexturePool pool;
    const Texture &tex = pool.create(300, 90);
    EXPECT_EQ(tex.width(), 512u);
    EXPECT_EQ(tex.height(), 128u);
}

TEST(Texture, FootprintCoversMipChain)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    // Base level: 64*64*4 = 16 KB; mips add about one third.
    EXPECT_GE(tex.footprintBytes(), 16u * 1024);
    EXPECT_LE(tex.footprintBytes(), 22u * 1024);
}

TEST(Texture, LineAddrIsLineAligned)
{
    TexturePool pool;
    const Texture &tex = pool.create(128, 128);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto u = static_cast<float>(rng.uniform(-2.0, 2.0));
        const auto v = static_cast<float>(rng.uniform(-2.0, 2.0));
        const auto mip = static_cast<std::uint32_t>(rng.below(8));
        EXPECT_EQ(tex.lineAddr(u, v, mip) % 64, 0u);
    }
}

TEST(Texture, AdjacentTexelsShareLines)
{
    TexturePool pool;
    const Texture &tex = pool.create(256, 256);
    // Texels within one 4x4 block map to the same line.
    const float texel = 1.0f / 256.0f;
    const Addr base = tex.lineAddr(0.0f, 0.0f, 0);
    for (int x = 0; x < 4; ++x) {
        for (int y = 0; y < 4; ++y) {
            EXPECT_EQ(tex.lineAddr(x * texel, y * texel, 0), base);
        }
    }
    // The next block over is a different line.
    EXPECT_NE(tex.lineAddr(4 * texel, 0.0f, 0), base);
}

TEST(Texture, WrapAddressing)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    EXPECT_EQ(tex.lineAddr(0.25f, 0.5f, 0),
              tex.lineAddr(1.25f, 2.5f, 0));
    EXPECT_EQ(tex.lineAddr(0.25f, 0.5f, 0),
              tex.lineAddr(-0.75f, -0.5f, 0));
}

TEST(Texture, MipLevelsHaveDistinctStorage)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    EXPECT_NE(tex.lineAddr(0.0f, 0.0f, 0), tex.lineAddr(0.0f, 0.0f, 1));
    EXPECT_NE(tex.lineAddr(0.0f, 0.0f, 1), tex.lineAddr(0.0f, 0.0f, 2));
}

TEST(Texture, MipClampAtChainEnd)
{
    TexturePool pool;
    const Texture &tex = pool.create(16, 16);
    EXPECT_EQ(tex.lineAddr(0.0f, 0.0f, 200),
              tex.lineAddr(0.0f, 0.0f, tex.mipLevels() - 1));
}

TEST(Texture, SelectMipLodCurve)
{
    TexturePool pool;
    const Texture &tex = pool.create(1024, 1024);
    EXPECT_EQ(tex.selectMip(0.5f), 0u);
    EXPECT_EQ(tex.selectMip(1.0f), 0u);
    EXPECT_EQ(tex.selectMip(2.0f), 1u);
    EXPECT_EQ(tex.selectMip(4.0f), 2u);
    EXPECT_EQ(tex.selectMip(8.0f), 3u);
    // Clamped to the last level.
    EXPECT_LE(tex.selectMip(1e9f), tex.mipLevels() - 1);
}

TEST(TexturePool, TexturesDoNotOverlap)
{
    TexturePool pool;
    std::vector<std::pair<Addr, Addr>> ranges;
    for (int i = 0; i < 20; ++i) {
        const Texture &tex = pool.create(64u << (i % 4), 64u);
        const Addr lo = tex.lineAddr(0.0f, 0.0f, 0);
        ranges.emplace_back(lo, lo + tex.footprintBytes());
    }
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        for (std::size_t j = i + 1; j < ranges.size(); ++j) {
            const bool disjoint = ranges[i].second <= ranges[j].first
                || ranges[j].second <= ranges[i].first;
            EXPECT_TRUE(disjoint) << i << " vs " << j;
        }
    }
}

TEST(TexturePool, AddressesInTextureRegion)
{
    TexturePool pool;
    const Texture &tex = pool.create(512, 512);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const Addr a = tex.lineAddr(static_cast<float>(rng.uniform()),
                                    static_cast<float>(rng.uniform()), 0);
        EXPECT_GE(a, addr_map::textureBase);
        EXPECT_LT(a, addr_map::frameBufferBase);
    }
}

TEST(TexturePool, LookupById)
{
    TexturePool pool;
    const auto id0 = pool.create(32, 32).id();
    const auto id1 = pool.create(64, 64).id();
    EXPECT_EQ(pool.get(id0).width(), 32u);
    EXPECT_EQ(pool.get(id1).width(), 64u);
    EXPECT_EQ(pool.count(), 2u);
}

TEST(TexturePoolDeathTest, BadIdPanics)
{
    TexturePool pool;
    pool.create(32, 32);
    EXPECT_DEATH(pool.get(5), "out of range");
}

/** Distinct (u,v) blocks map to distinct lines (no aliasing). */
TEST(TextureProperty, BlockAddressesAreUnique)
{
    TexturePool pool;
    const Texture &tex = pool.create(128, 128);
    std::set<Addr> seen;
    for (int bx = 0; bx < 32; ++bx) {
        for (int by = 0; by < 32; ++by) {
            const float u = (static_cast<float>(bx) * 4 + 0.5f) / 128.0f;
            const float v = (static_cast<float>(by) * 4 + 0.5f) / 128.0f;
            const Addr a = tex.lineAddr(u, v, 0);
            EXPECT_TRUE(seen.insert(a).second)
                << "duplicate line for block " << bx << "," << by;
        }
    }
}
