/**
 * @file
 * Scoreboard regression tests: the headline verdicts of EXPERIMENTS.md
 * asserted against live simulations, so a change that silently flips a
 * paper-reproduction conclusion (who wins, the sign of a correlation,
 * the rough magnitude of a gain) fails CI instead of rotting in a
 * markdown table.
 *
 * The bench binaries print the full-scale numbers; these tests re-run
 * a reduced sweep (fewer benchmarks than the benches) and check the
 * *shape* claims with generous bands:
 *
 *  - Fig. 11: LIBRA > PTR > baseline on the memory-intensive set, with
 *    a positive scheduler contribution (measured +7.6pp at bench
 *    scale).
 *  - Fig. 6: memory-time fraction vs PTR speedup correlates strongly
 *    negatively (measured r = -0.81; asserted r < -0.5).
 *  - Fig. 16: static supertile sizes recover only a small slice of
 *    LIBRA's gain over PTR (statics 0.9%-1.7% vs LIBRA 6.4% at bench
 *    scale).
 *
 * All runs execute once in a shared sweep (work-stealing pool, shared
 * scene cache) and every test reads from the cached results.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "sim/sweep.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 960;
constexpr std::uint32_t H = 544;
constexpr std::uint32_t kFrames = 4;

const std::vector<std::string> &
memorySubset()
{
    static const std::vector<std::string> set{"AAt", "CCS", "HCR",
                                              "SuS"};
    return set;
}

const std::vector<std::string> &
computeSubset()
{
    static const std::vector<std::string> set{"GDL", "CrS", "MiN",
                                              "PoG"};
    return set;
}

/** Fig. 6 runs the benches' full default sets so the correlation is
 *  computed over the same 14 points as EXPERIMENTS.md. */
const std::vector<std::string> &
extraMemorySubset()
{
    static const std::vector<std::string> set{"CoC", "GrT", "Jet",
                                              "RoK"};
    return set;
}

const std::vector<std::string> &
extraComputeSubset()
{
    static const std::vector<std::string> set{"ArK", "ZuM"};
    return set;
}

GpuConfig
sized(GpuConfig cfg)
{
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    return cfg;
}

/** Cycles over the steady frames (frame 0 is cold), as the benches
 *  compare them. */
std::uint64_t
steadyCycles(const RunResult &r)
{
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < r.frames.size(); ++i)
        total += r.frames[i].totalCycles;
    return total;
}

double
steadySpeedup(const RunResult &base, const RunResult &other)
{
    return static_cast<double>(steadyCycles(base))
        / static_cast<double>(steadyCycles(other));
}

double
mean(const std::vector<double> &v)
{
    double sum = 0.0;
    for (const double x : v)
        sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    const double mx = mean(x), my = mean(y);
    double cov = 0.0, vx = 0.0, vy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        cov += (x[i] - mx) * (y[i] - my);
        vx += (x[i] - mx) * (x[i] - mx);
        vy += (y[i] - my) * (y[i] - my);
    }
    return vx > 0 && vy > 0 ? cov / std::sqrt(vx * vy) : 0.0;
}

/** Per-benchmark result handles into the shared sweep. */
struct Handles
{
    std::size_t base = 0;   //!< baseline GPU, 8 cores, 1 RU
    std::size_t ideal = 0;  //!< baseline with an ideal memory system
    std::size_t ptr = 0;    //!< PTR, 2 RUs x 4 cores
    std::size_t libra = 0;  //!< full LIBRA
    std::size_t static4 = 0; //!< static 4x4 supertiles (memory set)
    std::size_t static8 = 0; //!< static 8x8 supertiles (memory set)
};

struct ScoreboardData
{
    std::vector<Result<RunResult>> results;
    std::vector<Handles> memory;  //!< parallel to memorySubset()
    std::vector<Handles> compute; //!< parallel to computeSubset()
    std::vector<Handles> extraMemory;  //!< extraMemorySubset()
    std::vector<Handles> extraCompute; //!< extraComputeSubset()

    const RunResult &
    operator[](std::size_t handle) const
    {
        const Result<RunResult> &r = results[handle];
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        return *r;
    }
};

/** Runs the whole sweep once; every test reads the cached results. */
const ScoreboardData &
data()
{
    static const ScoreboardData d = [] {
        ScoreboardData out;
        std::vector<SweepJob> jobs;
        const auto add = [&jobs](const BenchmarkSpec &spec,
                                 GpuConfig cfg) {
            jobs.push_back(SweepJob{&spec, sized(cfg), kFrames, 0});
            return jobs.size() - 1;
        };

        GpuConfig ideal = GpuConfig::baseline(8);
        ideal.idealMemory = true;

        for (const std::string &name : memorySubset()) {
            const BenchmarkSpec &spec = findBenchmark(name);
            Handles h;
            h.base = add(spec, GpuConfig::baseline(8));
            h.ideal = add(spec, ideal);
            h.ptr = add(spec, GpuConfig::ptr(2, 4));
            h.libra = add(spec, GpuConfig::libra(2, 4));
            h.static4 = add(spec, GpuConfig::staticSupertile(4));
            h.static8 = add(spec, GpuConfig::staticSupertile(8));
            out.memory.push_back(h);
        }
        const auto addFig6Only =
            [&](const std::vector<std::string> &names,
                std::vector<Handles> &into) {
                for (const std::string &name : names) {
                    const BenchmarkSpec &spec = findBenchmark(name);
                    Handles h;
                    h.base = add(spec, GpuConfig::baseline(8));
                    h.ideal = add(spec, ideal);
                    h.ptr = add(spec, GpuConfig::ptr(2, 4));
                    into.push_back(h);
                }
            };
        addFig6Only(computeSubset(), out.compute);
        addFig6Only(extraMemorySubset(), out.extraMemory);
        addFig6Only(extraComputeSubset(), out.extraCompute);

        SweepRunner runner;
        SceneCache scenes;
        out.results = runner.run(std::move(jobs), &scenes);
        return out;
    }();
    return d;
}

} // namespace

/**
 * Fig. 11 verdict: on the memory-intensive set, PTR beats the baseline
 * and the adaptive scheduler adds a further gain on top (LIBRA > PTR >
 * baseline). EXPERIMENTS.md measured PTR +22.3% / LIBRA +29.9% at
 * bench scale; the bands here only pin the ordering and a loose
 * magnitude.
 */
TEST(Scoreboard, Fig11LibraBeatsPtrBeatsBaseline)
{
    const ScoreboardData &d = data();

    std::vector<double> ptr_s, libra_s;
    for (std::size_t i = 0; i < d.memory.size(); ++i) {
        const Handles &h = d.memory[i];
        const double sp = steadySpeedup(d[h.base], d[h.ptr]);
        const double sl = steadySpeedup(d[h.base], d[h.libra]);
        ptr_s.push_back(sp);
        libra_s.push_back(sl);
        // Per benchmark: parallel tile rendering must never lose to
        // the single-RU baseline on the memory-intensive set.
        EXPECT_GT(sp, 1.0) << memorySubset()[i] << ": PTR slower than "
                           << "baseline";
        EXPECT_GT(sl, 1.0) << memorySubset()[i]
                           << ": LIBRA slower than baseline";
    }

    const double mp = mean(ptr_s);
    const double ml = mean(libra_s);
    // Ordering: baseline < PTR < LIBRA on average.
    EXPECT_GT(mp, 1.05) << "PTR average speedup collapsed";
    EXPECT_GT(ml, mp + 0.01)
        << "adaptive scheduler no longer contributes on top of PTR "
           "(PTR " << mp << ", LIBRA " << ml << ")";
    // Magnitude sanity: nobody should suddenly claim 2x.
    EXPECT_LT(ml, 1.9) << "LIBRA speedup implausibly large";
}

/**
 * Fig. 6 verdict: the more memory-bound a benchmark (fraction of time
 * unexplained by an ideal memory system), the less PTR alone helps.
 * EXPERIMENTS.md measured r = -0.81; anything above -0.5 means the
 * motivating correlation is gone.
 */
TEST(Scoreboard, Fig6MemoryFractionAnticorrelatesWithPtrGain)
{
    const ScoreboardData &d = data();

    std::vector<double> frac, speedup;
    std::vector<double> mem_frac, comp_frac;
    const auto collect = [&](const std::vector<Handles> &set,
                             std::vector<double> &cls) {
        for (const Handles &h : set) {
            const double real =
                static_cast<double>(d[h.base].totalCycles());
            const double ideal =
                static_cast<double>(d[h.ideal].totalCycles());
            const double f = real <= 0.0
                ? 0.0
                : std::max(0.0, 1.0 - ideal / real);
            frac.push_back(f);
            cls.push_back(f);
            speedup.push_back(steadySpeedup(d[h.base], d[h.ptr]));
        }
    };
    collect(d.memory, mem_frac);
    collect(d.extraMemory, mem_frac);
    collect(d.compute, comp_frac);
    collect(d.extraCompute, comp_frac);
    ASSERT_EQ(frac.size(), 14u);

    // The memory-intensive set must be meaningfully more memory-bound
    // than the compute set under the paper's ideal-L1 methodology.
    EXPECT_GT(mean(mem_frac), 2.0 * mean(comp_frac))
        << "memory/compute split no longer separates (memory "
        << mean(mem_frac) << ", compute " << mean(comp_frac) << ")";

    const double r = pearson(frac, speedup);
    EXPECT_LT(r, -0.5)
        << "memory fraction vs PTR speedup correlation r=" << r
        << " (EXPERIMENTS.md: -0.81; paper: strongly negative)";
}

/**
 * Fig. 16 verdict: static supertile sizes capture only a small part of
 * what LIBRA's dynamic temperature-aware scheme gains over PTR.
 * EXPERIMENTS.md measured statics at 0.9%-1.7% vs LIBRA at 6.4% over
 * PTR.
 */
TEST(Scoreboard, Fig16StaticSupertilesTrailLibra)
{
    const ScoreboardData &d = data();

    std::vector<double> g4, g8, glibra;
    for (const Handles &h : d.memory) {
        const RunResult &ptr = d[h.ptr];
        g4.push_back(steadySpeedup(ptr, d[h.static4]) - 1.0);
        g8.push_back(steadySpeedup(ptr, d[h.static8]) - 1.0);
        glibra.push_back(steadySpeedup(ptr, d[h.libra]) - 1.0);
    }

    const double m4 = mean(g4);
    const double m8 = mean(g8);
    const double ml = mean(glibra);

    // LIBRA's dynamic scheme must gain meaningfully over PTR alone...
    EXPECT_GT(ml, 0.02) << "LIBRA gain over PTR collapsed (" << ml
                        << ")";
    EXPECT_LT(ml, 0.20) << "LIBRA gain over PTR implausibly large";
    // ...and every static size must trail it (the paper's point: no
    // fixed supertile size substitutes for temperature-aware dynamic
    // scheduling).
    EXPECT_LT(m4, ml) << "static 4x4 matches dynamic LIBRA";
    EXPECT_LT(m8, ml) << "static 8x8 matches dynamic LIBRA";
    // Statics hover near PTR: small gains or small losses, never the
    // dynamic scheme's band.
    EXPECT_GT(m4, -0.05);
    EXPECT_GT(m8, -0.05);
    EXPECT_LT(m4, ml - 0.01);
    EXPECT_LT(m8, ml - 0.01);
}
