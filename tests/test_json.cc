/**
 * @file
 * Tests for the in-tree JSON writer and validating parser.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/json.hh"

using namespace libra;

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello"), "hello");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, EscapesSpecials)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape(std::string("a\x01""b")), "a\\u0001b");
}

TEST(JsonWriter, ObjectWithMixedValues)
{
    JsonWriter w;
    w.beginObject();
    w.key("s");
    w.value("x");
    w.key("i");
    w.value(std::int64_t{-3});
    w.key("u");
    w.value(std::uint64_t{7});
    w.key("b");
    w.value(true);
    w.key("n");
    w.null();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"x\",\"i\":-3,\"u\":7,\"b\":true,"
                       "\"n\":null}");
}

TEST(JsonWriter, NestedContainers)
{
    JsonWriter w;
    w.beginObject();
    w.key("a");
    w.beginArray();
    w.value(1);
    w.beginObject();
    w.key("k");
    w.value(2);
    w.endObject();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":[1,{\"k\":2}]}");
}

TEST(JsonWriter, DoublesRoundTrip)
{
    JsonWriter w;
    w.beginArray();
    w.value(0.1);
    w.value(1.0);
    w.endArray();
    const auto doc = parseJson(w.str());
    ASSERT_TRUE(doc.isOk());
    ASSERT_TRUE(doc->isArray());
    EXPECT_DOUBLE_EQ(doc->items[0].number, 0.1);
    EXPECT_DOUBLE_EQ(doc->items[1].number, 1.0);
}

TEST(JsonWriter, RawInsertsFragmentVerbatim)
{
    JsonWriter w;
    w.beginArray();
    w.raw("{\"x\":1}");
    w.raw("2");
    w.endArray();
    EXPECT_EQ(w.str(), "[{\"x\":1},2]");
}

TEST(JsonParser, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null")->kind == JsonValue::Kind::Null);
    EXPECT_TRUE(parseJson("true")->boolean);
    EXPECT_FALSE(parseJson("false")->boolean);
    EXPECT_DOUBLE_EQ(parseJson("-12.5e2")->number, -1250.0);
    EXPECT_EQ(parseJson("\"hi\"")->str, "hi");
}

TEST(JsonParser, ParsesNestedDocument)
{
    const auto doc =
        parseJson("{ \"a\": [1, 2, {\"b\": \"c\"}], \"d\": {} }");
    ASSERT_TRUE(doc.isOk());
    ASSERT_TRUE(doc->isObject());
    const JsonValue *a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_DOUBLE_EQ(a->items[1].number, 2.0);
    const JsonValue *b = a->items[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->str, "c");
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonParser, DecodesStringEscapes)
{
    const auto doc = parseJson("\"a\\n\\t\\\"\\\\\\u0041\"");
    ASSERT_TRUE(doc.isOk());
    EXPECT_EQ(doc->str, "a\n\t\"\\A");
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").isOk());
    EXPECT_FALSE(parseJson("{").isOk());
    EXPECT_FALSE(parseJson("[1,]").isOk());
    EXPECT_FALSE(parseJson("{\"a\":}").isOk());
    EXPECT_FALSE(parseJson("tru").isOk());
    EXPECT_FALSE(parseJson("01").isOk());
    EXPECT_FALSE(parseJson("\"unterminated").isOk());
    EXPECT_FALSE(parseJson("1 2").isOk()); // trailing content
    EXPECT_EQ(parseJson("{,}").status().code(),
              ErrorCode::CorruptData);
}

TEST(JsonParser, RejectsRunawayNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_FALSE(parseJson(deep).isOk());
}

TEST(JsonParser, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.key("name");
    w.value("tricky \"quotes\" and\nnewlines");
    w.key("values");
    w.beginArray();
    for (int i = 0; i < 5; ++i)
        w.value(i * 1000);
    w.endArray();
    w.endObject();

    const auto doc = parseJson(w.str());
    ASSERT_TRUE(doc.isOk());
    EXPECT_EQ(doc->find("name")->str, "tricky \"quotes\" and\nnewlines");
    EXPECT_EQ(doc->find("values")->items.size(), 5u);
    EXPECT_DOUBLE_EQ(doc->find("values")->items[4].number, 4000.0);
}

TEST(WriteTextFile, WritesAndFails)
{
    const std::string path = "/tmp/libra_test_json_write.txt";
    ASSERT_TRUE(writeTextFile(path, "content").isOk());
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    ASSERT_NE(fp, nullptr);
    char buf[16] = {0};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, fp);
    std::fclose(fp);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), "content");

    const Status bad =
        writeTextFile("/nonexistent-dir/x/y.txt", "content");
    EXPECT_FALSE(bad.isOk());
    EXPECT_EQ(bad.code(), ErrorCode::IoError);
}
