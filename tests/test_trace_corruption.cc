/**
 * @file
 * Corruption corpus for the .ltrc loader: truncations, byte flips and
 * hand-crafted adversarial headers. The contract under test is the one
 * frame_trace.hh documents — a hostile file may be rejected, never
 * crash the process, and never drive a count-derived huge allocation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/fault_injector.hh"
#include "trace/frame_trace.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

class TracePath
{
  public:
    explicit TracePath(const char *tag)
        : path_(std::string("/tmp/libra_corrupt_")
                + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()
                + "_" + tag + ".ltrc")
    {}
    ~TracePath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::vector<unsigned char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** A small but real trace to corrupt (two frames, real textures). */
std::vector<unsigned char>
validTraceBytes(const std::string &path)
{
    const Scene scene(findBenchmark("CCS"), 320, 192);
    EXPECT_TRUE(writeTrace(path, scene, 0, 2).isOk());
    std::vector<unsigned char> bytes = readAll(path);
    EXPECT_GT(bytes.size(), 24u); // header + payload
    return bytes;
}

void
putU32(std::vector<unsigned char> &bytes, std::size_t at,
       std::uint32_t v)
{
    bytes[at] = static_cast<unsigned char>(v);
    bytes[at + 1] = static_cast<unsigned char>(v >> 8);
    bytes[at + 2] = static_cast<unsigned char>(v >> 16);
    bytes[at + 3] = static_cast<unsigned char>(v >> 24);
}

constexpr std::size_t headerBytes = 24;

} // namespace

TEST(TraceCorruption, TruncationAtEveryHeaderOffsetFailsCleanly)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    const TracePath cut("cut");
    for (std::size_t len = 0; len < headerBytes; ++len) {
        writeAll(cut.str(), {bytes.begin(), bytes.begin()
                                 + static_cast<std::ptrdiff_t>(len)});
        FrameTrace trace;
        const Status st = trace.load(cut.str());
        EXPECT_FALSE(st.isOk()) << "length " << len;
        EXPECT_EQ(st.code(), ErrorCode::CorruptData) << "length " << len;
        // Failure must leave the trace empty, not half-loaded.
        EXPECT_EQ(trace.frameCount(), 0u) << "length " << len;
    }
}

TEST(TraceCorruption, TruncationAnywhereInThePayloadFailsCleanly)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    // Every strict prefix is either rejected... there is no trailing
    // slack in the format, so no prefix can accidentally be complete.
    const TracePath cut("cut");
    const std::size_t step = bytes.size() > 4096 ? 37 : 1;
    for (std::size_t len = headerBytes; len < bytes.size();
         len += step) {
        writeAll(cut.str(), {bytes.begin(), bytes.begin()
                                 + static_cast<std::ptrdiff_t>(len)});
        FrameTrace trace;
        const Status st = trace.load(cut.str());
        EXPECT_FALSE(st.isOk()) << "length " << len;
        EXPECT_EQ(trace.frameCount(), 0u) << "length " << len;
    }
}

TEST(TraceCorruption, ByteFlipAtEveryHeaderOffsetNeverCrashes)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    const TracePath flipped("flip");
    for (std::size_t at = 0; at < headerBytes; ++at) {
        std::vector<unsigned char> mutant = bytes;
        mutant[at] ^= 0xff;
        writeAll(flipped.str(), mutant);
        FrameTrace trace;
        // Flips in dimension fields may still decode to legal values;
        // the contract is "clean ok-or-error", exercised here mostly
        // for the absence of crashes/overreads under the sanitizers.
        const Status st = trace.load(flipped.str());
        if (at < 8) {
            // Magic and version have exactly one legal encoding: any
            // flip there must be rejected.
            EXPECT_FALSE(st.isOk()) << "offset " << at;
            EXPECT_EQ(st.code(), ErrorCode::CorruptData)
                << "offset " << at;
        }
        if (!st.isOk())
            EXPECT_EQ(trace.frameCount(), 0u) << "offset " << at;
    }
}

TEST(TraceCorruption, ByteFlipSweepOverPayloadNeverCrashes)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    const TracePath flipped("flip");
    const std::size_t step = bytes.size() > 4096 ? 53 : 1;
    for (std::size_t at = headerBytes; at < bytes.size(); at += step) {
        std::vector<unsigned char> mutant = bytes;
        mutant[at] ^= 0xff;
        writeAll(flipped.str(), mutant);
        FrameTrace trace;
        // Payload flips may corrupt only float payloads and still load;
        // the loader just must not crash, overread, or accept a
        // structurally impossible file.
        (void)trace.load(flipped.str());
    }
}

TEST(TraceCorruption, HugeCountsAreRejectedWithoutAllocating)
{
    const TracePath valid("valid");
    const TracePath evil("evil");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    // Claimed counts wildly beyond both the format limits and the
    // actual file size: the loader must reject on validation, not
    // resize a vector to billions of elements first. (Run under ASan
    // this would also surface as an allocation failure.)
    struct Case
    {
        std::size_t offset;
        std::uint32_t value;
        const char *what;
    };
    const Case cases[] = {
        {8, 0xffffffffu, "screen width"},
        {12, 0xffffffffu, "screen height"},
        {16, 0xffffffffu, "texture count"},
        {16, trace_limits::maxTextures, "texture count > file size"},
        {20, 0xffffffffu, "frame count"},
        {20, trace_limits::maxFrames, "frame count > file size"},
    };
    for (const Case &c : cases) {
        std::vector<unsigned char> mutant = bytes;
        putU32(mutant, c.offset, c.value);
        writeAll(evil.str(), mutant);
        FrameTrace trace;
        const Status st = trace.load(evil.str());
        EXPECT_FALSE(st.isOk()) << c.what;
        EXPECT_EQ(st.code(), ErrorCode::CorruptData) << c.what;
        EXPECT_EQ(trace.frameCount(), 0u) << c.what;
    }
}

TEST(TraceCorruption, ZeroTextureDimensionIsRejected)
{
    const TracePath valid("valid");
    const TracePath evil("evil");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    // First texture record sits right after the header; a zero width
    // must be caught at load time (the Texture constructor treats a
    // degenerate size as a simulator bug and aborts).
    std::vector<unsigned char> mutant = bytes;
    putU32(mutant, headerBytes, 0);
    writeAll(evil.str(), mutant);
    FrameTrace trace;
    const Status st = trace.load(evil.str());
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), ErrorCode::CorruptData);
}

TEST(TraceCorruption, FailedLoadResetsPreviousContent)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    FrameTrace trace;
    ASSERT_TRUE(trace.load(valid.str()).isOk());
    ASSERT_GT(trace.frameCount(), 0u);

    const TracePath cut("cut");
    writeAll(cut.str(), {bytes.begin(), bytes.begin() + 10});
    EXPECT_FALSE(trace.load(cut.str()).isOk());
    EXPECT_EQ(trace.frameCount(), 0u);
    EXPECT_EQ(trace.textures().count(), 0u);
}

// --- Injector-generated corpus (fault_injector.hh::corruptTrace) -----
//
// The seeded corruption generator used by the chaos-soak CI job must
// uphold the same contract the hand-crafted cases above pin down: a
// damaged file is rejected with a recoverable Status (or, for payload
// bit flips, loads ok) — never a crash, overread or half-loaded trace.

TEST(TraceCorruption, InjectorTruncateMidRecordCorpusFailsCleanly)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    const TracePath cut("cut");
    for (std::uint64_t seed = 0; seed < 128; ++seed) {
        const std::vector<std::uint8_t> mutant =
            corruptTrace(bytes, TraceCorruption::TruncateMidRecord,
                         seed);
        ASSERT_LT(mutant.size(), bytes.size()) << "seed " << seed;
        ASSERT_GE(mutant.size(), headerBytes) << "seed " << seed;
        writeAll(cut.str(), mutant);
        FrameTrace trace;
        const Status st = trace.load(cut.str());
        EXPECT_FALSE(st.isOk()) << "seed " << seed;
        EXPECT_EQ(st.code(), ErrorCode::CorruptData) << "seed " << seed;
        EXPECT_EQ(trace.frameCount(), 0u) << "seed " << seed;
    }
}

TEST(TraceCorruption, InjectorBitFlipHeaderCorpusNeverCrashes)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    const TracePath flipped("flip");
    for (std::uint64_t seed = 0; seed < 192; ++seed) {
        const std::vector<std::uint8_t> mutant =
            corruptTrace(bytes, TraceCorruption::BitFlipHeader, seed);
        ASSERT_EQ(mutant.size(), bytes.size()) << "seed " << seed;
        writeAll(flipped.str(), mutant);
        FrameTrace trace;
        // Single-bit header damage may still decode to a legal header
        // (e.g. a dimension bit that stays within limits); the contract
        // is clean ok-or-error with no partial state on error.
        const Status st = trace.load(flipped.str());
        if (!st.isOk()) {
            EXPECT_EQ(st.code(), ErrorCode::CorruptData)
                << "seed " << seed;
            EXPECT_EQ(trace.frameCount(), 0u) << "seed " << seed;
        }
    }
}

TEST(TraceCorruption, CorruptTraceIsDeterministicPerSeed)
{
    const TracePath valid("valid");
    const std::vector<unsigned char> bytes =
        validTraceBytes(valid.str());

    for (const TraceCorruption mode :
         {TraceCorruption::TruncateMidRecord,
          TraceCorruption::BitFlipHeader}) {
        EXPECT_EQ(corruptTrace(bytes, mode, 7),
                  corruptTrace(bytes, mode, 7));
        EXPECT_NE(corruptTrace(bytes, mode, 7),
                  corruptTrace(bytes, mode, 8));
    }
}

TEST(TraceCorruptionDeathTest, FrameIndexOutOfRangeIsACallerBug)
{
    const TracePath valid("valid");
    validTraceBytes(valid.str());
    FrameTrace trace;
    ASSERT_TRUE(trace.load(valid.str()).isOk());
    EXPECT_DEATH((void)trace.frame(trace.frameCount()),
                 "trace frame");
}
