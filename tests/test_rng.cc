/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace libra;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 7.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowBounds)
{
    Rng rng(12);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(rng.range(5, 5), 5);
    EXPECT_EQ(rng.range(9, 2), 9); // degenerate: returns lo
}

TEST(Rng, GaussianRoughMoments)
{
    Rng rng(14);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, HashCombineSensitivity)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
    EXPECT_NE(hashCombine(1, 2), hashCombine(1, 3));
    EXPECT_EQ(hashCombine(5, 6), hashCombine(5, 6));
}

TEST(Rng, SplitMixAdvancesState)
{
    std::uint64_t s = 0;
    const auto a = splitmix64(s);
    const auto b = splitmix64(s);
    EXPECT_NE(a, b);
}
