/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "common/rng.hh"

using namespace libra;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 7.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowBounds)
{
    Rng rng(12);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(rng.range(5, 5), 5);
    EXPECT_EQ(rng.range(9, 2), 9); // degenerate: returns lo
}

TEST(Rng, GaussianRoughMoments)
{
    Rng rng(14);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, HashCombineSensitivity)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
    EXPECT_NE(hashCombine(1, 2), hashCombine(1, 3));
    EXPECT_EQ(hashCombine(5, 6), hashCombine(5, 6));
}

TEST(Rng, SplitMixAdvancesState)
{
    std::uint64_t s = 0;
    const auto a = splitmix64(s);
    const auto b = splitmix64(s);
    EXPECT_NE(a, b);
}

// --- hashCombine as a persistent-key mixer ---------------------------
//
// Since the sim-farm result cache, hashCombine feeds identities that
// live on disk (configHash, sceneHash, cache keys), so its collision
// and avalanche behaviour — and its exact output — are contracts, not
// implementation details.

TEST(HashCombine, InjectiveInNewFieldForFixedAccumulator)
{
    // The property chained key-hashing actually relies on: for any
    // fixed accumulator a, x -> hashCombine(a, x) is a bijection
    // (x + K is, XOR-with-a is, and the splitmix64 finalizer is), so
    // two keys differing in one field can never collide at the fold
    // that consumes it.
    for (const std::uint64_t acc :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0x5cee4a5},
          ~std::uint64_t{0}}) {
        std::unordered_set<std::uint64_t> seen;
        for (std::uint64_t b = 0; b < 65536; ++b)
            seen.insert(hashCombine(acc, b));
        EXPECT_EQ(seen.size(), 65536u) << "accumulator " << acc;
    }
}

TEST(HashCombine, NoCollisionsWhenChainedFromBasis)
{
    // Config/scene hashing chains small integers (core counts, tile
    // sizes, resolutions) from a fixed basis, exactly like
    // snapshotSceneHash. The dense small-value grid is the real input
    // population; after the basis fold the accumulator is well mixed,
    // so the full 256x256 grid must stay collision-free — and order
    // matters, since (a,b) and (b,a) land on different slots.
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t a = 0; a < 256; ++a)
        for (std::uint64_t b = 0; b < 256; ++b)
            seen.insert(hashCombine(hashCombine(0x5cee4a5ull, a), b));
    EXPECT_EQ(seen.size(), 256u * 256u);

    std::unordered_set<std::uint64_t> ordered;
    for (std::uint64_t x = 0; x < 64; ++x)
        for (std::uint64_t y = 0; y < 64; ++y)
            ordered.insert(hashCombine(hashCombine(1, x), y));
    EXPECT_EQ(ordered.size(), 64u * 64u);
}

TEST(HashCombine, DirectSmallPairsPigeonholeBeforeTheFinalizer)
{
    // The audit's caveat, pinned so nobody "fixes" a persistent key
    // into this shape: combining two *small* values directly squeezes
    // a ^ (b + K + (a<<6) + (a>>2)) into a ~17k-value window before
    // the finalizer, so the 65536-pair dense grid collides massively.
    // Harmless where it is used (cosmetic workload-position hashes in
    // scene.cc); fatal if a persistent cache key ever did it. Keys
    // must chain from a mixed basis instead (previous test).
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t a = 0; a < 256; ++a)
        for (std::uint64_t b = 0; b < 256; ++b)
            seen.insert(hashCombine(a, b));
    EXPECT_EQ(seen.size(), 16627u); // deterministic, and far below 65536
}

TEST(HashCombine, AvalancheOnSingleBitFlips)
{
    // splitmix64 finalizer: flipping one input bit should flip roughly
    // half the output bits. Average over a spread of bases and all 128
    // flippable bits; also bound each individual flip away from the
    // degenerate few-bit regime.
    const std::uint64_t bases[] = {0, 1, 0x12345678u,
                                   0x9e3779b97f4a7c15ull,
                                   ~std::uint64_t{0}};
    double total = 0.0;
    int samples = 0;
    int worst = 64;
    for (const std::uint64_t a : bases) {
        for (const std::uint64_t b : bases) {
            const std::uint64_t h = hashCombine(a, b);
            for (int bit = 0; bit < 64; ++bit) {
                const int fa = std::popcount(
                    h ^ hashCombine(a ^ (1ull << bit), b));
                const int fb = std::popcount(
                    h ^ hashCombine(a, b ^ (1ull << bit)));
                total += fa + fb;
                samples += 2;
                worst = std::min({worst, fa, fb});
            }
        }
    }
    const double mean = total / samples;
    EXPECT_GT(mean, 28.0);
    EXPECT_LT(mean, 36.0);
    EXPECT_GE(worst, 10); // no near-identity flip anywhere in the set
}

TEST(HashCombine, PinnedOutputs)
{
    // The mixer's exact output is load-bearing: every snapshot,
    // manifest and cached report on disk is keyed through it. If this
    // test fails, you changed the mixer — bump kSnapshotCodeVersion
    // AND kResultCacheCodeVersion in the same commit (see rng.hh).
    EXPECT_EQ(hashCombine(0, 0), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(hashCombine(1, 2), 0xa3efbcce2e044f84ull);
    EXPECT_EQ(hashCombine(2, 1), 0x88a32f63162d1170ull);
    EXPECT_EQ(hashCombine(~std::uint64_t{0}, ~std::uint64_t{0}),
              0x8d63a8fdfcda5d88ull);
}
