/**
 * @file
 * Unit tests for the Geometry Pipeline timing model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/mem_system.hh"
#include "gpu/geometry/geometry_pipeline.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "gpu/tiling/tile_grid.hh"
#include "core/temperature_table.hh"
#include "sim/event_queue.hh"

using namespace libra;

namespace
{

struct Rig
{
    Rig()
        : grid(128, 128, 32), mem(eq, 20),
          vertexCache(eq,
                      CacheConfig{"vertex", 4 * 1024, 2, 64, 1, 8, 1,
                                  true, false},
                      mem),
          pipeline(eq, GeometryConfig{}, vertexCache, mem)
    {}

    /** One draw with @p tris triangles and @p verts vertices. */
    FrameData
    makeFrame(std::uint32_t tris, std::uint32_t verts,
              std::uint16_t vertex_cost = 8)
    {
        FrameData frame;
        DrawCall draw;
        draw.vertexAddr = addr_map::vertexBase;
        draw.vertexCount = verts;
        draw.vertexCostCycles = vertex_cost;
        for (std::uint32_t i = 0; i < tris; ++i) {
            Triangle tri;
            tri.v[0] = {{2, 2, 0.5f}, {0, 0}};
            tri.v[1] = {{30, 2, 0.5f}, {1, 0}};
            tri.v[2] = {{2, 30, 0.5f}, {0, 1}};
            draw.tris.push_back(tri);
        }
        frame.draws.push_back(std::move(draw));
        return frame;
    }

    Tick
    run(const FrameData &frame)
    {
        const BinnedFrame binned = binFrame(frame, grid);
        Tick done = 0;
        bool finished = false;
        pipeline.run(frame, binned, [&](Tick t) {
            done = t;
            finished = true;
        });
        while (!finished && eq.runOne()) {
        }
        eq.runUntil(); // drain posted writes
        return done;
    }

    EventQueue eq;
    TileGrid grid;
    IdealMemory mem;
    Cache vertexCache;
    GeometryPipeline pipeline;
};

} // namespace

TEST(GeometryPipeline, CompletesAndCounts)
{
    Rig rig;
    const FrameData frame = rig.makeFrame(10, 12);
    const Tick done = rig.run(frame);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(rig.pipeline.drawsProcessed.value(), 1u);
    EXPECT_EQ(rig.pipeline.verticesProcessed.value(), 12u);
    EXPECT_EQ(rig.pipeline.primRecordsWritten.value(), 10u);
    EXPECT_GT(rig.pipeline.binEntriesWritten.value(), 0u);
}

TEST(GeometryPipeline, VertexCostScalesTime)
{
    Rig cheap;
    const Tick fast = cheap.run(cheap.makeFrame(4, 200, 4));
    Rig costly;
    const Tick slow = costly.run(costly.makeFrame(4, 200, 64));
    EXPECT_GT(slow, fast);
    // 200 verts over 2 processors: 60 extra cycles per vertex pair.
    EXPECT_GE(slow - fast, 200u * (64 - 4) / 2 - 10);
}

TEST(GeometryPipeline, DrawOverheadCharged)
{
    Rig one;
    FrameData single = one.makeFrame(1, 3);
    const Tick t1 = one.run(single);

    Rig many;
    FrameData frame = many.makeFrame(1, 3);
    for (int i = 0; i < 9; ++i)
        frame.draws.push_back(frame.draws[0]);
    const Tick t10 = many.run(frame);

    // Each extra draw pays the fixed overhead.
    const GeometryConfig cfg;
    EXPECT_GE(t10 - t1, 9u * cfg.drawOverheadCycles);
}

TEST(GeometryPipeline, VertexFetchGoesThroughVertexCache)
{
    Rig rig;
    rig.run(rig.makeFrame(2, 64));
    // 64 verts * 32 B = 2 KB = 32 lines.
    EXPECT_GE(rig.vertexCache.readAccesses.value(), 32u);
}

TEST(GeometryPipeline, BinningWritesParameterBuffer)
{
    Rig rig;
    rig.run(rig.makeFrame(20, 60));
    // Every write is posted downstream of the (ideal) L2 stand-in.
    EXPECT_GT(rig.mem.writes, 0u);
}

TEST(GeometryPipeline, EmptyFrameStillCompletes)
{
    Rig rig;
    FrameData frame;
    const Tick done = rig.run(frame);
    EXPECT_GE(done, 0u);
    EXPECT_EQ(rig.pipeline.drawsProcessed.value(), 0u);
}

TEST(GeometryPipeline, BinEntriesMatchBinnedFrame)
{
    Rig rig;
    const FrameData frame = rig.makeFrame(15, 45);
    const BinnedFrame binned = binFrame(frame, rig.grid);
    rig.run(frame);
    EXPECT_EQ(rig.pipeline.binEntriesWritten.value(),
              binned.binEntries());
}

TEST(GeometryPipeline, LongerThanRankingForRealisticFrames)
{
    // §III-E's hiding argument: a typical frame's geometry phase must
    // exceed the temperature-ranking latency. Use a modest frame (a
    // hundred draws) and the FHD table size.
    Rig rig;
    FrameData frame = rig.makeFrame(2, 4);
    for (int i = 0; i < 99; ++i)
        frame.draws.push_back(frame.draws[0]);
    const Tick geom = rig.run(frame);
    const TileGrid fhd(1920, 1080, 32);
    const auto ranking = TemperatureTable::hardwareCost(
        fhd.superTileCount(2)).rankingCycles;
    EXPECT_GT(geom, ranking);
}
