/**
 * @file
 * Tests for trace capture/replay: lossless round trips and replay
 * equivalence with direct simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gpu/gpu.hh"
#include "trace/frame_trace.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

/**
 * ctest runs each test as its own process, possibly in parallel, so
 * every test needs a private trace path.
 */
class TracePath
{
  public:
    TracePath()
        : path_(std::string("/tmp/libra_trace_")
                + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()
                + ".ltrc")
    {}
    ~TracePath() { std::remove(path_.c_str()); }
    const char *c_str() const { return path_.c_str(); }
    operator const std::string &() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(FrameTrace, RoundTripIsLossless)
{
    const TracePath path;
    const Scene scene(findBenchmark("CCS"), 640, 384);
    ASSERT_TRUE(writeTrace(path, scene, 3, 2).isOk());

    FrameTrace trace;
    ASSERT_TRUE(trace.load(path).isOk());
    EXPECT_EQ(trace.screenWidth(), 640u);
    EXPECT_EQ(trace.screenHeight(), 384u);
    EXPECT_EQ(trace.frameCount(), 2u);
    EXPECT_EQ(trace.textures().count(), scene.textures().count());

    for (std::uint32_t f = 0; f < 2; ++f) {
        const FrameData orig = scene.frame(3 + f);
        const FrameData &loaded = trace.frame(f);
        ASSERT_EQ(loaded.draws.size(), orig.draws.size());
        for (std::size_t d = 0; d < orig.draws.size(); ++d) {
            const auto &od = orig.draws[d];
            const auto &ld = loaded.draws[d];
            EXPECT_EQ(ld.vertexAddr, od.vertexAddr);
            EXPECT_EQ(ld.vertexCount, od.vertexCount);
            EXPECT_EQ(ld.vertexCostCycles, od.vertexCostCycles);
            ASSERT_EQ(ld.tris.size(), od.tris.size());
            for (std::size_t t = 0; t < od.tris.size(); ++t) {
                const auto &ot = od.tris[t];
                const auto &lt = ld.tris[t];
                for (int v = 0; v < 3; ++v) {
                    EXPECT_EQ(lt.v[v].pos, ot.v[v].pos);
                    EXPECT_EQ(lt.v[v].uv, ot.v[v].uv);
                }
                EXPECT_EQ(lt.textureId, ot.textureId);
                EXPECT_EQ(lt.shaderAluOps, ot.shaderAluOps);
                EXPECT_EQ(lt.texSamples, ot.texSamples);
                EXPECT_EQ(lt.blend, ot.blend);
                EXPECT_EQ(lt.useMips, ot.useMips);
            }
        }
    }
}

TEST(FrameTrace, TexturePoolReconstructedIdentically)
{
    const TracePath path;
    const Scene scene(findBenchmark("SuS"), 640, 384);
    ASSERT_TRUE(writeTrace(path, scene, 0, 1).isOk());
    FrameTrace trace;
    ASSERT_TRUE(trace.load(path).isOk());
    for (std::uint32_t i = 0; i < scene.textures().count(); ++i) {
        const Texture &a = scene.textures().get(i);
        const Texture &b = trace.textures().get(i);
        EXPECT_EQ(a.width(), b.width());
        EXPECT_EQ(a.height(), b.height());
        // Identical creation order → identical base addresses, so
        // every texel address replays exactly.
        EXPECT_EQ(a.lineAddr(0.37f, 0.71f, 0),
                  b.lineAddr(0.37f, 0.71f, 0));
    }
}

TEST(FrameTrace, ReplayMatchesDirectSimulation)
{
    const TracePath path;
    const Scene scene(findBenchmark("CoC"), 512, 288);
    ASSERT_TRUE(writeTrace(path, scene, 0, 2).isOk());
    FrameTrace trace;
    ASSERT_TRUE(trace.load(path).isOk());

    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = 512;
    cfg.screenHeight = 288;

    Gpu direct(cfg);
    Gpu replay(cfg);
    for (std::uint32_t f = 0; f < 2; ++f) {
        const FrameStats a = direct.renderFrame(scene.frame(f),
                                                scene.textures());
        const FrameStats b = replay.renderFrame(trace.frame(f),
                                                trace.textures());
        EXPECT_EQ(a.totalCycles, b.totalCycles) << "frame " << f;
        EXPECT_EQ(a.dramReads, b.dramReads);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.fragments, b.fragments);
    }
}

TEST(FrameTrace, MissingFileFailsGracefully)
{
    FrameTrace trace;
    EXPECT_FALSE(trace.load("/tmp/nonexistent_libra_trace.ltrc").isOk());
}

TEST(FrameTrace, RejectsGarbage)
{
    const TracePath path;
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("definitely not a trace file", fp);
    std::fclose(fp);
    FrameTrace trace;
    EXPECT_FALSE(trace.load(std::string(path)).isOk());
}

TEST(FrameTrace, InMemorySetWorks)
{
    FrameTrace trace;
    FrameData frame;
    frame.draws.resize(1);
    trace.set(320, 240, {{64, 64}}, {frame});
    EXPECT_EQ(trace.frameCount(), 1u);
    EXPECT_EQ(trace.textures().count(), 1u);
    EXPECT_EQ(trace.screenWidth(), 320u);
}
