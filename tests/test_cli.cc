/**
 * @file
 * Tests for the command-line parser.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"

using namespace libra;

namespace
{

CliArgs
parse(std::vector<const char *> argv, std::vector<std::string> known)
{
    argv.insert(argv.begin(), "prog");
    return CliArgs(static_cast<int>(argv.size()), argv.data(), known);
}

} // namespace

TEST(Cli, SpaceSeparatedValue)
{
    const auto args = parse({"--frames", "12"}, {"frames"});
    EXPECT_EQ(args.getInt("frames", 0), 12);
}

TEST(Cli, EqualsValue)
{
    const auto args = parse({"--frames=25"}, {"frames"});
    EXPECT_EQ(args.getInt("frames", 0), 25);
}

TEST(Cli, BareBooleanFlag)
{
    const auto args = parse({"--full"}, {"full"});
    EXPECT_TRUE(args.getBool("full"));
    EXPECT_TRUE(args.has("full"));
}

TEST(Cli, MissingUsesFallback)
{
    const auto args = parse({}, {"frames"});
    EXPECT_EQ(args.getInt("frames", 8), 8);
    EXPECT_EQ(args.get("frames", "x"), "x");
    EXPECT_DOUBLE_EQ(args.getDouble("frames", 2.5), 2.5);
    EXPECT_FALSE(args.getBool("frames"));
}

TEST(Cli, ListParsing)
{
    const auto args = parse({"--benchmarks", "CCS,SuS,GDL"},
                            {"benchmarks"});
    const auto list = args.getList("benchmarks");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0], "CCS");
    EXPECT_EQ(list[2], "GDL");
}

TEST(Cli, EmptyListWhenAbsent)
{
    const auto args = parse({}, {"benchmarks"});
    EXPECT_TRUE(args.getList("benchmarks").empty());
}

TEST(Cli, PositionalArguments)
{
    const auto args = parse({"hello", "--frames", "3", "world"},
                            {"frames"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "hello");
    EXPECT_EQ(args.positional()[1], "world");
}

TEST(Cli, BoolFalseValues)
{
    const auto args = parse({"--a", "0", "--b", "false", "--c", "1"},
                            {"a", "b", "c"});
    EXPECT_FALSE(args.getBool("a"));
    EXPECT_FALSE(args.getBool("b"));
    EXPECT_TRUE(args.getBool("c"));
}

TEST(Cli, DoubleParsing)
{
    const auto args = parse({"--threshold", "0.25"}, {"threshold"});
    EXPECT_DOUBLE_EQ(args.getDouble("threshold", 0.0), 0.25);
}

TEST(Cli, NegativeAndHexIntegers)
{
    const auto args = parse({"--a", "-3", "--b", "0x10"}, {"a", "b"});
    EXPECT_EQ(args.getInt("a", 0), -3);
    EXPECT_EQ(args.getInt("b", 0), 16);
}

TEST(CliDeathTest, UnknownOptionIsFatal)
{
    EXPECT_EXIT(parse({"--bogus", "1"}, {"frames"}),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(CliDeathTest, DuplicateOptionIsFatal)
{
    EXPECT_EXIT(parse({"--frames", "2", "--frames", "3"}, {"frames"}),
                ::testing::ExitedWithCode(1), "duplicate option");
}

TEST(CliDeathTest, MalformedIntegerIsFatal)
{
    const auto args = parse({"--frames", "abc"}, {"frames"});
    EXPECT_EXIT((void)args.getInt("frames", 0),
                ::testing::ExitedWithCode(1), "expected an integer");
}

TEST(CliDeathTest, TrailingGarbageIntegerIsFatal)
{
    const auto args = parse({"--frames=12x"}, {"frames"});
    EXPECT_EXIT((void)args.getInt("frames", 0),
                ::testing::ExitedWithCode(1), "expected an integer");
}

TEST(CliDeathTest, IntegerOverflowIsFatal)
{
    const auto args =
        parse({"--frames", "99999999999999999999999"}, {"frames"});
    EXPECT_EXIT((void)args.getInt("frames", 0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(CliDeathTest, MalformedDoubleIsFatal)
{
    const auto args = parse({"--threshold", "0.5oops"}, {"threshold"});
    EXPECT_EXIT((void)args.getDouble("threshold", 0.0),
                ::testing::ExitedWithCode(1), "expected a number");
}

TEST(CliDeathTest, BareFlagReadAsIntegerStaysValid)
{
    // A bare "--flag" stores "1", which still parses as an integer.
    const auto args = parse({"--full"}, {"full"});
    EXPECT_EQ(args.getInt("full", 0), 1);
}

// --- getUint: strict parsing for count/duration options --------------
//
// --deadline-ms, --backoff-ms, --checkpoint-every, --warm-prefix and
// friends are unsigned; before getUint they went through getInt +
// static_cast, so "--backoff-ms=-5" quietly became an astronomically
// large unsigned backoff. getUint keeps getInt's trailing-garbage and
// overflow strictness and adds negative rejection.

TEST(Cli, UintParsesPlainAndHex)
{
    const auto args = parse({"--a", "42", "--b", "0x20"}, {"a", "b"});
    EXPECT_EQ(args.getUint("a", 0), 42u);
    EXPECT_EQ(args.getUint("b", 0), 32u);
}

TEST(Cli, UintMissingUsesFallback)
{
    const auto args = parse({}, {"deadline-ms"});
    EXPECT_EQ(args.getUint("deadline-ms", 123), 123u);
}

TEST(Cli, UintFullRange)
{
    // Values above int64 max are legal for a u64 option.
    const auto args =
        parse({"--a", "18446744073709551615"}, {"a"});
    EXPECT_EQ(args.getUint("a", 0), ~std::uint64_t{0});
}

TEST(CliDeathTest, UintRejectsNegative)
{
    const auto args = parse({"--backoff-ms", "-5"}, {"backoff-ms"});
    EXPECT_EXIT((void)args.getUint("backoff-ms", 0),
                ::testing::ExitedWithCode(1),
                "expected a non-negative integer");
}

TEST(CliDeathTest, UintRejectsNegativeEqualsForm)
{
    const auto args = parse({"--deadline-ms=-1"}, {"deadline-ms"});
    EXPECT_EXIT((void)args.getUint("deadline-ms", 0),
                ::testing::ExitedWithCode(1),
                "expected a non-negative integer");
}

TEST(CliDeathTest, UintRejectsTrailingGarbage)
{
    const auto args = parse({"--checkpoint-every=3frames"},
                            {"checkpoint-every"});
    EXPECT_EXIT((void)args.getUint("checkpoint-every", 0),
                ::testing::ExitedWithCode(1), "expected an integer");
}

TEST(CliDeathTest, UintRejectsEmptyValue)
{
    const auto args = parse({"--warm-prefix="}, {"warm-prefix"});
    EXPECT_EXIT((void)args.getUint("warm-prefix", 0),
                ::testing::ExitedWithCode(1), "expected an integer");
}

TEST(CliDeathTest, UintRejectsOverflow)
{
    const auto args =
        parse({"--a", "99999999999999999999999"}, {"a"});
    EXPECT_EXIT((void)args.getUint("a", 0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(CliDeathTest, UintRejectsInteriorMinus)
{
    // strtoull would stop at the '-'; the whole-value contract and the
    // sign check both have to hold.
    const auto args = parse({"--a", "12-34"}, {"a"});
    EXPECT_EXIT((void)args.getUint("a", 0),
                ::testing::ExitedWithCode(1), "non-negative");
}
