/**
 * @file
 * End-to-end validation of the suite's memory-/compute-intensive
 * design: the paper's measured classification (fraction of execution
 * time on memory, Fig. 6a methodology) must separate the archetypes the
 * way they were designed.
 */

#include <gtest/gtest.h>

#include "gpu/runner.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

GpuConfig
smallBaseline()
{
    GpuConfig cfg = GpuConfig::baseline(8);
    cfg.screenWidth = 512;
    cfg.screenHeight = 288;
    return cfg;
}

} // namespace

TEST(Classification, MemoryHeavyBeatsComputeHeavy)
{
    // Representative pair: the flagship memory-intensive title versus
    // the flagship compute-intensive one.
    const double ccs = *memoryTimeFraction(findBenchmark("CCS"),
                                          smallBaseline(), 2);
    const double gdl = *memoryTimeFraction(findBenchmark("GDL"),
                                          smallBaseline(), 2);
    EXPECT_GT(ccs, gdl);
    // The paper's >=25% cut applies at FHD; at this reduced test
    // resolution the fixed art set fits caches better, so only the
    // ordering and a loose floor are asserted here (the FHD-scale
    // classification is exercised by bench/fig06_memory_breakdown).
    EXPECT_GT(ccs, 0.05);
}

TEST(Classification, DesignClassesSeparateOnAverage)
{
    // A small sample from each half: the designed-memory mean fraction
    // must exceed the designed-compute mean.
    double mem_sum = 0.0, cmp_sum = 0.0;
    for (const char *name : {"SuS", "CoC"})
        mem_sum += *memoryTimeFraction(findBenchmark(name),
                                      smallBaseline(), 2);
    for (const char *name : {"CrS", "PoG"})
        cmp_sum += *memoryTimeFraction(findBenchmark(name),
                                      smallBaseline(), 2);
    EXPECT_GT(mem_sum / 2.0, cmp_sum / 2.0);
}

TEST(Classification, ComputeAppsScaleWithCores)
{
    // The Fig. 4 signature at test scale: a compute app gains much
    // more from 4→8 cores than a memory app.
    auto scaling = [](const char *name) {
        GpuConfig four = smallBaseline();
        four.coresPerRu = 4;
        GpuConfig eight = smallBaseline();
        const BenchmarkSpec &spec = findBenchmark(name);
        const RunResult r4 = runBenchmark(spec, four, 2).value();
        const RunResult r8 = runBenchmark(spec, eight, 2).value();
        return static_cast<double>(r4.totalCycles())
            / static_cast<double>(r8.totalCycles());
    };
    EXPECT_GT(scaling("GDL"), scaling("CCS") + 0.1);
}
