/**
 * @file
 * Tests for the Polygon List Builder (binning) and the triangle/rect
 * overlap predicate.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "gpu/tiling/tile_grid.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

Triangle
makeTri(Vec2 a, Vec2 b, Vec2 c)
{
    Triangle t;
    t.v[0] = {{a.x, a.y, 0.5f}, {0.0f, 0.0f}};
    t.v[1] = {{b.x, b.y, 0.5f}, {1.0f, 0.0f}};
    t.v[2] = {{c.x, c.y, 0.5f}, {1.0f, 1.0f}};
    return t;
}

FrameData
singleDrawFrame(std::vector<Triangle> tris)
{
    FrameData frame;
    DrawCall draw;
    draw.tris = std::move(tris);
    draw.vertexCount = 3;
    frame.draws.push_back(std::move(draw));
    return frame;
}

/** Brute-force overlap: sample the rect densely for inside points. */
bool
bruteOverlap(const Triangle &tri, const IRect &rect)
{
    const float area = tri.signedArea2();
    if (area == 0.0f)
        return false;
    const float w = area > 0 ? 1.0f : -1.0f;
    for (float y = static_cast<float>(rect.y0) + 0.05f;
         y < static_cast<float>(rect.y1); y += 0.2f) {
        for (float x = static_cast<float>(rect.x0) + 0.05f;
             x < static_cast<float>(rect.x1); x += 0.2f) {
            const Vec2 p{x, y};
            bool inside = true;
            for (int e = 0; e < 3 && inside; ++e) {
                const Vec2 a = tri.v[e].pos.xy();
                const Vec2 b = tri.v[(e + 1) % 3].pos.xy();
                if (w * cross2(b - a, p - a) < 0)
                    inside = false;
            }
            if (inside)
                return true;
        }
    }
    return false;
}

} // namespace

TEST(TriangleOverlap, BasicCases)
{
    const Triangle tri = makeTri({10, 10}, {20, 10}, {10, 20});
    EXPECT_TRUE(triangleOverlapsRect(tri, {0, 0, 32, 32}));
    EXPECT_TRUE(triangleOverlapsRect(tri, {12, 12, 14, 14}));
    EXPECT_FALSE(triangleOverlapsRect(tri, {21, 21, 30, 30}));
    EXPECT_FALSE(triangleOverlapsRect(tri, {0, 0, 9, 9}));
}

TEST(TriangleOverlap, ThinDiagonalDoesNotOverbin)
{
    // A thin diagonal sliver's bbox covers the corner rect, but the
    // triangle itself does not reach it.
    const Triangle tri = makeTri({0, 0}, {100, 100}, {99, 100});
    EXPECT_FALSE(triangleOverlapsRect(tri, {60, 0, 100, 30}));
    EXPECT_TRUE(triangleOverlapsRect(tri, {40, 40, 60, 60}));
}

TEST(TriangleOverlap, DegenerateRejected)
{
    const Triangle tri = makeTri({5, 5}, {10, 10}, {15, 15});
    EXPECT_FALSE(triangleOverlapsRect(tri, {0, 0, 32, 32}));
}

TEST(TriangleOverlap, MatchesBruteForceRandom)
{
    Rng rng(31337);
    for (int iter = 0; iter < 300; ++iter) {
        const Triangle tri = makeTri(
            {static_cast<float>(rng.uniform(0.0, 64.0)),
             static_cast<float>(rng.uniform(0.0, 64.0))},
            {static_cast<float>(rng.uniform(0.0, 64.0)),
             static_cast<float>(rng.uniform(0.0, 64.0))},
            {static_cast<float>(rng.uniform(0.0, 64.0)),
             static_cast<float>(rng.uniform(0.0, 64.0))});
        if (std::fabs(tri.signedArea2()) < 4.0f)
            continue;
        const IRect rect{static_cast<std::int32_t>(rng.below(48)),
                         static_cast<std::int32_t>(rng.below(48)),
                         0, 0};
        IRect r = rect;
        r.x1 = r.x0 + 4 + static_cast<std::int32_t>(rng.below(16));
        r.y1 = r.y0 + 4 + static_cast<std::int32_t>(rng.below(16));
        const bool brute = bruteOverlap(tri, r);
        const bool fast = triangleOverlapsRect(tri, r);
        // The SAT test is exact, the sampled brute force is
        // conservative: brute→fast always; fast without brute only for
        // grazing contact thinner than the sample grid.
        if (brute) {
            EXPECT_TRUE(fast) << "iter " << iter;
        }
    }
}

TEST(Binning, TriangleLandsInAllOverlappedTiles)
{
    const TileGrid grid(128, 128, 32); // 4x4 tiles
    // Triangle spanning tiles (0,0), (1,0), (0,1) diagonally.
    auto frame = singleDrawFrame({makeTri({8, 8}, {54, 8}, {8, 54})});
    const BinnedFrame binned = binFrame(frame, grid);
    ASSERT_EQ(binned.tris.size(), 1u);
    EXPECT_EQ(binned.tileLists[grid.tileAt(0, 0)].size(), 1u);
    EXPECT_EQ(binned.tileLists[grid.tileAt(1, 0)].size(), 1u);
    EXPECT_EQ(binned.tileLists[grid.tileAt(0, 1)].size(), 1u);
    // The far corner tile of the bbox is NOT overlapped (diagonal).
    EXPECT_EQ(binned.tileLists[grid.tileAt(1, 1)].size(), 0u);
}

TEST(Binning, ProgramOrderPreservedWithinTiles)
{
    const TileGrid grid(64, 64, 32);
    std::vector<Triangle> tris;
    for (int i = 0; i < 10; ++i)
        tris.push_back(makeTri({2, 2}, {30, 2}, {2, 30}));
    auto frame = singleDrawFrame(std::move(tris));
    const BinnedFrame binned = binFrame(frame, grid);
    const auto &list = binned.tileLists[0];
    ASSERT_EQ(list.size(), 10u);
    for (std::size_t i = 1; i < list.size(); ++i)
        EXPECT_LT(list[i - 1], list[i]);
}

TEST(Binning, CullsDegenerateAndOffscreen)
{
    const TileGrid grid(64, 64, 32);
    auto frame = singleDrawFrame({
        makeTri({5, 5}, {10, 10}, {15, 15}),      // zero area
        makeTri({-50, -50}, {-10, -50}, {-10, -10}), // offscreen
        makeTri({2, 2}, {20, 2}, {2, 20}),        // visible
    });
    const BinnedFrame binned = binFrame(frame, grid);
    EXPECT_EQ(binned.tris.size(), 1u);
}

TEST(Binning, DrawIdAssigned)
{
    const TileGrid grid(64, 64, 32);
    FrameData frame;
    for (int d = 0; d < 3; ++d) {
        DrawCall draw;
        draw.tris.push_back(makeTri({2, 2}, {20, 2}, {2, 20}));
        frame.draws.push_back(draw);
    }
    const BinnedFrame binned = binFrame(frame, grid);
    ASSERT_EQ(binned.tris.size(), 3u);
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(binned.tris[i].drawId, i);
}

TEST(Binning, FullScreenQuadBinsEverywhere)
{
    const TileGrid grid(128, 96, 32);
    auto frame = singleDrawFrame({
        makeTri({0, 0}, {128, 0}, {128, 96}),
        makeTri({0, 0}, {128, 96}, {0, 96}),
    });
    const BinnedFrame binned = binFrame(frame, grid);
    for (TileId t = 0; t < grid.tileCount(); ++t)
        EXPECT_GE(binned.tileLists[t].size(), 1u) << "tile " << t;
    // Both halves overlap the diagonal tiles, so there are more
    // entries than tiles but no more than two per tile.
    EXPECT_GT(binned.binEntries(), grid.tileCount());
    EXPECT_LE(binned.binEntries(), 2u * grid.tileCount());
}

TEST(Binning, ParameterBufferAddressesDisjoint)
{
    const ParameterBufferLayout layout;
    // List regions of different tiles never overlap.
    const Addr end_tile0 = layout.listEntryAddr(0,
                                                layout.maxEntriesPerTile);
    EXPECT_LE(end_tile0, layout.listEntryAddr(1, 0));
    // Record region beyond any list region for a FHD grid.
    const TileGrid grid(1920, 1080, 32);
    const Addr last_list =
        layout.listEntryAddr(grid.tileCount() - 1,
                             layout.maxEntriesPerTile);
    EXPECT_LE(last_list, layout.primRecordAddr(0));
}

TEST(Binning, VertexCostCarried)
{
    const TileGrid grid(64, 64, 32);
    FrameData frame;
    DrawCall draw;
    draw.tris.push_back(makeTri({2, 2}, {20, 2}, {2, 20}));
    draw.vertexCostCycles = 37;
    frame.draws.push_back(draw);
    const BinnedFrame binned = binFrame(frame, grid);
    ASSERT_EQ(binned.triVertexCost.size(), 1u);
    EXPECT_EQ(binned.triVertexCost[0], 37u);
}
