/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace libra;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsRunInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runUntil();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.runOne();
    EXPECT_EQ(seen, 42u);
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.now(); });
    });
    eq.runUntil();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 10)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.runUntil();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(eq.now(), 9u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 0; t < 10; ++t)
        eq.schedule(t * 10, [&] { ++count; });
    const auto ran = eq.runUntil(45);
    EXPECT_EQ(ran, 5u); // ticks 0,10,20,30,40
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.nextEventTick(), 50u);
}

TEST(EventQueue, SchedulingAtCurrentTickAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(7, [&] {
        eq.schedule(7, [&] { ran = true; });
    });
    eq.runUntil();
    EXPECT_TRUE(ran);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runOne();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling in the past");
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 17; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.runUntil();
    EXPECT_EQ(eq.eventsExecuted(), 17u);
}

TEST(EventQueue, PendingReflectsQueueSize)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.runOne();
    EXPECT_EQ(eq.pending(), 1u);
}
