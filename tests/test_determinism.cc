/**
 * @file
 * Golden determinism tests: the same scene + config must produce
 * byte-identical counter dumps, RunReports and chrome traces no matter
 * how often the simulation is repeated or how many sweep workers run
 * it. This is what makes the observability artifacts diffable across
 * machines and CI runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpu/runner.hh"
#include "sim/sweep.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 512;
constexpr std::uint32_t H = 288;

GpuConfig
sized(GpuConfig cfg)
{
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    return cfg;
}

} // namespace

TEST(Determinism, RepeatedRunsAreByteIdentical)
{
    const GpuConfig cfg = sized(GpuConfig::ptr(2, 4));
    const Scene scene(findBenchmark("CCS"), W, H);

    Result<RunResult> first = runBenchmark(scene, cfg, 2);
    Result<RunResult> second = runBenchmark(scene, cfg, 2);
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    ASSERT_TRUE(second.isOk()) << second.status().toString();

    // The full cumulative counter dump, entry for entry.
    EXPECT_EQ(first->counters, second->counters);
    // And the serialized report down to the last byte.
    EXPECT_EQ(runReportJson(*first), runReportJson(*second));
}

TEST(Determinism, TraceExportIsByteIdenticalAcrossRuns)
{
    GpuConfig cfg = sized(GpuConfig::ptr(2, 4));
    cfg.traceEvents = true;
    const Scene scene(findBenchmark("CCS"), W, H);

    Result<RunResult> first = runBenchmark(scene, cfg, 2);
    Result<RunResult> second = runBenchmark(scene, cfg, 2);
    ASSERT_TRUE(first.isOk());
    ASSERT_TRUE(second.isOk());
    ASSERT_NE(first->trace, nullptr);
    ASSERT_NE(second->trace, nullptr);
    EXPECT_EQ(first->trace->chromeTraceJson(),
              second->trace->chromeTraceJson());
}

TEST(Determinism, SweepWorkerCountNeverChangesResults)
{
    // The worker count is a wall-clock knob only: one worker and four
    // workers must produce byte-identical artifacts for every job.
    const BenchmarkSpec &spec = findBenchmark("CCS");
    std::vector<SweepJob> jobs;
    for (const GpuConfig &base :
         {GpuConfig::baseline(8), GpuConfig::ptr(2, 4),
          GpuConfig::libra(2, 4), GpuConfig::ptr(4, 2)}) {
        GpuConfig cfg = sized(base);
        cfg.traceEvents = true;
        SweepJob job;
        job.spec = &spec;
        job.config = cfg;
        job.frames = 1;
        jobs.push_back(job);
    }

    SceneCache cache;
    auto serial = SweepRunner(1).run(jobs, &cache);
    auto parallel = SweepRunner(4).run(jobs, &cache);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(serial[i].isOk()) << serial[i].status().toString();
        ASSERT_TRUE(parallel[i].isOk())
            << parallel[i].status().toString();
        EXPECT_EQ(serial[i]->counters, parallel[i]->counters) << i;
        EXPECT_EQ(runReportJson(*serial[i]),
                  runReportJson(*parallel[i]))
            << i;
        ASSERT_NE(serial[i]->trace, nullptr) << i;
        ASSERT_NE(parallel[i]->trace, nullptr) << i;
        EXPECT_EQ(serial[i]->trace->chromeTraceJson(),
                  parallel[i]->trace->chromeTraceJson())
            << i;
    }

    // The sweep-set report is deterministic as a whole, too.
    std::vector<RunResult> a, b;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        a.push_back(*serial[i]);
        b.push_back(*parallel[i]);
    }
    EXPECT_EQ(sweepReportJson(a), sweepReportJson(b));
}
