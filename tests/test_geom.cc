/**
 * @file
 * Tests for the geometry primitives.
 */

#include <gtest/gtest.h>

#include "common/geom.hh"

using namespace libra;

TEST(IRect, BasicProperties)
{
    const IRect r{2, 3, 10, 8};
    EXPECT_EQ(r.width(), 8);
    EXPECT_EQ(r.height(), 5);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(r.contains(2, 3));
    EXPECT_TRUE(r.contains(9, 7));
    EXPECT_FALSE(r.contains(10, 7)); // exclusive max
    EXPECT_FALSE(r.contains(1, 5));
}

TEST(IRect, EmptyWhenDegenerate)
{
    EXPECT_TRUE((IRect{5, 5, 5, 10}).empty());
    EXPECT_TRUE((IRect{5, 5, 10, 5}).empty());
    EXPECT_TRUE((IRect{5, 5, 2, 10}).empty());
}

TEST(IRect, Intersection)
{
    const IRect a{0, 0, 10, 10};
    const IRect b{5, 5, 15, 15};
    const IRect c = a.intersect(b);
    EXPECT_EQ(c, (IRect{5, 5, 10, 10}));
    const IRect d = a.intersect({20, 20, 30, 30});
    EXPECT_TRUE(d.empty());
}

TEST(Vec2, Arithmetic)
{
    const Vec2 a{1.0f, 2.0f};
    const Vec2 b{3.0f, -1.0f};
    EXPECT_EQ(a + b, (Vec2{4.0f, 1.0f}));
    EXPECT_EQ(a - b, (Vec2{-2.0f, 3.0f}));
    EXPECT_EQ(a * 2.0f, (Vec2{2.0f, 4.0f}));
}

TEST(Cross2, SignConvention)
{
    // x-axis cross y-axis is positive.
    EXPECT_GT(cross2({1.0f, 0.0f}, {0.0f, 1.0f}), 0.0f);
    EXPECT_LT(cross2({0.0f, 1.0f}, {1.0f, 0.0f}), 0.0f);
    EXPECT_EQ(cross2({2.0f, 2.0f}, {4.0f, 4.0f}), 0.0f);
}

TEST(Triangle, SignedArea)
{
    Triangle t;
    t.v[0].pos = {0.0f, 0.0f, 0.0f};
    t.v[1].pos = {4.0f, 0.0f, 0.0f};
    t.v[2].pos = {0.0f, 3.0f, 0.0f};
    EXPECT_FLOAT_EQ(t.signedArea2(), 12.0f);
    std::swap(t.v[1], t.v[2]);
    EXPECT_FLOAT_EQ(t.signedArea2(), -12.0f);
}

TEST(Triangle, BoundingBoxClampsToViewport)
{
    Triangle t;
    t.v[0].pos = {-5.0f, -5.0f, 0.0f};
    t.v[1].pos = {50.0f, 10.0f, 0.0f};
    t.v[2].pos = {10.0f, 50.0f, 0.0f};
    const IRect vp{0, 0, 32, 32};
    const IRect box = t.boundingBox(vp);
    EXPECT_GE(box.x0, 0);
    EXPECT_GE(box.y0, 0);
    EXPECT_LE(box.x1, 32);
    EXPECT_LE(box.y1, 32);
    EXPECT_FALSE(box.empty());
}

TEST(Triangle, BoundingBoxCoversVertices)
{
    Triangle t;
    t.v[0].pos = {1.5f, 2.5f, 0.0f};
    t.v[1].pos = {7.2f, 3.1f, 0.0f};
    t.v[2].pos = {4.0f, 9.9f, 0.0f};
    const IRect box = t.boundingBox({0, 0, 100, 100});
    EXPECT_LE(box.x0, 1);
    EXPECT_GE(box.x1, 8);
    EXPECT_LE(box.y0, 2);
    EXPECT_GE(box.y1, 10);
}

TEST(Triangle, OffscreenBoundingBoxEmpty)
{
    Triangle t;
    t.v[0].pos = {-10.0f, -10.0f, 0.0f};
    t.v[1].pos = {-5.0f, -10.0f, 0.0f};
    t.v[2].pos = {-5.0f, -5.0f, 0.0f};
    EXPECT_TRUE(t.boundingBox({0, 0, 32, 32}).empty());
}
