/**
 * @file
 * End-to-end integration tests: whole frames through the full GPU.
 *
 * Uses a reduced screen so each test renders in well under a second;
 * the correctness properties (schedule-invariant output, determinism,
 * conservation of tiles/fragments) are resolution-independent.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "gpu/runner.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 512;
constexpr std::uint32_t H = 288;

GpuConfig
sized(GpuConfig cfg)
{
    cfg.screenWidth = W;
    cfg.screenHeight = H;
    return cfg;
}

FrameStats
renderOne(const GpuConfig &cfg, const char *bench = "CCS",
          std::uint32_t frame = 0)
{
    const Scene scene(findBenchmark(bench), cfg.screenWidth,
                      cfg.screenHeight);
    Gpu gpu(cfg);
    FrameStats fs;
    for (std::uint32_t f = 0; f <= frame; ++f)
        fs = gpu.renderFrame(scene.frame(f), scene.textures());
    return fs;
}

} // namespace

TEST(GpuIntegration, RendersAllTiles)
{
    const GpuConfig cfg = sized(GpuConfig::baseline(8));
    const Scene scene(findBenchmark("CCS"), W, H);
    Gpu gpu(cfg);
    const FrameStats fs = gpu.renderFrame(scene.frame(0),
                                          scene.textures());
    EXPECT_GT(fs.totalCycles, 0u);
    EXPECT_GT(fs.rasterCycles, 0u);
    EXPECT_GT(fs.geomCycles, 0u);
    EXPECT_GT(fs.fragments, 0u);
    EXPECT_GT(fs.dramReads + fs.dramWrites, 0u);
    EXPECT_EQ(fs.tileDram.size(), gpu.tileGrid().tileCount());
}

TEST(GpuIntegration, ImageIdenticalAcrossSchedulers)
{
    // The defining correctness property: tile scheduling must never
    // change the rendered image.
    auto image_of = [](GpuConfig cfg) {
        cfg.captureImage = true;
        const Scene scene(findBenchmark("CCS"), W, H);
        Gpu gpu(cfg);
        gpu.renderFrame(scene.frame(0), scene.textures());
        return gpu.renderFrame(scene.frame(1), scene.textures()).image;
    };
    const auto base = image_of(sized(GpuConfig::baseline(8)));
    const auto ptr = image_of(sized(GpuConfig::ptr(2, 4)));
    const auto libra_img = image_of(sized(GpuConfig::libra(2, 4)));
    const auto st = image_of(sized(GpuConfig::staticSupertile(4)));
    ASSERT_EQ(base.size(), static_cast<std::size_t>(W) * H);
    EXPECT_EQ(base, ptr);
    EXPECT_EQ(base, libra_img);
    EXPECT_EQ(base, st);
}

TEST(GpuIntegration, ImageNonTrivial)
{
    GpuConfig cfg = sized(GpuConfig::baseline(4));
    cfg.captureImage = true;
    const Scene scene(findBenchmark("SuS"), W, H);
    Gpu gpu(cfg);
    const auto image = gpu.renderFrame(scene.frame(0),
                                       scene.textures()).image;
    std::size_t written = 0;
    for (const auto px : image)
        written += px != 0;
    // Backgrounds cover the screen: nearly every pixel was shaded.
    EXPECT_GT(written, image.size() * 9 / 10);
}

TEST(GpuIntegration, DeterministicAcrossRuns)
{
    const auto a = renderOne(sized(GpuConfig::libra(2, 4)), "CoC", 1);
    const auto b = renderOne(sized(GpuConfig::libra(2, 4)), "CoC", 1);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.tileDram, b.tileDram);
}

TEST(GpuIntegration, IdealMemoryIsFaster)
{
    GpuConfig real = sized(GpuConfig::baseline(8));
    GpuConfig ideal = real;
    ideal.idealMemory = true;
    const auto r = renderOne(real);
    const auto i = renderOne(ideal);
    EXPECT_LT(i.totalCycles, r.totalCycles);
    EXPECT_EQ(i.dramReads, 0u);
}

TEST(GpuIntegration, MemoryTimeFractionSane)
{
    const double frac = *memoryTimeFraction(findBenchmark("CCS"),
                                           sized(GpuConfig::baseline(8)),
                                           2);
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 1.0);
}

TEST(GpuIntegration, InstructionsConservedAcrossSchedulers)
{
    // Scheduling changes timing, never the work itself.
    const auto a = renderOne(sized(GpuConfig::baseline(8)));
    const auto b = renderOne(sized(GpuConfig::libra(2, 4)));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.fragments, b.fragments);
    EXPECT_EQ(a.quads, b.quads);
}

TEST(GpuIntegration, PerTileCountersPopulated)
{
    const auto fs = renderOne(sized(GpuConfig::baseline(8)));
    std::uint64_t instr = 0, dram = 0;
    for (const auto v : fs.tileInstr)
        instr += v;
    for (const auto v : fs.tileDram)
        dram += v;
    EXPECT_EQ(instr, fs.instructions);
    EXPECT_GT(dram, 0u);
    // Tile-attributed DRAM accesses can not exceed the frame total.
    EXPECT_LE(dram, fs.dramReads + fs.dramWrites);
}

TEST(GpuIntegration, DramTimelineCoversRasterPhase)
{
    const auto fs = renderOne(sized(GpuConfig::baseline(8)));
    ASSERT_FALSE(fs.dramTimeline.empty());
    std::uint64_t binned = 0;
    for (const auto v : fs.dramTimeline)
        binned += v;
    EXPECT_GT(binned, 0u);
    EXPECT_LE(fs.dramTimeline.size(),
              fs.rasterCycles / fs.dramTimelineInterval + 2);
}

TEST(GpuIntegration, EnergyPositiveAndDominatedByKnownParts)
{
    const auto fs = renderOne(sized(GpuConfig::baseline(8)));
    EXPECT_GT(fs.energy.totalMj, 0.0);
    EXPECT_GT(fs.energy.dramMj, 0.0);
    EXPECT_GT(fs.energy.staticMj, 0.0);
    EXPECT_NEAR(fs.energy.totalMj,
                fs.energy.coreMj + fs.energy.cacheMj + fs.energy.dramMj
                    + fs.energy.fixedFunctionMj + fs.energy.staticMj,
                1e-9);
}

TEST(GpuIntegration, LibraSchedulerEngagesOnMemoryBoundWorkload)
{
    const Scene scene(findBenchmark("CCS"), W, H);
    Gpu gpu(sized(GpuConfig::libra(2, 4)));
    const auto f0 = gpu.renderFrame(scene.frame(0), scene.textures());
    EXPECT_FALSE(f0.temperatureOrder); // no history yet
    const auto f1 = gpu.renderFrame(scene.frame(1), scene.textures());
    // CCS is memory-intensive: hit ratio below 80% → temperature order.
    EXPECT_TRUE(f1.temperatureOrder);
    EXPECT_GT(f1.rankingCycles, 0u);
    // §III-E: the ranking hides under the geometry phase.
    EXPECT_LT(f1.rankingCycles, f1.geomCycles);
}

TEST(GpuIntegration, RasterDominatesFrameTime)
{
    // Fig. 1: the raster phase takes the lion's share (~88%).
    const auto fs = renderOne(sized(GpuConfig::baseline(8)), "SuS");
    const double raster_share = static_cast<double>(fs.rasterCycles)
        / static_cast<double>(fs.totalCycles);
    EXPECT_GT(raster_share, 0.6);
}

TEST(GpuIntegration, MoreRasterUnitsStillCorrect)
{
    for (const std::uint32_t rus : {3u, 4u}) {
        GpuConfig cfg = sized(GpuConfig::libra(rus, 2));
        const auto fs = renderOne(cfg, "CCS", 1);
        EXPECT_GT(fs.totalCycles, 0u);
    }
}

TEST(GpuIntegration, FrameBufferTrafficMatchesResolution)
{
    const auto fs = renderOne(sized(GpuConfig::baseline(8)));
    // Color flush writes the whole screen once: W*H*4 bytes in lines.
    const std::uint64_t fb_lines = static_cast<std::uint64_t>(W) * H * 4
        / 64;
    EXPECT_GE(fs.dramWrites, fb_lines);
    EXPECT_LE(fs.dramWrites, fb_lines * 2);
}

TEST(GpuIntegration, TextureLatencyTracked)
{
    const auto fs = renderOne(sized(GpuConfig::baseline(8)));
    EXPECT_GT(fs.textureRequests, 0u);
    EXPECT_GT(fs.avgTextureLatency, 0.0);
    EXPECT_GE(fs.textureHitRatio, 0.0);
    EXPECT_LE(fs.textureHitRatio, 1.0);
}
