/**
 * @file
 * Tests for the adaptive per-frame controller (paper §III-D, Fig. 10).
 */

#include <gtest/gtest.h>

#include "core/adaptive_controller.hh"

using namespace libra;

namespace
{

FrameObservation
obs(std::uint64_t cycles, double hit_ratio)
{
    FrameObservation o;
    o.valid = true;
    o.rasterCycles = cycles;
    o.textureHitRatio = hit_ratio;
    return o;
}

SchedulerConfig
defaults()
{
    return SchedulerConfig{};
}

} // namespace

TEST(Adaptive, FirstFrameUsesZOrder)
{
    AdaptiveController ctrl(defaults());
    const auto d = ctrl.decide(FrameObservation{});
    EXPECT_FALSE(d.temperatureOrder);
    EXPECT_EQ(d.supertileSize, defaults().initialSupertileSize);
}

TEST(Adaptive, SecondFramePicksByHitRatio)
{
    {
        AdaptiveController ctrl(defaults());
        ctrl.decide(FrameObservation{});
        EXPECT_TRUE(ctrl.decide(obs(1000, 0.5)).temperatureOrder);
    }
    {
        AdaptiveController ctrl(defaults());
        ctrl.decide(FrameObservation{});
        EXPECT_FALSE(ctrl.decide(obs(1000, 0.95)).temperatureOrder);
    }
}

TEST(Adaptive, StablePerformanceKeepsOrdering)
{
    AdaptiveController ctrl(defaults());
    ctrl.decide(FrameObservation{});
    ctrl.decide(obs(1000, 0.5)); // → temperature
    // Hit ratio recovers above the threshold but performance is stable
    // (< 3% variation): the ordering must NOT switch.
    const auto d = ctrl.decide(obs(1010, 0.9));
    EXPECT_TRUE(d.temperatureOrder);
}

TEST(Adaptive, SignificantVariationReevaluatesByHitRatio)
{
    AdaptiveController ctrl(defaults());
    ctrl.decide(FrameObservation{});
    ctrl.decide(obs(1000, 0.5)); // → temperature
    // Perf improved a lot AND hit ratio now high → Z-order chosen.
    const auto d = ctrl.decide(obs(800, 0.9));
    EXPECT_FALSE(d.temperatureOrder);
}

TEST(Adaptive, BothDegradedFlipsOrdering)
{
    AdaptiveController ctrl(defaults());
    ctrl.decide(FrameObservation{});
    // High hit ratio → Z-order.
    ctrl.decide(obs(1000, 0.9));
    EXPECT_FALSE(ctrl.temperatureOrder());
    // Perf degrades >3% AND hit ratio degrades, although still above
    // the 80% threshold: the escape rule flips to temperature order.
    const auto d = ctrl.decide(obs(1100, 0.85));
    EXPECT_TRUE(d.temperatureOrder);
}

TEST(Adaptive, BothDegradedFlipsBackToo)
{
    AdaptiveController ctrl(defaults());
    ctrl.decide(FrameObservation{});
    ctrl.decide(obs(1000, 0.5)); // temperature
    // Degrading under temperature order with degrading (low) hit ratio
    // flips back to Z despite the hit-ratio rule preferring temp.
    const auto d = ctrl.decide(obs(1100, 0.4));
    EXPECT_FALSE(d.temperatureOrder);
}

TEST(Adaptive, SupertileGrowsWhileImproving)
{
    SchedulerConfig cfg = defaults();
    cfg.initialSupertileSize = 2;
    AdaptiveController ctrl(cfg);
    ctrl.decide(FrameObservation{});
    ctrl.decide(obs(1000, 0.5));
    EXPECT_EQ(ctrl.decide(obs(900, 0.5)).supertileSize, 4u);
    EXPECT_EQ(ctrl.decide(obs(800, 0.5)).supertileSize, 8u);
    EXPECT_EQ(ctrl.decide(obs(700, 0.5)).supertileSize, 16u);
    // Capped at 16.
    EXPECT_EQ(ctrl.decide(obs(600, 0.5)).supertileSize, 16u);
}

TEST(Adaptive, SupertileReversesOnDegradation)
{
    SchedulerConfig cfg = defaults();
    cfg.initialSupertileSize = 4;
    AdaptiveController ctrl(cfg);
    ctrl.decide(FrameObservation{});
    ctrl.decide(obs(1000, 0.5));
    EXPECT_EQ(ctrl.decide(obs(900, 0.5)).supertileSize, 8u);  // grow
    EXPECT_EQ(ctrl.decide(obs(1000, 0.5)).supertileSize, 4u); // reverse
    EXPECT_EQ(ctrl.decide(obs(900, 0.5)).supertileSize, 2u);  // shrink on
    EXPECT_EQ(ctrl.decide(obs(850, 0.5)).supertileSize, 2u);  // floor
}

TEST(Adaptive, DeadZoneFreezesSize)
{
    SchedulerConfig cfg = defaults();
    cfg.initialSupertileSize = 4;
    AdaptiveController ctrl(cfg);
    ctrl.decide(FrameObservation{});
    ctrl.decide(obs(1000000, 0.5));
    // 0.1% variation < 0.25% threshold: size unchanged.
    EXPECT_EQ(ctrl.decide(obs(1001000, 0.5)).supertileSize, 4u);
    EXPECT_EQ(ctrl.decide(obs(1000500, 0.5)).supertileSize, 4u);
}

TEST(Adaptive, LargeResizeThresholdActsStatic)
{
    // Fig. 19a: beyond ~15% the size almost never changes.
    SchedulerConfig cfg = defaults();
    cfg.resizeThreshold = 0.5;
    cfg.initialSupertileSize = 4;
    AdaptiveController ctrl(cfg);
    ctrl.decide(FrameObservation{});
    std::uint64_t cycles = 1000000;
    for (int i = 0; i < 20; ++i) {
        cycles = cycles * 98 / 100; // steady 2% improvements
        EXPECT_EQ(ctrl.decide(obs(cycles, 0.5)).supertileSize, 4u);
    }
}

TEST(Adaptive, RespectsSizeBounds)
{
    SchedulerConfig cfg = defaults();
    cfg.minSupertileSize = 4;
    cfg.maxSupertileSize = 8;
    cfg.initialSupertileSize = 2; // below min: clamped up
    AdaptiveController ctrl(cfg);
    EXPECT_GE(ctrl.supertileSize(), 4u);
    ctrl.decide(FrameObservation{});
    ctrl.decide(obs(1000, 0.5));
    for (int i = 0; i < 10; ++i) {
        const auto d = ctrl.decide(obs(900 - i, 0.5));
        EXPECT_GE(d.supertileSize, 4u);
        EXPECT_LE(d.supertileSize, 8u);
    }
}

TEST(Adaptive, KeepsOnlyATwoFrameWindow)
{
    // Every §III-D rule compares the incoming observation against the
    // previous frame only; no older history is retained (the one-time
    // prevPrev member was dead state). Two controllers whose histories
    // differ only before the last common observation must take
    // identical decisions from then on — including on a frame whose
    // variation is large enough to trigger a resize.
    SchedulerConfig cfg = defaults();
    AdaptiveController a(cfg), b(cfg);
    a.decide(FrameObservation{});
    b.decide(FrameObservation{});

    // Divergent frame N-2 observations (variation between them and the
    // common successor stays below every threshold, so the visible
    // decisions do not fork here).
    a.decide(obs(1000000, 0.5));
    b.decide(obs(1001000, 0.5));

    // Common frame N-1.
    const auto da = a.decide(obs(1000500, 0.5));
    const auto db = b.decide(obs(1000500, 0.5));
    ASSERT_EQ(da.temperatureOrder, db.temperatureOrder);
    ASSERT_EQ(da.supertileSize, db.supertileSize);

    // Frame N swings hard (10% better): whatever the rules do, both
    // controllers — whose retained state is now identical — must agree.
    const auto ea = a.decide(obs(900450, 0.5));
    const auto eb = b.decide(obs(900450, 0.5));
    EXPECT_EQ(ea.temperatureOrder, eb.temperatureOrder);
    EXPECT_EQ(ea.supertileSize, eb.supertileSize);

    // And keep agreeing on subsequent frames.
    for (int i = 0; i < 5; ++i) {
        const std::uint64_t c = 900450 + i * 40000;
        const auto fa = a.decide(obs(c, 0.5));
        const auto fb = b.decide(obs(c, 0.5));
        EXPECT_EQ(fa.temperatureOrder, fb.temperatureOrder);
        EXPECT_EQ(fa.supertileSize, fb.supertileSize);
    }
}
