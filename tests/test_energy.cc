/**
 * @file
 * Tests for the event-energy model.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

using namespace libra;

TEST(Energy, ZeroEventsZeroEnergy)
{
    const EnergyBreakdown e = computeEnergy(EnergyParams{},
                                            EnergyEvents{});
    EXPECT_DOUBLE_EQ(e.totalMj, 0.0);
}

TEST(Energy, StaticEnergyScalesWithCycles)
{
    EnergyParams p;
    EnergyEvents ev;
    ev.cycles = 800000; // 1 ms at 800 MHz
    const auto e = computeEnergy(p, ev);
    // 0.4 W for 1 ms → 0.4 mJ with the default 500 pJ/cycle.
    EXPECT_NEAR(e.staticMj, 0.4, 1e-9);
    EXPECT_DOUBLE_EQ(e.totalMj, e.staticMj);
}

TEST(Energy, DramDominatesPerEvent)
{
    // One DRAM line burst costs orders of magnitude more than one L1
    // access — the reason TBR exists (paper §II).
    const EnergyParams p;
    EXPECT_GT(p.dramLinePj, 50.0 * p.l1AccessPj);
    EXPECT_GT(p.l2AccessPj, p.l1AccessPj);
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyParams p;
    EnergyEvents ev;
    ev.warpInstructions = 1000;
    ev.l1Accesses = 2000;
    ev.l2Accesses = 300;
    ev.dramLines = 100;
    ev.dramActivates = 20;
    ev.rasterQuads = 500;
    ev.blendQuads = 500;
    ev.vertices = 50;
    ev.cycles = 10000;
    const auto e = computeEnergy(p, ev);
    EXPECT_NEAR(e.totalMj,
                e.coreMj + e.cacheMj + e.dramMj + e.fixedFunctionMj
                    + e.staticMj,
                1e-12);
    EXPECT_GT(e.coreMj, 0.0);
    EXPECT_GT(e.cacheMj, 0.0);
    EXPECT_GT(e.dramMj, 0.0);
    EXPECT_GT(e.fixedFunctionMj, 0.0);
}

TEST(Energy, LinearInEventCounts)
{
    EnergyParams p;
    EnergyEvents ev;
    ev.dramLines = 100;
    const auto e1 = computeEnergy(p, ev);
    ev.dramLines = 200;
    const auto e2 = computeEnergy(p, ev);
    EXPECT_NEAR(e2.dramMj, 2.0 * e1.dramMj, 1e-12);
}

TEST(Energy, ParamsAreTweakable)
{
    EnergyParams p;
    p.dramLinePj = 0.0;
    p.dramActivatePj = 0.0;
    EnergyEvents ev;
    ev.dramLines = 1000;
    ev.dramActivates = 1000;
    EXPECT_DOUBLE_EQ(computeEnergy(p, ev).dramMj, 0.0);
}
