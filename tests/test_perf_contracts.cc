/**
 * @file
 * Performance-optimization contracts: the observable semantics the
 * hot-path rewrites (pooled/bucketed EventQueue, open-addressed MSHR
 * index) must preserve exactly.
 *
 * Three families:
 *  - same-tick FIFO ordering through the EventQueue's same-tick batch,
 *    including events scheduled from inside running events and slot
 *    recycling through the free-list;
 *  - MSHR coalescing equivalence: the open-addressed index must track
 *    exactly the set of outstanding line fills a reference map tracks,
 *    under heavy alloc/free churn, growth and backward-shift deletion;
 *  - a fixed-seed golden counter dump: one pinned simulation whose
 *    full counter dump is hashed and compared against a committed
 *    golden value, so any optimization that changes *any* counter
 *    anywhere fails loudly rather than drifting silently.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/mem_system.hh"
#include "common/open_addr_map.hh"
#include "common/rng.hh"
#include "gpu/runner.hh"
#include "sim/event_queue.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

// ---------------------------------------------------------------------
// Same-tick FIFO ordering.
// ---------------------------------------------------------------------

TEST(SameTickFifo, EventsScheduledDuringTickRunAfterPreScheduled)
{
    // A and B are heap entries for tick 5 (scheduled before the tick
    // starts); C and D enter the same-tick batch from inside A. The
    // (when, seq) contract requires A, B, C, D.
    EventQueue eq;
    std::vector<char> order;
    eq.schedule(5, [&] {
        order.push_back('A');
        eq.schedule(5, [&] { order.push_back('C'); });
        eq.schedule(5, [&] { order.push_back('D'); });
    });
    eq.schedule(5, [&] { order.push_back('B'); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C', 'D'}));
}

TEST(SameTickFifo, NestedSameTickSchedulingStaysFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3, [&] {
        order.push_back(0);
        eq.schedule(3, [&] {
            order.push_back(1);
            eq.schedule(3, [&] {
                order.push_back(3);
                eq.schedule(3, [&] { order.push_back(5); });
            });
            eq.schedule(3, [&] { order.push_back(4); });
        });
        eq.schedule(3, [&] { order.push_back(2); });
    });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SameTickFifo, BatchDrainsBeforeTimeAdvances)
{
    EventQueue eq;
    std::vector<char> order;
    eq.schedule(6, [&] { order.push_back('F'); });
    eq.schedule(5, [&] {
        order.push_back('A');
        eq.schedule(5, [&] { order.push_back('C'); });
        eq.schedule(6, [&] { order.push_back('G'); });
        // While the same-tick batch is non-empty the queue must report
        // the current tick as next, not the tick-6 heap top.
        EXPECT_EQ(eq.nextEventTick(), 5u);
    });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<char>{'A', 'C', 'F', 'G'}));
    EXPECT_EQ(eq.now(), 6u);
}

TEST(SameTickFifo, PendingCountsTheSameTickBatch)
{
    EventQueue eq;
    eq.schedule(1, [&] {
        eq.schedule(1, [] {});
        eq.schedule(1, [] {});
        eq.schedule(2, [] {});
        // One tick-2 heap entry plus two batch entries.
        EXPECT_EQ(eq.pending(), 3u);
        EXPECT_FALSE(eq.empty());
    });
    eq.runUntil();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 4u);
}

TEST(SameTickFifo, OrderSurvivesSlotRecyclingChurn)
{
    // Thousands of schedule/run cycles with mixed same-tick and future
    // events force heavy free-list reuse; execution order must match a
    // reference sequence independent of slot assignment.
    EventQueue eq;
    Rng rng(0xC0FFEE);
    std::vector<std::uint64_t> order;
    std::uint64_t next_id = 0;

    // Each tick T runs one "driver" event that appends a pseudorandom
    // mix of same-tick and next-tick work; ids record issue order.
    std::vector<std::uint64_t> expected;
    std::function<void(int)> drive = [&](int depth) {
        const std::uint32_t n = 1 + rng.next() % 4;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t id = next_id++;
            const bool same_tick = depth < 3 && (rng.next() & 1) != 0;
            if (same_tick) {
                eq.schedule(eq.now(), [&order, &drive, id, depth] {
                    order.push_back(id);
                    drive(depth + 1);
                });
            } else {
                eq.schedule(eq.now() + 1 + rng.next() % 3,
                            [&order, id] { order.push_back(id); });
            }
        }
    };
    for (int t = 0; t < 200; ++t) {
        eq.schedule(eq.now() + 1, [&] { drive(0); });
        eq.runUntil(eq.now() + 1);
    }
    eq.runUntil();

    // FIFO within a tick means ids issued at the same tick appear in
    // issue order; globally the sequence must be a permutation with no
    // duplicates and no losses.
    std::set<std::uint64_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), order.size()) << "an event ran twice";
    EXPECT_EQ(order.size(), next_id) << "an event was lost";
    // Spot-check the intra-tick FIFO property: scan for adjacent
    // inversions among events that ran at the same tick is implicit in
    // the deterministic total order; re-running must reproduce it.
    EXPECT_GT(eq.eventsExecuted(), 200u);
}

// ---------------------------------------------------------------------
// Open-addressed MSHR matching.
// ---------------------------------------------------------------------

TEST(OpenAddrMap, InsertFindEraseWithGrowth)
{
    OpenAddrMap<std::uint32_t> map(4); // deliberately undersized
    std::unordered_map<Addr, std::uint32_t> ref;
    for (std::uint32_t i = 0; i < 4096; ++i) {
        const Addr line = static_cast<Addr>(i) * 64;
        map.insert(line, i);
        ref[line] = i;
    }
    EXPECT_EQ(map.size(), ref.size());
    for (const auto &[k, v] : ref) {
        const std::uint32_t *found = map.find(k);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, v);
    }
    EXPECT_FALSE(map.contains(64 * 100000));

    // Erase every other entry; backward-shift deletion must keep every
    // surviving probe chain intact.
    for (std::uint32_t i = 0; i < 4096; i += 2) {
        EXPECT_TRUE(map.erase(static_cast<Addr>(i) * 64));
        ref.erase(static_cast<Addr>(i) * 64);
    }
    EXPECT_FALSE(map.erase(0)); // already gone
    EXPECT_EQ(map.size(), ref.size());
    std::size_t visited = 0;
    map.forEach([&](Addr k, std::uint32_t v) {
        ++visited;
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(it->second, v);
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(OpenAddrMap, RandomChurnMatchesReferenceMap)
{
    // MSHR-shaped workload: a small set of live keys with constant
    // insert/erase churn (allocate on miss, free on fill).
    OpenAddrMap<std::uint32_t> map(16);
    std::unordered_map<Addr, std::uint32_t> ref;
    Rng rng(1234);
    for (int step = 0; step < 100000; ++step) {
        const Addr key = (rng.next() % 512) * 64;
        if ((rng.next() & 3) == 0) {
            EXPECT_EQ(map.erase(key), ref.erase(key) == 1);
        } else {
            const auto val = static_cast<std::uint32_t>(step);
            map.insert(key, val);
            ref[key] = val;
        }
        if (step % 1000 == 0) {
            ASSERT_EQ(map.size(), ref.size());
            for (const auto &[k, v] : ref) {
                const std::uint32_t *found = map.find(k);
                ASSERT_NE(found, nullptr);
                ASSERT_EQ(*found, v);
            }
        }
    }
}

namespace
{

/** Fixed-latency next level that counts line fills. */
class CountingMemory : public MemSink
{
  public:
    CountingMemory(EventQueue &eq, Tick latency)
        : queue(eq), lat(latency)
    {}

    void
    access(MemReq req) override
    {
        reads += !req.write;
        writes += req.write;
        if (req.onComplete) {
            const Tick done = queue.now() + lat;
            auto cb = std::move(req.onComplete);
            queue.schedule(done, [cb = std::move(cb), done]() mutable {
                cb(done);
            });
        }
    }

    EventQueue &queue;
    Tick lat;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

} // namespace

TEST(MshrCoalescing, OpenAddressedPathMatchesCounterContract)
{
    // Pseudorandom read stream over a pool much larger than the cache:
    // every access must be classified as exactly one of hit, new miss
    // or coalesced miss, every miss must issue exactly one fill, every
    // callback must fire exactly once, and the MSHR index must drain
    // to empty. A lost or duplicated open-addressing entry breaks one
    // of these identities.
    EventQueue eq;
    CountingMemory mem(eq, 40);
    CacheConfig cfg;
    cfg.name = "contract";
    cfg.sizeBytes = 4 * 1024; // 64 lines
    cfg.ways = 4;
    cfg.lineBytes = 64;
    cfg.hitLatency = 2;
    cfg.mshrs = 4096; // enough that no access ever stalls
    Cache cache(eq, cfg, mem);

    Rng rng(99);
    std::uint64_t completions = 0;
    constexpr int kAccesses = 20000;
    for (int i = 0; i < kAccesses; ++i) {
        const std::uint64_t before = cache.hits.value()
            + cache.misses.value() + cache.mshrCoalesced.value()
            + cache.mshrStalls.value();
        MemReq req;
        req.addr = (rng.next() % 4096) * 64;
        req.size = 64;
        req.onComplete = [&completions](Tick) { ++completions; };
        cache.access(std::move(req));
        const std::uint64_t after = cache.hits.value()
            + cache.misses.value() + cache.mshrCoalesced.value()
            + cache.mshrStalls.value();
        EXPECT_EQ(after, before + 1)
            << "access " << i << " not classified exactly once";
        // Let time advance irregularly so fills return interleaved
        // with new accesses (MSHR alloc/free churn).
        if ((rng.next() & 7) == 0)
            eq.runUntil(eq.now() + static_cast<Tick>(rng.next() % 30));
    }
    eq.runUntil();

    EXPECT_EQ(completions, static_cast<std::uint64_t>(kAccesses));
    EXPECT_EQ(cache.outstandingMisses(), 0u);
    EXPECT_EQ(cache.mshrStalls.value(), 0u);
    // Each distinct miss issues exactly one fill read downstream;
    // coalesced accesses must not.
    EXPECT_EQ(mem.reads, cache.misses.value());
    EXPECT_EQ(cache.hits.value() + cache.misses.value()
                  + cache.mshrCoalesced.value()
                  + cache.mshrStalls.value(),
              static_cast<std::uint64_t>(kAccesses));
}

TEST(MshrCoalescing, WaitersOnOneLineCompleteTogether)
{
    EventQueue eq;
    CountingMemory mem(eq, 100);
    CacheConfig cfg;
    cfg.name = "coalesce";
    cfg.mshrs = 4;
    Cache cache(eq, cfg, mem);

    std::vector<Tick> done;
    for (int i = 0; i < 5; ++i) {
        MemReq req;
        req.addr = 0x1000;
        req.onComplete = [&done](Tick when) { done.push_back(when); };
        cache.access(std::move(req));
    }
    eq.runUntil();
    ASSERT_EQ(done.size(), 5u);
    for (const Tick t : done)
        EXPECT_EQ(t, done.front());
    EXPECT_EQ(cache.misses.value(), 1u);
    EXPECT_EQ(cache.mshrCoalesced.value(), 4u);
    EXPECT_EQ(mem.reads, 1u);
}

// ---------------------------------------------------------------------
// Fixed-seed golden counter dump.
// ---------------------------------------------------------------------

namespace
{

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
counterDump(const RunResult &r)
{
    std::string dump;
    for (const auto &[name, value] : r.counters)
        dump += name + "=" + std::to_string(value) + "\n";
    for (const FrameStats &fs : r.frames) {
        dump += "frame" + std::to_string(fs.frameIndex) + ".cycles="
            + std::to_string(fs.totalCycles) + "\n";
    }
    return dump;
}

} // namespace

TEST(GoldenCounters, PinnedRunCounterDumpIsUnchanged)
{
    // CCS at 512x288, LIBRA(2 RUs, 4 cores), 2 frames, fixed seed: the
    // full cumulative counter dump of this pinned simulation is the
    // regression surface every optimization must leave byte-identical.
    // If this fails and the change was *intended* to alter modeled
    // behavior, re-golden via the printed dump hash; if it was meant
    // to be a pure speedup, the optimization is wrong.
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = 512;
    cfg.screenHeight = 288;
    const Scene scene(findBenchmark("CCS"), 512, 288);

    Result<RunResult> run = runBenchmark(scene, cfg, 2);
    ASSERT_TRUE(run.isOk()) << run.status().toString();

    const std::string dump = counterDump(*run);
    const std::uint64_t hash = fnv1a(dump);

    // Golden values regenerated with: ctest -R GoldenCounters (the
    // failure message prints the new hash and headline counters).
    constexpr std::uint64_t kGoldenHash = 12404121804941291551ull;
    constexpr std::uint64_t kGoldenFrame1Cycles = 221389ull;
    constexpr std::uint64_t kGoldenDramReads = 50454ull;

    ASSERT_EQ(run->frames.size(), 2u);
    EXPECT_EQ(hash, kGoldenHash)
        << "counter dump changed; new hash " << hash
        << ", frame1 cycles " << run->frames[1].totalCycles
        << ", dram reads " << run->dramAccesses() << "\n"
        << dump;
    EXPECT_EQ(run->frames[1].totalCycles, kGoldenFrame1Cycles);
    EXPECT_EQ(run->dramAccesses(), kGoldenDramReads);
}
