/**
 * @file
 * Tests for the LPDDR4 timing model and its FR-FCFS controller.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/dram.hh"
#include "sim/event_queue.hh"

using namespace libra;

namespace
{

DramConfig
testConfig()
{
    DramConfig cfg; // library defaults
    return cfg;
}

/** Issue a read and return its completion tick (drains the queue). */
Tick
readLine(EventQueue &eq, Dram &dram, Addr addr)
{
    Tick done = 0;
    dram.access(MemReq{addr, 64, false, TrafficClass::Texture, 0,
                       [&](Tick t) { done = t; }});
    eq.runUntil();
    return done;
}

} // namespace

TEST(Dram, UnloadedLatencyInPaperRange)
{
    // Table I quotes 50-100 cycles for main memory.
    EventQueue eq;
    Dram dram(eq, testConfig());
    const Tick t0 = eq.now();
    const Tick done = readLine(eq, dram, 0x1000);
    const Tick latency = done - t0;
    EXPECT_GE(latency, 30u);
    EXPECT_LE(latency, 100u);
}

TEST(Dram, RowHitFasterThanConflict)
{
    const DramConfig cfg = testConfig();
    EventQueue eq;
    Dram dram(eq, cfg);

    // Open a row, then hit it.
    readLine(eq, dram, 0);
    const Tick h0 = eq.now();
    readLine(eq, dram, 64); // same chunk → same bank/row
    const Tick hit_latency = eq.now() - h0;

    // Conflict: same bank, different row. Same bank repeats every
    // channels*banks chunks; a row spans rowBytes within the bank.
    const Addr bank_stride = static_cast<Addr>(cfg.interleaveLines) * 64
        * cfg.channels * cfg.banksPerChannel;
    const Addr same_bank_other_row = bank_stride
        * (cfg.rowBytes / (cfg.interleaveLines * 64)) ;
    const Tick c0 = eq.now();
    readLine(eq, dram, same_bank_other_row);
    const Tick conflict_latency = eq.now() - c0;

    EXPECT_GT(conflict_latency, hit_latency);
    EXPECT_GE(conflict_latency - hit_latency, cfg.tRp);
}

TEST(Dram, CountsRowHitsAndConflicts)
{
    EventQueue eq;
    Dram dram(eq, testConfig());
    readLine(eq, dram, 0);
    readLine(eq, dram, 64);
    readLine(eq, dram, 128);
    EXPECT_EQ(dram.reads.value(), 3u);
    EXPECT_EQ(dram.rowMisses.value(), 1u); // first access opens the row
    EXPECT_EQ(dram.rowHits.value(), 2u);
    EXPECT_EQ(dram.rowConflicts.value(), 0u);
}

TEST(Dram, SequentialThroughputNearBusLimit)
{
    const DramConfig cfg = testConfig();
    EventQueue eq;
    Dram dram(eq, cfg);

    const int n = 512;
    int completed = 0;
    Tick last = 0;
    for (int i = 0; i < n; ++i) {
        dram.access(MemReq{static_cast<Addr>(i) * 64, 64, false,
                           TrafficClass::Texture, 0, [&](Tick t) {
                               ++completed;
                               last = std::max(last, t);
                           }});
    }
    eq.runUntil();
    EXPECT_EQ(completed, n);
    // Peak: one line per tBurst per channel. Allow 60% efficiency.
    const double ideal = static_cast<double>(n) * cfg.tBurst
        / cfg.channels;
    EXPECT_LT(static_cast<double>(last), ideal / 0.6);
}

TEST(Dram, LatencyRisesWithBurstDepth)
{
    // The core congestion property the LIBRA scheduler exploits: the
    // deeper the instantaneous burst, the longer the mean latency.
    auto mean_latency = [](int burst) {
        EventQueue eq;
        Dram dram(eq, testConfig());
        std::vector<Tick> done;
        const Tick t0 = eq.now();
        for (int i = 0; i < burst; ++i) {
            dram.access(MemReq{static_cast<Addr>(i) * 4096, 64, false,
                               TrafficClass::Texture, 0,
                               [&](Tick t) { done.push_back(t); }});
        }
        eq.runUntil();
        double sum = 0.0;
        for (const Tick t : done)
            sum += static_cast<double>(t - t0);
        return sum / static_cast<double>(done.size());
    };
    const double shallow = mean_latency(4);
    const double deep = mean_latency(256);
    EXPECT_GT(deep, shallow * 3.0);
}

TEST(Dram, ReadsPrioritizedOverWrites)
{
    EventQueue eq;
    Dram dram(eq, testConfig());

    // Post a pile of writes, then one read; the read must not wait for
    // the whole write queue.
    Tick write_done = 0;
    for (int i = 0; i < 128; ++i) {
        dram.access(MemReq{static_cast<Addr>(i) * 4096, 64, true,
                           TrafficClass::FrameBuffer, 0,
                           [&](Tick t) { write_done = std::max(write_done, t); }});
    }
    Tick read_done = 0;
    dram.access(MemReq{0x100000, 64, false, TrafficClass::Texture, 0,
                       [&](Tick t) { read_done = t; }});
    eq.runUntil();
    EXPECT_GT(read_done, 0u);
    EXPECT_LT(read_done, write_done);
}

TEST(Dram, WritesEventuallyDrain)
{
    EventQueue eq;
    Dram dram(eq, testConfig());
    int done = 0;
    for (int i = 0; i < 300; ++i) {
        dram.access(MemReq{static_cast<Addr>(i) * 64, 64, true,
                           TrafficClass::FrameBuffer, 0,
                           [&](Tick) { ++done; }});
    }
    eq.runUntil();
    EXPECT_EQ(done, 300);
    EXPECT_EQ(dram.writes.value(), 300u);
}

TEST(Dram, MultiLineRequestCompletesOnLastBeat)
{
    EventQueue eq;
    Dram dram(eq, testConfig());
    int completions = 0;
    Tick done = 0;
    dram.access(MemReq{0, 4096, true, TrafficClass::FrameBuffer, 7,
                       [&](Tick t) {
                           ++completions;
                           done = t;
                       }});
    eq.runUntil();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(dram.writes.value(), 64u); // 4 KB = 64 lines
    EXPECT_GE(done, 64u * testConfig().tBurst / testConfig().channels);
}

TEST(Dram, ObserverSeesEveryLineWithAttributes)
{
    EventQueue eq;
    Dram dram(eq, testConfig());
    int observed = 0;
    dram.setObserver([&](const DramAccessInfo &info) {
        ++observed;
        EXPECT_EQ(info.cls, TrafficClass::Texture);
        EXPECT_EQ(info.tileTag, 42u);
        EXPECT_GE(info.complete, info.queued);
    });
    dram.access(MemReq{0, 256, false, TrafficClass::Texture, 42,
                       nullptr});
    eq.runUntil();
    EXPECT_EQ(observed, 4);
}

TEST(Dram, PerClassCounters)
{
    EventQueue eq;
    Dram dram(eq, testConfig());
    dram.access(MemReq{0, 64, false, TrafficClass::Texture, 0, nullptr});
    dram.access(MemReq{4096, 64, true, TrafficClass::FrameBuffer, 0,
                       nullptr});
    eq.runUntil();
    EXPECT_EQ(dram.classReads[static_cast<std::size_t>(
                  TrafficClass::Texture)].value(), 1u);
    EXPECT_EQ(dram.classWrites[static_cast<std::size_t>(
                  TrafficClass::FrameBuffer)].value(), 1u);
    EXPECT_EQ(dram.bytesTransferred(), 128u);
}

TEST(Dram, DeterministicAcrossRuns)
{
    auto run = [] {
        EventQueue eq;
        Dram dram(eq, testConfig());
        Tick last = 0;
        for (int i = 0; i < 200; ++i) {
            dram.access(MemReq{static_cast<Addr>(i * 1337) % 0x100000
                                   * 64,
                               64, i % 3 == 0, TrafficClass::Texture, 0,
                               [&](Tick t) { last = std::max(last, t); }});
        }
        eq.runUntil();
        return last;
    };
    EXPECT_EQ(run(), run());
}

TEST(Dram, StarvationCapBoundsReadLatencyUnderRowHitStream)
{
    // A continuous row-hit stream to one bank must not starve an old
    // conflicting read indefinitely.
    const DramConfig cfg = testConfig();
    EventQueue eq;
    Dram dram(eq, cfg);

    // Conflicting read to bank 0, row far away.
    Tick victim_done = 0;
    const Addr bank_stride = static_cast<Addr>(cfg.interleaveLines) * 64
        * cfg.channels * cfg.banksPerChannel;
    const Addr victim = bank_stride * 1024;
    // First open row 0 on bank 0.
    readLine(eq, dram, 0);
    const Tick start = eq.now();
    dram.access(MemReq{victim, 64, false, TrafficClass::Texture, 0,
                       [&](Tick t) { victim_done = t; }});
    // Then hammer row hits at the open row (same chunk lines + stride
    // rows that stay in row 0 region).
    for (int i = 0; i < 64; ++i) {
        dram.access(MemReq{static_cast<Addr>(i % 8) * 64, 64, false,
                           TrafficClass::Texture, 0, nullptr});
    }
    eq.runUntil();
    EXPECT_GT(victim_done, 0u);
    EXPECT_LT(victim_done - start,
              cfg.starvationLimit + 10 * (cfg.tRp + cfg.tRcd + cfg.tCas
                                          + cfg.tBurst));
}

class DramChannelSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(DramChannelSweep, MoreChannelsMoreThroughput)
{
    DramConfig cfg = testConfig();
    cfg.channels = GetParam();
    EventQueue eq;
    Dram dram(eq, cfg);
    Tick last = 0;
    const int n = 256;
    for (int i = 0; i < n; ++i) {
        dram.access(MemReq{static_cast<Addr>(i) * 64, 64, false,
                           TrafficClass::Texture, 0,
                           [&](Tick t) { last = std::max(last, t); }});
    }
    eq.runUntil();
    // Finish time scales roughly with 1/channels for streaming reads.
    const double per_line = static_cast<double>(last) / n;
    EXPECT_LT(per_line, 1.8 * cfg.tBurst / GetParam() + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Channels, DramChannelSweep,
                         ::testing::Values(1u, 2u, 4u));
