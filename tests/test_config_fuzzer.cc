/**
 * @file
 * Tests for the seeded configuration fuzzer: every generated config is
 * validate()-clean, generation is deterministic from the seed, and a
 * fixed-seed batch simulates cleanly through the SweepRunner with every
 * invariant armed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include <set>
#include <string>

#include "check/config_fuzzer.hh"
#include "common/rng.hh"
#include "gpu/policy_registry.hh"
#include "sim/sweep.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

constexpr std::uint32_t W = 256;
constexpr std::uint32_t H = 128;

} // namespace

TEST(ConfigFuzzer, EveryConfigValidates)
{
    // fuzzGpuConfig() asserts validity internally; sweeping many seeds
    // here turns any hole in its construction rules into a red test
    // instead of a one-in-N fuzz-job crash.
    Rng rng(0xf00du);
    for (int i = 0; i < 200; ++i) {
        const GpuConfig cfg = fuzzGpuConfig(rng, W, H);
        EXPECT_TRUE(cfg.validate().isOk());
        EXPECT_TRUE(cfg.checkInvariants);
    }
}

TEST(ConfigFuzzer, DeterministicFromSeed)
{
    Rng a(42), b(42), c(43);
    const GpuConfig first = fuzzGpuConfig(a, W, H);
    const GpuConfig second = fuzzGpuConfig(b, W, H);
    EXPECT_TRUE(first.validate().isOk());

    // Same seed, same config; a different seed soon diverges.
    EXPECT_EQ(first.sched.policy, second.sched.policy);
    EXPECT_EQ(first.rasterUnits, second.rasterUnits);
    EXPECT_EQ(first.l2.sizeBytes, second.l2.sizeBytes);
    bool diverged = false;
    for (int i = 0; i < 8 && !diverged; ++i) {
        const GpuConfig other = fuzzGpuConfig(c, W, H);
        diverged = other.rasterUnits != first.rasterUnits ||
                   other.l2.sizeBytes != first.l2.sizeBytes ||
                   other.sched.policy != first.sched.policy;
    }
    EXPECT_TRUE(diverged);
}

TEST(ConfigFuzzer, EveryRegisteredPolicyIsReachable)
{
    // The fuzzer draws mechanism presets uniformly from the policy
    // registry; a 200-config run must hit every registered entry, so
    // the conservation laws fuzz every policy including Rendering
    // Elimination. policyNameFor() maps the drawn (sched, RE) pair
    // back to its registry name — "?" would mean the fuzzer produced
    // an unregistered combination.
    Rng rng(0xca11ab1eu);
    std::set<std::string> seen;
    for (int i = 0; i < 200; ++i) {
        const GpuConfig cfg = fuzzGpuConfig(rng, W, H);
        const std::string name = policyNameFor(cfg);
        EXPECT_NE(name, "?");
        seen.insert(name);
    }
    for (const PolicyInfo &p : policyRegistry())
        EXPECT_TRUE(seen.count(p.name))
            << p.name << " never drawn in 200 configs";
}

TEST(ConfigFuzzer, FixedSeedBatchSimulatesCleanly)
{
    // The CI configuration: a small fixed-seed batch through the sweep
    // engine, two frames each, conservation laws armed. Any accounting
    // regression anywhere in the model shows up as a failed job.
    const BenchmarkSpec &spec = findBenchmark("CCS");
    Rng rng(2024);
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back({&spec, fuzzGpuConfig(rng, W, H), 2, 0});

    SceneCache cache;
    SweepRunner runner;
    const std::vector<Result<RunResult>> results =
        runner.run(std::move(jobs), &cache);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].isOk())
            << "job " << i << ": " << results[i].status().toString();
        EXPECT_EQ((*results[i]).frames.size(), 2u);
    }
}
