/**
 * @file
 * Tests for the multithreaded shader core timing model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/mem_system.hh"
#include "gpu/raster/shader_core.hh"
#include "sim/event_queue.hh"

using namespace libra;

namespace
{

struct Rig
{
    explicit Rig(Tick mem_latency = 40, std::uint32_t warp_slots = 4)
        : mem(eq, mem_latency),
          cache(eq, CacheConfig{"l1", 32 * 1024, 4, 64, 2, 16, 4, true,
                                false},
                mem),
          core(eq, warp_slots, cache, "core0")
    {}

    EventQueue eq;
    IdealMemory mem;
    Cache cache;
    ShaderCore core;
};

WarpTask
aluWarp(std::uint16_t ops)
{
    WarpTask task;
    task.tile = 0;
    task.quadCount = 8;
    task.fragments = 32;
    task.aluOps = ops;
    task.instructions = ops + ShaderCore::tailOps;
    return task;
}

WarpTask
texWarp(std::uint16_t ops, std::vector<Addr> lines)
{
    WarpTask task = aluWarp(ops);
    task.texLines = std::move(lines);
    task.instructions += task.texLines.size();
    return task;
}

} // namespace

TEST(ShaderCore, PureAluWarpTiming)
{
    Rig rig;
    Tick retired = 0;
    rig.core.dispatch(aluWarp(10), [&](const WarpRetireInfo &info) {
        retired = info.shadedAt;
    });
    rig.eq.runUntil();
    // 10 ALU cycles + tail.
    EXPECT_EQ(retired, 10 + ShaderCore::tailOps);
    EXPECT_EQ(rig.core.warpsExecuted.value(), 1u);
    EXPECT_EQ(rig.core.busyCycles(), 10 + ShaderCore::tailOps);
}

TEST(ShaderCore, AluPhasesSerializeOnIssuePort)
{
    Rig rig;
    std::vector<Tick> retired;
    for (int i = 0; i < 3; ++i) {
        rig.core.dispatch(aluWarp(10), [&](const WarpRetireInfo &info) {
            retired.push_back(info.shadedAt);
        });
    }
    rig.eq.runUntil();
    ASSERT_EQ(retired.size(), 3u);
    // Single-issue: the three 10-cycle ALU blocks plus the three tail
    // blocks all share the issue port, so the last warp cannot finish
    // before all that work has issued.
    EXPECT_GE(retired[2], 3u * 10u + 3u * ShaderCore::tailOps);
    EXPECT_LE(retired[0], retired[1]);
    EXPECT_LE(retired[1], retired[2]);
    EXPECT_EQ(rig.core.busyCycles(),
              3u * (10u + ShaderCore::tailOps));
}

TEST(ShaderCore, TextureMissLatencyAddsToWarpTime)
{
    Rig rig(100);
    Tick retired = 0;
    rig.core.dispatch(texWarp(4, {0x1000}),
                      [&](const WarpRetireInfo &info) {
                          retired = info.shadedAt;
                      });
    rig.eq.runUntil();
    // ALU 4 + miss ~100+ + tail.
    EXPECT_GE(retired, 100u);
    EXPECT_GT(rig.core.texLatencySum.value(), 90u);
    EXPECT_EQ(rig.core.texRequests.value(), 1u);
}

TEST(ShaderCore, MemoryLatencyHiddenByOtherWarps)
{
    // Two warps: while warp A waits on memory, warp B issues ALU. The
    // total time must be far less than the serial sum.
    Rig rig(200, 4);
    Tick last = 0;
    for (int i = 0; i < 4; ++i) {
        rig.core.dispatch(
            texWarp(10, {static_cast<Addr>(0x1000 + i * 0x10000)}),
            [&](const WarpRetireInfo &info) {
                last = std::max(last, info.shadedAt);
            });
    }
    rig.eq.runUntil();
    // Serial would be ~4 * (10 + 200 + 2) ≈ 848; overlapped should be
    // a little over one memory latency.
    EXPECT_LT(last, 350u);
    EXPECT_GE(last, 200u);
}

TEST(ShaderCore, SlotAccounting)
{
    Rig rig(50, 2);
    EXPECT_TRUE(rig.core.hasFreeSlot());
    EXPECT_EQ(rig.core.freeSlots(), 2u);
    int retired = 0;
    rig.core.dispatch(texWarp(2, {0x0}),
                      [&](const WarpRetireInfo &) { ++retired; });
    rig.core.dispatch(texWarp(2, {0x40000}),
                      [&](const WarpRetireInfo &) { ++retired; });
    EXPECT_FALSE(rig.core.hasFreeSlot());
    EXPECT_EQ(rig.core.resident(), 2u);
    rig.eq.runUntil();
    EXPECT_EQ(retired, 2);
    EXPECT_EQ(rig.core.freeSlots(), 2u);
}

TEST(ShaderCore, RetireInfoCarriesTaskAttributes)
{
    Rig rig;
    WarpTask task = texWarp(6, {0x100, 0x200});
    task.tile = 77;
    task.blend = true;
    task.quadCount = 5;
    task.fragments = 17;
    WarpRetireInfo seen{};
    rig.core.dispatch(std::move(task), [&](const WarpRetireInfo &info) {
        seen = info;
    });
    rig.eq.runUntil();
    EXPECT_EQ(seen.tile, 77u);
    EXPECT_TRUE(seen.blend);
    EXPECT_EQ(seen.quadCount, 5u);
    EXPECT_EQ(seen.fragments, 17u);
    EXPECT_EQ(seen.texRequests, 2u);
    EXPECT_EQ(seen.instructions, 6u + 2u + ShaderCore::tailOps);
}

TEST(ShaderCore, SameLineRequestsCoalesceInL1)
{
    Rig rig(100);
    Tick retired = 0;
    rig.core.dispatch(texWarp(2, {0x1000, 0x1000, 0x1000, 0x1000}),
                      [&](const WarpRetireInfo &info) {
                          retired = info.shadedAt;
                      });
    rig.eq.runUntil();
    EXPECT_EQ(rig.cache.misses.value(), 1u);
    EXPECT_EQ(rig.cache.mshrCoalesced.value(), 3u);
    EXPECT_EQ(rig.mem.accesses, 1u);
}

TEST(ShaderCore, ZeroAluOpsStillTakesACycle)
{
    Rig rig;
    Tick retired = 0;
    rig.core.dispatch(aluWarp(0), [&](const WarpRetireInfo &info) {
        retired = info.shadedAt;
    });
    rig.eq.runUntil();
    EXPECT_GE(retired, 1u + ShaderCore::tailOps);
}

TEST(ShaderCoreDeathTest, DispatchToFullCorePanics)
{
    Rig rig(1000, 1);
    rig.core.dispatch(texWarp(2, {0x0}), [](const WarpRetireInfo &) {});
    EXPECT_DEATH(rig.core.dispatch(aluWarp(1),
                                   [](const WarpRetireInfo &) {}),
                 "full core");
}
