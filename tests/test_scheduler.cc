/**
 * @file
 * Tests for the tile scheduler: dispatch completeness, hot/cold RU
 * pairing, policy behavior.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <type_traits>

#include "core/temperature_table.hh"
#include "core/tile_scheduler.hh"

using namespace libra;

namespace
{

const TileGrid &
grid()
{
    static const TileGrid g(1920, 1080, 32);
    return g;
}

FrameFeedback
gradientFeedback()
{
    // Hot at the top of the screen, cold at the bottom.
    FrameFeedback fb;
    fb.valid = true;
    fb.rasterCycles = 1000000;
    fb.textureHitRatio = 0.5;
    fb.tileDramAccesses.resize(grid().tileCount());
    fb.tileInstructions.resize(grid().tileCount(), 1000);
    for (TileId t = 0; t < grid().tileCount(); ++t) {
        fb.tileDramAccesses[t] =
            (grid().tilesY() - grid().tileY(t)) * 10;
    }
    return fb;
}

/** Drain the whole frame; returns tiles per RU in dispatch order. */
std::vector<std::vector<TileId>>
drain(TileScheduler &sched, std::uint32_t rus)
{
    std::vector<std::vector<TileId>> out(rus);
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::uint32_t ru = 0; ru < rus; ++ru) {
            if (const auto tile = sched.nextTile(ru)) {
                out[ru].push_back(*tile);
                progress = true;
            }
        }
    }
    return out;
}

SchedulerConfig
policy(SchedulerPolicy p, std::uint32_t st = 4)
{
    SchedulerConfig cfg;
    cfg.policy = p;
    cfg.staticSupertileSize = st;
    return cfg;
}

} // namespace

class SchedulerPolicySweep
    : public ::testing::TestWithParam<SchedulerPolicy>
{};

TEST_P(SchedulerPolicySweep, EveryTileDispatchedExactlyOnce)
{
    for (const std::uint32_t rus : {1u, 2u, 3u, 4u}) {
        TileScheduler sched(policy(GetParam()), grid(), rus);
        sched.beginFrame(gradientFeedback());
        const auto dispatch = drain(sched, rus);
        std::set<TileId> seen;
        for (const auto &per_ru : dispatch) {
            for (const TileId t : per_ru)
                EXPECT_TRUE(seen.insert(t).second) << "dup tile " << t;
        }
        EXPECT_EQ(seen.size(), grid().tileCount()) << "rus=" << rus;
        EXPECT_EQ(sched.tilesRemaining(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SchedulerPolicySweep,
    ::testing::Values(SchedulerPolicy::ZOrder,
                      SchedulerPolicy::StaticSupertile,
                      SchedulerPolicy::TemperatureStatic,
                      SchedulerPolicy::Libra));

TEST(Scheduler, ZOrderSingleRuFollowsMorton)
{
    TileScheduler sched(policy(SchedulerPolicy::ZOrder), grid(), 1);
    sched.beginFrame(FrameFeedback{});
    const auto dispatch = drain(sched, 1);
    EXPECT_EQ(dispatch[0], grid().zOrder());
    EXPECT_FALSE(sched.temperatureOrderActive());
    EXPECT_EQ(sched.supertileSize(), 1u);
}

TEST(Scheduler, StaticSupertileKeepsSuperTilesWhole)
{
    const std::uint32_t st = 4;
    TileScheduler sched(policy(SchedulerPolicy::StaticSupertile, st),
                        grid(), 2);
    sched.beginFrame(gradientFeedback());
    const auto dispatch = drain(sched, 2);
    // Every supertile's tiles all landed on the same RU.
    std::map<SuperTileId, int> owner;
    for (int ru = 0; ru < 2; ++ru) {
        for (const TileId t : dispatch[static_cast<std::size_t>(ru)]) {
            const SuperTileId s = grid().superTileOf(t, st);
            auto it = owner.find(s);
            if (it == owner.end())
                owner[s] = ru;
            else
                EXPECT_EQ(it->second, ru) << "supertile " << s;
        }
    }
}

TEST(Scheduler, TemperatureOrderHotRuGetsHotterTiles)
{
    TileScheduler sched(policy(SchedulerPolicy::TemperatureStatic, 2),
                        grid(), 2);
    const auto fb = gradientFeedback();
    sched.beginFrame(fb);
    EXPECT_TRUE(sched.temperatureOrderActive());
    const auto dispatch = drain(sched, 2);

    auto mean_heat = [&](const std::vector<TileId> &tiles) {
        double sum = 0.0;
        for (const TileId t : tiles)
            sum += static_cast<double>(fb.tileDramAccesses[t]);
        return sum / static_cast<double>(tiles.size());
    };
    // RU 0 is the hot unit (§III-D).
    EXPECT_GT(mean_heat(dispatch[0]), mean_heat(dispatch[1]) * 1.5);
}

TEST(Scheduler, TemperatureNeedsHistory)
{
    TileScheduler sched(policy(SchedulerPolicy::TemperatureStatic, 2),
                        grid(), 2);
    sched.beginFrame(FrameFeedback{}); // no history
    EXPECT_FALSE(sched.temperatureOrderActive());
    drain(sched, 2);
}

TEST(Scheduler, HotRuPullsFromHotEndDynamically)
{
    // With one hot RU and three cold RUs, the hot RU must receive the
    // hottest supertile first.
    TileScheduler sched(policy(SchedulerPolicy::TemperatureStatic, 2),
                        grid(), 4);
    const auto fb = gradientFeedback();
    sched.beginFrame(fb);

    const auto hot_first = sched.nextTile(0);
    ASSERT_TRUE(hot_first.has_value());
    // Hottest row is y=0.
    EXPECT_EQ(grid().tileY(*hot_first), 0u);
    const auto cold_first = sched.nextTile(1);
    ASSERT_TRUE(cold_first.has_value());
    EXPECT_GT(grid().tileY(*cold_first), grid().tilesY() / 2);
    drain(sched, 4);
}

TEST(Scheduler, LibraFirstFrameZOrder)
{
    TileScheduler sched(policy(SchedulerPolicy::Libra), grid(), 2);
    sched.beginFrame(FrameFeedback{});
    EXPECT_FALSE(sched.temperatureOrderActive());
    EXPECT_EQ(sched.lastRankingCycles(), 0u);
    drain(sched, 2);
}

TEST(Scheduler, LibraAdoptsTemperatureOrderWhenMemoryBound)
{
    TileScheduler sched(policy(SchedulerPolicy::Libra), grid(), 2);
    sched.beginFrame(FrameFeedback{});
    drain(sched, 2);
    sched.beginFrame(gradientFeedback()); // low hit ratio
    EXPECT_TRUE(sched.temperatureOrderActive());
    EXPECT_GT(sched.lastRankingCycles(), 0u);
    drain(sched, 2);
}

TEST(Scheduler, RankingCostMatchesTableSize)
{
    TileScheduler sched(policy(SchedulerPolicy::TemperatureStatic, 2),
                        grid(), 2);
    sched.beginFrame(gradientFeedback());
    const auto expected = TemperatureTable::hardwareCost(
        grid().superTileCount(2)).rankingCycles;
    EXPECT_EQ(sched.lastRankingCycles(), expected);
    drain(sched, 2);
}

TEST(Scheduler, TilesRemainingCountsDown)
{
    TileScheduler sched(policy(SchedulerPolicy::ZOrder), grid(), 1);
    sched.beginFrame(FrameFeedback{});
    EXPECT_EQ(sched.tilesRemaining(), grid().tileCount());
    sched.nextTile(0);
    EXPECT_EQ(sched.tilesRemaining(), grid().tileCount() - 1);
    drain(sched, 1);
    EXPECT_EQ(sched.tilesRemaining(), 0u);
}

TEST(Scheduler, SupertilesServedContiguouslyPerRu)
{
    // Within one RU's stream, all tiles of a supertile appear as one
    // contiguous run (locality inside the RU, §III-C).
    const std::uint32_t st = 4;
    TileScheduler sched(policy(SchedulerPolicy::StaticSupertile, st),
                        grid(), 2);
    sched.beginFrame(gradientFeedback());
    const auto dispatch = drain(sched, 2);
    for (const auto &stream : dispatch) {
        std::set<SuperTileId> closed;
        SuperTileId current = invalidId;
        for (const TileId t : stream) {
            const SuperTileId s = grid().superTileOf(t, st);
            if (s != current) {
                EXPECT_TRUE(closed.insert(s).second)
                    << "supertile " << s << " revisited";
                current = s;
            }
        }
    }
}

TEST(Scheduler, TilesRemainingIsSixtyFourBit)
{
    // Regression: tilesRemaining() used to truncate through uint32_t;
    // extreme (grid x supertile) products overflow 32 bits.
    TileScheduler sched(policy(SchedulerPolicy::ZOrder), grid(), 1);
    static_assert(std::is_same_v<decltype(sched.tilesRemaining()),
                                 std::uint64_t>);
    sched.beginFrame(FrameFeedback{});
    EXPECT_EQ(sched.tilesRemaining(), grid().tileCount());
    drain(sched, 1);
    EXPECT_EQ(sched.tilesRemaining(), 0u);
}

TEST(Scheduler, ClampsOutOfRangeHotRasterUnits)
{
    // Regression: hotRasterUnits >= numRus left no cold RUs (and with a
    // single RU, hot = 0 made it pull from the cold/back end, quietly
    // reversing the ranking). Out-of-range values are clamped and the
    // dispatch matches the nearest legal configuration.
    SchedulerConfig bad = policy(SchedulerPolicy::TemperatureStatic, 2);
    bad.hotRasterUnits = 7; // >= numRus
    SchedulerConfig good = policy(SchedulerPolicy::TemperatureStatic, 2);
    good.hotRasterUnits = 1;

    TileScheduler clamped(bad, grid(), 2);
    TileScheduler legal(good, grid(), 2);
    clamped.beginFrame(gradientFeedback());
    legal.beginFrame(gradientFeedback());
    EXPECT_EQ(drain(clamped, 2), drain(legal, 2));
}

TEST(Scheduler, SingleRuHotZeroDoesNotReverseTheRanking)
{
    // hot = 0 on one RU must behave exactly like the legal hot = 1
    // scheduler: hottest supertile first, not the cold end.
    SchedulerConfig zero = policy(SchedulerPolicy::TemperatureStatic, 2);
    zero.hotRasterUnits = 0;
    SchedulerConfig one = policy(SchedulerPolicy::TemperatureStatic, 2);
    one.hotRasterUnits = 1;

    TileScheduler a(zero, grid(), 1);
    TileScheduler b(one, grid(), 1);
    a.beginFrame(gradientFeedback());
    b.beginFrame(gradientFeedback());
    EXPECT_EQ(drain(a, 1), drain(b, 1));
}
