/**
 * @file
 * Tests for the edge-function rasterizer, including the shared-edge
 * exactly-once coverage property that makes output schedule-invariant.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "gpu/raster/rasterizer.hh"
#include "workload/texture.hh"

using namespace libra;

namespace
{

Triangle
makeTri(Vec2 a, Vec2 b, Vec2 c, float za = 0.5f, float zb = 0.5f,
        float zc = 0.5f)
{
    Triangle t;
    t.v[0] = {{a.x, a.y, za}, {0.0f, 0.0f}};
    t.v[1] = {{b.x, b.y, zb}, {1.0f, 0.0f}};
    t.v[2] = {{c.x, c.y, zc}, {1.0f, 1.0f}};
    return t;
}

/** Collect covered pixels of a rasterization as a map pixel→count. */
std::map<std::pair<int, int>, int>
coverage(const Triangle &tri, const Texture &tex, const IRect &rect)
{
    const TriangleSetup setup(tri, tex);
    RasterOutput out;
    setup.rasterize(rect, out);
    std::map<std::pair<int, int>, int> pixels;
    for (const Quad &quad : out.quads) {
        for (int bit = 0; bit < 4; ++bit) {
            if (quad.mask & (1 << bit)) {
                pixels[{quad.px + (bit & 1), quad.py + (bit >> 1)}]++;
            }
        }
    }
    return pixels;
}

/** Reference inclusion test at pixel centers (strictly inside only). */
bool
strictlyInside(const Triangle &tri, float cx, float cy)
{
    const Vec2 p{cx, cy};
    float s0 = cross2(tri.v[1].pos.xy() - tri.v[0].pos.xy(),
                      p - tri.v[0].pos.xy());
    float s1 = cross2(tri.v[2].pos.xy() - tri.v[1].pos.xy(),
                      p - tri.v[1].pos.xy());
    float s2 = cross2(tri.v[0].pos.xy() - tri.v[2].pos.xy(),
                      p - tri.v[2].pos.xy());
    if (tri.signedArea2() < 0) {
        s0 = -s0;
        s1 = -s1;
        s2 = -s2;
    }
    return s0 > 0 && s1 > 0 && s2 > 0;
}

} // namespace

TEST(Rasterizer, FullSquareCoverage)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    // Two triangles forming the square [0,8)x[0,8).
    const Triangle t1 = makeTri({0, 0}, {8, 0}, {8, 8});
    const Triangle t2 = makeTri({0, 0}, {8, 8}, {0, 8});
    auto c1 = coverage(t1, tex, {0, 0, 8, 8});
    auto c2 = coverage(t2, tex, {0, 0, 8, 8});
    std::map<std::pair<int, int>, int> total = c1;
    for (const auto &[px, n] : c2)
        total[px] += n;
    EXPECT_EQ(total.size(), 64u);
    for (const auto &[px, n] : total)
        EXPECT_EQ(n, 1) << "pixel " << px.first << "," << px.second;
}

TEST(Rasterizer, SharedEdgeCoveredExactlyOnceRandom)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    Rng rng(77);
    const IRect rect{0, 0, 32, 32};
    for (int iter = 0; iter < 200; ++iter) {
        // Quad split along a random diagonal: every pixel covered by
        // the union must be covered exactly once.
        Vec2 p[4];
        for (auto &v : p) {
            v = {static_cast<float>(rng.uniform(0.0, 32.0)),
                 static_cast<float>(rng.uniform(0.0, 32.0))};
        }
        const Triangle t1 = makeTri(p[0], p[1], p[2]);
        const Triangle t2 = makeTri(p[0], p[2], p[3]);
        if (std::fabs(t1.signedArea2()) < 1.0f
            || std::fabs(t2.signedArea2()) < 1.0f) {
            continue;
        }
        // Only valid when the quad is convex (the diagonal is shared
        // cleanly); enforce by requiring consistent winding.
        if ((t1.signedArea2() > 0) != (t2.signedArea2() > 0))
            continue;

        auto c1 = coverage(t1, tex, rect);
        auto c2 = coverage(t2, tex, rect);
        for (const auto &[px, n] : c1) {
            EXPECT_EQ(n, 1);
            if (c2.count(px)) {
                ADD_FAILURE() << "pixel " << px.first << ","
                              << px.second << " covered by both halves"
                              << " (iter " << iter << ")";
            }
        }
        for (const auto &[px, n] : c2)
            EXPECT_EQ(n, 1);
    }
}

TEST(Rasterizer, MatchesReferenceInsideTest)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    Rng rng(99);
    const IRect rect{0, 0, 24, 24};
    for (int iter = 0; iter < 100; ++iter) {
        Triangle tri = makeTri(
            {static_cast<float>(rng.uniform(0.0, 24.0)),
             static_cast<float>(rng.uniform(0.0, 24.0))},
            {static_cast<float>(rng.uniform(0.0, 24.0)),
             static_cast<float>(rng.uniform(0.0, 24.0))},
            {static_cast<float>(rng.uniform(0.0, 24.0)),
             static_cast<float>(rng.uniform(0.0, 24.0))});
        if (std::fabs(tri.signedArea2()) < 2.0f)
            continue;
        auto cov = coverage(tri, tex, rect);
        for (int y = 0; y < 24; ++y) {
            for (int x = 0; x < 24; ++x) {
                const bool covered = cov.count({x, y}) > 0;
                const bool inside = strictlyInside(
                    tri, static_cast<float>(x) + 0.5f,
                    static_cast<float>(y) + 0.5f);
                // Strictly-inside pixels must be covered; boundary
                // pixels may go either way (top-left rule).
                if (inside) {
                    EXPECT_TRUE(covered) << x << "," << y;
                }
                const bool outside = !strictlyInside(
                    tri, static_cast<float>(x) + 0.5f,
                    static_cast<float>(y) + 0.5f);
                const Vec2 c{static_cast<float>(x) + 0.5f,
                             static_cast<float>(y) + 0.5f};
                // A covered pixel must not be strictly outside all
                // edges (cheap sanity: covered implies not far away).
                if (covered && outside) {
                    // It must then lie exactly on an edge: verify by
                    // checking at least one edge function is ~0.
                    float winding = tri.signedArea2() > 0 ? 1.0f : -1.0f;
                    bool on_edge = false;
                    for (int e = 0; e < 3; ++e) {
                        const Vec2 a = tri.v[e].pos.xy();
                        const Vec2 b = tri.v[(e + 1) % 3].pos.xy();
                        const float w =
                            winding * cross2(b - a, c - a);
                        if (std::fabs(w) < 1e-3f)
                            on_edge = true;
                        if (w < -1e-3f)
                            on_edge = false;
                    }
                    (void)on_edge; // boundary handling is rule-defined
                }
            }
        }
    }
}

TEST(Rasterizer, ClipsToTileRect)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    const Triangle tri = makeTri({-100, -100}, {200, -100}, {50, 200});
    const IRect rect{32, 32, 64, 64};
    auto cov = coverage(tri, tex, rect);
    EXPECT_FALSE(cov.empty());
    for (const auto &[px, n] : cov) {
        EXPECT_GE(px.first, 32);
        EXPECT_LT(px.first, 64);
        EXPECT_GE(px.second, 32);
        EXPECT_LT(px.second, 64);
    }
}

TEST(Rasterizer, DepthInterpolation)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    // z varies from 0 at x=0 to 1 at x=16.
    Triangle tri = makeTri({0, 0}, {16, 0}, {0, 16}, 0.0f, 1.0f, 0.0f);
    const TriangleSetup setup(tri, tex);
    RasterOutput out;
    setup.rasterize({0, 0, 16, 16}, out);
    for (const Quad &quad : out.quads) {
        for (int bit = 0; bit < 4; ++bit) {
            if (!(quad.mask & (1 << bit)))
                continue;
            const float cx = static_cast<float>(quad.px + (bit & 1))
                + 0.5f;
            const float expected = cx / 16.0f;
            EXPECT_NEAR(quad.z[bit], expected, 1e-4f);
        }
    }
}

TEST(Rasterizer, UvInterpolatedAtQuadCenter)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    Triangle tri;
    tri.v[0] = {{0, 0, 0}, {0.0f, 0.0f}};
    tri.v[1] = {{16, 0, 0}, {1.0f, 0.0f}};
    tri.v[2] = {{0, 16, 0}, {0.0f, 1.0f}};
    const TriangleSetup setup(tri, tex);
    RasterOutput out;
    setup.rasterize({0, 0, 16, 16}, out);
    ASSERT_FALSE(out.quads.empty());
    for (const Quad &quad : out.quads) {
        const float cx = static_cast<float>(quad.px) + 1.0f;
        const float cy = static_cast<float>(quad.py) + 1.0f;
        EXPECT_NEAR(quad.uv.x, cx / 16.0f, 1e-4f);
        EXPECT_NEAR(quad.uv.y, cy / 16.0f, 1e-4f);
    }
}

TEST(Rasterizer, MipSelectionFromDensity)
{
    TexturePool pool;
    const Texture &tex = pool.create(256, 256);
    // uv spans the whole texture over 16 pixels: 16 texels per pixel
    // → mip 4.
    Triangle tri;
    tri.v[0] = {{0, 0, 0}, {0.0f, 0.0f}};
    tri.v[1] = {{16, 0, 0}, {1.0f, 0.0f}};
    tri.v[2] = {{0, 16, 0}, {0.0f, 1.0f}};
    tri.useMips = true;
    EXPECT_EQ(TriangleSetup(tri, tex).mip(), 4u);
    tri.useMips = false;
    EXPECT_EQ(TriangleSetup(tri, tex).mip(), 0u);
}

TEST(Rasterizer, WindingNormalized)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    const Triangle ccw = makeTri({0, 0}, {8, 0}, {0, 8});
    Triangle cw = ccw;
    std::swap(cw.v[1], cw.v[2]);
    EXPECT_EQ(coverage(ccw, tex, {0, 0, 8, 8}),
              coverage(cw, tex, {0, 0, 8, 8}));
}

TEST(Rasterizer, BlocksScannedCountsWork)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    const Triangle tri = makeTri({0, 0}, {16, 0}, {0, 16});
    const TriangleSetup setup(tri, tex);
    RasterOutput out;
    setup.rasterize({0, 0, 16, 16}, out);
    EXPECT_EQ(out.blocksScanned, 64u); // 8x8 2x2-blocks in the bbox
}

TEST(Rasterizer, TinyTriangleBetweenPixelCentersCoversNothing)
{
    TexturePool pool;
    const Texture &tex = pool.create(64, 64);
    const Triangle tri = makeTri({3.1f, 3.1f}, {3.4f, 3.1f},
                                 {3.1f, 3.4f});
    auto cov = coverage(tri, tex, {0, 0, 8, 8});
    EXPECT_TRUE(cov.empty());
}
