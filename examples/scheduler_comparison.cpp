/**
 * @file
 * Compare every tile-scheduling policy on one game: baseline single-RU,
 * PTR with Z-order interleaving, static supertiles of each size,
 * temperature-order without adaptivity, and full LIBRA.
 *
 * Usage:
 *   scheduler_comparison [--benchmark CCS] [--frames 5]
 *                        [--width 960] [--height 544]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/runner.hh"
#include "trace/report.hh"

using namespace libra;

namespace
{

struct Entry
{
    const char *name;
    GpuConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"benchmark", "frames", "width", "height"});
    const BenchmarkSpec &spec =
        findBenchmark(args.get("benchmark", "CCS"));
    const auto frames =
        static_cast<std::uint32_t>(args.getInt("frames", 5));
    const auto width =
        static_cast<std::uint32_t>(args.getInt("width", 960));
    const auto height =
        static_cast<std::uint32_t>(args.getInt("height", 544));

    std::vector<Entry> entries;
    entries.push_back({"baseline 1RUx8", GpuConfig::baseline(8)});
    entries.push_back({"PTR 2RUx4 z-order", GpuConfig::ptr(2, 4)});
    for (const std::uint32_t st : {2u, 4u, 8u, 16u}) {
        Entry e{"", GpuConfig::staticSupertile(st)};
        static std::vector<std::string> names; // keep labels alive
        names.push_back("static supertile " + std::to_string(st) + "x"
                        + std::to_string(st));
        e.name = names.back().c_str();
        entries.push_back(e);
    }
    {
        GpuConfig cfg = GpuConfig::libra(2, 4);
        cfg.sched.policy = SchedulerPolicy::TemperatureStatic;
        cfg.sched.staticSupertileSize = 4;
        entries.push_back({"temperature (fixed 4x4)", cfg});
    }
    entries.push_back({"LIBRA (adaptive)", GpuConfig::libra(2, 4)});

    std::printf("benchmark: %s (%s, %s), %u frames at %ux%u\n",
                spec.abbrev.c_str(), spec.title.c_str(),
                genreName(spec.genre), frames, width, height);

    Table table({"policy", "cycles/frame", "speedup", "tex lat",
                 "dram lat", "tex hit", "energy mJ/f"});
    double base_cycles = 0.0;
    for (const auto &entry : entries) {
        GpuConfig cfg = entry.cfg;
        cfg.screenWidth = width;
        cfg.screenHeight = height;
        const Result<RunResult> run = runBenchmark(spec, cfg, frames);
        if (!run.isOk())
            fatal(entry.name, ": ", run.status().toString());
        const RunResult &r = *run;
        const double cyc = static_cast<double>(r.totalCycles()) / frames;
        if (base_cycles == 0.0)
            base_cycles = cyc;
        table.addRow({entry.name, Table::num(cyc, 0),
                      Table::num(base_cycles / cyc, 3),
                      Table::num(r.avgTextureLatency(), 1),
                      Table::num(r.avgDramReadLatency(), 1),
                      Table::pct(r.textureHitRatio()),
                      Table::num(r.totalEnergyMj() / frames, 2)});
    }
    table.print();
    return 0;
}
