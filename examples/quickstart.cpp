/**
 * @file
 * Quickstart: render a few frames of one synthetic game on the baseline
 * GPU and on LIBRA, and print the headline numbers.
 *
 * Usage:
 *   quickstart [--benchmark CCS] [--frames 4] [--width 1920]
 *              [--height 1080]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/runner.hh"
#include "trace/report.hh"

using namespace libra;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"benchmark", "frames", "width", "height"});
    const std::string bench = args.get("benchmark", "CCS");
    const auto frames =
        static_cast<std::uint32_t>(args.getInt("frames", 4));
    const auto width =
        static_cast<std::uint32_t>(args.getInt("width", 1920));
    const auto height =
        static_cast<std::uint32_t>(args.getInt("height", 1080));

    const BenchmarkSpec &spec = findBenchmark(bench);
    std::printf("benchmark: %s (%s, %s)\n", spec.abbrev.c_str(),
                spec.title.c_str(), genreName(spec.genre));

    GpuConfig base = GpuConfig::baseline(8);
    base.screenWidth = width;
    base.screenHeight = height;
    GpuConfig libra_cfg = GpuConfig::libra(2, 4);
    libra_cfg.screenWidth = width;
    libra_cfg.screenHeight = height;

    // The examples sit at the CLI boundary: any library error (bad
    // configuration, wedged run) simply ends the process.
    auto must = [&](const Result<RunResult> &r) {
        if (!r.isOk())
            fatal(spec.abbrev, ": ", r.status().toString());
        return *r;
    };
    const RunResult r_base = must(runBenchmark(spec, base, frames));
    const RunResult r_libra =
        must(runBenchmark(spec, libra_cfg, frames));

    Table table({"config", "cycles/frame", "fps", "tex hit", "tex lat",
                 "dram lat", "energy (mJ/frame)"});
    auto row = [&](const char *name, const RunResult &r) {
        table.addRow({name,
                      Table::num(static_cast<double>(r.totalCycles())
                                     / frames, 0),
                      Table::num(r.fps(), 1),
                      Table::pct(r.textureHitRatio()),
                      Table::num(r.avgTextureLatency(), 1),
                      Table::num(r.avgDramReadLatency(), 1),
                      Table::num(r.totalEnergyMj() / frames, 2)});
    };
    row("baseline 1RUx8", r_base);
    row("LIBRA    2RUx4", r_libra);
    table.print();

    std::printf("\nLIBRA speedup: %.3fx\n", speedup(r_base, r_libra));
    return 0;
}
