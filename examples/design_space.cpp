/**
 * @file
 * Design-space exploration with the public API: sweep Raster Unit
 * count, cores per RU, texture-L1 size and DRAM channels for one game
 * — the experiment an architect would run before committing to a
 * configuration.
 *
 * Usage:
 *   design_space [--benchmark CCS] [--frames 4] [--width 960]
 *                [--height 544]
 */

#include <cstdio>
#include <utility>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/runner.hh"
#include "trace/report.hh"

using namespace libra;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"benchmark", "frames", "width", "height"});
    const BenchmarkSpec &spec =
        findBenchmark(args.get("benchmark", "CCS"));
    const auto frames =
        static_cast<std::uint32_t>(args.getInt("frames", 4));
    const auto width =
        static_cast<std::uint32_t>(args.getInt("width", 960));
    const auto height =
        static_cast<std::uint32_t>(args.getInt("height", 544));

    auto run = [&](GpuConfig cfg) {
        cfg.screenWidth = width;
        cfg.screenHeight = height;
        Result<RunResult> r = runBenchmark(spec, cfg, frames);
        if (!r.isOk())
            fatal(spec.abbrev, ": ", r.status().toString());
        return std::move(*r);
    };

    std::printf("design-space sweep on %s (%s)\n", spec.abbrev.c_str(),
                spec.title.c_str());

    banner("Raster Units x cores (LIBRA scheduling, 8 cores total)");
    {
        Table table({"organization", "cycles/frame", "fps",
                     "energy mJ/f"});
        for (const auto &[rus, cores] :
             std::vector<std::pair<std::uint32_t, std::uint32_t>>{
                 {1, 8}, {2, 4}, {4, 2}}) {
            const RunResult r = run(GpuConfig::libra(rus, cores));
            table.addRow({std::to_string(rus) + " RU x "
                              + std::to_string(cores) + " cores",
                          Table::num(static_cast<double>(
                                         r.totalCycles()) / frames, 0),
                          Table::num(r.fps(), 1),
                          Table::num(r.totalEnergyMj() / frames, 2)});
        }
        table.print();
    }

    banner("Texture L1 size (LIBRA 2RUx4)");
    {
        Table table({"L1 size", "tex hit", "tex lat", "cycles/frame"});
        for (const std::uint32_t kb : {8u, 16u, 32u, 64u}) {
            GpuConfig cfg = GpuConfig::libra(2, 4);
            cfg.textureCache.sizeBytes = kb * 1024;
            const RunResult r = run(cfg);
            table.addRow({std::to_string(kb) + " KB",
                          Table::pct(r.textureHitRatio()),
                          Table::num(r.avgTextureLatency(), 1),
                          Table::num(static_cast<double>(
                                         r.totalCycles()) / frames, 0)});
        }
        table.print();
    }

    banner("DRAM channels (LIBRA 2RUx4)");
    {
        Table table({"channels", "dram lat", "cycles/frame"});
        for (const std::uint32_t ch : {1u, 2u, 4u}) {
            GpuConfig cfg = GpuConfig::libra(2, 4);
            cfg.dram.channels = ch;
            const RunResult r = run(cfg);
            table.addRow({std::to_string(ch),
                          Table::num(r.avgDramReadLatency(), 1),
                          Table::num(static_cast<double>(
                                         r.totalCycles()) / frames, 0)});
        }
        table.print();
    }
    return 0;
}
