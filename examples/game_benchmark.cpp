/**
 * @file
 * Deep-dive into one game: per-frame statistics on LIBRA, including the
 * adaptive scheduler's per-frame decisions (tile ordering, supertile
 * size) and a DRAM heatmap dump — the kind of trace a scheduling study
 * starts from.
 *
 * Usage:
 *   game_benchmark [--benchmark SuS] [--frames 8] [--width 960]
 *                  [--height 544] [--heatmap out.ppm] [--list]
 */

#include <cstdio>

#include "common/cli.hh"
#include "gpu/runner.hh"
#include "trace/heatmap.hh"
#include "trace/report.hh"

using namespace libra;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv, {"benchmark", "frames", "width",
                                    "height", "heatmap", "list"});
    if (args.getBool("list")) {
        Table table({"abbr", "title", "genre", "class"});
        for (const auto &spec : benchmarkSuite()) {
            table.addRow({spec.abbrev, spec.title,
                          genreName(spec.genre),
                          spec.memoryIntensive ? "memory" : "compute"});
        }
        table.print();
        return 0;
    }

    const BenchmarkSpec &spec =
        findBenchmark(args.get("benchmark", "SuS"));
    const auto frames =
        static_cast<std::uint32_t>(args.getInt("frames", 8));
    const auto width =
        static_cast<std::uint32_t>(args.getInt("width", 960));
    const auto height =
        static_cast<std::uint32_t>(args.getInt("height", 544));

    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = width;
    cfg.screenHeight = height;

    const Scene scene(spec, width, height);
    Gpu gpu(cfg);

    std::printf("%s — %s (%s), %zu textures, %.1f MB of art\n",
                spec.abbrev.c_str(), spec.title.c_str(),
                genreName(spec.genre), scene.textures().count(),
                static_cast<double>(scene.textures().totalBytes())
                    / 1e6);

    Table table({"frame", "cycles", "geom", "order", "supertile",
                 "tex hit", "tex lat", "dram lat", "dram MB",
                 "energy mJ"});
    FrameStats last;
    for (std::uint32_t f = 0; f < frames; ++f) {
        const FrameStats fs = gpu.renderFrame(scene.frame(f),
                                              scene.textures());
        table.addRow({std::to_string(f), std::to_string(fs.totalCycles),
                      std::to_string(fs.geomCycles),
                      fs.temperatureOrder ? "temp" : "z",
                      std::to_string(fs.supertileSize) + "x"
                          + std::to_string(fs.supertileSize),
                      Table::pct(fs.textureHitRatio),
                      Table::num(fs.avgTextureLatency, 1),
                      Table::num(fs.avgDramReadLatency, 1),
                      Table::num(static_cast<double>(fs.dramReads
                                                     + fs.dramWrites)
                                     * 64.0 / 1e6, 2),
                      Table::num(fs.energy.totalMj, 2)});
        last = fs;
    }
    table.print();

    std::printf("\nper-tile DRAM heatmap of the last frame:\n");
    std::fputs(heatmapAscii(gpu.tileGrid(), last.tileDram).c_str(),
               stdout);
    const std::string out = args.get("heatmap", "");
    if (!out.empty()) {
        writeHeatmapPpm(out, gpu.tileGrid(), last.tileDram);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
