/**
 * @file
 * Trace tool: capture a benchmark's frame stream to a .ltrc file, then
 * replay it through any GPU configuration — the decoupled
 * capture/replay workflow the paper's methodology (trace-driven
 * simulation) uses.
 *
 * Usage:
 *   trace_tool record --benchmark CCS --frames 8 --out ccs.ltrc
 *   trace_tool replay --in ccs.ltrc [--config libra|ptr|baseline]
 *   trace_tool info   --in ccs.ltrc
 */

#include <cstdio>
#include <cstring>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/gpu.hh"
#include "trace/frame_trace.hh"
#include "trace/report.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

int
record(const CliArgs &args)
{
    const BenchmarkSpec &spec =
        findBenchmark(args.get("benchmark", "CCS"));
    const auto frames =
        static_cast<std::uint32_t>(args.getInt("frames", 8));
    const auto width =
        static_cast<std::uint32_t>(args.getInt("width", 960));
    const auto height =
        static_cast<std::uint32_t>(args.getInt("height", 544));
    const std::string out = args.get("out", spec.abbrev + ".ltrc");

    const Scene scene(spec, width, height);
    if (Status st = writeTrace(out, scene, 0, frames); !st.isOk()) {
        std::fprintf(stderr, "failed to write %s: %s\n", out.c_str(),
                     st.toString().c_str());
        return 1;
    }
    std::printf("recorded %u frames of %s (%ux%u) to %s\n", frames,
                spec.abbrev.c_str(), width, height, out.c_str());
    return 0;
}

GpuConfig
configNamed(const std::string &name)
{
    if (name == "baseline")
        return GpuConfig::baseline(8);
    if (name == "ptr")
        return GpuConfig::ptr(2, 4);
    if (name == "libra")
        return GpuConfig::libra(2, 4);
    fatal("unknown config '", name, "' (baseline|ptr|libra)");
}

int
replay(const CliArgs &args)
{
    const std::string in = args.get("in", "trace.ltrc");
    FrameTrace trace;
    if (Status st = trace.load(in); !st.isOk()) {
        std::fprintf(stderr, "failed to load %s: %s\n", in.c_str(),
                     st.toString().c_str());
        return 1;
    }

    GpuConfig cfg = configNamed(args.get("config", "libra"));
    cfg.screenWidth = trace.screenWidth();
    cfg.screenHeight = trace.screenHeight();

    Gpu gpu(cfg);
    Table table({"frame", "cycles", "order", "supertile", "tex hit",
                 "dram lat"});
    std::uint64_t total = 0;
    for (std::size_t f = 0; f < trace.frameCount(); ++f) {
        const FrameStats fs = gpu.renderFrame(trace.frame(f),
                                              trace.textures());
        total += fs.totalCycles;
        table.addRow({std::to_string(f), std::to_string(fs.totalCycles),
                      fs.temperatureOrder ? "temp" : "z",
                      std::to_string(fs.supertileSize),
                      Table::pct(fs.textureHitRatio),
                      Table::num(fs.avgDramReadLatency, 1)});
    }
    table.print();
    std::printf("\ntotal: %llu cycles, %.1f fps\n",
                static_cast<unsigned long long>(total),
                800e6 * static_cast<double>(trace.frameCount())
                    / static_cast<double>(total));
    return 0;
}

int
info(const CliArgs &args)
{
    const std::string in = args.get("in", "trace.ltrc");
    FrameTrace trace;
    if (Status st = trace.load(in); !st.isOk()) {
        std::fprintf(stderr, "failed to load %s: %s\n", in.c_str(),
                     st.toString().c_str());
        return 1;
    }
    std::printf("screen: %ux%u, %zu frames, %zu textures\n",
                trace.screenWidth(), trace.screenHeight(),
                trace.frameCount(), trace.textures().count());
    for (std::size_t f = 0; f < trace.frameCount(); ++f) {
        std::printf("  frame %zu: %zu draws, %zu triangles\n", f,
                    trace.frame(f).draws.size(),
                    trace.frame(f).triangleCount());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"benchmark", "frames", "width", "height", "out",
                        "in", "config"});
    if (args.positional().empty()) {
        std::fprintf(stderr,
                     "usage: trace_tool record|replay|info [options]\n");
        return 2;
    }
    const std::string &mode = args.positional().front();
    if (mode == "record")
        return record(args);
    if (mode == "replay")
        return replay(args);
    if (mode == "info")
        return info(args);
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
}
