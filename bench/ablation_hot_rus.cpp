/**
 * @file
 * Ablation beyond the paper: how many Raster Units should take the hot
 * end of the temperature ranking? The paper argues for exactly one
 * (§V-D): "only one Raster Unit handles the hottest tiles at any given
 * time, preventing multiple Raster Units from adding excessive memory
 * pressure". This bench sweeps 1..N hot RUs at 3 and 4 Raster Units.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {"CCS", "SuS"},
        defaultMemorySubset());

    int rc = 0;
    for (const std::uint32_t rus : {3u, 4u}) {
        banner("Hot-RU sweep at " + std::to_string(rus)
               + " Raster Units (vs equal-core baseline)");
        Table table({"bench", "1 hot", "2 hot",
                     rus == 4 ? "3 hot" : "-"});

        Sweep sweep(opt);
        struct Handles
        {
            std::size_t base = 0;
            std::size_t hot[3] = {0, 0, 0};
        };
        std::vector<Handles> handles;
        for (const auto &name : opt.benchmarks) {
            const BenchmarkSpec &spec = findBenchmark(name);
            Handles h;
            h.base = sweep.add(spec,
                               sized(GpuConfig::baseline(4 * rus), opt),
                               opt.frames);
            for (std::uint32_t hot = 1; hot <= 3 && hot < rus; ++hot) {
                GpuConfig cfg = sized(GpuConfig::libra(rus, 4), opt);
                cfg.sched.hotRasterUnits = hot;
                h.hot[hot - 1] = sweep.add(spec, cfg, opt.frames);
            }
            handles.push_back(h);
        }
        sweep.run();

        std::vector<std::vector<double>> gains(3);
        for (std::size_t b = 0; b < opt.benchmarks.size(); ++b) {
            const RunResult &base = sweep[handles[b].base];
            std::vector<std::string> row{opt.benchmarks[b]};
            for (std::uint32_t hot = 1; hot <= 3; ++hot) {
                if (hot >= rus) {
                    row.push_back("-");
                    continue;
                }
                const RunResult &r = sweep[handles[b].hot[hot - 1]];
                const double gain = steadySpeedup(base, r) - 1.0;
                gains[hot - 1].push_back(gain);
                row.push_back(Table::pct(gain));
            }
            table.addRow(std::move(row));
        }
        printTable(table, opt);
        std::string extra;
        if (rus == 4)
            extra = " 3 hot=" + Table::pct(mean(gains[2]));
        std::printf("averages: 1 hot=%s 2 hot=%s%s\n",
                    Table::pct(mean(gains[0])).c_str(),
                    Table::pct(mean(gains[1])).c_str(), extra.c_str());
        std::printf("paper's design: one hot RU.\n");
        rc |= sweep.exitCode();
    }
    return rc;
}
