/**
 * @file
 * Rendering Elimination ablation (EXPERIMENTS.md workflow): how
 * Anglada et al.'s input-signature tile skipping composes with LIBRA's
 * temperature-aware scheduling.
 *
 * Four variants per benchmark, all drawn from the policy registry so
 * this bench also exercises the `--policy` plumbing end to end:
 *
 *   zorder    PTR reference (RE off)
 *   re        PTR + Rendering Elimination
 *   libra     LIBRA (RE off)
 *   re-libra  LIBRA + Rendering Elimination
 *
 * Beyond cycles/DRAM, the table answers the interaction question the
 * issue poses — does RE remove exactly the hot tiles LIBRA wants to
 * schedule? For every steady frame we intersect the set of skipped
 * tiles with the previous frame's top-decile tiles by DRAM accesses
 * (the same per-tile signal the temperature ranking consumes):
 *
 *   hot-skip  fraction of the hot decile that RE skipped
 *   skip-hot  fraction of skipped tiles that were hot
 *
 * A high hot-skip means RE is eating LIBRA's lunch (the tiles LIBRA
 * would deprioritize/pair are simply gone); a low one means the two
 * mechanisms are complementary (RE removes static background, LIBRA
 * balances what remains).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "gpu/policy_registry.hh"

using namespace libra;
using namespace libra::bench;

namespace
{

/** Per-frame hot/skip overlap, averaged over steady frames with at
 *  least one skip. Hot = top decile of the *previous* frame's per-tile
 *  DRAM accesses (what the temperature table would rank highest). */
struct Overlap
{
    double hotSkipped = 0.0; //!< skipped ∩ hot / hot
    double skippedHot = 0.0; //!< skipped ∩ hot / skipped
    std::uint32_t frames = 0;
};

Overlap
hotSkipOverlap(const RunResult &r)
{
    Overlap o;
    for (std::size_t f = 1; f < r.frames.size(); ++f) {
        const FrameStats &fs = r.frames[f];
        const FrameStats &prev = r.frames[f - 1];
        if (fs.reTilesSkipped == 0
            || fs.reSkippedTiles.size() != prev.tileDram.size()
            || prev.tileDram.empty()) {
            continue;
        }
        // Top decile by previous-frame DRAM accesses (at least one).
        const std::size_t tiles = prev.tileDram.size();
        std::vector<std::size_t> order(tiles);
        for (std::size_t t = 0; t < tiles; ++t)
            order[t] = t;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return prev.tileDram[a] > prev.tileDram[b];
                  });
        const std::size_t hot_n = std::max<std::size_t>(1, tiles / 10);
        std::uint64_t both = 0;
        for (std::size_t i = 0; i < hot_n; ++i)
            both += fs.reSkippedTiles[order[i]] != 0;
        o.hotSkipped += static_cast<double>(both)
            / static_cast<double>(hot_n);
        o.skippedHot += static_cast<double>(both)
            / static_cast<double>(fs.reTilesSkipped);
        ++o.frames;
    }
    if (o.frames > 0) {
        o.hotSkipped /= o.frames;
        o.skippedHot /= o.frames;
    }
    return o;
}

/** Counter whose path ends with @p suffix, or 0. */
std::uint64_t
counterEndingWith(const RunResult &r, const std::string &suffix)
{
    for (const auto &[name, value] : r.counters) {
        if (name.size() >= suffix.size()
            && name.compare(name.size() - suffix.size(),
                            suffix.size(), suffix)
                   == 0) {
            return value;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Defaults pick one memory-intensive and one compute-intensive
    // title with real frame-to-frame tile stability. RE's signal is
    // strongly scene-dependent: titles whose sprite overdraw covers
    // every tile each frame (CCS, SuS at small screens) skip nothing,
    // while UI-heavy titles (ChE, CuT) skip 20-40% of tiles.
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {"AmU", "ChE"}, defaultMemorySubset());

    const char *const variant_names[] = {"zorder", "re", "libra",
                                         "re-libra"};

    Sweep sweep(opt);
    std::vector<std::vector<std::size_t>> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        std::vector<std::size_t> per_variant;
        for (const char *policy : variant_names) {
            GpuConfig cfg = sized(GpuConfig::ptr(2, 4), opt);
            if (const Status st = applyPolicy(cfg, policy); !st.isOk())
                fatal("applyPolicy(", policy, "): ", st.toString());
            per_variant.push_back(sweep.add(spec, cfg, opt.frames));
        }
        handles.push_back(std::move(per_variant));
    }
    sweep.run();

    for (std::size_t b = 0; b < opt.benchmarks.size(); ++b) {
        const BenchmarkSpec &spec = findBenchmark(opt.benchmarks[b]);
        banner("RE ablation: " + spec.title);
        Table table({"policy", "cycles/frame", "speedup vs zorder",
                     "dram MB/f", "skip%", "collisions", "hot-skip%",
                     "skip-hot%"});
        double ref_cycles = 0.0;
        for (std::size_t v = 0; v < 4; ++v) {
            const RunResult &r = sweep[handles[b][v]];
            const double cyc =
                static_cast<double>(steadyCycles(r))
                / static_cast<double>(r.frames.size() - 1);
            if (v == 0)
                ref_cycles = cyc;
            const double mb = steadyMean(r, [](const FrameStats &fs) {
                return static_cast<double>(fs.dramReads
                                           + fs.dramWrites)
                    * 64.0 / 1e6;
            });
            const double tiles = static_cast<double>(
                std::max<std::size_t>(1, r.frames.empty()
                                             ? 1
                                             : r.frames[0]
                                                   .tileDram.size()));
            const double skip_pct =
                steadyMean(r,
                           [&](const FrameStats &fs) {
                               return static_cast<double>(
                                          fs.reTilesSkipped)
                                   / tiles;
                           })
                * 100.0;
            const Overlap o = hotSkipOverlap(r);
            table.addRow(
                {variant_names[v], Table::num(cyc, 0),
                 ref_cycles > 0 ? Table::num(ref_cycles / cyc, 3)
                                : "(ref pending)",
                 Table::num(mb, 2), Table::num(skip_pct, 1),
                 Table::num(static_cast<double>(counterEndingWith(
                                r, "re.signature_collisions")),
                            0),
                 Table::num(o.hotSkipped * 100.0, 1),
                 Table::num(o.skippedHot * 100.0, 1)});
        }
        printTable(table, opt);
    }
    return sweep.exitCode();
}
