/**
 * @file
 * Figure 7 reproduction: DRAM requests per 5000-cycle interval during
 * one frame of Candy Crush. The PTR run shows strong bursts; LIBRA's
 * temperature-aware schedule visibly flattens the same frame's demand
 * (lower peak and lower coefficient of variation).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

namespace
{

struct TimelineStats
{
    double mean = 0.0;
    double cv = 0.0; //!< coefficient of variation
    std::uint32_t peak = 0;
};

TimelineStats
analyze(const std::vector<std::uint32_t> &timeline)
{
    TimelineStats out;
    if (timeline.empty())
        return out;
    double sum = 0.0;
    for (const auto v : timeline) {
        sum += v;
        out.peak = std::max(out.peak, v);
    }
    out.mean = sum / static_cast<double>(timeline.size());
    double var = 0.0;
    for (const auto v : timeline)
        var += (v - out.mean) * (v - out.mean);
    var /= static_cast<double>(timeline.size());
    out.cv = out.mean > 0 ? std::sqrt(var) / out.mean : 0.0;
    return out;
}

void
printTimeline(const char *label, const std::vector<std::uint32_t> &tl,
              std::uint32_t interval)
{
    std::printf("\n%s (requests per %u-cycle interval):\n", label,
                interval);
    std::uint32_t peak = 1;
    for (const auto v : tl)
        peak = std::max(peak, v);
    for (std::size_t i = 0; i < tl.size(); ++i) {
        const int bar = static_cast<int>(60.0 * tl[i] / peak);
        std::printf("%5zu | %-60.*s %u\n", i * interval, bar,
                    "############################################################",
                    tl[i]);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(argc, argv, {"CCS"},
                                               {"CCS"});

    const BenchmarkSpec &spec = findBenchmark(opt.benchmarks.front());
    const std::uint32_t frames = std::max(3u, std::min(opt.frames, 6u));

    Sweep sweep(opt);
    const std::size_t h_ptr =
        sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt), frames);
    const std::size_t h_lib =
        sweep.add(spec, sized(GpuConfig::libra(2, 4), opt), frames);
    sweep.run();
    const RunResult &ptr = sweep[h_ptr];
    const RunResult &lib = sweep[h_lib];

    // Use the last frame: LIBRA's scheduler has history by then. The
    // timelines come from the Gpu's IntervalSampler (the same samples
    // the trace exporter emits as "dram_requests" counter events).
    const auto &tl_ptr = ptr.frames.back().dramTimeline;
    const auto &tl_lib = lib.frames.back().dramTimeline;

    banner("Figure 7: DRAM requests over a frame of " + spec.title);
    printTimeline("PTR (Z-order interleave)", tl_ptr,
                  ptr.frames.back().dramTimelineInterval);
    printTimeline("LIBRA (temperature-aware)", tl_lib,
                  lib.frames.back().dramTimelineInterval);

    const TimelineStats a = analyze(tl_ptr);
    const TimelineStats b = analyze(tl_lib);
    std::printf("\n%-8s peak=%5u  mean=%7.1f  cv=%.3f\n", "PTR", a.peak,
                a.mean, a.cv);
    std::printf("%-8s peak=%5u  mean=%7.1f  cv=%.3f\n", "LIBRA", b.peak,
                b.mean, b.cv);
    std::printf("\nLIBRA should flatten the curve: lower peak and/or "
                "lower variation at similar total demand.\n");
    return sweep.exitCode();
}
