/**
 * @file
 * Figure 6 reproduction.
 *
 * 6a: fraction of execution time spent on memory, obtained exactly as
 *     in the paper — run with a realistic memory system, re-run with an
 *     ideal one (every access hits in L1), and attribute the difference
 *     to memory.
 * 6b: correlation between that memory fraction and the speedup of PTR
 *     (2 RUs) over the baseline — the more memory-bound, the smaller
 *     the PTR gain.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    std::vector<std::string> defaults = defaultMemorySubset();
    const auto compute = defaultComputeSubset();
    defaults.insert(defaults.end(), compute.begin(), compute.end());
    std::vector<std::string> all;
    for (const auto &spec : benchmarkSuite())
        all.push_back(spec.abbrev);

    const BenchOptions opt = parseBenchOptions(argc, argv, defaults, all);

    banner("Figure 6a/6b: memory intensity and PTR speedup");
    Table table({"bench", "memory time", "class(measured)",
                 "PTR speedup"});

    Sweep sweep(opt);
    struct Handles
    {
        std::size_t real, ideal, ptr;
    };
    std::vector<Handles> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        const GpuConfig base = sized(GpuConfig::baseline(8), opt);
        GpuConfig ideal = base;
        ideal.idealMemory = true;

        Handles h;
        h.real = sweep.add(spec, base, opt.frames);
        h.ideal = sweep.add(spec, ideal, opt.frames);
        h.ptr = sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                          opt.frames);
        handles.push_back(h);
    }
    sweep.run();

    std::vector<double> frac, ptr_speedup;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const RunResult &b = sweep[handles[i].real];
        const RunResult &ideal = sweep[handles[i].ideal];
        const RunResult &p = sweep[handles[i].ptr];

        // Fig. 6a methodology (see memoryTimeFraction): time not
        // explained by an ideal memory system is memory time.
        const auto real_cycles = static_cast<double>(b.totalCycles());
        const auto ideal_cycles =
            static_cast<double>(ideal.totalCycles());
        const double f = real_cycles <= 0.0
            ? 0.0
            : std::max(0.0, 1.0 - ideal_cycles / real_cycles);
        const double s = steadySpeedup(b, p);
        frac.push_back(f);
        ptr_speedup.push_back(s);
        table.addRow({name, Table::pct(f),
                      f >= 0.25 ? "memory" : "compute",
                      Table::num(s, 3)});
    }
    printTable(table, opt);

    // Pearson correlation between memory fraction and PTR speedup
    // (the paper observes a strong negative relationship).
    const double mf = mean(frac);
    const double ms = mean(ptr_speedup);
    double cov = 0.0, vf = 0.0, vs = 0.0;
    for (std::size_t i = 0; i < frac.size(); ++i) {
        cov += (frac[i] - mf) * (ptr_speedup[i] - ms);
        vf += (frac[i] - mf) * (frac[i] - mf);
        vs += (ptr_speedup[i] - ms) * (ptr_speedup[i] - ms);
    }
    const double r = vf > 0 && vs > 0 ? cov / std::sqrt(vf * vs) : 0.0;
    std::printf("\nmean memory fraction: %s; correlation(memory, PTR "
                "speedup): %.2f (paper: strongly negative)\n",
                Table::pct(mf).c_str(), r);
    return sweep.exitCode();
}
