/**
 * @file
 * Figure 19 reproduction: sensitivity of LIBRA's speedup to the two
 * scheduler thresholds.
 *
 * 19a: the supertile resize threshold (paper: 0.25% best; beyond ~15%
 *      the size effectively never changes).
 * 19b: the tile-ordering switch threshold (paper: 3% best; beyond ~4%
 *      the ordering hardly ever changes).
 */

#include <cstdio>

#include <map>
#include <vector>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

namespace
{

GpuConfig
libraWith(const BenchOptions &opt, const SchedulerConfig &sched)
{
    GpuConfig cfg = sized(GpuConfig::libra(2, 4), opt);
    cfg.sched = sched;
    cfg.sched.policy = SchedulerPolicy::Libra;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    // Sensitivity sweeps are expensive; default to a small subset.
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {"CCS", "SuS", "GDL"}, defaultMemorySubset());

    const std::vector<double> resize_thrs{0.0, 0.0025, 0.005, 0.01,
                                          0.02, 0.05, 0.15, 0.30};
    const std::vector<double> order_thrs{0.0, 0.01, 0.02, 0.03, 0.04,
                                         0.06, 0.10};

    // One sweep covers everything: the per-benchmark baselines (they
    // are threshold-independent, so one run each) plus every
    // (threshold, benchmark) LIBRA variant of both sub-figures.
    Sweep sweep(opt);
    std::map<std::string, std::size_t> h_base;
    std::vector<std::vector<std::size_t>> h_resize(resize_thrs.size());
    std::vector<std::vector<std::size_t>> h_order(order_thrs.size());
    for (const auto &name : opt.benchmarks) {
        h_base[name] = sweep.add(findBenchmark(name),
                                 sized(GpuConfig::baseline(8), opt),
                                 opt.frames);
    }
    for (std::size_t i = 0; i < resize_thrs.size(); ++i) {
        SchedulerConfig sched;
        sched.resizeThreshold = resize_thrs[i];
        for (const auto &name : opt.benchmarks) {
            h_resize[i].push_back(sweep.add(findBenchmark(name),
                                            libraWith(opt, sched),
                                            opt.frames));
        }
    }
    for (std::size_t i = 0; i < order_thrs.size(); ++i) {
        SchedulerConfig sched;
        sched.orderSwitchThreshold = order_thrs[i];
        for (const auto &name : opt.benchmarks) {
            h_order[i].push_back(sweep.add(findBenchmark(name),
                                           libraWith(opt, sched),
                                           opt.frames));
        }
    }
    sweep.run();

    std::map<std::string, std::uint64_t> baseline_cycles;
    for (const auto &name : opt.benchmarks)
        baseline_cycles[name] = steadyCycles(sweep[h_base[name]]);

    auto average_speedup = [&](const std::vector<std::size_t> &hs) {
        std::vector<double> speedups;
        for (std::size_t b = 0; b < opt.benchmarks.size(); ++b) {
            const std::string &name = opt.benchmarks[b];
            speedups.push_back(
                static_cast<double>(baseline_cycles[name])
                / static_cast<double>(steadyCycles(sweep[hs[b]])));
        }
        return mean(speedups);
    };

    banner("Figure 19a: supertile resize threshold sweep");
    {
        Table table({"threshold", "avg LIBRA speedup"});
        for (std::size_t i = 0; i < resize_thrs.size(); ++i) {
            table.addRow({Table::pct(resize_thrs[i]),
                          Table::num(average_speedup(h_resize[i]), 3)});
        }
        printTable(table, opt);
        std::printf("paper: best at 0.25%%; flat beyond ~15%%\n");
    }

    banner("Figure 19b: tile-order switch threshold sweep");
    {
        Table table({"threshold", "avg LIBRA speedup"});
        for (std::size_t i = 0; i < order_thrs.size(); ++i) {
            table.addRow({Table::pct(order_thrs[i]),
                          Table::num(average_speedup(h_order[i]), 3)});
        }
        printTable(table, opt);
        std::printf("paper: best at 3%%; flat beyond ~4%%\n");
    }
    return sweep.exitCode();
}
