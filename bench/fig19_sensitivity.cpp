/**
 * @file
 * Figure 19 reproduction: sensitivity of LIBRA's speedup to the two
 * scheduler thresholds.
 *
 * 19a: the supertile resize threshold (paper: 0.25% best; beyond ~15%
 *      the size effectively never changes).
 * 19b: the tile-ordering switch threshold (paper: 3% best; beyond ~4%
 *      the ordering hardly ever changes).
 */

#include <cstdio>

#include <map>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

namespace
{

/** Baselines are threshold-independent: run them once per benchmark. */
std::map<std::string, std::uint64_t> baselineCycles;

void
primeBaselines(const BenchOptions &opt)
{
    for (const auto &name : opt.benchmarks) {
        const RunResult base = mustRun(
            findBenchmark(name), sized(GpuConfig::baseline(8), opt),
            opt.frames);
        baselineCycles[name] = steadyCycles(base);
    }
}

double
averageSpeedup(const BenchOptions &opt, const SchedulerConfig &sched)
{
    std::vector<double> speedups;
    for (const auto &name : opt.benchmarks) {
        GpuConfig cfg = sized(GpuConfig::libra(2, 4), opt);
        cfg.sched = sched;
        cfg.sched.policy = SchedulerPolicy::Libra;
        const RunResult lib = mustRun(findBenchmark(name), cfg,
                                           opt.frames);
        speedups.push_back(static_cast<double>(baselineCycles[name])
                           / static_cast<double>(steadyCycles(lib)));
    }
    return mean(speedups);
}

} // namespace

int
main(int argc, char **argv)
{
    // Sensitivity sweeps are expensive; default to a small subset.
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {"CCS", "SuS", "GDL"}, defaultMemorySubset());
    primeBaselines(opt);

    banner("Figure 19a: supertile resize threshold sweep");
    {
        Table table({"threshold", "avg LIBRA speedup"});
        for (const double thr : {0.0, 0.0025, 0.005, 0.01, 0.02, 0.05,
                                 0.15, 0.30}) {
            SchedulerConfig sched;
            sched.resizeThreshold = thr;
            table.addRow({Table::pct(thr),
                          Table::num(averageSpeedup(opt, sched), 3)});
        }
        printTable(table, opt);
        std::printf("paper: best at 0.25%%; flat beyond ~15%%\n");
    }

    banner("Figure 19b: tile-order switch threshold sweep");
    {
        Table table({"threshold", "avg LIBRA speedup"});
        for (const double thr : {0.0, 0.01, 0.02, 0.03, 0.04, 0.06,
                                 0.10}) {
            SchedulerConfig sched;
            sched.orderSwitchThreshold = thr;
            table.addRow({Table::pct(thr),
                          Table::num(averageSpeedup(opt, sched), 3)});
        }
        printTable(table, opt);
        std::printf("paper: best at 3%%; flat beyond ~4%%\n");
    }
    return 0;
}
