/**
 * @file
 * Figure 13 reproduction: texture-L1 hit ratio increase w.r.t. the
 * baseline for PTR alone and LIBRA, plus the block-replication
 * reduction LIBRA's supertiles achieve versus PTR (paper: average hit
 * ratio +10.6%, replication -32.5% vs PTR).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    banner("Figure 13: texture hit ratio and block replication");
    Table table({"bench", "base hit", "PTR hit", "LIBRA hit",
                 "PTR repl", "LIBRA repl"});
    Sweep sweep(opt);
    struct Handles
    {
        std::size_t base, ptr, lib;
    };
    std::vector<Handles> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Handles h;
        h.base = sweep.add(spec, sized(GpuConfig::baseline(8), opt),
                           opt.frames);
        h.ptr = sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                          opt.frames);
        h.lib = sweep.add(spec, sized(GpuConfig::libra(2, 4), opt),
                          opt.frames);
        handles.push_back(h);
    }
    sweep.run();

    std::vector<double> hit_gain_ptr, hit_gain_libra, repl_red;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const RunResult &base = sweep[handles[i].base];
        const RunResult &ptr = sweep[handles[i].ptr];
        const RunResult &lib = sweep[handles[i].lib];

        hit_gain_ptr.push_back(ptr.textureHitRatio()
                               - base.textureHitRatio());
        hit_gain_libra.push_back(lib.textureHitRatio()
                                 - base.textureHitRatio());
        const double pr = ptr.avgReplicationRatio();
        const double lr = lib.avgReplicationRatio();
        repl_red.push_back(pr > 0 ? 1.0 - lr / pr : 0.0);
        table.addRow({name, Table::pct(base.textureHitRatio()),
                      Table::pct(ptr.textureHitRatio()),
                      Table::pct(lib.textureHitRatio()),
                      Table::pct(pr), Table::pct(lr)});
    }
    printTable(table, opt);
    std::printf("\naverage hit-ratio change vs baseline: PTR %+.1f pp, "
                "LIBRA %+.1f pp (paper: LIBRA +10.6%%)\n",
                mean(hit_gain_ptr) * 100.0,
                mean(hit_gain_libra) * 100.0);
    std::printf("average replication reduction vs PTR: %s "
                "(paper: 32.5%%)\n",
                Table::pct(mean(repl_red)).c_str());
    return sweep.exitCode();
}
