/**
 * @file
 * Figure 11 reproduction: LIBRA speedup over the baseline GPU (same
 * core count in a single Raster Unit) for the memory-intensive
 * applications, split into the PTR contribution and the adaptive
 * scheduler's extra contribution. Paper: PTR alone 13.2%, scheduler
 * +7.7%, total 20.9% average; CCS up to 44.5%.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    banner("Figure 11: speedup w.r.t. baseline (memory-intensive)");
    Table table({"bench", "PTR", "LIBRA", "scheduler extra"});
    Sweep sweep(opt);
    struct Handles
    {
        std::size_t base, ptr, lib;
    };
    std::vector<Handles> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Handles h;
        h.base = sweep.add(spec, sized(GpuConfig::baseline(8), opt),
                           opt.frames);
        h.ptr = sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                          opt.frames);
        h.lib = sweep.add(spec, sized(GpuConfig::libra(2, 4), opt),
                          opt.frames);
        handles.push_back(h);
    }
    sweep.run();

    std::vector<double> ptr_s, libra_s;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const RunResult &base = sweep[handles[i].base];
        const RunResult &ptr = sweep[handles[i].ptr];
        const RunResult &lib = sweep[handles[i].lib];

        const double sp = steadySpeedup(base, ptr);
        const double sl = steadySpeedup(base, lib);
        ptr_s.push_back(sp);
        libra_s.push_back(sl);
        table.addRow({name, Table::num(sp, 3), Table::num(sl, 3),
                      Table::pct(sl - sp)});
    }
    printTable(table, opt);
    std::printf("\naverage: PTR %s, LIBRA %s, scheduler extra %s\n",
                Table::pct(mean(ptr_s) - 1.0).c_str(),
                Table::pct(mean(libra_s) - 1.0).c_str(),
                Table::pct(mean(libra_s) - mean(ptr_s)).c_str());
    std::printf("paper:   PTR 13.2%%, LIBRA 20.9%%, scheduler extra "
                "7.7%%\n");

    // FPS improvement (paper: +11.4% overall).
    std::printf("\nFPS gain (LIBRA vs baseline): %s\n",
                Table::pct(mean(libra_s) - 1.0).c_str());
    return sweep.exitCode();
}
