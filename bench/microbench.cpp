/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate: event
 * queue throughput, cache access rate, DRAM scheduling, rasterization
 * and binning speed. These guard the simulator's own performance (a
 * full FHD frame is hundreds of thousands of events).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "dram/dram.hh"
#include "gpu/raster/rasterizer.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "sim/event_queue.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int counter = 0;
        for (int i = 0; i < 10000; ++i) {
            eq.schedule(static_cast<Tick>((i * 7919) % 100000),
                        [&counter] { ++counter; });
        }
        eq.runUntil();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheAccess(benchmark::State &state)
{
    EventQueue eq;
    IdealMemory mem(eq, 10);
    Cache cache(eq, CacheConfig{}, mem);
    Rng rng(1);
    for (auto _ : state) {
        cache.access(MemReq{rng.below(1 << 20) * 64, 64, false,
                            TrafficClass::Texture, 0, nullptr});
        eq.runUntil();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DramRandomAccess(benchmark::State &state)
{
    EventQueue eq;
    Dram dram(eq, DramConfig{});
    Rng rng(2);
    for (auto _ : state) {
        dram.access(MemReq{rng.below(1 << 22) * 64, 64, false,
                           TrafficClass::Texture, 0, nullptr});
        eq.runUntil();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRandomAccess);

void
BM_RasterizeTile(benchmark::State &state)
{
    TexturePool pool;
    const Texture &tex = pool.create(256, 256);
    Triangle tri;
    tri.v[0] = {{0, 0, 0.2f}, {0.0f, 0.0f}};
    tri.v[1] = {{32, 0, 0.5f}, {1.0f, 0.0f}};
    tri.v[2] = {{0, 32, 0.8f}, {0.0f, 1.0f}};
    const IRect rect{0, 0, 32, 32};
    for (auto _ : state) {
        const TriangleSetup setup(tri, tex);
        RasterOutput out;
        setup.rasterize(rect, out);
        benchmark::DoNotOptimize(out.quads.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RasterizeTile);

void
BM_BinFrame(benchmark::State &state)
{
    const Scene scene(findBenchmark("CCS"), 960, 544);
    const TileGrid grid(960, 544, 32);
    const FrameData frame = scene.frame(0);
    for (auto _ : state) {
        const BinnedFrame binned = binFrame(frame, grid);
        benchmark::DoNotOptimize(binned.binEntries());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(
                                frame.triangleCount()));
}
BENCHMARK(BM_BinFrame);

void
BM_SceneFrameGeneration(benchmark::State &state)
{
    const Scene scene(findBenchmark("SuS"), 1920, 1080);
    std::uint32_t index = 0;
    for (auto _ : state) {
        const FrameData frame = scene.frame(index++);
        benchmark::DoNotOptimize(frame.triangleCount());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SceneFrameGeneration);

} // namespace

BENCHMARK_MAIN();
