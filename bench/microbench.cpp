/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate: event
 * queue throughput, cache access rate, DRAM scheduling, rasterization
 * and binning speed. These guard the simulator's own performance (a
 * full FHD frame is hundreds of thousands of events).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "core/tile_scheduler.hh"
#include "dram/dram.hh"
#include "gpu/raster/rasterizer.hh"
#include "gpu/runner.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "sim/event_queue.hh"
#include "sim/trace_sink.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int counter = 0;
        for (int i = 0; i < 10000; ++i) {
            eq.schedule(static_cast<Tick>((i * 7919) % 100000),
                        [&counter] { ++counter; });
        }
        eq.runUntil();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheAccess(benchmark::State &state)
{
    EventQueue eq;
    IdealMemory mem(eq, 10);
    Cache cache(eq, CacheConfig{}, mem);
    Rng rng(1);
    for (auto _ : state) {
        cache.access(MemReq{rng.below(1 << 20) * 64, 64, false,
                            TrafficClass::Texture, 0, nullptr});
        eq.runUntil();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DramRandomAccess(benchmark::State &state)
{
    EventQueue eq;
    Dram dram(eq, DramConfig{});
    Rng rng(2);
    for (auto _ : state) {
        dram.access(MemReq{rng.below(1 << 22) * 64, 64, false,
                           TrafficClass::Texture, 0, nullptr});
        eq.runUntil();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRandomAccess);

void
BM_RasterizeTile(benchmark::State &state)
{
    TexturePool pool;
    const Texture &tex = pool.create(256, 256);
    Triangle tri;
    tri.v[0] = {{0, 0, 0.2f}, {0.0f, 0.0f}};
    tri.v[1] = {{32, 0, 0.5f}, {1.0f, 0.0f}};
    tri.v[2] = {{0, 32, 0.8f}, {0.0f, 1.0f}};
    const IRect rect{0, 0, 32, 32};
    for (auto _ : state) {
        const TriangleSetup setup(tri, tex);
        RasterOutput out;
        setup.rasterize(rect, out);
        benchmark::DoNotOptimize(out.quads.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RasterizeTile);

void
BM_BinFrame(benchmark::State &state)
{
    const Scene scene(findBenchmark("CCS"), 960, 544);
    const TileGrid grid(960, 544, 32);
    const FrameData frame = scene.frame(0);
    for (auto _ : state) {
        const BinnedFrame binned = binFrame(frame, grid);
        benchmark::DoNotOptimize(binned.binEntries());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(
                                frame.triangleCount()));
}
BENCHMARK(BM_BinFrame);

void
BM_SceneFrameGeneration(benchmark::State &state)
{
    const Scene scene(findBenchmark("SuS"), 1920, 1080);
    std::uint32_t index = 0;
    for (auto _ : state) {
        const FrameData frame = scene.frame(index++);
        benchmark::DoNotOptimize(frame.triangleCount());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SceneFrameGeneration);

/**
 * Temperature ranking cost per frame: an FHD grid's worth of supertiles
 * sorted hottest-to-coldest from the previous frame's per-tile DRAM
 * feedback. This is the scheduler work LIBRA adds on top of PTR, so it
 * must stay a rounding error next to the frame it schedules.
 */
void
BM_TileSchedulerRanking(benchmark::State &state)
{
    const TileGrid grid(1920, 1080, 32);
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::TemperatureStatic;
    cfg.staticSupertileSize = 4;
    TileScheduler sched(cfg, grid, 2);

    FrameFeedback prev;
    prev.valid = true;
    prev.rasterCycles = 1'000'000;
    prev.textureHitRatio = 0.5; // below threshold: ranking active
    Rng rng(7);
    prev.tileDramAccesses.resize(grid.tileCount());
    prev.tileInstructions.resize(grid.tileCount());
    for (std::size_t i = 0; i < grid.tileCount(); ++i) {
        prev.tileDramAccesses[i] = rng.below(10000);
        prev.tileInstructions[i] = rng.below(100000);
    }

    for (auto _ : state) {
        sched.beginFrame(prev);
        benchmark::DoNotOptimize(sched.tilesRemaining());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(grid.tileCount()));
}
BENCHMARK(BM_TileSchedulerRanking);

/**
 * Trace-sink append rate, recording versus disabled. Spans and counter
 * samples land on component lanes from inside the event loop, so the
 * per-event cost bounds how much tracing can slow a traced run — and
 * the disabled flavor is the tax every untraced run still pays.
 */
void
BM_TraceSinkEmission(benchmark::State &state)
{
    constexpr int kBatch = 4096;
    const bool enabled = state.range(0) != 0;
    for (auto _ : state) {
        TraceSink sink;
        sink.setEnabled(enabled);
        TraceSink::Lane &lane = sink.lane("ru0");
        const std::uint32_t phase = sink.nameId("raster");
        const std::uint32_t occupancy = sink.nameId("warps");
        for (int i = 0; i < kBatch; ++i) {
            const Tick t = static_cast<Tick>(i) * 8;
            lane.begin(phase, t);
            lane.counter(occupancy, t + 2,
                         static_cast<std::uint64_t>(i & 63));
            lane.end(t + 7);
        }
        benchmark::DoNotOptimize(sink.eventCount());
    }
    state.SetItemsProcessed(state.iterations() * kBatch * 3);
    state.SetLabel(enabled ? "recording" : "disabled");
}
BENCHMARK(BM_TraceSinkEmission)->Arg(1)->Arg(0);

/**
 * End-to-end cost of arming the invariant checker: the same reduced
 * run with GpuConfig::checkInvariants off (release default) and on
 * (CI). The delta is what the per-frame conservation-law sweep costs.
 */
void
BM_InvariantCheckerRun(benchmark::State &state)
{
    constexpr std::uint32_t kW = 320, kH = 180;
    static const Scene scene(findBenchmark("CCS"), kW, kH);
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = kW;
    cfg.screenHeight = kH;
    cfg.checkInvariants = state.range(0) != 0;

    for (auto _ : state) {
        Result<RunResult> r = runBenchmark(scene, cfg, 2);
        if (!r.isOk())
            state.SkipWithError(r.status().toString().c_str());
        else
            benchmark::DoNotOptimize(r->totalCycles());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(state.range(0) != 0 ? "armed" : "unarmed");
}
BENCHMARK(BM_InvariantCheckerRun)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
