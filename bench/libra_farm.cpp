/**
 * @file
 * Sim-farm CLI (DESIGN.md §12): daemon and client in one binary.
 *
 * Server:
 *   libra_farm --serve --socket farm.sock --cache-dir cache \
 *              [--farm-journal farm.journal] [--farm-workers N]    \
 *              [--max-queue N] [--client-quota N]                  \
 *              [--cache-max-entries N] [--deadline-ms N]           \
 *              [--retries N] [--backoff-ms N] [--quarantine N]
 *   Runs until a client sends a shutdown request. kill -9 is safe:
 *   journaled requests are recovered into the cache at the next start.
 *
 * Client (default mode):
 *   libra_farm --socket farm.sock --benchmark CCS                  \
 *              [--width W --height H --frames N --first-frame F]   \
 *              [--config SPEC] [--sim-threads N] [--figure TAG]    \
 *              [--id TAG] [--out report.json]                      \
 *              [--op simulate|ping|stats|shutdown]                 \
 *              [--expect-cache hit|miss|coalesced]
 *
 * The reply header goes to stderr; the report JSON goes to --out (or
 * stdout). Exit codes: 0 success, 1 usage/transport failure, 2 the
 * server answered error/rejected, 3 --expect-cache mismatch (CI uses
 * this to assert that a repeated request was a cache hit).
 */

#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "farm/farm_client.hh"
#include "farm/farm_protocol.hh"

using namespace libra;

int
main(int argc, char **argv)
{
    const std::vector<std::string> known{
        // server mode (handled inside parseBenchOptions via --serve)
        "serve", "socket", "cache-dir", "farm-journal", "farm-workers",
        "max-queue", "client-quota", "cache-max-entries", "deadline-ms",
        "retries", "backoff-ms", "quarantine",
        // client mode
        "op", "benchmark", "width", "height", "frames", "first-frame",
        "config", "sim-threads", "figure", "id", "out", "expect-cache"};
    const CliArgs args(argc, argv, known);

    if (args.getBool("serve")) {
        // Delegate to the shared one-shot server mode so libra_farm
        // --serve and any bench binary's --serve are the same code.
        bench::parseBenchOptions(argc, argv, {}, {});
        return 0; // unreachable: --serve exits from inside
    }

    FarmRequest req;
    const std::string op = args.get("op", "simulate");
    if (op == "simulate") {
        req.op = FarmOp::Simulate;
    } else if (op == "ping") {
        req.op = FarmOp::Ping;
    } else if (op == "stats") {
        req.op = FarmOp::Stats;
    } else if (op == "shutdown") {
        req.op = FarmOp::Shutdown;
    } else {
        fatal("--op must be simulate|ping|stats|shutdown, got '", op,
              "'");
    }
    req.id = args.get("id", "");
    if (req.op == FarmOp::Simulate) {
        req.benchmark = args.get("benchmark", "");
        if (req.benchmark.empty())
            fatal("--benchmark is required for simulate requests");
        req.width =
            static_cast<std::uint32_t>(args.getUint("width", req.width));
        req.height = static_cast<std::uint32_t>(
            args.getUint("height", req.height));
        req.frames = static_cast<std::uint32_t>(
            args.getUint("frames", req.frames));
        req.firstFrame = static_cast<std::uint32_t>(
            args.getUint("first-frame", req.firstFrame));
        req.config = args.get("config", req.config);
        req.simThreads = static_cast<std::uint32_t>(
            args.getUint("sim-threads", 0));
        req.figure = args.get("figure", "");
    }

    Result<FarmClient> client =
        FarmClient::connect(args.get("socket", "libra_farm.sock"));
    if (!client.isOk())
        fatal(client.status().toString());
    Result<FarmReply> reply = client->call(req);
    if (!reply.isOk())
        fatal(reply.status().toString());

    const FarmResponse &h = reply->header;
    std::fprintf(stderr, "libra_farm: status=%s", h.status.c_str());
    if (h.cache != FarmCacheState::None)
        std::fprintf(stderr, " cache=%s", farmCacheStateName(h.cache));
    if (!h.key.empty())
        std::fprintf(stderr, " key=%s", h.key.c_str());
    if (!h.code.empty())
        std::fprintf(stderr, " code=%s", h.code.c_str());
    if (!h.message.empty())
        std::fprintf(stderr, " message=\"%s\"", h.message.c_str());
    std::fprintf(stderr, "\n");

    if (!h.ok())
        return 2;

    if (!h.payload.empty())
        std::printf("%s\n", h.payload.c_str());
    if (!reply->report.empty()) {
        const std::string out = args.get("out", "");
        if (out.empty()) {
            std::fwrite(reply->report.data(), 1, reply->report.size(),
                        stdout);
            std::fputc('\n', stdout);
        } else if (Status st = writeTextFile(out, reply->report);
                   !st.isOk()) {
            fatal("--out: ", st.toString());
        }
    }

    if (const std::string expect = args.get("expect-cache", "");
        !expect.empty() && expect != farmCacheStateName(h.cache)) {
        std::fprintf(stderr, "libra_farm: expected cache=%s, got %s\n",
                     expect.c_str(), farmCacheStateName(h.cache));
        return 3;
    }
    return 0;
}
