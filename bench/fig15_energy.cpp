/**
 * @file
 * Figure 15 reproduction: total GPU energy decrease w.r.t. the
 * baseline for PTR alone and for LIBRA. Paper: PTR alone saves 5.5%,
 * the adaptive scheduler an extra 3.7%, 9.2% total; AAt/CCS reach
 * ~20%.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    banner("Figure 15: total GPU energy decrease w.r.t. baseline");
    Table table({"bench", "base mJ/f", "PTR dec", "LIBRA dec"});
    std::vector<double> dec_ptr, dec_libra;
    auto energy = [&](const RunResult &r) {
        return steadyMean(r, [](const FrameStats &fs) {
            return fs.energy.totalMj;
        });
    };
    Sweep sweep(opt);
    struct Handles
    {
        std::size_t base, ptr, lib;
    };
    std::vector<Handles> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Handles h;
        h.base = sweep.add(spec, sized(GpuConfig::baseline(8), opt),
                           opt.frames);
        h.ptr = sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                          opt.frames);
        h.lib = sweep.add(spec, sized(GpuConfig::libra(2, 4), opt),
                          opt.frames);
        handles.push_back(h);
    }
    sweep.run();

    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const double base = energy(sweep[handles[i].base]);
        const double ptr = energy(sweep[handles[i].ptr]);
        const double lib = energy(sweep[handles[i].lib]);
        const double dp = 1.0 - ptr / base;
        const double dl = 1.0 - lib / base;
        dec_ptr.push_back(dp);
        dec_libra.push_back(dl);
        table.addRow({name, Table::num(base, 3), Table::pct(dp),
                      Table::pct(dl)});
    }
    printTable(table, opt);
    std::printf("\naverage energy decrease: PTR %s, LIBRA %s "
                "(scheduler extra %s)\n",
                Table::pct(mean(dec_ptr)).c_str(),
                Table::pct(mean(dec_libra)).c_str(),
                Table::pct(mean(dec_libra) - mean(dec_ptr)).c_str());
    std::printf("paper: PTR 5.5%%, LIBRA 9.2%% (scheduler extra "
                "3.7%%)\n");
    return sweep.exitCode();
}
