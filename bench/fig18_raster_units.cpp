/**
 * @file
 * Figure 18 reproduction: scaling the number of Raster Units. LIBRA
 * with N RUs of 4 cores is compared against a baseline with one RU of
 * 4N cores (equal total compute). Paper averages: 20.9% (2 RUs),
 * 31.3% (3 RUs), 28.8% (4 RUs).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    const std::vector<std::uint32_t> ru_counts{2, 3, 4};

    banner("Figure 18: LIBRA vs equal-core single-RU baseline");
    Table table({"bench", "2 RUs", "3 RUs", "4 RUs"});
    std::vector<std::vector<double>> gains(ru_counts.size());

    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < ru_counts.size(); ++i) {
            const std::uint32_t rus = ru_counts[i];
            const RunResult base = mustRun(
                spec, sized(GpuConfig::baseline(4 * rus), opt),
                opt.frames);
            const RunResult lib = mustRun(
                spec, sized(GpuConfig::libra(rus, 4), opt), opt.frames);
            const double gain = steadySpeedup(base, lib) - 1.0;
            gains[i].push_back(gain);
            row.push_back(Table::pct(gain));
        }
        table.addRow(std::move(row));
    }
    printTable(table, opt);

    std::printf("\naverage speedup: ");
    for (std::size_t i = 0; i < ru_counts.size(); ++i) {
        std::printf("%u RUs=%s  ", ru_counts[i],
                    Table::pct(mean(gains[i])).c_str());
    }
    std::printf("\npaper: 2 RUs=20.9%%, 3 RUs=31.3%%, 4 RUs=28.8%%\n");
    return 0;
}
