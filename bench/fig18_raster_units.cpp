/**
 * @file
 * Figure 18 reproduction: scaling the number of Raster Units. LIBRA
 * with N RUs of 4 cores is compared against a baseline with one RU of
 * 4N cores (equal total compute). Paper averages: 20.9% (2 RUs),
 * 31.3% (3 RUs), 28.8% (4 RUs).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    const std::vector<std::uint32_t> ru_counts{2, 3, 4};

    banner("Figure 18: LIBRA vs equal-core single-RU baseline");
    Table table({"bench", "2 RUs", "3 RUs", "4 RUs"});
    std::vector<std::vector<double>> gains(ru_counts.size());

    Sweep sweep(opt);
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        std::vector<std::pair<std::size_t, std::size_t>> per_ru;
        for (const std::uint32_t rus : ru_counts) {
            per_ru.emplace_back(
                sweep.add(spec, sized(GpuConfig::baseline(4 * rus), opt),
                          opt.frames),
                sweep.add(spec, sized(GpuConfig::libra(rus, 4), opt),
                          opt.frames));
        }
        handles.push_back(std::move(per_ru));
    }
    sweep.run();

    for (std::size_t b = 0; b < opt.benchmarks.size(); ++b) {
        std::vector<std::string> row{opt.benchmarks[b]};
        for (std::size_t i = 0; i < ru_counts.size(); ++i) {
            const RunResult &base = sweep[handles[b][i].first];
            const RunResult &lib = sweep[handles[b][i].second];
            const double gain = steadySpeedup(base, lib) - 1.0;
            gains[i].push_back(gain);
            row.push_back(Table::pct(gain));
        }
        table.addRow(std::move(row));
    }
    printTable(table, opt);

    std::printf("\naverage speedup: ");
    for (std::size_t i = 0; i < ru_counts.size(); ++i) {
        std::printf("%u RUs=%s  ", ru_counts[i],
                    Table::pct(mean(gains[i])).c_str());
    }
    std::printf("\npaper: 2 RUs=20.9%%, 3 RUs=31.3%%, 4 RUs=28.8%%\n");
    return sweep.exitCode();
}
