/**
 * @file
 * Table I reproduction: print the simulated GPU's parameters.
 */

#include <cstdio>

#include "bench_common.hh"
#include "gpu/gpu_config.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {}, {});
    (void)opt;

    const GpuConfig base = GpuConfig::baseline(8);
    const GpuConfig lib = GpuConfig::libra(2, 4);

    banner("Table I: GPU simulation parameters");

    Table global({"parameter", "value"});
    global.addRow({"Clock", "800 MHz (1 tick = 1 cycle)"});
    global.addRow({"Screen resolution",
                   std::to_string(base.screenWidth) + "x"
                       + std::to_string(base.screenHeight)});
    global.addRow({"Tile size", std::to_string(base.tileSize) + "x"
                                    + std::to_string(base.tileSize)
                                    + " pixels"});
    global.addRow({"Tiles per frame",
                   std::to_string(base.tileCount())});
    printTable(global, opt);

    banner("Main memory (LPDDR4 model)");
    Table dram({"parameter", "value"});
    const DramConfig &d = base.dram;
    dram.addRow({"Channels", std::to_string(d.channels)});
    dram.addRow({"Banks/channel", std::to_string(d.banksPerChannel)});
    dram.addRow({"Row size", std::to_string(d.rowBytes) + " B"});
    dram.addRow({"tRCD/tRP/tCAS (GPU cycles)",
                 std::to_string(d.tRcd) + "/" + std::to_string(d.tRp)
                     + "/" + std::to_string(d.tCas)});
    dram.addRow({"Burst (64B)", std::to_string(d.tBurst) + " cycles"});
    dram.addRow({"Unloaded latency",
                 "~" + std::to_string(d.ctrlLatency + d.tRcd + d.tCas
                                      + d.tBurst)
                     + " cycles (paper: 50-100)"});
    dram.addRow({"Scheduler", "FR-FCFS, read priority, write drain"});
    printTable(dram, opt);

    banner("Caches");
    Table caches({"cache", "size", "ways", "line", "latency"});
    auto cache_row = [&](const CacheConfig &c) {
        caches.addRow({c.name, std::to_string(c.sizeBytes / 1024) + " KB",
                       std::to_string(c.ways), "64 B",
                       std::to_string(c.hitLatency) + " cycles"});
    };
    cache_row(base.vertexCache);
    cache_row(base.tileCache);
    cache_row(base.textureCache);
    cache_row(base.l2);
    printTable(caches, opt);

    banner("Raster organization");
    Table org({"config", "raster units", "cores/RU", "warps/core"});
    org.addRow({"Baseline", std::to_string(base.rasterUnits),
                std::to_string(base.coresPerRu),
                std::to_string(base.warpsPerCore)});
    org.addRow({"LIBRA", std::to_string(lib.rasterUnits),
                std::to_string(lib.coresPerRu),
                std::to_string(lib.warpsPerCore)});
    printTable(org, opt);

    banner("LIBRA scheduler defaults");
    Table sched({"parameter", "value"});
    const SchedulerConfig &s = lib.sched;
    sched.addRow({"Hit-ratio threshold", Table::pct(s.hitRatioThreshold, 0)});
    sched.addRow({"Order-switch threshold",
                  Table::pct(s.orderSwitchThreshold, 0)});
    sched.addRow({"Supertile resize threshold",
                  Table::pct(s.resizeThreshold)});
    sched.addRow({"Supertile sizes",
                  std::to_string(s.minSupertileSize) + "x"
                      + std::to_string(s.minSupertileSize) + " .. "
                      + std::to_string(s.maxSupertileSize) + "x"
                      + std::to_string(s.maxSupertileSize)});
    printTable(sched, opt);
    return 0;
}
