/**
 * @file
 * Figure 16 reproduction: static supertile sizes (2x2..16x16, Z-order,
 * temperature ranking disabled) versus full LIBRA, both relative to
 * PTR alone. Paper averages: 0.6% / 2.1% / 2.8% / 3.2% for the static
 * sizes and ~7% for LIBRA's dynamic scheme.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    const std::vector<std::uint32_t> sizes{2, 4, 8, 16};

    banner("Figure 16: static supertiles and LIBRA vs PTR alone");
    Table table({"bench", "2x2", "4x4", "8x8", "16x16", "LIBRA"});
    std::vector<std::vector<double>> static_gain(sizes.size());
    std::vector<double> libra_gain;

    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        const RunResult ptr = mustRun(
            spec, sized(GpuConfig::ptr(2, 4), opt), opt.frames);

        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const RunResult st = mustRun(
                spec, sized(GpuConfig::staticSupertile(sizes[i]), opt),
                opt.frames);
            const double gain = steadySpeedup(ptr, st) - 1.0;
            static_gain[i].push_back(gain);
            row.push_back(Table::pct(gain));
        }
        const RunResult lib = mustRun(
            spec, sized(GpuConfig::libra(2, 4), opt), opt.frames);
        const double lg = steadySpeedup(ptr, lib) - 1.0;
        libra_gain.push_back(lg);
        row.push_back(Table::pct(lg));
        table.addRow(std::move(row));
    }
    printTable(table, opt);

    std::printf("\naverage speedup over PTR: ");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::printf("%ux%u=%s  ", sizes[i], sizes[i],
                    Table::pct(mean(static_gain[i])).c_str());
    }
    std::printf("LIBRA=%s\n", Table::pct(mean(libra_gain)).c_str());
    std::printf("paper: 2x2=0.6%% 4x4=2.1%% 8x8=2.8%% 16x16=3.2%% "
                "LIBRA~7%%\n");
    return 0;
}
