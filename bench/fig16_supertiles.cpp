/**
 * @file
 * Figure 16 reproduction: static supertile sizes (2x2..16x16, Z-order,
 * temperature ranking disabled) versus full LIBRA, both relative to
 * PTR alone. Paper averages: 0.6% / 2.1% / 2.8% / 3.2% for the static
 * sizes and ~7% for LIBRA's dynamic scheme.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    const std::vector<std::uint32_t> sizes{2, 4, 8, 16};

    banner("Figure 16: static supertiles and LIBRA vs PTR alone");
    Table table({"bench", "2x2", "4x4", "8x8", "16x16", "LIBRA"});
    std::vector<std::vector<double>> static_gain(sizes.size());
    std::vector<double> libra_gain;

    Sweep sweep(opt);
    struct Handles
    {
        std::size_t ptr, lib;
        std::vector<std::size_t> statics;
    };
    std::vector<Handles> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Handles h;
        h.ptr = sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                          opt.frames);
        for (const std::uint32_t size : sizes) {
            h.statics.push_back(sweep.add(
                spec, sized(GpuConfig::staticSupertile(size), opt),
                opt.frames));
        }
        h.lib = sweep.add(spec, sized(GpuConfig::libra(2, 4), opt),
                          opt.frames);
        handles.push_back(std::move(h));
    }
    sweep.run();

    for (std::size_t b = 0; b < opt.benchmarks.size(); ++b) {
        const std::string &name = opt.benchmarks[b];
        const RunResult &ptr = sweep[handles[b].ptr];

        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const RunResult &st = sweep[handles[b].statics[i]];
            const double gain = steadySpeedup(ptr, st) - 1.0;
            static_gain[i].push_back(gain);
            row.push_back(Table::pct(gain));
        }
        const RunResult &lib = sweep[handles[b].lib];
        const double lg = steadySpeedup(ptr, lib) - 1.0;
        libra_gain.push_back(lg);
        row.push_back(Table::pct(lg));
        table.addRow(std::move(row));
    }
    printTable(table, opt);

    std::printf("\naverage speedup over PTR: ");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::printf("%ux%u=%s  ", sizes[i], sizes[i],
                    Table::pct(mean(static_gain[i])).c_str());
    }
    std::printf("LIBRA=%s\n", Table::pct(mean(libra_gain)).c_str());
    std::printf("paper: 2x2=0.6%% 4x4=2.1%% 8x8=2.8%% 16x16=3.2%% "
                "LIBRA~7%%\n");
    return sweep.exitCode();
}
