/**
 * @file
 * End-to-end sim-farm smoke: in one process, drive a real FarmServer
 * over its unix socket through the whole contract —
 *
 *   1. cold miss, report byte-identical to a direct cold run;
 *   2. repeated request is a cache hit with byte-identical payload;
 *   3. concurrent identical requests coalesce onto one simulation and
 *      all receive the same bytes;
 *   4. stats/ping ops answer;
 *   5. bad requests get attributable errors, not hangs;
 *   6. a journaled-but-uncompleted request is recovered into the cache
 *      on restart (the kill -9 path, minus the kill) and a torn
 *      trailing journal line is tolerated;
 *   7. a shutdown request stops the server.
 *
 * Exits nonzero with a message on the first violated expectation. CI
 * runs this as the in-process half of the farm-smoke job; the
 * out-of-process half (real kill -9 against libra_farm --serve) lives
 * in the workflow script.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "check/result_cache.hh"
#include "check/snapshot.hh"
#include "farm/farm_client.hh"
#include "farm/farm_server.hh"
#include "gpu/runner.hh"
#include "trace/json.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"

using namespace libra;

namespace
{

#define SMOKE_CHECK(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::fprintf(stderr, "farm_smoke FAIL at %s:%d: %s\n",        \
                         __FILE__, __LINE__, #cond);                      \
            fatal(__VA_ARGS__);                                           \
        }                                                                 \
    } while (0)

/** Direct (farm-less) run of a request — the byte-identity reference. */
std::string
coldReference(const FarmRequest &req)
{
    const BenchmarkSpec &spec = findBenchmark(req.benchmark);
    Result<GpuConfig> cfg = farmRequestConfig(req);
    if (!cfg.isOk())
        fatal("cold reference config: ", cfg.status().toString());
    Result<RunResult> run =
        runBenchmark(spec, *cfg, req.frames, req.firstFrame);
    if (!run.isOk())
        fatal("cold reference run: ", run.status().toString());
    return runReportJson(*run);
}

FarmRequest
request(const std::string &config, const std::string &id)
{
    FarmRequest req;
    req.id = id;
    req.benchmark = "CCS";
    req.width = 256;
    req.height = 128;
    req.frames = 2;
    req.config = config;
    return req;
}

FarmReply
mustCall(FarmClient &client, const FarmRequest &req)
{
    Result<FarmReply> reply = client.call(req);
    if (!reply.isOk())
        fatal("call '", req.id, "': ", reply.status().toString());
    return std::move(*reply);
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    const std::string base = "farm_smoke_out";
    fs::remove_all(base);
    fs::create_directories(base);
    const std::string socket = base + "/farm.sock";
    const std::string cacheDir = base + "/cache";
    const std::string journal = base + "/farm.journal";

    FarmOptions opt;
    opt.socketPath = socket;
    opt.cacheDir = cacheDir;
    opt.journalPath = journal;
    opt.workers = 2;

    Result<std::unique_ptr<FarmServer>> server = FarmServer::start(opt);
    if (!server.isOk())
        fatal("start: ", server.status().toString());

    const FarmRequest reqA = request("baseline:2", "a");
    const std::string refA = coldReference(reqA);

    Result<FarmClient> client = FarmClient::connect(socket);
    if (!client.isOk())
        fatal("connect: ", client.status().toString());

    // 1. Cold miss, byte-identical to the direct run.
    FarmReply first = mustCall(*client, reqA);
    SMOKE_CHECK(first.header.ok(), "first request failed: ",
                first.header.message);
    SMOKE_CHECK(first.header.cache == FarmCacheState::Miss,
                "first request should be a miss, was ",
                farmCacheStateName(first.header.cache));
    SMOKE_CHECK(first.report == refA,
                "miss report differs from direct run (",
                first.report.size(), " vs ", refA.size(), " bytes)");

    // 2. Identical request: cache hit, byte-identical.
    FarmReply second = mustCall(*client, reqA);
    SMOKE_CHECK(second.header.cache == FarmCacheState::Hit,
                "repeat request should hit, was ",
                farmCacheStateName(second.header.cache));
    SMOKE_CHECK(second.report == first.report,
                "cache hit is not byte-identical to the miss");

    // 3. Concurrent identical requests: one simulation, same bytes.
    // (Not ptr:1x2 — a 1-RU ptr config hashes identically to baseline:2
    // and would be a plain cache hit.)
    const FarmRequest reqB = request("libra:2x2", "b");
    FarmReply replyB1, replyB2;
    {
        std::thread other([&] {
            Result<FarmClient> c2 = FarmClient::connect(socket);
            if (!c2.isOk())
                fatal("connect(2): ", c2.status().toString());
            replyB2 = mustCall(*c2, reqB);
        });
        Result<FarmClient> c1 = FarmClient::connect(socket);
        if (!c1.isOk())
            fatal("connect(1): ", c1.status().toString());
        replyB1 = mustCall(*c1, reqB);
        other.join();
    }
    SMOKE_CHECK(replyB1.header.ok() && replyB2.header.ok(),
                "concurrent requests failed");
    SMOKE_CHECK(replyB1.report == replyB2.report,
                "concurrent identical requests got different bytes");
    SMOKE_CHECK(replyB1.report == coldReference(reqB),
                "coalesced report differs from direct run");

    // 4. Ping and stats.
    FarmRequest ping;
    ping.op = FarmOp::Ping;
    ping.id = "p";
    SMOKE_CHECK(mustCall(*client, ping).header.ok(), "ping failed");
    FarmRequest statsReq;
    statsReq.op = FarmOp::Stats;
    FarmReply statsReply = mustCall(*client, statsReq);
    SMOKE_CHECK(statsReply.header.ok(), "stats failed");
    Result<JsonValue> stats = parseJson(statsReply.header.payload);
    SMOKE_CHECK(stats.isOk() && stats->isObject(),
                "stats payload is not a JSON object: ",
                statsReply.header.payload);
    const JsonValue *hits = stats->find("cache_hits");
    const JsonValue *sims = stats->find("simulations");
    SMOKE_CHECK(hits && hits->number >= 1, "expected >= 1 cache hit");
    SMOKE_CHECK(sims && sims->number >= 2,
                "expected >= 2 simulations, payload: ",
                statsReply.header.payload);

    // 5. Errors are attributable, not fatal to the server.
    FarmRequest bad = request("baseline:2", "bad-bench");
    bad.benchmark = "NOPE";
    FarmReply badReply = mustCall(*client, bad);
    SMOKE_CHECK(badReply.header.status == "error",
                "unknown benchmark should answer error");
    FarmRequest badCfg = request("warp-drive", "bad-config");
    FarmReply badCfgReply = mustCall(*client, badCfg);
    SMOKE_CHECK(badCfgReply.header.status == "error",
                "unknown config spec should answer error");
    SMOKE_CHECK(mustCall(*client, ping).header.ok(),
                "server wedged after bad requests");

    // 5b. A zero-length cached report must not desync the connection:
    //     its header advertises no report_bytes, so no stray report
    //     newline may follow it either. Plant an empty entry under the
    //     key the server computes and read it back.
    {
        FarmRequest reqE = request("baseline:2", "empty");
        reqE.width = 128; // distinct scene hash, distinct cache key
        reqE.height = 64;
        const BenchmarkSpec &spec = findBenchmark(reqE.benchmark);
        Result<GpuConfig> cfg = farmRequestConfig(reqE);
        SMOKE_CHECK(cfg.isOk(), "empty-report config: ",
                    cfg.status().toString());
        const ResultCacheKey key{
            cfg->configHash(),
            snapshotSceneHash(spec.abbrev, reqE.width, reqE.height),
            kResultCacheCodeVersion, reqE.frames, reqE.firstFrame};
        Result<ResultCache> side = ResultCache::open(cacheDir);
        SMOKE_CHECK(side.isOk(), "side cache open: ",
                    side.status().toString());
        SMOKE_CHECK(side->store(key, "").isOk(),
                    "cannot store empty entry");
        FarmReply emptyHit = mustCall(*client, reqE);
        SMOKE_CHECK(emptyHit.header.ok()
                        && emptyHit.header.cache == FarmCacheState::Hit
                        && emptyHit.header.reportBytes == 0
                        && emptyHit.report.empty(),
                    "zero-length cached report not served as an empty "
                    "hit");
        SMOKE_CHECK(mustCall(*client, ping).header.ok(),
                    "connection desynced after zero-length report");
    }

    // 6. Recovery: stop the server, fabricate an accepted-but-never-
    //    completed journal entry plus a torn trailing line, restart.
    *client = FarmClient(); // disconnect before stopping the server
    server->reset();

    const FarmRequest reqC = request("libra:1x2", "c");
    {
        JsonWriter w;
        w.beginObject();
        w.key("schema");
        w.value(kFarmJournalSchema);
        w.key("key");
        w.value("smoke-recovery");
        w.key("request_line");
        w.value(farmRequestLine(reqC));
        w.endObject();
        std::FILE *f = std::fopen(journal.c_str(), "ab");
        SMOKE_CHECK(f != nullptr, "cannot append to journal");
        const std::string line = w.str() + "\n";
        std::fwrite(line.data(), 1, line.size(), f);
        // Torn tail: half a record, no newline — must be discarded.
        std::fwrite(line.data(), 1, line.size() / 2, f);
        std::fclose(f);
    }

    server = FarmServer::start(opt);
    if (!server.isOk())
        fatal("restart: ", server.status().toString());
    SMOKE_CHECK((*server)->stats().recovered == 1,
                "restart should recover exactly the journaled request, "
                "recovered=", (*server)->stats().recovered);

    client = FarmClient::connect(socket);
    if (!client.isOk())
        fatal("reconnect: ", client.status().toString());
    FarmReply recovered = mustCall(*client, reqC);
    SMOKE_CHECK(recovered.header.cache == FarmCacheState::Hit,
                "recovered request should be a hit, was ",
                farmCacheStateName(recovered.header.cache));
    SMOKE_CHECK(recovered.report == coldReference(reqC),
                "recovered report differs from direct run");
    // Pre-restart entries survive too (the cache is persistent).
    FarmReply stillThere = mustCall(*client, reqA);
    SMOKE_CHECK(stillThere.header.cache == FarmCacheState::Hit
                    && stillThere.report == refA,
                "pre-restart cache entry lost or changed");

    // 7. Shutdown request stops the server (the client connection is
    //    still open here, so destruction races a reader thread that is
    //    on its way out — the join must not deadlock on connMtx).
    FarmRequest down;
    down.op = FarmOp::Shutdown;
    down.id = "down";
    SMOKE_CHECK(mustCall(*client, down).header.ok(), "shutdown failed");
    (*server)->wait();
    server->reset();

    // 8. A failed task counts as one failure however many coalesced
    //    waiters hear about it. Separate server: a 1 ms deadline makes
    //    every simulation fail, and the retry backoff holds the task
    //    in flight long enough that the concurrent duplicate must
    //    coalesce rather than spawn a second task.
    {
        FarmOptions fopt;
        fopt.socketPath = base + "/fail.sock";
        fopt.cacheDir = base + "/fail.cache";
        fopt.workers = 1;
        fopt.deadlineMs = 1;
        fopt.maxRetries = 1;
        fopt.backoffMs = 500;
        Result<std::unique_ptr<FarmServer>> fsrv =
            FarmServer::start(fopt);
        if (!fsrv.isOk())
            fatal("failure-server start: ", fsrv.status().toString());
        const FarmRequest reqF1 = request("baseline:2", "f1");
        const FarmRequest reqF2 = request("baseline:2", "f2");
        FarmReply replyF1, replyF2;
        std::thread other([&] {
            Result<FarmClient> c2 = FarmClient::connect(fopt.socketPath);
            if (!c2.isOk())
                fatal("connect(f2): ", c2.status().toString());
            replyF2 = mustCall(*c2, reqF2);
        });
        Result<FarmClient> c1 = FarmClient::connect(fopt.socketPath);
        if (!c1.isOk())
            fatal("connect(f1): ", c1.status().toString());
        replyF1 = mustCall(*c1, reqF1);
        other.join();
        SMOKE_CHECK(replyF1.header.status == "error"
                        && replyF2.header.status == "error",
                    "deadline-doomed requests should answer error, got ",
                    replyF1.header.status, " / ", replyF2.header.status);
        const FarmStats fstats = (*fsrv)->stats();
        SMOKE_CHECK(fstats.coalesced == 1,
                    "duplicate request did not coalesce (coalesced=",
                    fstats.coalesced, ")");
        SMOKE_CHECK(fstats.failures == 1,
                    "one failed task with two waiters must count one "
                    "failure, counted ", fstats.failures);
        SMOKE_CHECK(fstats.simulations == 0,
                    "failed tasks must not count as simulations");
        fsrv->reset();
    }

    std::printf("farm_smoke: all checks passed\n");
    return 0;
}
