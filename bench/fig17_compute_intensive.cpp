/**
 * @file
 * Figure 17 reproduction: speedup on the compute-intensive half of the
 * suite. Paper: PTR alone contributes 9.9%, the scheduler only +1.7%
 * (11.6% total) — and crucially the scheduler must not hurt these
 * applications.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultComputeSubset(), computeIntensiveSet());

    banner("Figure 17: speedup w.r.t. baseline (compute-intensive)");
    Table table({"bench", "PTR", "LIBRA", "scheduler extra"});
    Sweep sweep(opt);
    struct Handles
    {
        std::size_t base, ptr, lib;
    };
    std::vector<Handles> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Handles h;
        h.base = sweep.add(spec, sized(GpuConfig::baseline(8), opt),
                           opt.frames);
        h.ptr = sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                          opt.frames);
        h.lib = sweep.add(spec, sized(GpuConfig::libra(2, 4), opt),
                          opt.frames);
        handles.push_back(h);
    }
    sweep.run();

    std::vector<double> ptr_s, libra_s;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const RunResult &base = sweep[handles[i].base];
        const RunResult &ptr = sweep[handles[i].ptr];
        const RunResult &lib = sweep[handles[i].lib];
        const double sp = steadySpeedup(base, ptr);
        const double sl = steadySpeedup(base, lib);
        ptr_s.push_back(sp);
        libra_s.push_back(sl);
        table.addRow({name, Table::num(sp, 3), Table::num(sl, 3),
                      Table::pct(sl - sp)});
    }
    printTable(table, opt);
    std::printf("\naverage: PTR %s, LIBRA %s, scheduler extra %s\n",
                Table::pct(mean(ptr_s) - 1.0).c_str(),
                Table::pct(mean(libra_s) - 1.0).c_str(),
                Table::pct(mean(libra_s) - mean(ptr_s)).c_str());
    std::printf("paper:   PTR 9.9%%, LIBRA 11.6%%, scheduler extra "
                "1.7%%\n");
    return sweep.exitCode();
}
