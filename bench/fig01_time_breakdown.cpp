/**
 * @file
 * Figure 1 reproduction: distribution of per-frame execution time
 * between the Geometry and Raster phases (paper: ~88% raster on
 * average).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    std::vector<std::string> defaults = defaultMemorySubset();
    const auto compute = defaultComputeSubset();
    defaults.insert(defaults.end(), compute.begin(), compute.end());
    std::vector<std::string> all;
    for (const auto &spec : benchmarkSuite())
        all.push_back(spec.abbrev);

    const BenchOptions opt = parseBenchOptions(argc, argv, defaults, all);

    banner("Figure 1: geometry vs raster time breakdown");
    Table table({"bench", "geometry", "raster"});
    Sweep sweep(opt);
    std::vector<std::size_t> handles;
    for (const auto &name : opt.benchmarks) {
        handles.push_back(sweep.add(findBenchmark(name),
                                    sized(GpuConfig::baseline(8), opt),
                                    opt.frames));
    }
    sweep.run();

    std::vector<double> raster_shares;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const RunResult &r = sweep[handles[i]];
        const double geom = static_cast<double>(r.totalGeomCycles());
        const double total = static_cast<double>(r.totalCycles());
        const double raster_share = (total - geom) / total;
        raster_shares.push_back(raster_share);
        table.addRow({name, Table::pct(1.0 - raster_share),
                      Table::pct(raster_share)});
    }
    printTable(table, opt);
    std::printf("\naverage raster share: %s (paper: ~88%%)\n",
                Table::pct(mean(raster_shares)).c_str());
    return 0;
}
