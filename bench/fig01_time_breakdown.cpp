/**
 * @file
 * Figure 1 reproduction: distribution of per-frame execution time
 * between the Geometry and Raster phases (paper: ~88% raster on
 * average), plus the per-RU cycle attribution of the raster phase
 * (shade / texture-wait / DRAM-wait / ... shares).
 */

#include <array>
#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    std::vector<std::string> defaults = defaultMemorySubset();
    const auto compute = defaultComputeSubset();
    defaults.insert(defaults.end(), compute.begin(), compute.end());
    std::vector<std::string> all;
    for (const auto &spec : benchmarkSuite())
        all.push_back(spec.abbrev);

    const BenchOptions opt = parseBenchOptions(argc, argv, defaults, all);

    banner("Figure 1: geometry vs raster time breakdown");
    Table table({"bench", "geometry", "raster", "shade", "tex_wait",
                 "dram_wait", "rasterize", "blend", "idle"});
    Sweep sweep(opt);
    std::vector<std::size_t> handles;
    for (const auto &name : opt.benchmarks) {
        handles.push_back(sweep.add(findBenchmark(name),
                                    sized(GpuConfig::baseline(8), opt),
                                    opt.frames));
    }
    sweep.run();

    std::vector<double> raster_shares;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const RunResult &r = sweep[handles[i]];
        const double geom = static_cast<double>(r.totalGeomCycles());
        const double total = static_cast<double>(r.totalCycles());
        const double raster_share = (total - geom) / total;
        raster_shares.push_back(raster_share);

        // Per-RU phase attribution, averaged over frames and units.
        std::array<std::uint64_t, kNumRuPhases> phases{};
        std::uint64_t phase_total = 0;
        for (const FrameStats &fs : r.frames) {
            for (const auto &ru : fs.ruPhases) {
                for (std::size_t p = 0; p < kNumRuPhases; ++p) {
                    phases[p] += ru[p];
                    phase_total += ru[p];
                }
            }
        }
        const auto share = [&](RuPhase p) {
            return phase_total == 0
                ? std::string("-")
                : Table::pct(
                      static_cast<double>(
                          phases[static_cast<std::size_t>(p)])
                      / static_cast<double>(phase_total));
        };
        table.addRow({name, Table::pct(1.0 - raster_share),
                      Table::pct(raster_share),
                      share(RuPhase::Shade),
                      share(RuPhase::TextureWait),
                      share(RuPhase::DramWait),
                      share(RuPhase::Rasterize),
                      share(RuPhase::Blend), share(RuPhase::Idle)});
    }
    printTable(table, opt);
    std::printf("\naverage raster share: %s (paper: ~88%%)\n",
                Table::pct(mean(raster_shares)).c_str());
    return sweep.exitCode();
}
