/**
 * @file
 * Ablation study beyond the paper's evaluation: how LIBRA's gains
 * compose with other TBR bandwidth savers and traversal orders.
 *
 *  - Scanline vs Morton traversal (the §II-B design choice the paper's
 *    baseline makes in Morton's favor).
 *  - ARM-style Transaction Elimination (skip unchanged-tile flushes).
 *  - AFBC-style frame-buffer compression on the flush path.
 *
 * Each row reports cycles/frame, DRAM traffic and the fraction of tile
 * flushes eliminated, for PTR and for LIBRA.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

namespace
{

struct Variant
{
    std::string name;
    GpuConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {"CCS", "GDL"},
        defaultMemorySubset());

    std::vector<Variant> variants;
    variants.push_back({"PTR morton", GpuConfig::ptr(2, 4)});
    {
        GpuConfig scan = GpuConfig::ptr(2, 4);
        scan.sched.policy = SchedulerPolicy::Scanline;
        variants.push_back({"PTR scanline", scan});
    }
    variants.push_back({"LIBRA", GpuConfig::libra(2, 4)});
    {
        GpuConfig te = GpuConfig::libra(2, 4);
        te.transactionElimination = true;
        variants.push_back({"LIBRA + TE", te});
    }
    {
        GpuConfig afbc = GpuConfig::libra(2, 4);
        afbc.fbCompressionRatio = 0.5;
        variants.push_back({"LIBRA + AFBC(0.5)", afbc});
    }
    {
        GpuConfig both = GpuConfig::libra(2, 4);
        both.transactionElimination = true;
        both.fbCompressionRatio = 0.5;
        variants.push_back({"LIBRA + TE + AFBC", both});
    }

    Sweep sweep(opt);
    std::vector<std::vector<std::size_t>> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        std::vector<std::size_t> per_variant;
        for (const auto &variant : variants) {
            per_variant.push_back(
                sweep.add(spec, sized(variant.cfg, opt), opt.frames));
        }
        handles.push_back(std::move(per_variant));
    }
    sweep.run();

    for (std::size_t b = 0; b < opt.benchmarks.size(); ++b) {
        const BenchmarkSpec &spec = findBenchmark(opt.benchmarks[b]);
        banner("Ablation: " + spec.title);
        Table table({"variant", "cycles/frame", "speedup vs PTR",
                     "dram MB/f", "dram lat"});
        double ptr_cycles = 0.0;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const auto &variant = variants[v];
            const RunResult &r = sweep[handles[b][v]];
            const double cyc =
                static_cast<double>(steadyCycles(r))
                / static_cast<double>(r.frames.size() - 1);
            if (variant.name == "PTR morton")
                ptr_cycles = cyc;
            const double mb = steadyMean(r, [](const FrameStats &fs) {
                return static_cast<double>(fs.dramReads
                                           + fs.dramWrites)
                    * 64.0 / 1e6;
            });
            table.addRow({variant.name, Table::num(cyc, 0),
                          ptr_cycles > 0
                              ? Table::num(ptr_cycles / cyc, 3)
                              : "(ref pending)",
                          Table::num(mb, 2),
                          Table::num(steadyMean(
                                         r,
                                         [](const FrameStats &fs) {
                                             return fs
                                                 .avgDramReadLatency;
                                         }),
                                     1)});
        }
        printTable(table, opt);
    }
    return sweep.exitCode();
}
