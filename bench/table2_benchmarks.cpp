/**
 * @file
 * Table II reproduction: the benchmark suite with genres and measured
 * per-frame memory footprints (the paper reports an average footprint
 * above 4 MB per frame at FHD, with wide variation across titles).
 */

#include <cstdio>

#include "bench_common.hh"
#include "workload/scene.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    std::vector<std::string> all;
    for (const auto &spec : benchmarkSuite())
        all.push_back(spec.abbrev);

    BenchOptions opt = parseBenchOptions(argc, argv, all, all);
    // Footprint measurement needs only a couple of frames.
    const std::uint32_t frames = std::min(opt.frames, 3u);

    banner("Table II: evaluated benchmarks");
    Table table({"abbr", "title", "genre", "class", "draws", "tris",
                 "footprint MB/frame"});

    Sweep sweep(opt);
    std::vector<std::size_t> handles;
    for (const auto &name : opt.benchmarks) {
        handles.push_back(sweep.add(findBenchmark(name),
                                    sized(GpuConfig::baseline(8), opt),
                                    frames));
    }
    sweep.run();

    double footprint_sum = 0.0;
    int measured = 0;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const BenchmarkSpec &spec = findBenchmark(name);
        const Scene scene(spec, opt.width, opt.height);
        const FrameData frame = scene.frame(0);

        const RunResult &r = sweep[handles[i]];
        // Footprint: DRAM bytes touched per frame (reads + writes),
        // averaged over the steady frames.
        const double mb = steadyMean(r, [](const FrameStats &fs) {
            return static_cast<double>(fs.dramReads + fs.dramWrites)
                * 64.0 / 1e6;
        });
        footprint_sum += mb;
        ++measured;

        table.addRow({spec.abbrev, spec.title, genreName(spec.genre),
                      spec.memoryIntensive ? "memory" : "compute",
                      std::to_string(frame.draws.size()),
                      std::to_string(frame.triangleCount()),
                      Table::num(mb, 2)});
    }
    printTable(table, opt);
    std::printf("\naverage footprint: %.2f MB/frame "
                "(paper: >4 MB at FHD)\n",
                footprint_sum / std::max(measured, 1));
    return sweep.exitCode();
}
