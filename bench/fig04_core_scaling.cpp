/**
 * @file
 * Figure 4 reproduction: speedup from doubling the cores of a single
 * Raster Unit from 4 to 8. The paper reports that 16 of the 32
 * benchmarks gain less than 1.5x, several below 1.1x — the observation
 * motivating parallel tile rendering.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    std::vector<std::string> defaults = defaultMemorySubset();
    const auto compute = defaultComputeSubset();
    defaults.insert(defaults.end(), compute.begin(), compute.end());
    std::vector<std::string> all;
    for (const auto &spec : benchmarkSuite())
        all.push_back(spec.abbrev);

    const BenchOptions opt = parseBenchOptions(argc, argv, defaults, all);

    banner("Figure 4: speedup of 8 cores over 4 cores (one RU)");
    Table table({"bench", "class", "4->8 core speedup"});
    Sweep sweep(opt);
    std::vector<std::pair<std::size_t, std::size_t>> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        handles.emplace_back(
            sweep.add(spec, sized(GpuConfig::baseline(4), opt),
                      opt.frames),
            sweep.add(spec, sized(GpuConfig::baseline(8), opt),
                      opt.frames));
    }
    sweep.run();

    int below_150 = 0, below_110 = 0;
    std::vector<double> speedups;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const BenchmarkSpec &spec = findBenchmark(name);
        const RunResult &four = sweep[handles[i].first];
        const RunResult &eight = sweep[handles[i].second];
        const double s = steadySpeedup(four, eight);
        speedups.push_back(s);
        below_150 += s < 1.5;
        below_110 += s < 1.1;
        table.addRow({name,
                      spec.memoryIntensive ? "memory" : "compute",
                      Table::num(s, 3)});
    }
    printTable(table, opt);
    std::printf("\n%d/%zu benchmarks below 1.50x, %d below 1.10x "
                "(paper: 16/32 below 1.50, some below 1.10)\n",
                below_150, speedups.size(), below_110);
    std::printf("mean speedup: %.3f\n", mean(speedups));
    return sweep.exitCode();
}
