/**
 * @file
 * Differential-equivalence and fuzzing driver for CI.
 *
 * Default mode runs the equivalence matrix: pairs of configurations
 * that describe the same machine through different code paths must
 * produce bit-identical counter dumps —
 *
 *   ptr(1, N)                      == baseline(N)
 *   libra, adaptation pinned to S  == staticSupertile(S)
 *   staticSupertile(1)             == ptr (plain Z-order)
 *
 * With --sim-threads N (N >= 1), every pair runs under the sharded
 * engine and the matrix additionally pins the engine's determinism
 * contract: each machine shape at 1 simulation thread must be
 * counter-identical to itself at N threads.
 *
 * With --policies 1, it runs the policy-extraction matrix instead:
 * every entry of the policy registry, applied by name to a base config
 * whose Libra-only adaptive knobs are deliberately perturbed, must be
 * counter-identical to the hand-built factory config for that policy.
 * This pins two contracts at once: applyPolicy() touches exactly the
 * documented fields, and each policy object reads only its own knobs
 * (the refactor that extracted SchedulingPolicy from TileScheduler is
 * a pure extraction — unused knobs cannot leak into behavior).
 *
 * With --fuzz N (and optionally --seed S), it instead sweeps N
 * randomized valid configurations through the runner with every
 * conservation law armed; any accounting violation fails the run.
 *
 * With --checkpoint-fuzz N (and optionally --seed S), it draws N
 * random (config, scene, checkpoint frame) triples and asserts the
 * snapshot restore contract (DESIGN.md §10) on each: rendering the
 * first F frames, snapshotting, and forking a fresh run from the
 * restored state must produce a full counter dump identical to the
 * uninterrupted cold run. --sim-threads N exercises the sharded
 * engine's restore path the same way.
 *
 * Exits non-zero on the first mismatch or violation, so CI can gate on
 * it directly.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "check/config_fuzzer.hh"
#include "common/rng.hh"
#include "gpu/policy_registry.hh"

using namespace libra;
using namespace libra::bench;

namespace
{

/** LIBRA with the §III-D adaptation pinned: one legal supertile size
 *  and thresholds no observation can cross. Must equal
 *  staticSupertile(s). */
GpuConfig
pinnedLibra(std::uint32_t s)
{
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.sched.minSupertileSize = s;
    cfg.sched.maxSupertileSize = s;
    cfg.sched.initialSupertileSize = s;
    cfg.sched.staticSupertileSize = s;
    cfg.sched.hitRatioThreshold = 0.0;
    cfg.sched.orderSwitchThreshold = 1e30;
    return cfg;
}

/** Counter-level diff; prints every differing entry. @return equal? */
bool
countersMatch(const std::string &label,
              const std::map<std::string, std::uint64_t> &a,
              const std::map<std::string, std::uint64_t> &b)
{
    bool ok = true;
    for (const auto &[name, value] : a) {
        const auto it = b.find(name);
        if (it == b.end()) {
            std::printf("MISMATCH %s: %s only on the left (%llu)\n",
                        label.c_str(), name.c_str(),
                        static_cast<unsigned long long>(value));
            ok = false;
        } else if (it->second != value) {
            std::printf("MISMATCH %s: %s %llu != %llu\n", label.c_str(),
                        name.c_str(),
                        static_cast<unsigned long long>(value),
                        static_cast<unsigned long long>(it->second));
            ok = false;
        }
    }
    for (const auto &[name, value] : b) {
        if (!a.count(name)) {
            std::printf("MISMATCH %s: %s only on the right (%llu)\n",
                        label.c_str(), name.c_str(),
                        static_cast<unsigned long long>(value));
            ok = false;
        }
    }
    return ok;
}

/** Arm the invariant layer on top of the bench's screen size. */
GpuConfig
checked(GpuConfig cfg, const BenchOptions &opt)
{
    cfg = sized(std::move(cfg), opt);
    cfg.checkInvariants = true;
    return cfg;
}

int
runEquivalenceMatrix(const BenchOptions &opt)
{
    banner("Differential equivalence (counter-identical pairs)");

    struct Pair
    {
        std::string name;
        GpuConfig left;
        GpuConfig right;
        std::size_t hLeft = 0, hRight = 0;
    };
    // Configs are finalized here (screen size, invariants, engine);
    // add() below submits them verbatim.
    std::vector<Pair> pairs;
    pairs.push_back({"ptr(1,8) == baseline(8)",
                     checked(GpuConfig::ptr(1, 8), opt),
                     checked(GpuConfig::baseline(8), opt)});
    for (const std::uint32_t s : {1u, 2u, 4u})
        pairs.push_back({"libra pinned to " + std::to_string(s)
                             + " == staticSupertile("
                             + std::to_string(s) + ")",
                         checked(pinnedLibra(s), opt),
                         checked(GpuConfig::staticSupertile(s, 2, 4),
                                 opt)});
    pairs.push_back({"staticSupertile(1) == z-order ptr(2,4)",
                     checked(GpuConfig::staticSupertile(1, 2, 4), opt),
                     checked(GpuConfig::ptr(2, 4), opt)});

    // Sharded-engine determinism: the same machine must be
    // counter-identical at 1 and N simulation threads. (The sequential
    // engine is a different timing reference — cross-shard traffic pays
    // the lookahead — so seq == sharded is deliberately not a pair.)
    if (opt.simThreads > 0) {
        const auto at = [](GpuConfig cfg, std::uint32_t threads) {
            cfg.simThreads = threads;
            return cfg;
        };
        struct Shape
        {
            const char *name;
            GpuConfig cfg;
        };
        const Shape shapes[] = {
            {"ptr(2,4)", GpuConfig::ptr(2, 4)},
            {"libra(2,4)", GpuConfig::libra(2, 4)},
            {"staticSupertile(2,2,4)",
             GpuConfig::staticSupertile(2, 2, 4)},
        };
        for (const Shape &s : shapes) {
            pairs.push_back({std::string(s.name) + " @1 thread == @"
                                 + std::to_string(opt.simThreads)
                                 + " threads",
                             at(checked(s.cfg, opt), 1),
                             at(checked(s.cfg, opt), opt.simThreads)});
        }
    }

    int failures = 0;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Sweep sweep(opt);
        for (auto &p : pairs) {
            p.hLeft = sweep.add(spec, p.left, opt.frames);
            p.hRight = sweep.add(spec, p.right, opt.frames);
        }
        sweep.run();
        if (sweep.exitCode() != 0) {
            // Failed jobs read as placeholders; comparing those would
            // vacuously "match". Count the sweep itself as a failure.
            std::printf("%-4s sweep had failed jobs\n", name.c_str());
            ++failures;
            continue;
        }
        for (const auto &p : pairs) {
            const bool ok = countersMatch(
                name + " / " + p.name, sweep[p.hLeft].counters,
                sweep[p.hRight].counters);
            std::printf("%-4s %-44s %s\n", name.c_str(),
                        p.name.c_str(), ok ? "ok" : "FAILED");
            failures += !ok;
        }
    }
    if (failures)
        std::printf("%d equivalence pair(s) FAILED\n", failures);
    else
        std::printf("all equivalence pairs counter-identical\n");
    return failures ? 1 : 0;
}

/**
 * The policy-extraction matrix: registry-applied configs versus
 * hand-built factory equivalents (see the file comment). The base for
 * non-Libra policies carries perturbed adaptive thresholds — knobs
 * only the Libra policy reads — so a counter match proves those knobs
 * are dead weight under every other policy.
 */
int
runPolicyMatrix(const BenchOptions &opt)
{
    banner("Policy extraction matrix (registry == hand-built)");

    // Libra base with the three adaptive knobs moved off their
    // defaults. Any policy that (incorrectly) read them would diverge
    // from the hand-built config below.
    GpuConfig perturbed = GpuConfig::libra(2, 4);
    perturbed.sched.hitRatioThreshold = 0.25;
    perturbed.sched.orderSwitchThreshold = 0.5;
    perturbed.sched.resizeThreshold = 0.5;

    struct Pair
    {
        std::string name;
        GpuConfig left;
        GpuConfig right;
        std::size_t hLeft = 0, hRight = 0;
    };
    std::vector<Pair> pairs;
    for (const PolicyInfo &p : policyRegistry()) {
        const bool is_libra = p.sched == SchedulerPolicy::Libra;
        // Libra reads the adaptive knobs for real, so its base keeps
        // the defaults and differs from the factory config only in the
        // fields applyPolicy() must overwrite.
        GpuConfig left = is_libra ? GpuConfig::ptr(2, 4) : perturbed;
        const Status st = applyPolicy(left, p.name);
        if (!st.isOk())
            fatal("applyPolicy(", p.name, "): ", st.toString());

        // Hand-built equivalent: factory where one exists, direct
        // field assignment otherwise. Never goes through the registry.
        GpuConfig right;
        switch (p.sched) {
        case SchedulerPolicy::Libra:
            right = GpuConfig::libra(2, 4);
            break;
        case SchedulerPolicy::StaticSupertile:
            right = GpuConfig::staticSupertile(
                perturbed.sched.staticSupertileSize, 2, 4);
            break;
        default:
            right = GpuConfig::ptr(2, 4);
            right.sched.policy = p.sched;
            break;
        }
        // The hand-built side keeps default adaptive knobs: for
        // non-Libra policies the two configs differ in those fields,
        // so a counter match proves the policy never reads them.
        right.renderingElimination = p.renderingElimination;
        pairs.push_back({std::string("--policy ") + p.name
                             + " == hand-built",
                         checked(left, opt), checked(right, opt)});
    }

    int failures = 0;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Sweep sweep(opt);
        for (auto &p : pairs) {
            p.hLeft = sweep.add(spec, p.left, opt.frames);
            p.hRight = sweep.add(spec, p.right, opt.frames);
        }
        sweep.run();
        if (sweep.exitCode() != 0) {
            std::printf("%-4s sweep had failed jobs\n", name.c_str());
            ++failures;
            continue;
        }
        for (const auto &p : pairs) {
            const bool ok = countersMatch(
                name + " / " + p.name, sweep[p.hLeft].counters,
                sweep[p.hRight].counters);
            std::printf("%-4s %-44s %s\n", name.c_str(),
                        p.name.c_str(), ok ? "ok" : "FAILED");
            failures += !ok;
        }
    }
    if (failures)
        std::printf("%d policy pair(s) FAILED\n", failures);
    else
        std::printf("all registry policies match hand-built configs\n");
    return failures ? 1 : 0;
}

int
runFuzz(const BenchOptions &opt, std::uint32_t count,
        std::uint64_t seed)
{
    banner("Config fuzz: " + std::to_string(count)
           + " randomized configs, seed " + std::to_string(seed)
           + ", invariants armed");

    Rng rng(seed);
    int job = 0;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        // A job whose conservation laws fire fails its sweep slot; the
        // summary on stderr carries the violation message.
        Sweep sweep(opt);
        for (std::uint32_t i = 0; i < count; ++i) {
            GpuConfig cfg = fuzzGpuConfig(rng, opt.width, opt.height);
            cfg.simThreads = opt.simThreads;
            sweep.add(spec, cfg, opt.frames);
        }
        sweep.run();
        if (sweep.exitCode() != 0)
            return 1;
        job += static_cast<int>(count);
        std::printf("%-4s %u configs clean\n", name.c_str(), count);
    }
    std::printf("fuzz: %d simulations, no violations\n", job);
    return 0;
}

/**
 * Fork-vs-cold fuzz: @p count random (config, scene, checkpoint frame)
 * triples, each asserting that a run forked from a frame-F snapshot
 * finishes with the cold run's exact counter dump and frame stats.
 */
int
runCheckpointFuzz(const BenchOptions &opt, std::uint32_t count,
                  std::uint64_t seed)
{
    banner("Checkpoint fuzz: " + std::to_string(count)
           + " fork-vs-cold triples, seed " + std::to_string(seed)
           + (opt.simThreads > 0
                  ? ", " + std::to_string(opt.simThreads)
                        + " sim threads"
                  : ", sequential engine"));

    Rng rng(seed);
    SceneCache scenes;
    int failures = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        // The triple under test: a scene, a valid random config, and a
        // checkpoint frame strictly inside the run.
        const std::string &name =
            opt.benchmarks[rng.below(opt.benchmarks.size())];
        const BenchmarkSpec &spec = findBenchmark(name);
        GpuConfig cfg = fuzzGpuConfig(rng, opt.width, opt.height);
        cfg.simThreads = opt.simThreads;
        const auto ckpt = static_cast<std::uint32_t>(
            rng.range(1, static_cast<std::int64_t>(opt.frames) - 1));
        const std::string label = "triple " + std::to_string(i) + " ["
            + name + " ckpt@" + std::to_string(ckpt) + "]";

        const std::shared_ptr<const Scene> scene =
            scenes.get(spec, cfg.screenWidth, cfg.screenHeight);

        Result<RunResult> cold =
            runBenchmark(*scene, cfg, opt.frames, 0);
        if (!cold.isOk())
            fatal(label, ": cold run: ", cold.status().toString());

        CheckpointPlan capture;
        capture.captureAfter =
            std::make_shared<std::vector<std::uint8_t>>();
        capture.captureAfterFrames = ckpt;
        Result<RunResult> prefix =
            runBenchmark(*scene, cfg, ckpt, 0, capture);
        if (!prefix.isOk())
            fatal(label, ": prefix run: ", prefix.status().toString());
        if (capture.captureAfter->empty())
            fatal(label, ": no snapshot captured at frame ", ckpt);

        CheckpointPlan fork;
        fork.warmStart = capture.captureAfter;
        Result<RunResult> forked =
            runBenchmark(*scene, cfg, opt.frames, 0, fork);
        if (!forked.isOk())
            fatal(label, ": forked run: ", forked.status().toString());

        bool ok = countersMatch(label, cold->counters,
                                forked->counters);
        if (cold->frames.size() != forked->frames.size()) {
            std::printf("MISMATCH %s: %zu frames cold, %zu forked\n",
                        label.c_str(), cold->frames.size(),
                        forked->frames.size());
            ok = false;
        } else {
            for (std::size_t f = 0; f < cold->frames.size(); ++f) {
                if (cold->frames[f].totalCycles
                    != forked->frames[f].totalCycles) {
                    std::printf(
                        "MISMATCH %s: frame %zu cycles %llu != %llu\n",
                        label.c_str(), f,
                        static_cast<unsigned long long>(
                            cold->frames[f].totalCycles),
                        static_cast<unsigned long long>(
                            forked->frames[f].totalCycles));
                    ok = false;
                }
            }
        }
        std::printf("%-40s %s\n", label.c_str(), ok ? "ok" : "FAILED");
        failures += !ok;
    }
    if (failures)
        std::printf("%d checkpoint triple(s) FAILED\n", failures);
    else
        std::printf("checkpoint fuzz: %u triples fork == cold\n",
                    count);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {"CCS", "SuS"}, defaultMemorySubset(),
        {"fuzz", "checkpoint-fuzz", "seed", "policies"});
    const CliArgs args(argc, argv,
                       {"frames", "width", "height", "benchmarks",
                        "full", "csv", "jobs", "outdir", "report-out",
                        "trace-out", "deadline-ms", "retries",
                        "backoff-ms", "quarantine", "journal", "resume",
                        "keep-going", "faults", "fuzz",
                        "checkpoint-fuzz", "seed", "policies",
                        "policy", "sim-threads",
                        "checkpoint-dir", "checkpoint-every",
                        "from-checkpoint", "warm-prefix"});

    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 2024));
    const auto fuzz =
        static_cast<std::uint32_t>(args.getInt("fuzz", 0));
    const auto ckpt_fuzz =
        static_cast<std::uint32_t>(args.getInt("checkpoint-fuzz", 0));
    if (fuzz > 0)
        return runFuzz(opt, fuzz, seed);
    if (ckpt_fuzz > 0)
        return runCheckpointFuzz(opt, ckpt_fuzz, seed);
    if (args.getInt("policies", 0) > 0)
        return runPolicyMatrix(opt);
    return runEquivalenceMatrix(opt);
}
