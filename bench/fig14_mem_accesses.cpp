/**
 * @file
 * Figure 14 reproduction: main-memory accesses of LIBRA normalized to
 * PTR alone. The paper stresses the scheduler is NOT about reducing
 * accesses — the average stays near 1.0 (CCS reaches ~0.8) — the win
 * comes from distributing them evenly over the frame.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    banner("Figure 14: DRAM accesses, LIBRA normalized to PTR");
    Table table({"bench", "PTR accesses", "LIBRA accesses",
                 "normalized"});
    Sweep sweep(opt);
    std::vector<std::pair<std::size_t, std::size_t>> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        handles.emplace_back(
            sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                      opt.frames),
            sweep.add(spec, sized(GpuConfig::libra(2, 4), opt),
                      opt.frames));
    }
    sweep.run();

    std::vector<double> normalized;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const RunResult &ptr = sweep[handles[i].first];
        const RunResult &lib = sweep[handles[i].second];
        const double ratio = static_cast<double>(lib.dramAccesses())
            / static_cast<double>(ptr.dramAccesses());
        normalized.push_back(ratio);
        table.addRow({name, std::to_string(ptr.dramAccesses()),
                      std::to_string(lib.dramAccesses()),
                      Table::num(ratio, 3)});
    }
    printTable(table, opt);
    std::printf("\naverage normalized accesses: %.3f "
                "(paper: ~1.0; the benefit is balance, not volume)\n",
                mean(normalized));
    return sweep.exitCode();
}
