/**
 * @file
 * Perf-regression smoke test: a fixed, pinned workload whose numbers
 * are comparable across commits.
 *
 * Three measurements:
 *   - event-loop hot path: one Gpu instance renders a pinned scene and
 *     we report simulator events per wall-clock second (no trace sink
 *     attached — this is the number regressions are judged against);
 *   - the same workload with a TraceSink attached, to quantify the
 *     cost of event recording (events_per_sec_traced);
 *   - sweep throughput: the same jobs pushed through SweepRunner, to
 *     catch regressions in the parallel harness itself.
 *
 * Results land in BENCH_sweep.json (override with --out FILE) so CI can
 * archive them per commit and trend them. --report-out/--trace-out
 * write the traced run's RunReport and chrome-trace. The workload is
 * deliberately NOT configurable beyond --frames/--jobs: changing it
 * breaks comparability across history.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/gpu.hh"
#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "sim/sweep.hh"
#include "trace/json.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

// The pinned workload. Do not change casually: historical
// BENCH_sweep.json files stop being comparable.
constexpr const char *kBenchmark = "CCS";
constexpr std::uint32_t kWidth = 960;
constexpr std::uint32_t kHeight = 544;

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"frames", "jobs", "out", "report-out",
                        "trace-out"});
    const auto frames =
        static_cast<std::uint32_t>(args.getInt("frames", 4));
    const auto jobs = static_cast<unsigned>(args.getInt("jobs", 2));
    const std::string out = args.get("out", "BENCH_sweep.json");
    const std::string report_out = args.get("report-out", "");
    const std::string trace_out = args.get("trace-out", "");
    if (frames < 1)
        fatal("--frames must be at least 1");

    const BenchmarkSpec &spec = findBenchmark(kBenchmark);
    const Scene scene(spec, kWidth, kHeight);

    // --- Event-loop hot path: one simulation, events/sec. ------------
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;

    Gpu gpu(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t f = 0; f < frames; ++f)
        gpu.renderFrame(scene.frame(f), scene.textures());
    const double sim_s = seconds(std::chrono::steady_clock::now() - t0);
    const std::uint64_t events = gpu.eventQueue().eventsExecuted();
    const double events_per_sec =
        sim_s > 0.0 ? static_cast<double>(events) / sim_s : 0.0;

    // --- Same workload, trace sink attached: recording overhead. -----
    GpuConfig cfg_traced = cfg;
    cfg_traced.traceEvents = true;
    RunResult traced;
    traced.benchmark = kBenchmark;
    traced.config = cfg_traced;
    traced.trace = std::make_shared<TraceSink>();
    double traced_s = 0.0;
    std::uint64_t events_traced = 0;
    {
        Gpu gpu_traced(cfg_traced);
        gpu_traced.setTraceSink(traced.trace.get());
        const auto tt = std::chrono::steady_clock::now();
        for (std::uint32_t f = 0; f < frames; ++f) {
            traced.frames.push_back(
                gpu_traced.renderFrame(scene.frame(f),
                                       scene.textures()));
        }
        traced_s = seconds(std::chrono::steady_clock::now() - tt);
        events_traced = gpu_traced.eventQueue().eventsExecuted();
        traced.counters = gpu_traced.stats().values();
    }
    const double events_per_sec_traced = traced_s > 0.0
        ? static_cast<double>(events_traced) / traced_s
        : 0.0;

    // --- Sweep throughput: the same workload through SweepRunner. ----
    std::vector<SweepJob> sweep_jobs;
    for (const std::uint32_t cores : {8u, 8u}) {
        GpuConfig c = GpuConfig::baseline(cores);
        c.screenWidth = kWidth;
        c.screenHeight = kHeight;
        sweep_jobs.push_back(SweepJob{&spec, c, frames, 0});
    }
    {
        GpuConfig c = cfg;
        sweep_jobs.push_back(SweepJob{&spec, c, frames, 0});
        c.sched.policy = SchedulerPolicy::Scanline;
        sweep_jobs.push_back(SweepJob{&spec, c, frames, 0});
    }
    const std::size_t n_jobs = sweep_jobs.size();

    SweepRunner runner(jobs);
    SceneCache scenes;
    const auto t1 = std::chrono::steady_clock::now();
    std::vector<Result<RunResult>> results =
        runner.run(std::move(sweep_jobs), &scenes);
    const double sweep_s =
        seconds(std::chrono::steady_clock::now() - t1);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].isOk())
            fatal("sweep job ", i, ": ",
                  results[i].status().toString());
    }

    // --- Report. -----------------------------------------------------
    std::printf("perf_smoke: %s %ux%u, %u frame(s)\n", kBenchmark,
                kWidth, kHeight, frames);
    std::printf("  event loop : %llu events in %.3f s  "
                "(%.3g events/s)\n",
                static_cast<unsigned long long>(events), sim_s,
                events_per_sec);
    std::printf("  traced     : %llu events in %.3f s  "
                "(%.3g events/s, %zu trace events)\n",
                static_cast<unsigned long long>(events_traced),
                traced_s, events_per_sec_traced,
                traced.trace->eventCount());
    std::printf("  sweep      : %zu jobs, %u worker(s), %.3f s\n",
                n_jobs, runner.workers(), sweep_s);

    if (!report_out.empty()) {
        if (Status st =
                writeTextFile(report_out, runReportJson(traced));
            !st.isOk()) {
            fatal("--report-out: ", st.toString());
        }
        std::printf("wrote %s\n", report_out.c_str());
    }
    if (!trace_out.empty()) {
        if (Status st = traced.trace->writeChromeTrace(trace_out);
            !st.isOk()) {
            fatal("--trace-out: ", st.toString());
        }
        std::printf("wrote %s\n", trace_out.c_str());
    }

    std::FILE *fp = std::fopen(out.c_str(), "w");
    if (fp == nullptr)
        fatal("cannot write ", out);
    std::fprintf(fp,
                 "{\n"
                 "  \"benchmark\": \"%s\",\n"
                 "  \"width\": %u,\n"
                 "  \"height\": %u,\n"
                 "  \"frames\": %u,\n"
                 "  \"events\": %llu,\n"
                 "  \"events_per_sec\": %.1f,\n"
                 "  \"wall_time_s\": %.6f,\n"
                 "  \"events_per_sec_traced\": %.1f,\n"
                 "  \"trace_events\": %zu,\n"
                 "  \"wall_time_traced_s\": %.6f,\n"
                 "  \"sweep_jobs\": %zu,\n"
                 "  \"sweep_workers\": %u,\n"
                 "  \"sweep_wall_time_s\": %.6f\n"
                 "}\n",
                 kBenchmark, kWidth, kHeight, frames,
                 static_cast<unsigned long long>(events),
                 events_per_sec, sim_s, events_per_sec_traced,
                 traced.trace->eventCount(), traced_s, n_jobs,
                 runner.workers(), sweep_s);
    std::fclose(fp);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
