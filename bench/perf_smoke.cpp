/**
 * @file
 * Perf-regression smoke test: a fixed, pinned workload whose numbers
 * are comparable across commits.
 *
 * Three measurements:
 *   - event-loop hot path: one Gpu instance renders a pinned scene and
 *     we report simulator events per wall-clock second (no trace sink
 *     attached — this is the number regressions are judged against);
 *   - the same workload with a TraceSink attached, to quantify the
 *     cost of event recording (events_per_sec_traced);
 *   - sweep throughput: the same jobs pushed through SweepRunner, to
 *     catch regressions in the parallel harness itself;
 *   - parallel engine: a 4-RU machine under the sharded engine at 1
 *     and 4 simulation threads (events_per_sec_parallel and
 *     parallel_speedup). The two runs must execute identical event
 *     counts — the engine's determinism contract — and the speedup is
 *     gated against the baseline, but only when both the baseline host
 *     and this host have at least sim_threads CPUs (a 1-core CI runner
 *     can't measure parallelism). A skipped gate is never silent: the
 *     skip and its reason are printed AND recorded in the results file
 *     (parallel_gate_skipped / parallel_gate_skip_reason), so a CI
 *     history where the gate quietly stopped gating is visible in the
 *     archived JSON;
 *   - warm-prefix forking: a fig19-style threshold sweep (four LIBRA
 *     configs differing only in sched.resizeThreshold) run cold and
 *     then with --warm-prefix-style forking (CheckpointPolicy
 *     warmPrefixFrames = 2). The counter dumps must match exactly —
 *     the fork-restore byte-identity contract — and the wall-time
 *     reduction is recorded (warm_prefix_time_reduction_pct).
 *
 * Methodology: every measurement runs --warmup discarded iterations and
 * --repeat timed ones and reports the median plus the MAD (median
 * absolute deviation). Single-shot wall times on a shared machine are
 * noise — an unlucky scheduling hiccup used to swing the recorded
 * number by 2x; the median of pinned repeats is stable to a few
 * percent and the MAD quantifies how trustworthy this particular run
 * was.
 *
 * Regression gate: --baseline FILE compares this run's medians against
 * a previously written results file (e.g. the committed
 * BENCH_baseline.json) and exits non-zero when the wall-time geomean
 * regresses by more than --tolerance percent (default 10). A fixed
 * arithmetic calibration loop is timed in both runs and its ratio
 * rescales the baseline, so a comparison on a faster/slower machine
 * than the one that wrote the baseline still measures the *simulator*,
 * not the host.
 *
 * Results land in BENCH_sweep.json (override with --out FILE) so CI can
 * archive them per commit and trend them; the same file format is what
 * --baseline consumes. --report-out/--trace-out write the traced run's
 * RunReport and chrome-trace. The workload is deliberately NOT
 * configurable beyond --frames/--jobs: changing it breaks
 * comparability across history.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/gpu.hh"
#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "sim/sweep.hh"
#include "trace/json.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

using namespace libra;

namespace
{

// The pinned workload. Do not change casually: historical
// BENCH_sweep.json files stop being comparable.
constexpr const char *kBenchmark = "CCS";
constexpr std::uint32_t kWidth = 960;
constexpr std::uint32_t kHeight = 544;

/** Pinned parallel-engine measurement: a 4-RU machine so the sharded
 *  engine has four shards to spread over kSimThreads lanes. */
constexpr std::uint32_t kSimThreads = 4;

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/** Median and median-absolute-deviation of timed repeats. */
struct Stats
{
    double median = 0.0;
    double mad = 0.0;
};

double
medianOf(std::vector<double> v)
{
    libra_assert(!v.empty(), "median of nothing");
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

Stats
summarize(const std::vector<double> &samples)
{
    Stats s;
    s.median = medianOf(samples);
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (const double x : samples)
        dev.push_back(std::abs(x - s.median));
    s.mad = medianOf(std::move(dev));
    return s;
}

/** Run @p body (returning its wall seconds) warmup+repeat times and
 *  summarize the timed repeats. */
template <typename Fn>
Stats
measure(unsigned warmup, unsigned repeat, Fn &&body)
{
    for (unsigned i = 0; i < warmup; ++i)
        body();
    std::vector<double> samples;
    samples.reserve(repeat);
    for (unsigned i = 0; i < repeat; ++i)
        samples.push_back(body());
    return summarize(samples);
}

/**
 * Host-speed calibration: a fixed integer workload timed the same way
 * the simulator runs are. The ratio of two runs' calibration times
 * rescales baseline wall times recorded on a different (or
 * differently-loaded) machine. Median-of-5 keeps it stable.
 */
double
calibrate()
{
    std::vector<double> samples;
    volatile std::uint64_t sink = 0;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t h = 0x9E3779B97F4A7C15ull;
        for (std::uint32_t i = 0; i < 20'000'000; ++i) {
            h ^= h >> 33;
            h *= 0xFF51AFD7ED558CCDull;
            h += i;
        }
        sink = sink + h;
        samples.push_back(
            seconds(std::chrono::steady_clock::now() - t0));
    }
    return medianOf(std::move(samples));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

double
jsonNumber(const JsonValue &root, const std::string &key)
{
    const JsonValue *v = root.find(key);
    if (v == nullptr || !v->isNumber())
        fatal("baseline file is missing numeric field \"", key, "\"");
    return v->number;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"frames", "jobs", "out", "report-out",
                        "trace-out", "warmup", "repeat", "baseline",
                        "tolerance"});
    const auto frames =
        static_cast<std::uint32_t>(args.getInt("frames", 4));
    const auto jobs = static_cast<unsigned>(args.getInt("jobs", 2));
    const auto warmup =
        static_cast<unsigned>(args.getInt("warmup", 1));
    const auto repeat =
        static_cast<unsigned>(args.getInt("repeat", 3));
    const double tolerance = args.getDouble("tolerance", 10.0);
    const std::string out = args.get("out", "BENCH_sweep.json");
    const std::string baseline_path = args.get("baseline", "");
    const std::string report_out = args.get("report-out", "");
    const std::string trace_out = args.get("trace-out", "");
    if (frames < 1)
        fatal("--frames must be at least 1");
    if (repeat < 1)
        fatal("--repeat must be at least 1");

    const BenchmarkSpec &spec = findBenchmark(kBenchmark);
    const Scene scene(spec, kWidth, kHeight);

    const double calib_s = calibrate();

    // --- Event-loop hot path: one simulation, events/sec. ------------
    GpuConfig cfg = GpuConfig::libra(2, 4);
    cfg.screenWidth = kWidth;
    cfg.screenHeight = kHeight;

    std::uint64_t events = 0;
    const Stats sim = measure(warmup, repeat, [&] {
        Gpu gpu(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint32_t f = 0; f < frames; ++f)
            gpu.renderFrame(scene.frame(f), scene.textures());
        const double s =
            seconds(std::chrono::steady_clock::now() - t0);
        const std::uint64_t e = gpu.eventQueue().eventsExecuted();
        libra_assert(events == 0 || events == e,
                     "non-deterministic event count across repeats");
        events = e;
        return s;
    });
    const double events_per_sec = sim.median > 0.0
        ? static_cast<double>(events) / sim.median
        : 0.0;

    // --- Same workload, trace sink attached: recording overhead. -----
    GpuConfig cfg_traced = cfg;
    cfg_traced.traceEvents = true;
    RunResult traced;
    traced.benchmark = kBenchmark;
    traced.config = cfg_traced;
    std::uint64_t events_traced = 0;
    const Stats traced_stats = measure(warmup, repeat, [&] {
        traced.trace = std::make_shared<TraceSink>();
        traced.frames.clear();
        Gpu gpu_traced(cfg_traced);
        gpu_traced.setTraceSink(traced.trace.get());
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint32_t f = 0; f < frames; ++f) {
            traced.frames.push_back(
                gpu_traced.renderFrame(scene.frame(f),
                                       scene.textures()));
        }
        const double s =
            seconds(std::chrono::steady_clock::now() - t0);
        events_traced = gpu_traced.eventQueue().eventsExecuted();
        traced.counters = gpu_traced.stats().values();
        return s;
    });
    const double events_per_sec_traced = traced_stats.median > 0.0
        ? static_cast<double>(events_traced) / traced_stats.median
        : 0.0;

    // --- Sweep throughput: the same workload through SweepRunner. ----
    const auto make_jobs = [&] {
        std::vector<SweepJob> sweep_jobs;
        for (const std::uint32_t cores : {8u, 8u}) {
            GpuConfig c = GpuConfig::baseline(cores);
            c.screenWidth = kWidth;
            c.screenHeight = kHeight;
            sweep_jobs.push_back(SweepJob{&spec, c, frames, 0});
        }
        GpuConfig c = cfg;
        sweep_jobs.push_back(SweepJob{&spec, c, frames, 0});
        c.sched.policy = SchedulerPolicy::Scanline;
        sweep_jobs.push_back(SweepJob{&spec, c, frames, 0});
        return sweep_jobs;
    };
    const std::size_t n_jobs = make_jobs().size();

    SweepRunner runner(jobs);
    SceneCache scenes;
    const Stats sweep = measure(warmup, repeat, [&] {
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<Result<RunResult>> results =
            runner.run(make_jobs(), &scenes);
        const double s =
            seconds(std::chrono::steady_clock::now() - t0);
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!results[i].isOk())
                fatal("sweep job ", i, ": ",
                      results[i].status().toString());
        }
        return s;
    });

    // --- Parallel engine: 4-RU machine, 1 vs kSimThreads lanes. ------
    GpuConfig cfg_par = GpuConfig::libra(4, 4);
    cfg_par.screenWidth = kWidth;
    cfg_par.screenHeight = kHeight;

    std::uint64_t events_parallel = 0;
    const auto run_parallel = [&](std::uint32_t threads) {
        GpuConfig c = cfg_par;
        c.simThreads = threads;
        Gpu gpu(c);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint32_t f = 0; f < frames; ++f)
            gpu.renderFrame(scene.frame(f), scene.textures());
        const double s =
            seconds(std::chrono::steady_clock::now() - t0);
        const std::uint64_t e = gpu.eventsExecuted();
        // The sharded engine's determinism contract: the event count
        // is a pure function of the config, never of the lane count.
        libra_assert(events_parallel == 0 || events_parallel == e,
                     "sharded engine event count varies with threads");
        events_parallel = e;
        return s;
    };
    const Stats par1 = measure(warmup, repeat,
                               [&] { return run_parallel(1); });
    const Stats parN = measure(warmup, repeat,
                               [&] { return run_parallel(kSimThreads); });
    const double events_per_sec_parallel = parN.median > 0.0
        ? static_cast<double>(events_parallel) / parN.median
        : 0.0;
    const double parallel_speedup =
        parN.median > 0.0 ? par1.median / parN.median : 0.0;
    const std::uint32_t host_cpus = std::thread::hardware_concurrency();

    // This host's side of the parallel-speedup gate, decided (and
    // recorded) whether or not --baseline was given: a skipped gate
    // that leaves no trace in the archived JSON looks identical to a
    // passing one when trending CI history.
    std::string parallel_gate_skip_reason;
    if (host_cpus < kSimThreads) {
        std::ostringstream reason;
        reason << "host_cpus " << host_cpus << " < sim_threads "
               << kSimThreads;
        parallel_gate_skip_reason = reason.str();
    }

    // --- Warm-prefix forking: fig19-style threshold sweep. -----------
    // Four LIBRA configs differing only in the supertile resize
    // threshold share a warmPrefixHash, so with warmPrefixFrames = 2
    // the sweep renders the two opening frames once and forks the rest.
    const auto make_threshold_jobs = [&] {
        std::vector<SweepJob> tj;
        for (const double thr : {0.0, 0.0025, 0.01, 0.05}) {
            GpuConfig c = cfg;
            c.sched.resizeThreshold = thr;
            tj.push_back(SweepJob{&spec, c, frames, 0});
        }
        return tj;
    };
    std::uint64_t warm_prefix_forks = 0;
    std::vector<std::map<std::string, std::uint64_t>> cold_dumps;
    const auto run_threshold_sweep = [&](std::uint32_t warm_frames) {
        SweepPolicy policy;
        policy.checkpoint.warmPrefixFrames = warm_frames;
        const auto t0 = std::chrono::steady_clock::now();
        SweepOutcome sweep_out =
            runner.runWithPolicy(make_threshold_jobs(), policy, &scenes);
        const double s =
            seconds(std::chrono::steady_clock::now() - t0);
        std::vector<std::map<std::string, std::uint64_t>> dumps;
        for (std::size_t i = 0; i < sweep_out.jobs.size(); ++i) {
            if (!sweep_out.jobs[i].result.isOk())
                fatal("threshold sweep job ", i, ": ",
                      sweep_out.jobs[i].result.status().toString());
            dumps.push_back(
                std::move(sweep_out.jobs[i].result->counters));
        }
        // Fork-restore byte-identity contract: the forked runs must be
        // indistinguishable from the cold ones, counter for counter.
        if (cold_dumps.empty())
            cold_dumps = std::move(dumps);
        else
            libra_assert(dumps == cold_dumps,
                         "warm-prefix fork diverged from cold run");
        if (warm_frames != 0)
            warm_prefix_forks = sweep_out.warmPrefixForks;
        return s;
    };
    const Stats sweep_cold = measure(warmup, repeat,
                                     [&] { return run_threshold_sweep(0); });
    const Stats sweep_warm = measure(warmup, repeat,
                                     [&] { return run_threshold_sweep(2); });
    const double warm_prefix_reduction_pct = sweep_cold.median > 0.0
        ? 100.0 * (1.0 - sweep_warm.median / sweep_cold.median)
        : 0.0;

    // --- Report. -----------------------------------------------------
    std::printf("perf_smoke: %s %ux%u, %u frame(s), "
                "%u warmup + %u repeat(s)\n",
                kBenchmark, kWidth, kHeight, frames, warmup, repeat);
    std::printf("  calibration: %.3f s\n", calib_s);
    std::printf("  event loop : %llu events, median %.3f s "
                "(MAD %.3f)  (%.3g events/s)\n",
                static_cast<unsigned long long>(events), sim.median,
                sim.mad, events_per_sec);
    std::printf("  traced     : %llu events, median %.3f s "
                "(MAD %.3f)  (%.3g events/s, %zu trace events)\n",
                static_cast<unsigned long long>(events_traced),
                traced_stats.median, traced_stats.mad,
                events_per_sec_traced, traced.trace->eventCount());
    std::printf("  sweep      : %zu jobs, %u worker(s), median %.3f s "
                "(MAD %.3f)\n",
                n_jobs, runner.workers(), sweep.median, sweep.mad);
    std::printf("  parallel   : %llu events, 1 thread %.3f s, "
                "%u threads %.3f s (MAD %.3f) — %.2fx, %.3g events/s "
                "(%u host cpus)\n",
                static_cast<unsigned long long>(events_parallel),
                par1.median, kSimThreads, parN.median, parN.mad,
                parallel_speedup, events_per_sec_parallel, host_cpus);
    if (!parallel_gate_skip_reason.empty())
        std::printf("  parallel gate SKIPPED: %s\n",
                    parallel_gate_skip_reason.c_str());
    std::printf("  warm prefix: cold %.3f s, warm %.3f s (MAD %.3f) — "
                "%llu fork(s), %.1f%% faster\n",
                sweep_cold.median, sweep_warm.median, sweep_warm.mad,
                static_cast<unsigned long long>(warm_prefix_forks),
                warm_prefix_reduction_pct);

    if (!report_out.empty()) {
        if (Status st =
                writeTextFile(report_out, runReportJson(traced));
            !st.isOk()) {
            fatal("--report-out: ", st.toString());
        }
        std::printf("wrote %s\n", report_out.c_str());
    }
    if (!trace_out.empty()) {
        if (Status st = traced.trace->writeChromeTrace(trace_out);
            !st.isOk()) {
            fatal("--trace-out: ", st.toString());
        }
        std::printf("wrote %s\n", trace_out.c_str());
    }

    std::FILE *fp = std::fopen(out.c_str(), "w");
    if (fp == nullptr)
        fatal("cannot write ", out);
    std::fprintf(fp,
                 "{\n"
                 "  \"benchmark\": \"%s\",\n"
                 "  \"width\": %u,\n"
                 "  \"height\": %u,\n"
                 "  \"frames\": %u,\n"
                 "  \"warmup\": %u,\n"
                 "  \"repeat\": %u,\n"
                 "  \"calibration_s\": %.6f,\n"
                 "  \"events\": %llu,\n"
                 "  \"events_per_sec\": %.1f,\n"
                 "  \"wall_time_s\": %.6f,\n"
                 "  \"wall_time_mad_s\": %.6f,\n"
                 "  \"events_per_sec_traced\": %.1f,\n"
                 "  \"trace_events\": %zu,\n"
                 "  \"wall_time_traced_s\": %.6f,\n"
                 "  \"wall_time_traced_mad_s\": %.6f,\n"
                 "  \"sweep_jobs\": %zu,\n"
                 "  \"sweep_workers\": %u,\n"
                 "  \"sweep_wall_time_s\": %.6f,\n"
                 "  \"sweep_wall_time_mad_s\": %.6f,\n"
                 "  \"sim_threads\": %u,\n"
                 "  \"host_cpus\": %u,\n"
                 "  \"events_parallel\": %llu,\n"
                 "  \"events_per_sec_parallel\": %.1f,\n"
                 "  \"wall_time_parallel1_s\": %.6f,\n"
                 "  \"wall_time_parallel1_mad_s\": %.6f,\n"
                 "  \"wall_time_parallel4_s\": %.6f,\n"
                 "  \"wall_time_parallel4_mad_s\": %.6f,\n"
                 "  \"parallel_speedup\": %.3f,\n"
                 "  \"parallel_gate_skipped\": %s,\n"
                 "  \"parallel_gate_skip_reason\": \"%s\",\n"
                 "  \"warm_prefix_frames\": 2,\n"
                 "  \"warm_prefix_forks\": %llu,\n"
                 "  \"warm_prefix_cold_wall_time_s\": %.6f,\n"
                 "  \"warm_prefix_warm_wall_time_s\": %.6f,\n"
                 "  \"warm_prefix_warm_wall_time_mad_s\": %.6f,\n"
                 "  \"warm_prefix_time_reduction_pct\": %.1f\n"
                 "}\n",
                 kBenchmark, kWidth, kHeight, frames, warmup, repeat,
                 calib_s, static_cast<unsigned long long>(events),
                 events_per_sec, sim.median, sim.mad,
                 events_per_sec_traced, traced.trace->eventCount(),
                 traced_stats.median, traced_stats.mad, n_jobs,
                 runner.workers(), sweep.median, sweep.mad,
                 kSimThreads, host_cpus,
                 static_cast<unsigned long long>(events_parallel),
                 events_per_sec_parallel, par1.median, par1.mad,
                 parN.median, parN.mad, parallel_speedup,
                 parallel_gate_skip_reason.empty() ? "false" : "true",
                 parallel_gate_skip_reason.c_str(),
                 static_cast<unsigned long long>(warm_prefix_forks),
                 sweep_cold.median, sweep_warm.median, sweep_warm.mad,
                 warm_prefix_reduction_pct);
    std::fclose(fp);
    std::printf("wrote %s\n", out.c_str());

    // --- Baseline gate. ----------------------------------------------
    if (baseline_path.empty())
        return 0;

    Result<JsonValue> parsed = parseJson(readFile(baseline_path));
    if (!parsed.isOk())
        fatal("--baseline ", baseline_path, ": ",
              parsed.status().toString());
    const JsonValue &base = *parsed;

    // The baseline must describe the same pinned workload, or the
    // comparison is meaningless.
    const JsonValue *bench_name = base.find("benchmark");
    if (bench_name == nullptr || !bench_name->isString()
        || bench_name->str != kBenchmark
        || jsonNumber(base, "width") != kWidth
        || jsonNumber(base, "height") != kHeight
        || jsonNumber(base, "frames") != frames) {
        fatal("--baseline ", baseline_path,
              " was recorded for a different workload");
    }

    const auto base_events =
        static_cast<std::uint64_t>(jsonNumber(base, "events"));
    if (base_events != events) {
        std::printf("baseline: NOTE event count changed %llu -> %llu "
                    "(semantic change; wall-time comparison still "
                    "applies, diff_check guards equivalence)\n",
                    static_cast<unsigned long long>(base_events),
                    static_cast<unsigned long long>(events));
    }

    // Rescale the baseline by the host-speed ratio so a slower/faster
    // machine (or runner) does not masquerade as a simulator change.
    const double base_calib = jsonNumber(base, "calibration_s");
    const double host_scale =
        base_calib > 0.0 ? calib_s / base_calib : 1.0;

    struct Metric
    {
        const char *name;
        const char *key;
        double now;
    };
    const Metric metrics[] = {
        {"event loop", "wall_time_s", sim.median},
        {"traced", "wall_time_traced_s", traced_stats.median},
        {"sweep", "sweep_wall_time_s", sweep.median},
    };

    std::printf("baseline: comparing against %s "
                "(host scale %.3fx, tolerance %.1f%%)\n",
                baseline_path.c_str(), host_scale, tolerance);
    double log_sum = 0.0;
    for (const Metric &m : metrics) {
        const double base_median =
            jsonNumber(base, m.key) * host_scale;
        const double ratio =
            base_median > 0.0 ? m.now / base_median : 1.0;
        log_sum += std::log(ratio);
        std::printf("  %-11s: %.3f s vs %.3f s  (%.2fx)\n", m.name,
                    m.now, base_median, ratio);
    }
    const double geomean =
        std::exp(log_sum / std::size(metrics));
    bool regressed = geomean > 1.0 + tolerance / 100.0;
    std::printf("baseline: wall-time geomean ratio %.3fx — %s\n",
                geomean, regressed ? "REGRESSION" : "ok");

    // Parallel-speedup gate: only meaningful when both the baseline
    // host and this host actually have the CPUs to run kSimThreads
    // lanes; otherwise (1-core CI runner, old baseline file) say so
    // explicitly — the skip is already recorded in the results file —
    // and don't gate.
    const JsonValue *base_speedup = base.find("parallel_speedup");
    const JsonValue *base_cpus = base.find("host_cpus");
    if (base_speedup == nullptr || !base_speedup->isNumber()) {
        std::printf("baseline: parallel gate SKIPPED: baseline has no "
                    "parallel_speedup field\n");
    } else if (base_cpus == nullptr || !base_cpus->isNumber()
               || base_cpus->number < kSimThreads
               || host_cpus < kSimThreads) {
        std::printf("baseline: parallel gate SKIPPED: baseline host "
                    "%.0f cpus, this host %u cpus, need >= %u to gate "
                    "(speedup %.2fx vs %.2fx, informational)\n",
                    base_cpus && base_cpus->isNumber()
                        ? base_cpus->number : 0.0,
                    host_cpus, kSimThreads, parallel_speedup,
                    base_speedup->number);
    } else {
        const double floor =
            base_speedup->number * (1.0 - tolerance / 100.0);
        const bool par_regressed = parallel_speedup < floor;
        std::printf("baseline: parallel speedup %.2fx vs %.2fx "
                    "(floor %.2fx) — %s\n",
                    parallel_speedup, base_speedup->number, floor,
                    par_regressed ? "REGRESSION" : "ok");
        regressed = regressed || par_regressed;
    }
    return regressed ? 1 : 0;
}
