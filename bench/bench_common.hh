/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --frames N            frames per run (default 4; paper used 25)
 *   --width W --height H  screen (default 960x544 for speed)
 *   --benchmarks a,b,c    explicit benchmark subset
 *   --full                paper-scale: FHD, 25 frames, whole suite
 *   --csv                 emit CSV instead of aligned tables
 *   --jobs N              parallel simulations (default: all cores)
 *   --outdir DIR          where image/trace artifacts go (bench_out/)
 *   --report-out FILE     machine-readable RunReport JSON for the sweep
 *   --trace-out FILE      chrome-trace timeline (job 0 exact path,
 *                         job N suffixed FILE.N.json; open in Perfetto)
 *
 * Default runs use a representative subset at reduced resolution so the
 * whole bench directory executes in minutes; --full reproduces the
 * paper-scale configuration (32 benchmarks, FHD, 25 frames).
 */

#ifndef LIBRA_BENCH_BENCH_COMMON_HH
#define LIBRA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/runner.hh"
#include "sim/sweep.hh"
#include "trace/json.hh"
#include "trace/report.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"

namespace libra::bench
{

struct BenchOptions
{
    std::uint32_t frames = 4;
    std::uint32_t width = 960;
    std::uint32_t height = 544;
    std::vector<std::string> benchmarks;
    bool csv = false;
    bool full = false;
    unsigned jobs = 0; //!< parallel simulations; 0 = hardware threads
    std::string outdir = "bench_out"; //!< image/trace artifacts
    std::string reportOut; //!< RunReport JSON path ("" = don't write)
    std::string traceOut;  //!< chrome-trace path ("" = don't record)
};

/** Reduced default subsets keeping the default runtime small. */
inline std::vector<std::string>
defaultMemorySubset()
{
    return {"AAt", "CCS", "CoC", "GrT", "HCR", "Jet", "RoK", "SuS"};
}

inline std::vector<std::string>
defaultComputeSubset()
{
    return {"GDL", "CrS", "ArK", "MiN", "PoG", "ZuM"};
}

inline BenchOptions
parseBenchOptions(int argc, char **argv,
                  std::vector<std::string> default_benchmarks,
                  std::vector<std::string> full_benchmarks,
                  const std::vector<std::string> &extra_options = {})
{
    std::vector<std::string> known{"frames", "width",  "height",
                                   "benchmarks", "full", "csv",
                                   "jobs", "outdir", "report-out",
                                   "trace-out"};
    known.insert(known.end(), extra_options.begin(),
                 extra_options.end());
    const CliArgs args(argc, argv, known);

    BenchOptions opt;
    opt.full = args.getBool("full");
    if (opt.full) {
        opt.frames = 25;
        opt.width = 1920;
        opt.height = 1080;
        opt.benchmarks = std::move(full_benchmarks);
    } else {
        opt.benchmarks = std::move(default_benchmarks);
    }
    opt.frames = static_cast<std::uint32_t>(
        args.getInt("frames", opt.frames));
    opt.width = static_cast<std::uint32_t>(
        args.getInt("width", opt.width));
    opt.height = static_cast<std::uint32_t>(
        args.getInt("height", opt.height));
    if (args.has("benchmarks"))
        opt.benchmarks = args.getList("benchmarks");
    opt.csv = args.getBool("csv");
    opt.jobs = static_cast<unsigned>(args.getInt(
        "jobs", std::max(1u, std::thread::hardware_concurrency())));
    if (opt.jobs == 0)
        fatal("--jobs must be at least 1");
    opt.outdir = args.get("outdir", opt.outdir);
    opt.reportOut = args.get("report-out", "");
    opt.traceOut = args.get("trace-out", "");

    libra_assert(opt.frames >= 2, "benches need at least 2 frames");
    return opt;
}

/** Path for an output artifact: @p opt.outdir / @p filename, creating
 *  the directory on first use (keeps .ppm dumps out of the CWD). */
inline std::string
outPath(const BenchOptions &opt, const std::string &filename)
{
    std::error_code ec;
    std::filesystem::create_directories(opt.outdir, ec);
    if (ec)
        fatal("cannot create --outdir ", opt.outdir, ": ", ec.message());
    return (std::filesystem::path(opt.outdir) / filename).string();
}

/** Apply the bench's screen size to a config. */
inline GpuConfig
sized(GpuConfig cfg, const BenchOptions &opt)
{
    cfg.screenWidth = opt.width;
    cfg.screenHeight = opt.height;
    return cfg;
}

/**
 * CLI-boundary wrapper over runBenchmark(): the bench binaries have no
 * caller to hand an error to, so a bad configuration or a wedged run
 * ends the process with the library's message.
 */
inline RunResult
mustRun(const BenchmarkSpec &spec, const GpuConfig &cfg,
        std::uint32_t frames, std::uint32_t first_frame = 0)
{
    Result<RunResult> r = runBenchmark(spec, cfg, frames, first_frame);
    if (!r.isOk())
        fatal(spec.abbrev, ": ", r.status().toString());
    return std::move(*r);
}

/** CLI-boundary wrapper over memoryTimeFraction(). */
inline double
mustMemoryTimeFraction(const BenchmarkSpec &spec, const GpuConfig &cfg,
                       std::uint32_t frames)
{
    const Result<double> f = memoryTimeFraction(spec, cfg, frames);
    if (!f.isOk())
        fatal(spec.abbrev, ": ", f.status().toString());
    return *f;
}

/**
 * Batch of simulations executed in parallel (--jobs workers).
 *
 * Usage: enqueue every run with add() (recording the returned handles),
 * call run() once, then read results by handle — they come back in
 * submission order, bit-identical to a serial run, so the printing loop
 * of each bench stays exactly as it was. Scenes are shared: N configs
 * of one benchmark at one resolution build geometry/textures once.
 *
 * Like mustRun(), a failed job ends the process with the library's
 * error message — the bench binaries are the CLI boundary.
 */
class Sweep
{
  public:
    explicit Sweep(const BenchOptions &opt)
        : runner(opt.jobs), reportOut(opt.reportOut),
          traceOut(opt.traceOut)
    {}

    /** Enqueue one run; returns its result handle. */
    std::size_t
    add(const BenchmarkSpec &spec, GpuConfig cfg, std::uint32_t frames,
        std::uint32_t first_frame = 0)
    {
        libra_assert(results.empty(), "add() after run()");
        if (!traceOut.empty())
            cfg.traceEvents = true;
        jobs.push_back(SweepJob{&spec, cfg, frames, first_frame});
        return jobs.size() - 1;
    }

    /** Run every queued job across the worker pool; --report-out /
     *  --trace-out artifacts are written before returning. */
    void
    run()
    {
        std::vector<Result<RunResult>> out =
            runner.run(std::move(jobs), &scenes);
        jobs.clear();
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (!out[i].isOk())
                fatal("sweep job ", i, ": ", out[i].status().toString());
        }
        results = std::move(out);
        writeArtifacts();
    }

    /** Result of the job @p handle (valid after run()). */
    const RunResult &
    operator[](std::size_t handle) const
    {
        libra_assert(handle < results.size(), "bad sweep handle");
        return *results[handle];
    }

  private:
    /** Job @p index's variant of @p path: exact for job 0,
     *  "stem.N.ext" otherwise. */
    static std::string
    indexedPath(const std::string &path, std::size_t index)
    {
        if (index == 0)
            return path;
        const std::filesystem::path p(path);
        std::filesystem::path out = p.parent_path() / p.stem();
        out += "." + std::to_string(index);
        out += p.extension();
        return out.string();
    }

    void
    writeArtifacts() const
    {
        if (!reportOut.empty()) {
            std::vector<RunResult> runs;
            runs.reserve(results.size());
            for (const auto &r : results)
                runs.push_back(*r);
            if (Status st =
                    writeTextFile(reportOut, sweepReportJson(runs));
                !st.isOk()) {
                fatal("--report-out: ", st.toString());
            }
        }
        if (!traceOut.empty()) {
            for (std::size_t i = 0; i < results.size(); ++i) {
                const RunResult &r = *results[i];
                if (!r.trace)
                    continue;
                const std::string path = indexedPath(traceOut, i);
                if (Status st = r.trace->writeChromeTrace(path);
                    !st.isOk()) {
                    fatal("--trace-out: ", st.toString());
                }
            }
        }
    }

    SweepRunner runner;
    SceneCache scenes;
    std::vector<SweepJob> jobs;
    std::vector<Result<RunResult>> results;
    std::string reportOut;
    std::string traceOut;
};

/**
 * Sum of cycles over the steady frames (frame 0 is cold: caches empty,
 * no scheduler history) — all configs are compared over the same set.
 */
inline std::uint64_t
steadyCycles(const RunResult &r)
{
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < r.frames.size(); ++i)
        total += r.frames[i].totalCycles;
    return total;
}

inline double
steadySpeedup(const RunResult &base, const RunResult &other)
{
    return static_cast<double>(steadyCycles(base))
        / static_cast<double>(steadyCycles(other));
}

/** Mean over steady frames of a per-frame metric. */
template <typename Fn>
double
steadyMean(const RunResult &r, Fn &&metric)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < r.frames.size(); ++i) {
        sum += metric(r.frames[i]);
        ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

inline void
printTable(const Table &table, const BenchOptions &opt)
{
    if (opt.csv)
        std::fputs(table.csv().c_str(), stdout);
    else
        table.print();
}

/** Arithmetic mean (the paper reports arithmetic average speedups). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace libra::bench

#endif // LIBRA_BENCH_BENCH_COMMON_HH
