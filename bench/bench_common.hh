/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --frames N            frames per run (default 4; paper used 25)
 *   --policy NAME         apply a registered scheduling/pipeline
 *                         policy preset onto every config the bench
 *                         builds (see src/gpu/policy_registry.hh;
 *                         e.g. zorder, libra, re, re-libra)
 *   --width W --height H  screen (default 960x544 for speed)
 *   --benchmarks a,b,c    explicit benchmark subset
 *   --full                paper-scale: FHD, 25 frames, whole suite
 *   --csv                 emit CSV instead of aligned tables
 *   --jobs N              parallel simulations (default: all cores)
 *   --sim-threads N       event-queue shards threads per simulation
 *                         (0 = sequential engine; see DESIGN.md §8)
 *   --outdir DIR          where image/trace artifacts go (bench_out/)
 *   --report-out FILE     machine-readable RunReport JSON for the sweep
 *   --trace-out FILE      chrome-trace timeline (job 0 exact path,
 *                         job N suffixed FILE.N.json; open in Perfetto)
 *
 * Failure policy (see DESIGN.md, "Failure model"):
 *   --deadline-ms N       wall-clock deadline per job attempt (0 = off)
 *   --retries N           retries after a transient failure
 *   --backoff-ms N        base retry delay, doubling per attempt
 *   --quarantine N        permanent failures per config before its
 *                         remaining jobs fail fast (0 = off)
 *   --journal FILE        append-only crash-safe result journal
 *   --resume              replay journaled successes, re-run the rest
 *   --keep-going          exit 0 even if jobs failed (default: failed
 *                         jobs make the bench exit nonzero)
 *   --faults SPEC         armed fault plan (chaos testing; see
 *                         FaultPlan::parse)
 *
 * Checkpointing (DESIGN.md §10):
 *   --checkpoint-dir DIR  snapshot directory for periodic checkpoints
 *   --checkpoint-every N  write a snapshot every N frames (needs
 *                         --checkpoint-dir; 0 = never)
 *   --from-checkpoint     restore each job from its freshest usable
 *                         snapshot in --checkpoint-dir
 *   --warm-prefix N       fork jobs sharing an N-frame warm prefix
 *                         (equal warmPrefixHash) from one in-memory
 *                         snapshot instead of re-rendering it (0 = off)
 *
 * Sim-farm (DESIGN.md §12) — every bench binary can run as a one-shot
 * resident farm server instead of executing its figure:
 *   --serve               serve simulation requests until a shutdown
 *                         request arrives, then exit
 *   --socket PATH         AF_UNIX socket path (default libra_farm.sock)
 *   --cache-dir DIR       persistent result cache (default farm_cache)
 *   --farm-journal FILE   crash-safe accepted-request journal
 *   --farm-workers N      simulation worker threads (default 1)
 *   --max-queue N         queued-request admission bound (default 64)
 *   --client-quota N      outstanding requests per connection (16)
 *   --cache-max-entries N trim the cache to N entries (0 = unlimited)
 * The failure-policy flags above (--deadline-ms, --retries,
 * --backoff-ms, --quarantine) apply per served simulation.
 *
 * Default runs use a representative subset at reduced resolution so the
 * whole bench directory executes in minutes; --full reproduces the
 * paper-scale configuration (32 benchmarks, FHD, 25 frames).
 */

#ifndef LIBRA_BENCH_BENCH_COMMON_HH
#define LIBRA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "farm/farm_server.hh"
#include "gpu/policy_registry.hh"
#include "gpu/runner.hh"
#include "sim/sim_thread_pool.hh"
#include "sim/sweep.hh"
#include "sim/sweep_journal.hh"
#include "trace/json.hh"
#include "trace/report.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"

namespace libra::bench
{

struct BenchOptions
{
    std::uint32_t frames = 4;
    std::string policy; //!< registry policy preset ("" = bench default)
    std::uint32_t width = 960;
    std::uint32_t height = 544;
    std::vector<std::string> benchmarks;
    bool csv = false;
    bool full = false;
    unsigned jobs = 0; //!< parallel simulations; 0 = hardware threads
    std::uint32_t simThreads = 0; //!< per-sim event shards threads
                                  //!< (0 = sequential engine)
    std::string outdir = "bench_out"; //!< image/trace artifacts
    std::string reportOut; //!< RunReport JSON path ("" = don't write)
    std::string traceOut;  //!< chrome-trace path ("" = don't record)

    // Failure policy (forwarded into SweepPolicy by Sweep).
    std::uint64_t deadlineMs = 0;  //!< per-attempt deadline; 0 = none
    std::uint32_t retries = 0;     //!< transient-failure retries
    std::uint64_t backoffMs = 100; //!< base retry delay
    std::uint32_t quarantine = 0;  //!< strikes before fast-fail; 0 = off
    std::string journal;           //!< crash-safe journal ("" = none)
    bool resume = false;           //!< replay journaled successes
    bool keepGoing = false;        //!< failed jobs don't fail the bench
    std::string faults;            //!< FaultPlan spec ("" = none)

    // Checkpointing (forwarded into SweepPolicy::checkpoint by Sweep).
    std::string checkpointDir;       //!< snapshot dir ("" = off)
    std::uint32_t checkpointEvery = 0; //!< frames between snapshots
    bool fromCheckpoint = false;     //!< restore jobs from snapshots
    std::uint32_t warmPrefix = 0;    //!< warm-prefix fork length; 0=off
};

/** Reduced default subsets keeping the default runtime small. */
inline std::vector<std::string>
defaultMemorySubset()
{
    return {"AAt", "CCS", "CoC", "GrT", "HCR", "Jet", "RoK", "SuS"};
}

inline std::vector<std::string>
defaultComputeSubset()
{
    return {"GDL", "CrS", "ArK", "MiN", "PoG", "ZuM"};
}

inline BenchOptions
parseBenchOptions(int argc, char **argv,
                  std::vector<std::string> default_benchmarks,
                  std::vector<std::string> full_benchmarks,
                  const std::vector<std::string> &extra_options = {})
{
    std::vector<std::string> known{
        "frames", "width", "height", "benchmarks", "full", "csv",
        "policy",
        "jobs", "sim-threads", "outdir", "report-out", "trace-out",
        // failure policy
        "deadline-ms", "retries", "backoff-ms", "quarantine",
        "journal", "resume", "keep-going", "faults",
        // checkpointing
        "checkpoint-dir", "checkpoint-every", "from-checkpoint",
        "warm-prefix",
        // sim-farm one-shot server mode
        "serve", "socket", "cache-dir", "farm-journal", "farm-workers",
        "max-queue", "client-quota", "cache-max-entries"};
    known.insert(known.end(), extra_options.begin(),
                 extra_options.end());
    const CliArgs args(argc, argv, known);

    if (args.getBool("serve")) {
        // One-shot farm mode: this process becomes a resident sweep
        // service and never runs its own figure. Exits when a client
        // sends a shutdown request (or the process is killed — the
        // journal makes that safe).
        FarmOptions farm;
        farm.socketPath = args.get("socket", "libra_farm.sock");
        farm.cacheDir = args.get("cache-dir", "farm_cache");
        farm.journalPath = args.get("farm-journal", "");
        farm.workers =
            static_cast<unsigned>(args.getUint("farm-workers", 1));
        farm.maxQueue =
            static_cast<std::uint32_t>(args.getUint("max-queue", 64));
        farm.clientQuota = static_cast<std::uint32_t>(
            args.getUint("client-quota", 16));
        farm.cacheMaxEntries = args.getUint("cache-max-entries", 0);
        farm.deadlineMs = args.getUint("deadline-ms", 0);
        farm.maxRetries =
            static_cast<std::uint32_t>(args.getUint("retries", 0));
        farm.backoffMs = args.getUint("backoff-ms", 100);
        farm.quarantineThreshold =
            static_cast<std::uint32_t>(args.getUint("quarantine", 0));
        Result<std::unique_ptr<FarmServer>> server =
            FarmServer::start(std::move(farm));
        if (!server.isOk())
            fatal("--serve: ", server.status().toString());
        (*server)->wait();
        server->reset(); // join threads before exiting
        std::exit(0);
    }

    BenchOptions opt;
    opt.full = args.getBool("full");
    if (opt.full) {
        opt.frames = 25;
        opt.width = 1920;
        opt.height = 1080;
        opt.benchmarks = std::move(full_benchmarks);
    } else {
        opt.benchmarks = std::move(default_benchmarks);
    }
    opt.frames = static_cast<std::uint32_t>(
        args.getUint("frames", opt.frames));
    opt.width = static_cast<std::uint32_t>(
        args.getUint("width", opt.width));
    opt.height = static_cast<std::uint32_t>(
        args.getUint("height", opt.height));
    if (args.has("benchmarks"))
        opt.benchmarks = args.getList("benchmarks");
    opt.csv = args.getBool("csv");
    opt.policy = args.get("policy", "");
    if (!opt.policy.empty() && !findPolicy(opt.policy))
        fatal("--policy ", opt.policy, ": unknown; registered: ",
              policyNames());
    opt.jobs = static_cast<unsigned>(args.getUint(
        "jobs", std::max(1u, std::thread::hardware_concurrency())));
    if (opt.jobs == 0)
        fatal("--jobs must be at least 1");
    opt.simThreads =
        static_cast<std::uint32_t>(args.getUint("sim-threads", 0));
    // Two-level oversubscription guard: jobs sweep workers each
    // running simThreads event lanes must not exceed the machine.
    const std::uint32_t clamped = clampOversubscribedJobs(
        static_cast<std::uint32_t>(opt.jobs), opt.simThreads,
        std::thread::hardware_concurrency());
    if (clamped != opt.jobs) {
        warn("--jobs ", opt.jobs, " x --sim-threads ", opt.simThreads,
             " oversubscribes ", std::thread::hardware_concurrency(),
             " hardware threads; clamping --jobs to ", clamped);
        opt.jobs = clamped;
    }
    opt.outdir = args.get("outdir", opt.outdir);
    opt.reportOut = args.get("report-out", "");
    opt.traceOut = args.get("trace-out", "");

    opt.deadlineMs = args.getUint("deadline-ms", 0);
    opt.retries =
        static_cast<std::uint32_t>(args.getUint("retries", 0));
    opt.backoffMs = args.getUint("backoff-ms", opt.backoffMs);
    opt.quarantine = static_cast<std::uint32_t>(
        args.getUint("quarantine", 0));
    opt.journal = args.get("journal", "");
    opt.resume = args.getBool("resume");
    opt.keepGoing = args.getBool("keep-going");
    opt.faults = args.get("faults", "");
    if (opt.resume && opt.journal.empty())
        fatal("--resume needs --journal FILE");

    opt.checkpointDir = args.get("checkpoint-dir", "");
    opt.checkpointEvery = static_cast<std::uint32_t>(
        args.getUint("checkpoint-every", 0));
    opt.fromCheckpoint = args.getBool("from-checkpoint");
    opt.warmPrefix = static_cast<std::uint32_t>(
        args.getUint("warm-prefix", 0));
    if ((opt.checkpointEvery != 0 || opt.fromCheckpoint)
        && opt.checkpointDir.empty()) {
        fatal("--checkpoint-every / --from-checkpoint need "
              "--checkpoint-dir DIR");
    }

    libra_assert(opt.frames >= 2, "benches need at least 2 frames");
    return opt;
}

/** Path for an output artifact: @p opt.outdir / @p filename, creating
 *  the directory on first use (keeps .ppm dumps out of the CWD). */
inline std::string
outPath(const BenchOptions &opt, const std::string &filename)
{
    std::error_code ec;
    std::filesystem::create_directories(opt.outdir, ec);
    if (ec)
        fatal("cannot create --outdir ", opt.outdir, ": ", ec.message());
    return (std::filesystem::path(opt.outdir) / filename).string();
}

/** Apply the bench's screen size, simulation engine and --policy
 *  override to a config. */
inline GpuConfig
sized(GpuConfig cfg, const BenchOptions &opt)
{
    cfg.screenWidth = opt.width;
    cfg.screenHeight = opt.height;
    cfg.simThreads = opt.simThreads;
    if (!opt.policy.empty()) {
        if (Status st = applyPolicy(cfg, opt.policy); !st.isOk())
            fatal("--policy: ", st.toString());
    }
    return cfg;
}

/**
 * CLI-boundary wrapper over runBenchmark(): the bench binaries have no
 * caller to hand an error to, so a bad configuration or a wedged run
 * ends the process with the library's message.
 */
inline RunResult
mustRun(const BenchmarkSpec &spec, const GpuConfig &cfg,
        std::uint32_t frames, std::uint32_t first_frame = 0)
{
    Result<RunResult> r = runBenchmark(spec, cfg, frames, first_frame);
    if (!r.isOk())
        fatal(spec.abbrev, ": ", r.status().toString());
    return std::move(*r);
}

/** CLI-boundary wrapper over memoryTimeFraction(). */
inline double
mustMemoryTimeFraction(const BenchmarkSpec &spec, const GpuConfig &cfg,
                       std::uint32_t frames)
{
    const Result<double> f = memoryTimeFraction(spec, cfg, frames);
    if (!f.isOk())
        fatal(spec.abbrev, ": ", f.status().toString());
    return *f;
}

/**
 * Batch of simulations executed in parallel (--jobs workers).
 *
 * Usage: enqueue every run with add() (recording the returned handles),
 * call run() once, then read results by handle — they come back in
 * submission order, bit-identical to a serial run, so the printing loop
 * of each bench stays exactly as it was. Scenes are shared: N configs
 * of one benchmark at one resolution build geometry/textures once.
 *
 * Failed jobs no longer abort the process mid-sweep: the sweep runs to
 * completion under the failure policy (deadlines, retries, quarantine,
 * journal — see SweepPolicy), a per-job failure summary goes to stderr
 * and the --report-out document records every failure. Failed handles
 * read as zeroed placeholder results so the bench's printing loop still
 * works (graceful degradation); the bench's main() must end with
 * `return sweep.exitCode();`, which is nonzero when any job failed
 * unless --keep-going was given.
 */
class Sweep
{
  public:
    explicit Sweep(const BenchOptions &opt)
        : runner(opt.jobs), reportOut(opt.reportOut),
          traceOut(opt.traceOut), keepGoing(opt.keepGoing)
    {
        policy.deadlineMs = opt.deadlineMs;
        policy.maxRetries = opt.retries;
        policy.backoffMs = opt.backoffMs;
        policy.quarantineThreshold = opt.quarantine;
        policy.journalPath = opt.journal;
        policy.resume = opt.resume;
        if (!opt.faults.empty()) {
            Result<FaultPlan> plan = FaultPlan::parse(opt.faults);
            if (!plan.isOk())
                fatal("--faults: ", plan.status().toString());
            policy.faults = std::move(*plan);
        }
        policy.checkpoint.dir = opt.checkpointDir;
        policy.checkpoint.every = opt.checkpointEvery;
        policy.checkpoint.fromCheckpoint = opt.fromCheckpoint;
        policy.checkpoint.warmPrefixFrames = opt.warmPrefix;
    }

    /** Enqueue one run; returns its result handle. */
    std::size_t
    add(const BenchmarkSpec &spec, GpuConfig cfg, std::uint32_t frames,
        std::uint32_t first_frame = 0)
    {
        libra_assert(results.empty(), "add() after run()");
        if (!traceOut.empty())
            cfg.traceEvents = true;
        jobs.push_back(SweepJob{&spec, cfg, frames, first_frame});
        return jobs.size() - 1;
    }

    /** Run every queued job across the worker pool under the failure
     *  policy; --report-out / --trace-out artifacts are written before
     *  returning, failures summarized on stderr. */
    void
    run()
    {
        // Keep a copy for job keys and placeholder synthesis — the
        // engine consumes the submitted vector.
        const std::vector<SweepJob> submitted = jobs;
        SweepOutcome out =
            runner.runWithPolicy(std::move(jobs), policy, &scenes);
        jobs.clear();
        killed = out.killed;
        warmForks = out.warmPrefixForks;

        results.reserve(out.jobs.size());
        for (std::size_t i = 0; i < out.jobs.size(); ++i) {
            JobOutcome &o = out.jobs[i];
            if (o.result.isOk()) {
                results.push_back(std::move(*o.result));
                continue;
            }
            const Status &st = o.result.status();
            ReportFailure f;
            f.jobIndex = i;
            f.key = sweepJobKey(submitted[i]);
            f.code = errorCodeName(st.code());
            f.message = st.message();
            f.attempts = o.attempts;
            f.quarantined = o.quarantined;
            f.notRun = o.notRun;
            failures.push_back(std::move(f));
            results.push_back(placeholder(submitted[i]));
        }

        if (!failures.empty()) {
            std::fprintf(stderr, "sweep: %zu of %zu jobs failed%s\n",
                         failures.size(), results.size(),
                         killed ? " (simulated kill fired)" : "");
            // The message is already attributed: "job N [key]: ...".
            for (const ReportFailure &f : failures)
                std::fprintf(stderr, "  %s: %s\n", f.code.c_str(),
                             f.message.c_str());
        }
        writeArtifacts();
    }

    /** Result of the job @p handle (valid after run()). A failed job
     *  reads as a zeroed placeholder — check failed() to tell. */
    const RunResult &
    operator[](std::size_t handle) const
    {
        libra_assert(handle < results.size(), "bad sweep handle");
        return results[handle];
    }

    /** Whether job @p handle failed (its result is a placeholder). */
    bool
    failed(std::size_t handle) const
    {
        for (const ReportFailure &f : failures)
            if (f.jobIndex == handle)
                return true;
        return false;
    }

    /** Process exit code under the failure policy: nonzero when any
     *  job failed, unless --keep-going. Bench mains return this. */
    int
    exitCode() const
    {
        return failures.empty() || keepGoing ? 0 : 1;
    }

    /** Jobs that forked from a shared warm-prefix snapshot (valid
     *  after run(); nonzero only with --warm-prefix). */
    std::uint64_t
    warmPrefixForks() const
    {
        return warmForks;
    }

  private:
    /** Job @p index's variant of @p path: exact for job 0,
     *  "stem.N.ext" otherwise. */
    static std::string
    indexedPath(const std::string &path, std::size_t index)
    {
        if (index == 0)
            return path;
        const std::filesystem::path p(path);
        std::filesystem::path out = p.parent_path() / p.stem();
        out += "." + std::to_string(index);
        out += p.extension();
        return out.string();
    }

    /** Zeroed stand-in for a failed job so result handles stay valid:
     *  right shape (frame count, indices, config), all-zero stats. */
    static RunResult
    placeholder(const SweepJob &job)
    {
        RunResult r;
        r.benchmark = job.spec ? job.spec->abbrev : "?";
        r.config = job.config;
        r.config.faults.reset();
        r.config.watchdog.cancel.reset();
        r.frames.resize(job.frames);
        for (std::uint32_t k = 0; k < job.frames; ++k) {
            FrameStats &fs = r.frames[k];
            fs.frameIndex = job.firstFrame + k;
            // Shape the per-tile / per-RU vectors like a real frame's
            // so downstream consumers (heatmaps, phase tables) see
            // zeros, not size-mismatch asserts. Guard against configs
            // so broken the shape itself is undefined.
            if (job.config.tileSize != 0) {
                fs.tileDram.assign(job.config.tileCount(), 0);
                fs.tileInstr.assign(job.config.tileCount(), 0);
            }
            fs.ruPhases.assign(job.config.rasterUnits, {});
        }
        return r;
    }

    void
    writeArtifacts() const
    {
        if (!reportOut.empty()) {
            // Completed runs only — failed jobs appear in "failures",
            // not as zeroed fake runs.
            std::vector<RunResult> runs;
            runs.reserve(results.size());
            for (std::size_t i = 0; i < results.size(); ++i)
                if (!failed(i))
                    runs.push_back(results[i]);
            if (Status st = writeTextFile(
                    reportOut, sweepReportJson(runs, failures));
                !st.isOk()) {
                fatal("--report-out: ", st.toString());
            }
        }
        if (!traceOut.empty()) {
            for (std::size_t i = 0; i < results.size(); ++i) {
                const RunResult &r = results[i];
                if (!r.trace)
                    continue;
                const std::string path = indexedPath(traceOut, i);
                if (Status st = r.trace->writeChromeTrace(path);
                    !st.isOk()) {
                    fatal("--trace-out: ", st.toString());
                }
            }
        }
    }

    SweepRunner runner;
    SceneCache scenes;
    SweepPolicy policy;
    std::vector<SweepJob> jobs;
    std::vector<RunResult> results;
    std::vector<ReportFailure> failures;
    std::string reportOut;
    std::string traceOut;
    bool keepGoing = false;
    bool killed = false;
    std::uint64_t warmForks = 0;
};

/**
 * Sum of cycles over the steady frames (frame 0 is cold: caches empty,
 * no scheduler history) — all configs are compared over the same set.
 */
inline std::uint64_t
steadyCycles(const RunResult &r)
{
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < r.frames.size(); ++i)
        total += r.frames[i].totalCycles;
    return total;
}

inline double
steadySpeedup(const RunResult &base, const RunResult &other)
{
    return static_cast<double>(steadyCycles(base))
        / static_cast<double>(steadyCycles(other));
}

/** Mean over steady frames of a per-frame metric. */
template <typename Fn>
double
steadyMean(const RunResult &r, Fn &&metric)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < r.frames.size(); ++i) {
        sum += metric(r.frames[i]);
        ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

inline void
printTable(const Table &table, const BenchOptions &opt)
{
    if (opt.csv)
        std::fputs(table.csv().c_str(), stdout);
    else
        table.print();
}

/** Arithmetic mean (the paper reports arithmetic average speedups). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace libra::bench

#endif // LIBRA_BENCH_BENCH_COMMON_HH
