/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --frames N            frames per run (default 4; paper used 25)
 *   --width W --height H  screen (default 960x544 for speed)
 *   --benchmarks a,b,c    explicit benchmark subset
 *   --full                paper-scale: FHD, 25 frames, whole suite
 *   --csv                 emit CSV instead of aligned tables
 *
 * Default runs use a representative subset at reduced resolution so the
 * whole bench directory executes in minutes; --full reproduces the
 * paper-scale configuration (32 benchmarks, FHD, 25 frames).
 */

#ifndef LIBRA_BENCH_BENCH_COMMON_HH
#define LIBRA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "gpu/runner.hh"
#include "trace/report.hh"
#include "workload/benchmarks.hh"

namespace libra::bench
{

struct BenchOptions
{
    std::uint32_t frames = 4;
    std::uint32_t width = 960;
    std::uint32_t height = 544;
    std::vector<std::string> benchmarks;
    bool csv = false;
    bool full = false;
};

/** Reduced default subsets keeping the default runtime small. */
inline std::vector<std::string>
defaultMemorySubset()
{
    return {"AAt", "CCS", "CoC", "GrT", "HCR", "Jet", "RoK", "SuS"};
}

inline std::vector<std::string>
defaultComputeSubset()
{
    return {"GDL", "CrS", "ArK", "MiN", "PoG", "ZuM"};
}

inline BenchOptions
parseBenchOptions(int argc, char **argv,
                  std::vector<std::string> default_benchmarks,
                  std::vector<std::string> full_benchmarks,
                  const std::vector<std::string> &extra_options = {})
{
    std::vector<std::string> known{"frames", "width", "height",
                                   "benchmarks", "full", "csv"};
    known.insert(known.end(), extra_options.begin(),
                 extra_options.end());
    const CliArgs args(argc, argv, known);

    BenchOptions opt;
    opt.full = args.getBool("full");
    if (opt.full) {
        opt.frames = 25;
        opt.width = 1920;
        opt.height = 1080;
        opt.benchmarks = std::move(full_benchmarks);
    } else {
        opt.benchmarks = std::move(default_benchmarks);
    }
    opt.frames = static_cast<std::uint32_t>(
        args.getInt("frames", opt.frames));
    opt.width = static_cast<std::uint32_t>(
        args.getInt("width", opt.width));
    opt.height = static_cast<std::uint32_t>(
        args.getInt("height", opt.height));
    if (args.has("benchmarks"))
        opt.benchmarks = args.getList("benchmarks");
    opt.csv = args.getBool("csv");

    libra_assert(opt.frames >= 2, "benches need at least 2 frames");
    return opt;
}

/** Apply the bench's screen size to a config. */
inline GpuConfig
sized(GpuConfig cfg, const BenchOptions &opt)
{
    cfg.screenWidth = opt.width;
    cfg.screenHeight = opt.height;
    return cfg;
}

/**
 * CLI-boundary wrapper over runBenchmark(): the bench binaries have no
 * caller to hand an error to, so a bad configuration or a wedged run
 * ends the process with the library's message.
 */
inline RunResult
mustRun(const BenchmarkSpec &spec, const GpuConfig &cfg,
        std::uint32_t frames, std::uint32_t first_frame = 0)
{
    Result<RunResult> r = runBenchmark(spec, cfg, frames, first_frame);
    if (!r.isOk())
        fatal(spec.abbrev, ": ", r.status().toString());
    return std::move(*r);
}

/** CLI-boundary wrapper over memoryTimeFraction(). */
inline double
mustMemoryTimeFraction(const BenchmarkSpec &spec, const GpuConfig &cfg,
                       std::uint32_t frames)
{
    const Result<double> f = memoryTimeFraction(spec, cfg, frames);
    if (!f.isOk())
        fatal(spec.abbrev, ": ", f.status().toString());
    return *f;
}

/**
 * Sum of cycles over the steady frames (frame 0 is cold: caches empty,
 * no scheduler history) — all configs are compared over the same set.
 */
inline std::uint64_t
steadyCycles(const RunResult &r)
{
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < r.frames.size(); ++i)
        total += r.frames[i].totalCycles;
    return total;
}

inline double
steadySpeedup(const RunResult &base, const RunResult &other)
{
    return static_cast<double>(steadyCycles(base))
        / static_cast<double>(steadyCycles(other));
}

/** Mean over steady frames of a per-frame metric. */
template <typename Fn>
double
steadyMean(const RunResult &r, Fn &&metric)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < r.frames.size(); ++i) {
        sum += metric(r.frames[i]);
        ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

inline void
printTable(const Table &table, const BenchOptions &opt)
{
    if (opt.csv)
        std::fputs(table.csv().c_str(), stdout);
    else
        table.print();
}

/** Arithmetic mean (the paper reports arithmetic average speedups). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace libra::bench

#endif // LIBRA_BENCH_BENCH_COMMON_HH
