/**
 * @file
 * Figure 2 / Figure 9 reproduction: per-tile DRAM-access heatmaps.
 *
 * Renders one frame of a benchmark (Subway Surfers by default, as in
 * Fig. 2) and emits the per-tile DRAM access counts both as an ASCII
 * heatmap and as a PPM image, at tile and supertile granularity (the
 * Fig. 9 comparison). Hot clusters (characters, HUD bars, detailed
 * props) and cold regions (background) should be clearly visible.
 */

#include <cstdio>

#include "bench_common.hh"
#include "trace/heatmap.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, {"SuS"}, {"SuS", "HCR"});

    Sweep sweep(opt);
    std::vector<std::size_t> handles;
    for (const auto &name : opt.benchmarks) {
        handles.push_back(sweep.add(findBenchmark(name),
                                    sized(GpuConfig::baseline(8), opt),
                                    2));
    }
    sweep.run();

    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const BenchmarkSpec &spec = findBenchmark(name);
        const GpuConfig cfg = sized(GpuConfig::baseline(8), opt);
        const RunResult &r = sweep[handles[i]];
        const FrameStats &fs = r.frames.back();

        const TileGrid grid(opt.width, opt.height, cfg.tileSize);

        banner("Figure 2: per-tile DRAM accesses, " + spec.title);
        std::fputs(heatmapAscii(grid, fs.tileDram).c_str(), stdout);

        const std::string tile_path =
            outPath(opt, "fig02_" + name + "_tile.ppm");
        writeHeatmapPpm(tile_path, grid, fs.tileDram);
        std::printf("wrote %s\n", tile_path.c_str());

        // Figure 9: the same field aggregated at 4x4 supertiles shows
        // that hot regions cover clusters of neighboring tiles.
        const std::uint32_t st = 4;
        std::vector<std::uint64_t> st_sum(grid.superTileCount(st), 0);
        for (TileId t = 0; t < grid.tileCount(); ++t)
            st_sum[grid.superTileOf(t, st)] += fs.tileDram[t];
        std::vector<std::uint64_t> smeared(grid.tileCount());
        for (TileId t = 0; t < grid.tileCount(); ++t)
            smeared[t] = st_sum[grid.superTileOf(t, st)];

        banner("Figure 9: aggregated at 4x4 supertiles");
        std::fputs(heatmapAscii(grid, smeared).c_str(), stdout);
        const std::string st_path =
            outPath(opt, "fig02_" + name + "_supertile.ppm");
        writeHeatmapPpm(st_path, grid, smeared);
        std::printf("wrote %s\n", st_path.c_str());

        // Quantify the clustering the scheduler exploits: hot tiles'
        // neighbors are much hotter than average (spatial correlation).
        std::uint64_t total = 0, max_tile = 0;
        for (const auto v : fs.tileDram) {
            total += v;
            max_tile = std::max(max_tile, v);
        }
        std::printf("\ntiles: %u, total tile-attributed DRAM accesses:"
                    " %llu, hottest tile: %llu (%.1fx the mean)\n",
                    grid.tileCount(),
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(max_tile),
                    static_cast<double>(max_tile) * grid.tileCount()
                        / std::max<std::uint64_t>(total, 1));
    }
    return sweep.exitCode();
}
