/**
 * @file
 * Figure 8 reproduction: cumulative distribution of the per-tile DRAM
 * access difference between consecutive frames. The paper reports that
 * more than 80% of tiles differ by less than 20% — the frame-to-frame
 * coherence LIBRA's prediction relies on.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    std::vector<std::string> all;
    for (const auto &spec : benchmarkSuite())
        all.push_back(spec.abbrev);
    std::vector<std::string> defaults = defaultMemorySubset();

    BenchOptions opt = parseBenchOptions(argc, argv, defaults, all);
    opt.frames = std::max(opt.frames, 4u);

    Sweep sweep(opt);
    std::vector<std::size_t> handles;
    for (const auto &name : opt.benchmarks) {
        handles.push_back(sweep.add(findBenchmark(name),
                                    sized(GpuConfig::baseline(8), opt),
                                    opt.frames));
    }
    sweep.run();

    // Per-tile relative deltas pooled over all benchmarks and frame
    // pairs.
    std::vector<double> deltas;
    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const RunResult &r = sweep[handles[i]];
        for (std::size_t f = 2; f < r.frames.size(); ++f) {
            const auto &prev = r.frames[f - 1].tileDram;
            const auto &cur = r.frames[f].tileDram;
            for (std::size_t t = 0; t < cur.size(); ++t) {
                const double a = static_cast<double>(prev[t]);
                const double b = static_cast<double>(cur[t]);
                if (a == 0.0 && b == 0.0) {
                    deltas.push_back(0.0);
                } else {
                    deltas.push_back(std::fabs(b - a)
                                     / std::max(a, b));
                }
            }
        }
    }
    std::sort(deltas.begin(), deltas.end());

    banner("Figure 8: CDF of per-tile DRAM delta, consecutive frames");
    Table table({"delta <=", "fraction of tiles"});
    double frac_at_20 = 0.0;
    for (const double cut : {0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.0}) {
        const auto it = std::upper_bound(deltas.begin(), deltas.end(),
                                         cut);
        const double frac = static_cast<double>(it - deltas.begin())
            / static_cast<double>(deltas.size());
        if (cut == 0.20)
            frac_at_20 = frac;
        table.addRow({Table::pct(cut, 0), Table::pct(frac)});
    }
    printTable(table, opt);
    std::printf("\ntiles within 20%%: %s (paper: >80%%)\n",
                Table::pct(frac_at_20).c_str());
    return sweep.exitCode();
}
