/**
 * @file
 * Figure 12 reproduction: decrease in average texture access latency
 * w.r.t. the baseline, for PTR alone and for LIBRA. Paper: PTR alone
 * often *increases* latency (more parallel demand), while LIBRA
 * achieves an average 13.5% decrease, up to 40%.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace libra;
using namespace libra::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseBenchOptions(
        argc, argv, defaultMemorySubset(), memoryIntensiveSet());

    banner("Figure 12: texture latency decrease w.r.t. baseline");
    Table table({"bench", "base lat", "PTR", "LIBRA", "PTR dec",
                 "LIBRA dec"});
    std::vector<double> dec_ptr, dec_libra;
    auto lat = [](const RunResult &r) {
        return steadyMean(r, [](const FrameStats &fs) {
            return fs.avgTextureLatency;
        });
    };
    Sweep sweep(opt);
    struct Handles
    {
        std::size_t base, ptr, lib;
    };
    std::vector<Handles> handles;
    for (const auto &name : opt.benchmarks) {
        const BenchmarkSpec &spec = findBenchmark(name);
        Handles h;
        h.base = sweep.add(spec, sized(GpuConfig::baseline(8), opt),
                           opt.frames);
        h.ptr = sweep.add(spec, sized(GpuConfig::ptr(2, 4), opt),
                          opt.frames);
        h.lib = sweep.add(spec, sized(GpuConfig::libra(2, 4), opt),
                          opt.frames);
        handles.push_back(h);
    }
    sweep.run();

    for (std::size_t i = 0; i < opt.benchmarks.size(); ++i) {
        const std::string &name = opt.benchmarks[i];
        const double base = lat(sweep[handles[i].base]);
        const double ptr = lat(sweep[handles[i].ptr]);
        const double lib = lat(sweep[handles[i].lib]);
        const double dp = 1.0 - ptr / base;
        const double dl = 1.0 - lib / base;
        dec_ptr.push_back(dp);
        dec_libra.push_back(dl);
        table.addRow({name, Table::num(base, 1), Table::num(ptr, 1),
                      Table::num(lib, 1), Table::pct(dp),
                      Table::pct(dl)});
    }
    printTable(table, opt);
    std::printf("\naverage latency decrease: PTR %s, LIBRA %s\n",
                Table::pct(mean(dec_ptr)).c_str(),
                Table::pct(mean(dec_libra)).c_str());
    std::printf("paper: LIBRA decreases texture latency by 13.5%% on "
                "average (up to 40%%); PTR alone often increases it\n");
    return sweep.exitCode();
}
