file(REMOVE_RECURSE
  "CMakeFiles/fig04_core_scaling.dir/fig04_core_scaling.cpp.o"
  "CMakeFiles/fig04_core_scaling.dir/fig04_core_scaling.cpp.o.d"
  "fig04_core_scaling"
  "fig04_core_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
