# Empty compiler generated dependencies file for fig04_core_scaling.
# This may be replaced when dependencies are built.
