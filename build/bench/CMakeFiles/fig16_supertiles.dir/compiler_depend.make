# Empty compiler generated dependencies file for fig16_supertiles.
# This may be replaced when dependencies are built.
