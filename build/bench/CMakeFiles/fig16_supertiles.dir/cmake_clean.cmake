file(REMOVE_RECURSE
  "CMakeFiles/fig16_supertiles.dir/fig16_supertiles.cpp.o"
  "CMakeFiles/fig16_supertiles.dir/fig16_supertiles.cpp.o.d"
  "fig16_supertiles"
  "fig16_supertiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_supertiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
