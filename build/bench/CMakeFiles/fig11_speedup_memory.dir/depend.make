# Empty dependencies file for fig11_speedup_memory.
# This may be replaced when dependencies are built.
