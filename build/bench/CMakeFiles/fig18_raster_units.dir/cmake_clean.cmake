file(REMOVE_RECURSE
  "CMakeFiles/fig18_raster_units.dir/fig18_raster_units.cpp.o"
  "CMakeFiles/fig18_raster_units.dir/fig18_raster_units.cpp.o.d"
  "fig18_raster_units"
  "fig18_raster_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_raster_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
