# Empty compiler generated dependencies file for fig18_raster_units.
# This may be replaced when dependencies are built.
