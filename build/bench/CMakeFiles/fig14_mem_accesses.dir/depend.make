# Empty dependencies file for fig14_mem_accesses.
# This may be replaced when dependencies are built.
