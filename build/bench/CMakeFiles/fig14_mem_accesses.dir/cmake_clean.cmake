file(REMOVE_RECURSE
  "CMakeFiles/fig14_mem_accesses.dir/fig14_mem_accesses.cpp.o"
  "CMakeFiles/fig14_mem_accesses.dir/fig14_mem_accesses.cpp.o.d"
  "fig14_mem_accesses"
  "fig14_mem_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mem_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
