# Empty dependencies file for fig12_texture_latency.
# This may be replaced when dependencies are built.
