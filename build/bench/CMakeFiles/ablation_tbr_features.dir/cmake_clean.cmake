file(REMOVE_RECURSE
  "CMakeFiles/ablation_tbr_features.dir/ablation_tbr_features.cpp.o"
  "CMakeFiles/ablation_tbr_features.dir/ablation_tbr_features.cpp.o.d"
  "ablation_tbr_features"
  "ablation_tbr_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tbr_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
