file(REMOVE_RECURSE
  "CMakeFiles/fig02_heatmap.dir/fig02_heatmap.cpp.o"
  "CMakeFiles/fig02_heatmap.dir/fig02_heatmap.cpp.o.d"
  "fig02_heatmap"
  "fig02_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
