file(REMOVE_RECURSE
  "CMakeFiles/fig17_compute_intensive.dir/fig17_compute_intensive.cpp.o"
  "CMakeFiles/fig17_compute_intensive.dir/fig17_compute_intensive.cpp.o.d"
  "fig17_compute_intensive"
  "fig17_compute_intensive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_compute_intensive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
