# Empty dependencies file for fig17_compute_intensive.
# This may be replaced when dependencies are built.
