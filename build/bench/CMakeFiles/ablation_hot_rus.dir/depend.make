# Empty dependencies file for ablation_hot_rus.
# This may be replaced when dependencies are built.
