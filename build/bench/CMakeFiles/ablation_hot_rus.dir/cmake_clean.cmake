file(REMOVE_RECURSE
  "CMakeFiles/ablation_hot_rus.dir/ablation_hot_rus.cpp.o"
  "CMakeFiles/ablation_hot_rus.dir/ablation_hot_rus.cpp.o.d"
  "ablation_hot_rus"
  "ablation_hot_rus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hot_rus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
