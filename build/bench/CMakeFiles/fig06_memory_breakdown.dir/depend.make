# Empty dependencies file for fig06_memory_breakdown.
# This may be replaced when dependencies are built.
