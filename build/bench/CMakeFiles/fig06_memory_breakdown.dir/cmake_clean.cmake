file(REMOVE_RECURSE
  "CMakeFiles/fig06_memory_breakdown.dir/fig06_memory_breakdown.cpp.o"
  "CMakeFiles/fig06_memory_breakdown.dir/fig06_memory_breakdown.cpp.o.d"
  "fig06_memory_breakdown"
  "fig06_memory_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_memory_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
