file(REMOVE_RECURSE
  "CMakeFiles/fig07_dram_timeline.dir/fig07_dram_timeline.cpp.o"
  "CMakeFiles/fig07_dram_timeline.dir/fig07_dram_timeline.cpp.o.d"
  "fig07_dram_timeline"
  "fig07_dram_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dram_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
