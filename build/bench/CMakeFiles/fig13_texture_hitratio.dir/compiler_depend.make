# Empty compiler generated dependencies file for fig13_texture_hitratio.
# This may be replaced when dependencies are built.
