file(REMOVE_RECURSE
  "CMakeFiles/fig13_texture_hitratio.dir/fig13_texture_hitratio.cpp.o"
  "CMakeFiles/fig13_texture_hitratio.dir/fig13_texture_hitratio.cpp.o.d"
  "fig13_texture_hitratio"
  "fig13_texture_hitratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_texture_hitratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
