file(REMOVE_RECURSE
  "CMakeFiles/fig08_frame_coherence.dir/fig08_frame_coherence.cpp.o"
  "CMakeFiles/fig08_frame_coherence.dir/fig08_frame_coherence.cpp.o.d"
  "fig08_frame_coherence"
  "fig08_frame_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_frame_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
