# Empty dependencies file for fig08_frame_coherence.
# This may be replaced when dependencies are built.
