file(REMOVE_RECURSE
  "liblibra.a"
)
