
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/libra.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/libra.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/mem_system.cc" "src/CMakeFiles/libra.dir/cache/mem_system.cc.o" "gcc" "src/CMakeFiles/libra.dir/cache/mem_system.cc.o.d"
  "/root/repo/src/common/cli.cc" "src/CMakeFiles/libra.dir/common/cli.cc.o" "gcc" "src/CMakeFiles/libra.dir/common/cli.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/libra.dir/common/log.cc.o" "gcc" "src/CMakeFiles/libra.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/libra.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/libra.dir/common/stats.cc.o.d"
  "/root/repo/src/core/adaptive_controller.cc" "src/CMakeFiles/libra.dir/core/adaptive_controller.cc.o" "gcc" "src/CMakeFiles/libra.dir/core/adaptive_controller.cc.o.d"
  "/root/repo/src/core/temperature_table.cc" "src/CMakeFiles/libra.dir/core/temperature_table.cc.o" "gcc" "src/CMakeFiles/libra.dir/core/temperature_table.cc.o.d"
  "/root/repo/src/core/tile_scheduler.cc" "src/CMakeFiles/libra.dir/core/tile_scheduler.cc.o" "gcc" "src/CMakeFiles/libra.dir/core/tile_scheduler.cc.o.d"
  "/root/repo/src/dram/dram.cc" "src/CMakeFiles/libra.dir/dram/dram.cc.o" "gcc" "src/CMakeFiles/libra.dir/dram/dram.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/libra.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/libra.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/gpu/geometry/geometry_pipeline.cc" "src/CMakeFiles/libra.dir/gpu/geometry/geometry_pipeline.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/geometry/geometry_pipeline.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/libra.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/raster/blend_unit.cc" "src/CMakeFiles/libra.dir/gpu/raster/blend_unit.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/raster/blend_unit.cc.o.d"
  "/root/repo/src/gpu/raster/early_z.cc" "src/CMakeFiles/libra.dir/gpu/raster/early_z.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/raster/early_z.cc.o.d"
  "/root/repo/src/gpu/raster/raster_unit.cc" "src/CMakeFiles/libra.dir/gpu/raster/raster_unit.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/raster/raster_unit.cc.o.d"
  "/root/repo/src/gpu/raster/rasterizer.cc" "src/CMakeFiles/libra.dir/gpu/raster/rasterizer.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/raster/rasterizer.cc.o.d"
  "/root/repo/src/gpu/raster/shader_core.cc" "src/CMakeFiles/libra.dir/gpu/raster/shader_core.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/raster/shader_core.cc.o.d"
  "/root/repo/src/gpu/runner.cc" "src/CMakeFiles/libra.dir/gpu/runner.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/runner.cc.o.d"
  "/root/repo/src/gpu/tiling/polygon_list_builder.cc" "src/CMakeFiles/libra.dir/gpu/tiling/polygon_list_builder.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/tiling/polygon_list_builder.cc.o.d"
  "/root/repo/src/gpu/tiling/tile_fetcher.cc" "src/CMakeFiles/libra.dir/gpu/tiling/tile_fetcher.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/tiling/tile_fetcher.cc.o.d"
  "/root/repo/src/gpu/tiling/tile_grid.cc" "src/CMakeFiles/libra.dir/gpu/tiling/tile_grid.cc.o" "gcc" "src/CMakeFiles/libra.dir/gpu/tiling/tile_grid.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/libra.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/libra.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/trace/frame_trace.cc" "src/CMakeFiles/libra.dir/trace/frame_trace.cc.o" "gcc" "src/CMakeFiles/libra.dir/trace/frame_trace.cc.o.d"
  "/root/repo/src/trace/heatmap.cc" "src/CMakeFiles/libra.dir/trace/heatmap.cc.o" "gcc" "src/CMakeFiles/libra.dir/trace/heatmap.cc.o.d"
  "/root/repo/src/trace/report.cc" "src/CMakeFiles/libra.dir/trace/report.cc.o" "gcc" "src/CMakeFiles/libra.dir/trace/report.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/CMakeFiles/libra.dir/workload/benchmarks.cc.o" "gcc" "src/CMakeFiles/libra.dir/workload/benchmarks.cc.o.d"
  "/root/repo/src/workload/scene.cc" "src/CMakeFiles/libra.dir/workload/scene.cc.o" "gcc" "src/CMakeFiles/libra.dir/workload/scene.cc.o.d"
  "/root/repo/src/workload/texture.cc" "src/CMakeFiles/libra.dir/workload/texture.cc.o" "gcc" "src/CMakeFiles/libra.dir/workload/texture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
