# Empty dependencies file for libra.
# This may be replaced when dependencies are built.
