file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_integration.dir/test_gpu_integration.cc.o"
  "CMakeFiles/test_gpu_integration.dir/test_gpu_integration.cc.o.d"
  "test_gpu_integration"
  "test_gpu_integration.pdb"
  "test_gpu_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
