# Empty dependencies file for test_gpu_integration.
# This may be replaced when dependencies are built.
