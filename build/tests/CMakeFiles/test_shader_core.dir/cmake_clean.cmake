file(REMOVE_RECURSE
  "CMakeFiles/test_shader_core.dir/test_shader_core.cc.o"
  "CMakeFiles/test_shader_core.dir/test_shader_core.cc.o.d"
  "test_shader_core"
  "test_shader_core.pdb"
  "test_shader_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shader_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
