# Empty dependencies file for test_shader_core.
# This may be replaced when dependencies are built.
