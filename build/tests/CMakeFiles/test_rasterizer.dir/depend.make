# Empty dependencies file for test_rasterizer.
# This may be replaced when dependencies are built.
