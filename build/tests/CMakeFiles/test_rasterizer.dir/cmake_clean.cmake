file(REMOVE_RECURSE
  "CMakeFiles/test_rasterizer.dir/test_rasterizer.cc.o"
  "CMakeFiles/test_rasterizer.dir/test_rasterizer.cc.o.d"
  "test_rasterizer"
  "test_rasterizer.pdb"
  "test_rasterizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rasterizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
