# Empty dependencies file for test_temperature.
# This may be replaced when dependencies are built.
