# Empty dependencies file for test_frame_trace.
# This may be replaced when dependencies are built.
