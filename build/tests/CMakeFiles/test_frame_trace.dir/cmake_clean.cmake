file(REMOVE_RECURSE
  "CMakeFiles/test_frame_trace.dir/test_frame_trace.cc.o"
  "CMakeFiles/test_frame_trace.dir/test_frame_trace.cc.o.d"
  "test_frame_trace"
  "test_frame_trace.pdb"
  "test_frame_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
