file(REMOVE_RECURSE
  "CMakeFiles/test_texture.dir/test_texture.cc.o"
  "CMakeFiles/test_texture.dir/test_texture.cc.o.d"
  "test_texture"
  "test_texture.pdb"
  "test_texture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
