# Empty compiler generated dependencies file for test_texture.
# This may be replaced when dependencies are built.
