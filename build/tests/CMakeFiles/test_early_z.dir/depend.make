# Empty dependencies file for test_early_z.
# This may be replaced when dependencies are built.
