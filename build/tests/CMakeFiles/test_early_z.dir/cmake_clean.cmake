file(REMOVE_RECURSE
  "CMakeFiles/test_early_z.dir/test_early_z.cc.o"
  "CMakeFiles/test_early_z.dir/test_early_z.cc.o.d"
  "test_early_z"
  "test_early_z.pdb"
  "test_early_z[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_early_z.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
