file(REMOVE_RECURSE
  "CMakeFiles/test_raster_unit.dir/test_raster_unit.cc.o"
  "CMakeFiles/test_raster_unit.dir/test_raster_unit.cc.o.d"
  "test_raster_unit"
  "test_raster_unit.pdb"
  "test_raster_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raster_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
