# Empty compiler generated dependencies file for test_raster_unit.
# This may be replaced when dependencies are built.
