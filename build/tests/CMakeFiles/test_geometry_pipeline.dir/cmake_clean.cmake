file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_pipeline.dir/test_geometry_pipeline.cc.o"
  "CMakeFiles/test_geometry_pipeline.dir/test_geometry_pipeline.cc.o.d"
  "test_geometry_pipeline"
  "test_geometry_pipeline.pdb"
  "test_geometry_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
