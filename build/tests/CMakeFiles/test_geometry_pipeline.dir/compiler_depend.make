# Empty compiler generated dependencies file for test_geometry_pipeline.
# This may be replaced when dependencies are built.
