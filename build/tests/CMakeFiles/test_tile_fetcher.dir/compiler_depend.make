# Empty compiler generated dependencies file for test_tile_fetcher.
# This may be replaced when dependencies are built.
