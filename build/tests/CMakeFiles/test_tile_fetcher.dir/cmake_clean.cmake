file(REMOVE_RECURSE
  "CMakeFiles/test_tile_fetcher.dir/test_tile_fetcher.cc.o"
  "CMakeFiles/test_tile_fetcher.dir/test_tile_fetcher.cc.o.d"
  "test_tile_fetcher"
  "test_tile_fetcher.pdb"
  "test_tile_fetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_fetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
