# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_morton[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_texture[1]_include.cmake")
include("/root/repo/build/tests/test_rasterizer[1]_include.cmake")
include("/root/repo/build/tests/test_early_z[1]_include.cmake")
include("/root/repo/build/tests/test_tile_grid[1]_include.cmake")
include("/root/repo/build/tests/test_binning[1]_include.cmake")
include("/root/repo/build/tests/test_temperature[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_tile_fetcher[1]_include.cmake")
include("/root/repo/build/tests/test_raster_unit[1]_include.cmake")
include("/root/repo/build/tests/test_shader_core[1]_include.cmake")
include("/root/repo/build/tests/test_scene[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_frame_trace[1]_include.cmake")
include("/root/repo/build/tests/test_geometry_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_classification[1]_include.cmake")
