# Empty dependencies file for game_benchmark.
# This may be replaced when dependencies are built.
