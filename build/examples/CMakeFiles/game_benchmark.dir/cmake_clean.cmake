file(REMOVE_RECURSE
  "CMakeFiles/game_benchmark.dir/game_benchmark.cpp.o"
  "CMakeFiles/game_benchmark.dir/game_benchmark.cpp.o.d"
  "game_benchmark"
  "game_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
