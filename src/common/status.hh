/**
 * @file
 * Recoverable, structured errors for library entry points.
 *
 * libra-sim distinguishes three failure channels (see DESIGN.md,
 * "Error handling conventions"):
 *
 *  - panic():  an internal simulator invariant broke — a libra-sim bug;
 *              aborts.
 *  - fatal():  a CLI-boundary error in a bench/example binary; exits.
 *  - Status /  everything a *caller* may reasonably want to recover
 *    Result<T>: from — unreadable or corrupt trace files, invalid
 *              configurations, a wedged simulation caught by the
 *              watchdog. Library APIs return these instead of killing
 *              the process, so a 32-game x 25-frame sweep survives one
 *              bad input.
 *
 * Status is a code plus a human-readable message; Result<T> is a Status
 * or a value. Both are [[nodiscard]]: dropping an error is itself a bug.
 */

#ifndef LIBRA_COMMON_STATUS_HH
#define LIBRA_COMMON_STATUS_HH

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "common/log.hh"

namespace libra
{

/** Coarse error taxonomy; the message carries the specifics. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,    //!< a parameter/config failed validation
    NotFound,           //!< named entity (benchmark, file) is unknown
    IoError,            //!< the OS failed a read/write/open
    CorruptData,        //!< on-disk bytes failed structural validation
    WatchdogExpired,    //!< simulation exceeded its cycle budget
    NoProgress,         //!< simulation livelocked/deadlocked
    FailedPrecondition, //!< object unusable (e.g. wedged GPU reused)
    InvariantViolation, //!< a model conservation law failed to hold
    DeadlineExceeded,   //!< wall-clock deadline hit / run cancelled
    Unavailable,        //!< transient infrastructure failure; retryable
};

/** Printable name of an ErrorCode (e.g. "corrupt data"). */
const char *errorCodeName(ErrorCode code);

/**
 * Failure classification for retry policies (DESIGN.md, "Failure
 * model"): transient failures are those where an identical retry can
 * plausibly succeed — an injected/infrastructure hiccup (Unavailable)
 * or a wall-clock deadline hit on a loaded host (DeadlineExceeded).
 * Everything else is permanent: the simulator is deterministic, so a
 * corrupt trace, an invalid config, a cycle-budget watchdog trip or a
 * violated conservation law will fail identically every time.
 */
bool isTransientFailure(ErrorCode code);

/** An error code plus message, or success. */
class [[nodiscard]] Status
{
  public:
    /** Default construction is success. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : errCode(code), msg(std::move(message))
    {}

    static Status ok() { return Status(); }

    template <typename... Args>
    static Status
    error(ErrorCode code, Args &&...args)
    {
        return Status(code, detail::format(std::forward<Args>(args)...));
    }

    bool isOk() const { return errCode == ErrorCode::Ok; }
    explicit operator bool() const { return isOk(); }

    ErrorCode code() const { return errCode; }
    const std::string &message() const { return msg; }

    /** "corrupt data: trace.ltrc: bad magic" (or "ok"). */
    std::string toString() const;

  private:
    ErrorCode errCode = ErrorCode::Ok;
    std::string msg;
};

/** A value of type T, or the Status explaining why there is none. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : val(std::move(value)) {}

    /** Implicit from a non-ok Status so `return st;` propagates. */
    Result(Status status) : st(std::move(status))
    {
        libra_assert(!st.isOk(), "Result built from an ok Status");
    }

    bool isOk() const { return val.has_value(); }
    explicit operator bool() const { return isOk(); }

    /** Underlying status: ok() exactly when a value is present. */
    const Status &status() const { return st; }

    T &
    value()
    {
        libra_assert(isOk(), "value() on error Result: ", st.toString());
        return *val;
    }
    const T &
    value() const
    {
        libra_assert(isOk(), "value() on error Result: ", st.toString());
        return *val;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status st;            //!< Ok when val is engaged
    std::optional<T> val;
};

} // namespace libra

#endif // LIBRA_COMMON_STATUS_HH
