/**
 * @file
 * Open-addressed hash map from Addr to a small trivially-copyable value.
 *
 * The simulator's hottest lookups — MSHR matching in every cache level
 * and the texture-L1 replication refcounts — used std::unordered_map,
 * which costs a node allocation per insert and a pointer chase per
 * probe. This map stores entries inline in one power-of-two table with
 * linear probing and backward-shift deletion (no tombstones), so the
 * steady state allocates nothing and probes stay short (load factor is
 * kept at or below 1/2).
 *
 * Iteration order is table order, which depends on hash layout — do not
 * rely on it for anything deterministic-ordered; every in-tree user
 * either treats iteration as a set or sorts afterwards.
 */

#ifndef LIBRA_COMMON_OPEN_ADDR_MAP_HH
#define LIBRA_COMMON_OPEN_ADDR_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace libra
{

template <typename V>
class OpenAddrMap
{
  public:
    struct Entry
    {
        Addr key;
        V value;
        bool used = false;
    };

    /** @p expected_entries sizes the table so the load factor stays at
     *  or below 1/2 without growing (it still grows if exceeded). */
    explicit OpenAddrMap(std::size_t expected_entries = 8)
    {
        std::size_t cap = 8;
        while (cap < expected_entries * 2)
            cap *= 2;
        table.resize(cap);
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Pointer to the value for @p key, or nullptr. Stable only until
     *  the next insert/erase. */
    V *
    find(Addr key)
    {
        const std::size_t mask = table.size() - 1;
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
            Entry &e = table[i];
            if (!e.used)
                return nullptr;
            if (e.key == key)
                return &e.value;
        }
    }

    const V *
    find(Addr key) const
    {
        return const_cast<OpenAddrMap *>(this)->find(key);
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /** Insert or overwrite; returns a reference to the stored value. */
    V &
    insert(Addr key, V value)
    {
        if ((count + 1) * 2 > table.size())
            grow();
        const std::size_t mask = table.size() - 1;
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
            Entry &e = table[i];
            if (!e.used) {
                e.used = true;
                e.key = key;
                e.value = value;
                ++count;
                return e.value;
            }
            if (e.key == key) {
                e.value = value;
                return e.value;
            }
        }
    }

    /** Value for @p key, default-constructing it when absent. */
    V &
    operator[](Addr key)
    {
        if (V *v = find(key))
            return *v;
        return insert(key, V{});
    }

    /** Remove @p key; false when absent. Backward-shift deletion keeps
     *  probe chains tombstone-free. */
    bool
    erase(Addr key)
    {
        const std::size_t mask = table.size() - 1;
        std::size_t i = indexOf(key);
        while (true) {
            if (!table[i].used)
                return false;
            if (table[i].key == key)
                break;
            i = (i + 1) & mask;
        }
        --count;
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask; table[j].used;
             j = (j + 1) & mask) {
            // An entry may fill the hole only if the hole lies within
            // its probe path (circularly between its home slot and j).
            const std::size_t home = indexOf(table[j].key);
            if (((j - home) & mask) >= ((j - hole) & mask)) {
                table[hole] = table[j];
                hole = j;
            }
        }
        table[hole].used = false;
        return true;
    }

    void
    clear()
    {
        for (Entry &e : table)
            e.used = false;
        count = 0;
    }

    /** Call @p fn(key, value) for every entry, in table order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Entry &e : table) {
            if (e.used)
                fn(e.key, e.value);
        }
    }

  private:
    std::size_t
    indexOf(Addr key) const
    {
        // Fibonacci hashing: multiply then keep the high bits that fit
        // the table. Line addresses share low zero bits; the multiply
        // spreads them across the whole word.
        const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h >> 32) & (table.size() - 1);
    }

    void
    grow()
    {
        std::vector<Entry> old = std::move(table);
        table.assign(old.size() * 2, Entry{});
        count = 0;
        for (Entry &e : old) {
            if (e.used)
                insert(e.key, e.value);
        }
    }

    std::vector<Entry> table;
    std::size_t count = 0;
};

} // namespace libra

#endif // LIBRA_COMMON_OPEN_ADDR_MAP_HH
