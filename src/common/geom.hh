/**
 * @file
 * Minimal screen-space geometry types used by the workload generator and
 * the raster pipeline: 2-D/3-D vectors, axis-aligned boxes and triangles.
 *
 * All rasterization in libra-sim happens in screen space; the geometry
 * pipeline is responsible for producing screen-space triangles (the
 * projective transform itself is part of the vertex-shader cost model).
 */

#ifndef LIBRA_COMMON_GEOM_HH
#define LIBRA_COMMON_GEOM_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace libra
{

/** 2-D float vector (screen-space position or texture coordinate). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(float s) const { return {x * s, y * s}; }
    bool operator==(const Vec2 &o) const = default;
};

/** Cross product z-component of two 2-D vectors (signed parallelogram area). */
inline float
cross2(const Vec2 &a, const Vec2 &b)
{
    return a.x * b.y - a.y * b.x;
}

/** 3-D float vector (screen-space position plus depth). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    Vec2 xy() const { return {x, y}; }
    bool operator==(const Vec3 &o) const = default;
};

/** Integer rectangle, inclusive min, exclusive max. */
struct IRect
{
    std::int32_t x0 = 0;
    std::int32_t y0 = 0;
    std::int32_t x1 = 0; //!< exclusive
    std::int32_t y1 = 0; //!< exclusive

    std::int32_t width() const { return x1 - x0; }
    std::int32_t height() const { return y1 - y0; }
    bool empty() const { return x1 <= x0 || y1 <= y0; }

    /** Intersection of two rectangles (may be empty). */
    IRect
    intersect(const IRect &o) const
    {
        return {std::max(x0, o.x0), std::max(y0, o.y0),
                std::min(x1, o.x1), std::min(y1, o.y1)};
    }

    bool
    contains(std::int32_t px, std::int32_t py) const
    {
        return px >= x0 && px < x1 && py >= y0 && py < y1;
    }

    bool operator==(const IRect &o) const = default;
};

/**
 * A screen-space vertex: position (x, y in pixels, z in [0,1] for the
 * depth test) and a texture coordinate in texels of the bound texture.
 */
struct Vertex
{
    Vec3 pos;
    Vec2 uv;
};

/**
 * A screen-space triangle as delivered to the Tiling Engine.
 *
 * Triangles carry the state the raster pipeline needs: the bound texture,
 * the fragment-shader cost (ALU instructions per fragment, a proxy for
 * the user shader program), and whether blending is enabled (translucent
 * geometry disables Early-Z's occlusion write in real hardware; here it
 * selects the blend path).
 */
struct Triangle
{
    Vertex v[3];
    std::uint32_t textureId = 0;
    std::uint16_t shaderAluOps = 8;  //!< ALU instructions per fragment
    std::uint8_t texSamples = 1;     //!< texture samples per fragment
    bool blend = false;              //!< translucent: blend with dst color
    bool useMips = true;             //!< false: always sample mip 0
    std::uint32_t drawId = 0;        //!< draw call this triangle belongs to

    /** Signed doubled area; positive for counter-clockwise winding. */
    float
    signedArea2() const
    {
        const Vec2 a = v[0].pos.xy();
        const Vec2 b = v[1].pos.xy();
        const Vec2 c = v[2].pos.xy();
        return cross2(b - a, c - a);
    }

    /** Pixel-snapped bounding box, clamped to the given viewport. */
    IRect
    boundingBox(const IRect &viewport) const
    {
        const float min_x = std::min({v[0].pos.x, v[1].pos.x, v[2].pos.x});
        const float min_y = std::min({v[0].pos.y, v[1].pos.y, v[2].pos.y});
        const float max_x = std::max({v[0].pos.x, v[1].pos.x, v[2].pos.x});
        const float max_y = std::max({v[0].pos.y, v[1].pos.y, v[2].pos.y});
        IRect box{static_cast<std::int32_t>(std::floor(min_x)),
                  static_cast<std::int32_t>(std::floor(min_y)),
                  static_cast<std::int32_t>(std::ceil(max_x)) + 1,
                  static_cast<std::int32_t>(std::ceil(max_y)) + 1};
        return box.intersect(viewport);
    }
};

} // namespace libra

#endif // LIBRA_COMMON_GEOM_HH
