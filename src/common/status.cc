#include "common/status.hh"

namespace libra
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid argument";
      case ErrorCode::NotFound: return "not found";
      case ErrorCode::IoError: return "I/O error";
      case ErrorCode::CorruptData: return "corrupt data";
      case ErrorCode::WatchdogExpired: return "watchdog expired";
      case ErrorCode::NoProgress: return "no progress";
      case ErrorCode::FailedPrecondition: return "failed precondition";
      case ErrorCode::InvariantViolation: return "invariant violation";
      case ErrorCode::DeadlineExceeded: return "deadline exceeded";
      case ErrorCode::Unavailable: return "unavailable";
    }
    return "unknown";
}

bool
isTransientFailure(ErrorCode code)
{
    return code == ErrorCode::Unavailable
        || code == ErrorCode::DeadlineExceeded;
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    std::string out = errorCodeName(errCode);
    if (!msg.empty()) {
        out += ": ";
        out += msg;
    }
    return out;
}

} // namespace libra
