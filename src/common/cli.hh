/**
 * @file
 * Tiny command-line option parser shared by the benches and examples.
 *
 * Supports "--name value", "--name=value" and boolean "--flag" forms.
 * Unknown options, repeated options and malformed numeric values
 * ("--frames=abc", "--frames=12x") are fatal so typos in sweep scripts
 * do not silently change what an experiment measures.
 */

#ifndef LIBRA_COMMON_CLI_HH
#define LIBRA_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace libra
{

/** Parsed command line: option map plus positional arguments. */
class CliArgs
{
  public:
    /**
     * Parse argv. @p known lists every accepted option name (without the
     * leading dashes); anything else — as well as giving the same option
     * twice — is a fatal error.
     */
    CliArgs(int argc, const char *const *argv,
            const std::vector<std::string> &known);

    bool has(const std::string &name) const;
    std::string get(const std::string &name,
                    const std::string &fallback) const;

    /**
     * Numeric accessors parse the whole value; trailing garbage,
     * overflow or an empty value is fatal ("--frames=abc" must not
     * quietly run 0 frames).
     */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /**
     * Unsigned variant for count/duration options (--deadline-ms,
     * --checkpoint-every, ...): everything getInt rejects plus any
     * negative value. "--backoff-ms=-5" must die here, not wrap to a
     * 584-million-year backoff through a static_cast.
     */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t fallback) const;

    double getDouble(const std::string &name, double fallback) const;
    bool getBool(const std::string &name, bool fallback = false) const;

    /** Comma-separated list value ("a,b,c"). */
    std::vector<std::string> getList(const std::string &name) const;

    const std::vector<std::string> &positional() const { return pos; }

  private:
    std::map<std::string, std::string> opts;
    std::vector<std::string> pos;
};

} // namespace libra

#endif // LIBRA_COMMON_CLI_HH
