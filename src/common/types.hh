/**
 * @file
 * Fundamental scalar types shared by every module of libra-sim.
 *
 * The simulator follows gem5 conventions: a global simulation time in
 * "ticks" (here one tick == one GPU core cycle at 800 MHz, Table I of the
 * paper), 64-bit physical addresses, and explicit integer widths.
 */

#ifndef LIBRA_COMMON_TYPES_HH
#define LIBRA_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace libra
{

/** Simulation time. One tick is one GPU clock cycle. */
using Tick = std::uint64_t;

/** A tick value that is never reached. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Physical byte address in the GPU's memory space. */
using Addr = std::uint64_t;

/** Identifier of a screen tile (index into the frame's tile grid). */
using TileId = std::uint32_t;

/** Identifier of a supertile (group of adjacent tiles, paper §III-C). */
using SuperTileId = std::uint32_t;

/** Invalid sentinel for tile-like identifiers. */
constexpr std::uint32_t invalidId = std::numeric_limits<std::uint32_t>::max();

/**
 * Source of a memory request, used both for statistics attribution and
 * for routing (paper §III-B enumerates the four DRAM traffic sources).
 */
enum class TrafficClass : std::uint8_t
{
    Geometry,        //!< vertex / index fetch during the Geometry Pipeline
    ParameterBuffer, //!< polygon-list writes (binning) and reads (fetch)
    Texture,         //!< texel reads from the Fragment stage
    FrameBuffer,     //!< color-buffer flushes at end of tile
    NumClasses
};

/** Printable name for a TrafficClass. */
const char *trafficClassName(TrafficClass cls);

inline const char *
trafficClassName(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::Geometry: return "geometry";
      case TrafficClass::ParameterBuffer: return "parameter_buffer";
      case TrafficClass::Texture: return "texture";
      case TrafficClass::FrameBuffer: return "frame_buffer";
      default: return "unknown";
    }
}

} // namespace libra

#endif // LIBRA_COMMON_TYPES_HH
