/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The workload generator must be bit-reproducible across runs and
 * platforms (the whole evaluation depends on comparing configurations on
 * identical frames), so we use our own splitmix64/xoshiro256** rather
 * than the implementation-defined std:: distributions.
 */

#ifndef LIBRA_COMMON_RNG_HH
#define LIBRA_COMMON_RNG_HH

#include <cstdint>

namespace libra
{

/** splitmix64 step, used for seeding and hashing. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of two values (for per-entity derived seeds). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitmix64(s);
}

/**
 * xoshiro256** generator. Small, fast, and good enough statistically for
 * workload synthesis.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t sm = seed;
        for (auto &word : s)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Returns 0 when n == 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return n == 0 ? 0 : next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        if (hi <= lo)
            return lo;
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Approximate standard normal via sum of uniforms (Irwin-Hall). */
    double
    gaussian()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += uniform();
        return acc - 6.0;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace libra

#endif // LIBRA_COMMON_RNG_HH
