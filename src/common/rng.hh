/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The workload generator must be bit-reproducible across runs and
 * platforms (the whole evaluation depends on comparing configurations on
 * identical frames), so we use our own splitmix64/xoshiro256** rather
 * than the implementation-defined std:: distributions.
 */

#ifndef LIBRA_COMMON_RNG_HH
#define LIBRA_COMMON_RNG_HH

#include <cstdint>

namespace libra
{

/** splitmix64 step, used for seeding and hashing. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Stateless 64-bit mix of two values: boost-style combine folded
 * through the splitmix64 finalizer.
 *
 * Originally for per-entity derived seeds; since the sim-farm this also
 * feeds every *persistent* identity — GpuConfig::configHash(),
 * snapshotSceneHash() and through them the result-cache and snapshot
 * keys on disk. Two contracts follow:
 *
 *  - **Quality**: for any fixed accumulator a, x -> hashCombine(a, x)
 *    is a bijection, so a chained key hash never collides at the fold
 *    that consumes a differing field, and chains seeded from a fixed
 *    basis stay collision-free over dense small-integer fields; the
 *    splitmix64 finalizer adds full avalanche (~32 of 64 output bits
 *    flip per single-bit input flip). Caveat: combining two *small*
 *    values directly (both args < ~2^8) pigeonholes the pre-finalizer
 *    state into a narrow window and collides heavily — fine for the
 *    cosmetic position hashes in scene.cc, never acceptable for a
 *    persistent key, which must chain from a mixed basis. test_rng
 *    locks all of this down.
 *  - **Stability**: changing this mixer silently invalidates every
 *    snapshot, manifest and cached report on disk. If it must change,
 *    bump kSnapshotCodeVersion and kResultCacheCodeVersion in the same
 *    commit so stale entries are refused instead of mis-keyed.
 */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitmix64(s);
}

/**
 * xoshiro256** generator. Small, fast, and good enough statistically for
 * workload synthesis.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t sm = seed;
        for (auto &word : s)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Returns 0 when n == 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return n == 0 ? 0 : next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        if (hi <= lo)
            return lo;
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Approximate standard normal via sum of uniforms (Irwin-Hall). */
    double
    gaussian()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += uniform();
        return acc - 6.0;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace libra

#endif // LIBRA_COMMON_RNG_HH
