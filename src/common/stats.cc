#include "common/stats.hh"

#include "common/log.hh"

namespace libra
{

void
StatGroup::add(const std::string &stat_name, Counter *counter)
{
    libra_assert(counter != nullptr, "null counter for ", stat_name);
    entries.emplace_back(_name + "." + stat_name, counter);
}

void
StatGroup::addChild(const StatGroup &child)
{
    for (const auto &[name, counter] : child.entries)
        entries.emplace_back(_name + "." + name, counter);
}

std::map<std::string, std::uint64_t>
StatGroup::values() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, counter] : entries)
        out[name] = counter->value();
    return out;
}

namespace
{

/**
 * True when @p needle occurs in @p name aligned to dot-separated
 * component boundaries on both sides. Prevents a "ru1" query from
 * silently absorbing "ru10" counters (see the header).
 */
bool
matchesAtBoundary(const std::string &name, const std::string &needle)
{
    if (needle.empty())
        return true;
    std::size_t pos = name.find(needle);
    while (pos != std::string::npos) {
        const std::size_t end = pos + needle.size();
        const bool left_ok =
            pos == 0 || name[pos - 1] == '.' || needle.front() == '.';
        const bool right_ok = end == name.size() || name[end] == '.'
            || needle.back() == '.';
        if (left_ok && right_ok)
            return true;
        pos = name.find(needle, pos + 1);
    }
    return false;
}

} // namespace

std::uint64_t
StatGroup::sumMatching(const std::string &needle) const
{
    std::uint64_t total = 0;
    for (const auto &[name, counter] : entries) {
        if (matchesAtBoundary(name, needle))
            total += counter->value();
    }
    return total;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : entries)
        counter->reset();
}

Status
StatGroup::restoreValues(const std::map<std::string, std::uint64_t> &values)
{
    if (values.size() != entries.size()) {
        return Status::error(ErrorCode::CorruptData, "stat restore: ",
                             values.size(), " saved counters vs ",
                             entries.size(), " registered");
    }
    for (auto &[name, counter] : entries) {
        const auto it = values.find(name);
        if (it == values.end()) {
            return Status::error(ErrorCode::CorruptData, "stat restore: "
                                 "no saved value for counter ", name);
        }
        counter->set(it->second);
    }
    return Status::ok();
}

std::map<std::string, std::uint64_t>
StatSnapshot::deltaTo(const StatSnapshot &later) const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, value] : later.data) {
        auto it = data.find(name);
        const std::uint64_t before = it == data.end() ? 0 : it->second;
        out[name] = value >= before ? value - before : 0;
    }
    return out;
}

std::uint64_t
StatSnapshot::get(const std::string &full_name) const
{
    auto it = data.find(full_name);
    return it == data.end() ? 0 : it->second;
}

} // namespace libra
