/**
 * @file
 * Lightweight statistics registry.
 *
 * Components declare named Counter members and register them with a
 * StatGroup. The registry supports hierarchical naming
 * ("gpu.ru0.texcache.hits"), full dumps, and snapshot/delta queries used
 * by the per-frame adaptive controller and by the benches.
 */

#ifndef LIBRA_COMMON_STATS_HH
#define LIBRA_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hh"

namespace libra
{

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { _value += n; }
    void set(std::uint64_t v) { _value = v; }
    void reset() { _value = 0; }
    std::uint64_t value() const { return _value; }

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

  private:
    std::uint64_t _value = 0;
};

/**
 * A named collection of counters. Groups can nest by name prefix; the
 * registry stores raw pointers, so counters must outlive the group (they
 * are members of the owning component in practice).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Register a counter under this group's prefix. */
    void add(const std::string &stat_name, Counter *counter);

    /** Register every counter of a child group under our prefix. */
    void addChild(const StatGroup &child);

    /** Flat name → value view of everything registered. */
    std::map<std::string, std::uint64_t> values() const;

    /**
     * Sum of all counters whose full name contains @p needle at a
     * component boundary: the match must start at the beginning of a
     * dot-separated component and end at the end of one, so "ru1"
     * matches "gpu.ru1.tex.hits" but NOT "gpu.ru10.tex.hits". A
     * needle with a leading or trailing dot anchors that side
     * explicitly (".hits" sums every counter whose last component is
     * "hits").
     */
    std::uint64_t sumMatching(const std::string &needle) const;

    /** Reset every registered counter to zero. */
    void resetAll();

    /**
     * Set every registered counter from @p values (snapshot restore).
     * The name sets must match exactly both ways — a counter with no
     * saved value or a saved value with no counter is CorruptData, so
     * a snapshot from a differently-wired machine is refused loudly
     * rather than partially applied.
     */
    Status restoreValues(const std::map<std::string, std::uint64_t> &values);

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::vector<std::pair<std::string, Counter *>> entries;
};

/** Point-in-time copy of a StatGroup, for frame-delta computations. */
class StatSnapshot
{
  public:
    StatSnapshot() = default;
    explicit StatSnapshot(const StatGroup &group) : data(group.values()) {}

    /** Per-stat difference @p later - *this (counters never decrease). */
    std::map<std::string, std::uint64_t>
    deltaTo(const StatSnapshot &later) const;

    std::uint64_t get(const std::string &full_name) const;

  private:
    std::map<std::string, std::uint64_t> data;
};

} // namespace libra

#endif // LIBRA_COMMON_STATS_HH
