#include "common/cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"

namespace libra
{

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            value = argv[++i];
        } else {
            value = "1"; // bare boolean flag
        }
        if (std::find(known.begin(), known.end(), arg) == known.end())
            fatal("unknown option --", arg);
        if (opts.count(arg) != 0)
            fatal("duplicate option --", arg);
        opts[arg] = value;
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return opts.count(name) != 0;
}

std::string
CliArgs::get(const std::string &name, const std::string &fallback) const
{
    auto it = opts.find(name);
    return it == opts.end() ? fallback : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = opts.find(name);
    if (it == opts.end())
        return fallback;
    const std::string &text = it->second;
    errno = 0;
    char *end = nullptr;
    const std::int64_t value = std::strtoll(text.c_str(), &end, 0);
    if (text.empty() || end != text.c_str() + text.size())
        fatal("option --", name, ": expected an integer, got '", text,
              "'");
    if (errno == ERANGE)
        fatal("option --", name, ": value '", text, "' out of range");
    return value;
}

std::uint64_t
CliArgs::getUint(const std::string &name, std::uint64_t fallback) const
{
    auto it = opts.find(name);
    if (it == opts.end())
        return fallback;
    const std::string &text = it->second;
    // strtoull quietly wraps negative input; reject the sign up front.
    if (text.find('-') != std::string::npos) {
        fatal("option --", name, ": expected a non-negative integer, "
              "got '", text, "'");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end != text.c_str() + text.size())
        fatal("option --", name, ": expected an integer, got '", text,
              "'");
    if (errno == ERANGE)
        fatal("option --", name, ": value '", text, "' out of range");
    return value;
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    auto it = opts.find(name);
    if (it == opts.end())
        return fallback;
    const std::string &text = it->second;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        fatal("option --", name, ": expected a number, got '", text,
              "'");
    if (errno == ERANGE)
        fatal("option --", name, ": value '", text, "' out of range");
    return value;
}

bool
CliArgs::getBool(const std::string &name, bool fallback) const
{
    auto it = opts.find(name);
    if (it == opts.end())
        return fallback;
    return it->second != "0" && it->second != "false";
}

std::vector<std::string>
CliArgs::getList(const std::string &name) const
{
    std::vector<std::string> out;
    auto it = opts.find(name);
    if (it == opts.end())
        return out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace libra
