/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic distinction:
 *
 *  - panic():  an internal simulator invariant broke (a libra-sim bug);
 *              aborts so a debugger/core dump can catch it.
 *  - fatal():  the user asked for something impossible (bad config);
 *              exits with an error code.
 *  - warn()/inform(): non-fatal status messages.
 */

#ifndef LIBRA_COMMON_LOG_HH
#define LIBRA_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace libra
{

/** Verbosity levels for inform(). */
enum class LogLevel
{
    Quiet = 0,
    Normal = 1,
    Verbose = 2
};

/** Global verbosity; benches set Quiet to keep table output clean. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg, LogLevel level);

namespace detail
{

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace libra

/** Abort on a simulator bug. Usage: panic("bad state ", x). */
#define panic(...) \
    ::libra::panicImpl(__FILE__, __LINE__, ::libra::detail::format(__VA_ARGS__))

/** Exit on a user/configuration error. */
#define fatal(...) \
    ::libra::fatalImpl(__FILE__, __LINE__, ::libra::detail::format(__VA_ARGS__))

/** Non-fatal warning. */
#define warn(...) ::libra::warnImpl(::libra::detail::format(__VA_ARGS__))

/** Normal-verbosity status message. */
#define inform(...) \
    ::libra::informImpl(::libra::detail::format(__VA_ARGS__), \
                        ::libra::LogLevel::Normal)

/** Verbose status message. */
#define inform_verbose(...) \
    ::libra::informImpl(::libra::detail::format(__VA_ARGS__), \
                        ::libra::LogLevel::Verbose)

/** Checked invariant that stays on in release builds. */
#define libra_assert(cond, ...) \
    do { \
        if (!(cond)) \
            panic("assertion failed: " #cond " ", \
                  ::libra::detail::format(__VA_ARGS__)); \
    } while (0)

#endif // LIBRA_COMMON_LOG_HH
