/**
 * @file
 * Morton (Z-order) curve encoding/decoding.
 *
 * The baseline GPU traverses tiles in Morton order (paper §II-B): it is
 * the cache-friendly traversal that the LIBRA scheduler falls back to, and
 * the traversal used for tiles *inside* a supertile (§III-D).
 */

#ifndef LIBRA_COMMON_MORTON_HH
#define LIBRA_COMMON_MORTON_HH

#include <cstdint>

namespace libra
{

/** Spread the low 16 bits of @p x so bit i lands at position 2*i. */
constexpr std::uint32_t
mortonSpread(std::uint32_t x)
{
    x &= 0x0000ffffu;
    x = (x | (x << 8)) & 0x00ff00ffu;
    x = (x | (x << 4)) & 0x0f0f0f0fu;
    x = (x | (x << 2)) & 0x33333333u;
    x = (x | (x << 1)) & 0x55555555u;
    return x;
}

/** Inverse of mortonSpread: gather every other bit into the low half. */
constexpr std::uint32_t
mortonCompact(std::uint32_t x)
{
    x &= 0x55555555u;
    x = (x | (x >> 1)) & 0x33333333u;
    x = (x | (x >> 2)) & 0x0f0f0f0fu;
    x = (x | (x >> 4)) & 0x00ff00ffu;
    x = (x | (x >> 8)) & 0x0000ffffu;
    return x;
}

/** Interleave (x, y) into a single Morton code (x in even bits). */
constexpr std::uint32_t
mortonEncode(std::uint32_t x, std::uint32_t y)
{
    return mortonSpread(x) | (mortonSpread(y) << 1);
}

/** Extract the x coordinate from a Morton code. */
constexpr std::uint32_t
mortonDecodeX(std::uint32_t code)
{
    return mortonCompact(code);
}

/** Extract the y coordinate from a Morton code. */
constexpr std::uint32_t
mortonDecodeY(std::uint32_t code)
{
    return mortonCompact(code >> 1);
}

} // namespace libra

#endif // LIBRA_COMMON_MORTON_HH
