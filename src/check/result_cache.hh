/**
 * @file
 * Persistent on-disk cache of finished simulation reports (the sim-farm
 * memoization layer, ROADMAP item 2).
 *
 * An entry maps a ResultCacheKey — (config hash, scene hash, code
 * version, frame range) — to the exact `libra.run_report/1` JSON bytes
 * the simulation produced. The simulator is deterministic and reports
 * are byte-identical across runs (the determinism goldens pin this), so
 * an identical request can be served from the cache byte-for-byte
 * instead of re-simulated.
 *
 * Entries reuse the snapshot container (src/check/snapshot.hh): magic,
 * format version, the keyed SnapshotHeader, and one CRC32-framed
 * CachedReport section holding the report string. That buys the same
 * corruption story as snapshots for free: a truncated or bit-flipped
 * entry is a recoverable CorruptData at parse/CRC, a key or code-version
 * mismatch is FailedPrecondition at lookup — both degrade to a cache
 * miss (the farm warns and re-simulates), never to serving wrong bytes.
 *
 * Versioning: kResultCacheCodeVersion must be bumped whenever simulator
 * outputs change meaning — a model change, a report-schema change, or a
 * change to the hash functions feeding the key (GpuConfig::configHash,
 * snapshotSceneHash, hashCombine in common/rng.hh) — so stale entries
 * are refused rather than mis-served.
 *
 * Concurrency: store() goes through a unique temp file + atomic rename,
 * so concurrent writers of the same key race harmlessly (last rename
 * wins, both images are valid and identical) and readers never observe
 * a half-written entry.
 */

#ifndef LIBRA_CHECK_RESULT_CACHE_HH
#define LIBRA_CHECK_RESULT_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace libra
{

/**
 * Serialized-report version of the result cache. Bump whenever a cached
 * report could go stale against the current code: simulator model
 * changes, report schema changes, or key-hash (mixer) changes.
 */
constexpr std::uint32_t kResultCacheCodeVersion = 2;
// v2: configHash() chain gained renderingElimination; reports may
//     carry re.* counters.

/** Identity of one cacheable simulation request. */
struct ResultCacheKey
{
    std::uint64_t configHash = 0; //!< GpuConfig::configHash()
    std::uint64_t sceneHash = 0;  //!< snapshotSceneHash(bench, w, h)
    std::uint32_t codeVersion = kResultCacheCodeVersion;
    std::uint32_t frames = 0;     //!< frames rendered
    std::uint32_t firstFrame = 0; //!< absolute first frame

    /** Canonical text form, e.g.
     *  "cfg:0123456789abcdef:scene:fedcba9876543210:f4@0:v1" — used as
     *  the farm's dedup/journal key and in log attribution. */
    std::string toString() const;

    bool
    operator==(const ResultCacheKey &o) const
    {
        return configHash == o.configHash && sceneHash == o.sceneHash
            && codeVersion == o.codeVersion && frames == o.frames
            && firstFrame == o.firstFrame;
    }
};

/**
 * Directory-backed result cache. One file per entry
 * (`res_<cfg>_<scene>_f<N>@<F>_v<V>.lrc`); no manifest — the key fully
 * determines the file name, so lookup is a single open.
 */
class ResultCache
{
  public:
    /** Bind to @p dir, creating it (IoError if that fails). */
    static Result<ResultCache> open(const std::string &dir);

    ResultCache() = default;

    const std::string &dir() const { return dirPath; }

    /** Entry file name for @p key (relative to the cache dir). */
    static std::string entryFileName(const ResultCacheKey &key);

    /**
     * The cached report for @p key. NotFound on a plain miss;
     * CorruptData for a damaged entry and FailedPrecondition for an
     * entry whose header does not match the key (both are "unusable:
     * warn and re-simulate" to callers, per the snapshot convention).
     */
    Result<std::string> lookup(const ResultCacheKey &key) const;

    /** Persist @p report_json under @p key (temp file + rename). */
    Status store(const ResultCacheKey &key,
                 const std::string &report_json);

    /** Whether a usable entry for @p key exists (lookup().isOk()). */
    bool contains(const ResultCacheKey &key) const;

    /** Entry files currently present (any validity), sorted by name —
     *  deterministic, for tests and eviction. */
    Result<std::vector<std::string>> entries() const;

    /**
     * Evict oldest entries (by file modification time, ties broken by
     * name) until at most @p max_entries remain — trim(0) empties the
     * cache. Returns the number removed. The farm calls this after
     * every store when FarmOptions::cacheMaxEntries is nonzero (its 0
     * means "unbounded", enforced there, not here).
     */
    Result<std::uint64_t> trim(std::uint64_t max_entries);

  private:
    explicit ResultCache(std::string dir) : dirPath(std::move(dir)) {}

    std::string dirPath;
};

/** Serialize/parse one cache entry image (exposed for tests). */
std::vector<std::uint8_t>
buildResultCacheEntry(const ResultCacheKey &key,
                      const std::string &report_json);
Result<std::string>
parseResultCacheEntry(const ResultCacheKey &key,
                      std::vector<std::uint8_t> bytes);

} // namespace libra

#endif // LIBRA_CHECK_RESULT_CACHE_HH
