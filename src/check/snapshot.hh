/**
 * @file
 * Versioned frame-boundary snapshots of complete GPU state.
 *
 * A snapshot captures everything the simulator carries *across* a frame
 * boundary: cache lines and LRU clocks, the replication tracker, DRAM
 * bank state, event-queue clocks (shared and per-shard), the adaptive
 * controller's observation window, per-RU/core issue state, every
 * registered counter, the run-so-far RunResult and the TraceSink's
 * lanes. Frame boundaries are the only legal snapshot points: at the
 * end of Gpu::tryRenderFrame all event queues are drained, every MSHR
 * is free, the DRAM queues and wakeups are quiescent and the RUs assert
 * idle — so the transient machinery (events in flight, stalled
 * requests, shard link buffers) is empty by construction and does not
 * need to be serialized. The InvariantChecker defines what "complete"
 * means here; the restore contract (DESIGN.md §10) is byte-identity: a
 * run restored at frame F produces counter dumps, reports and Chrome
 * traces identical to the uninterrupted run, sequential or sharded.
 *
 * On-disk format `libra.snapshot/1`: magic "LSNP", a format version, a
 * fixed header keying the snapshot on (config hash, warm-prefix hash,
 * scene hash, code version, first frame, frames done), then framed
 * sections `{u32 tag, u64 len, payload, u32 crc32}`. All integers are
 * little-endian; doubles are bit-cast to u64. Loading goes through
 * Status-returning validation like the .ltrc path: bad magic, an
 * unsupported version, a truncated section or a CRC mismatch are
 * recoverable CorruptData errors — callers fall back to a cold run,
 * never crash. Bump kSnapshotCodeVersion whenever serialized simulator
 * state changes meaning, so stale snapshots are refused, not misread.
 */

#ifndef LIBRA_CHECK_SNAPSHOT_HH
#define LIBRA_CHECK_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace libra
{

/** Container layout version; bump on any framing change. */
constexpr std::uint32_t kSnapshotFormatVersion = 1;

/**
 * Serialized-state version; bump whenever the *meaning* of any section
 * payload changes (new field, reordered member, changed invariant), so
 * snapshots written by older code are refused instead of misread.
 */
constexpr std::uint32_t kSnapshotCodeVersion = 2;
// v2: Scheduler section holds policy-object state (only LIBRA's
//     adaptive controller writes anything; stateless policies write
//     nothing) and GpuCore carries the Rendering Elimination input-
//     signature table.

/** Fixed header keying a snapshot to the run that may restore it. */
struct SnapshotHeader
{
    std::uint64_t configHash = 0;     //!< GpuConfig::configHash()
    std::uint64_t warmPrefixHash = 0; //!< GpuConfig::warmPrefixHash()
    std::uint64_t sceneHash = 0;      //!< snapshotSceneHash()
    std::uint32_t codeVersion = kSnapshotCodeVersion;
    std::uint32_t firstFrame = 0;     //!< first frame of the run
    std::uint32_t framesDone = 0;     //!< frames rendered before snap
};

/** Section tags; sections appear in this order, each exactly once. */
enum class SnapSection : std::uint32_t
{
    Result = 1,  //!< RunResult-so-far (JSON payload)
    Trace,       //!< TraceSink lanes + interned names
    Engine,      //!< shared + per-shard EventQueue clocks, shard stats
    Caches,      //!< lines/LRU/ports for l2, vertex, tile, tex-L1s
    Dram,        //!< per-channel bank state, issue sequence
    Replication, //!< ReplicationTracker refcounts
    Scheduler,   //!< AdaptiveController window
    RasterUnits, //!< per-RU/core issue state, phase trackers
    GpuCore,     //!< frames rendered, feedback, geometry counters
    Counters,    //!< full StatGroup value dump

    /** Finished libra.run_report/1 JSON (sim-farm result cache,
     *  src/check/result_cache.hh) — the only section of a cache entry,
     *  never part of a GPU state snapshot. */
    CachedReport,
};

/**
 * Append-only binary builder. Construct with the header, then bracket
 * each section with beginSection()/endSection() (the CRC is computed at
 * end) and emit fields with the put*() family. finish() returns the
 * complete byte image. Misuse (nested/unterminated sections) panics —
 * writers are simulator code, not input validation.
 */
class SnapshotWriter
{
  public:
    explicit SnapshotWriter(const SnapshotHeader &header);

    void beginSection(SnapSection tag);
    void endSection();

    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putDouble(double v);
    void putBool(bool v);
    void putString(const std::string &s);

    /** The finished byte image; the writer is spent afterwards. */
    std::vector<std::uint8_t> finish();

  private:
    std::vector<std::uint8_t> out;
    std::size_t payloadStart = 0; //!< offset of current section payload
    bool inSection = false;
    bool finished = false;
};

/**
 * Validating reader over a snapshot byte image. parse() checks magic,
 * versions, section framing and every CRC up front; all structural
 * failures are CorruptData. Field access is sticky-error: the first
 * failed take*()/check() records a Status and every later call becomes
 * a no-op returning zero values, so loaders read straight through and
 * test status() once (the .ltrc loader convention).
 */
class SnapshotReader
{
  public:
    /** Validate framing + CRCs of @p bytes; CorruptData on failure. */
    static Result<SnapshotReader> parse(std::vector<std::uint8_t> bytes);

    const SnapshotHeader &header() const { return head; }

    /** Enter the next section, which must carry @p tag (sticky). */
    void openSection(SnapSection tag);
    /** Leave the section; unconsumed payload bytes are an error. */
    void closeSection();

    std::uint8_t takeU8();
    std::uint32_t takeU32();
    std::uint64_t takeU64();
    double takeDouble();
    bool takeBool();
    std::string takeString();

    /** Record @p what as CorruptData unless @p cond holds. @return cond
     *  (false also when a prior error is already sticking). */
    bool check(bool cond, const char *what);
    /** Unconditionally record @p what as CorruptData. */
    void fail(const char *what);

    bool ok() const { return err.isOk(); }
    Status status() const { return err; }

    /** Final check: no sticky error and every section consumed. */
    Status finish() const;

  private:
    struct SectionRef
    {
        SnapSection tag;
        std::size_t begin; //!< payload offset into data
        std::size_t end;
    };

    bool has(std::size_t n);

    std::vector<std::uint8_t> data;
    SnapshotHeader head;
    std::vector<SectionRef> sections;
    std::size_t sectionIdx = 0; //!< next section to open
    std::size_t pos = 0;        //!< read cursor inside the open section
    std::size_t sectionEnd = 0;
    bool inSection = false;
    Status err;
};

/** Deterministic identity of a scene: benchmark abbrev + resolution
 *  (scene synthesis is a pure function of these). */
std::uint64_t snapshotSceneHash(const std::string &abbrev,
                                std::uint32_t width,
                                std::uint32_t height);

/** Canonical checkpoint file name inside a --checkpoint-dir. */
std::string snapshotFileName(std::uint64_t config_hash,
                             std::uint64_t scene_hash,
                             std::uint32_t frames_done);

/** Write/read a snapshot byte image; IoError on OS failure. */
Status writeSnapshotFile(const std::string &path,
                         const std::vector<std::uint8_t> &bytes);
Result<std::vector<std::uint8_t>>
readSnapshotFile(const std::string &path);

/** One row of a checkpoint directory's JSON manifest. */
struct SnapshotManifestEntry
{
    std::uint64_t configHash = 0;
    std::uint64_t sceneHash = 0;
    std::uint32_t codeVersion = 0;
    std::uint32_t firstFrame = 0;
    std::uint32_t framesDone = 0;
    std::string file; //!< file name relative to the checkpoint dir
};

/**
 * Load @p dir's manifest.json. A missing manifest is an empty list (a
 * fresh checkpoint dir); an unreadable or unparseable one is an error.
 */
Result<std::vector<SnapshotManifestEntry>>
loadSnapshotManifest(const std::string &dir);

/**
 * Append/replace @p entry in @p dir's manifest.json. Guarded by a
 * process-local mutex so concurrent sweep workers don't tear the
 * read-modify-write; cross-process writers need distinct dirs.
 */
Status recordSnapshotInManifest(const std::string &dir,
                                const SnapshotManifestEntry &entry);

/**
 * Best restore candidate: the entry matching (config hash, scene hash,
 * code version, first frame) with the largest framesDone <= @p
 * max_frames. nullptr when nothing usable exists.
 */
const SnapshotManifestEntry *
findSnapshotEntry(const std::vector<SnapshotManifestEntry> &entries,
                  std::uint64_t config_hash, std::uint64_t scene_hash,
                  std::uint32_t first_frame, std::uint32_t max_frames);

} // namespace libra

#endif // LIBRA_CHECK_SNAPSHOT_HH
