/**
 * @file
 * Model-consistency checking: per-frame conservation laws.
 *
 * The simulator's headline numbers are all derived from component
 * counters, so a single missed increment quietly poisons every figure
 * (and, through the temperature feedback, the scheduler itself). The
 * InvariantChecker turns such accounting bugs into structural failures
 * by validating laws that must hold by construction:
 *
 *  - cache conservation: every non-retried access is counted exactly
 *    once as hit, miss or coalesced miss, so
 *    hits + misses + mshr_coalesced == read_accesses + write_accesses;
 *  - DRAM attribution: the per-tile DRAM feedback vector sums to the
 *    frame's attributed DRAM traffic;
 *  - tile coverage: each tile is either flushed by a Raster Unit or
 *    skipped by Rendering Elimination exactly once per frame (never
 *    both, never neither), and the scheduler drains completely;
 *  - phase partition: each RU's six phase counters sum exactly to the
 *    frame's cycles;
 *  - energy: the breakdown components sum to EnergyBreakdown::totalMj.
 *
 * Violations are collected, never thrown: status() reports them as a
 * recoverable InvariantViolation Status (PR-1 error layer), so release
 * runs are never aborted — Gpu only runs the checker behind
 * GpuConfig::checkInvariants.
 */

#ifndef LIBRA_CHECK_INVARIANT_CHECKER_HH
#define LIBRA_CHECK_INVARIANT_CHECKER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/status.hh"
#include "energy/energy_model.hh"
#include "gpu/raster/raster_unit.hh"

namespace libra
{

class Cache;

class InvariantChecker
{
  public:
    /** Record one violation (message built from the arguments). */
    template <typename... Args>
    void
    violation(Args &&...args)
    {
        violationList.push_back(
            detail::format(std::forward<Args>(args)...));
    }

    bool ok() const { return violationList.empty(); }
    const std::vector<std::string> &violations() const
    {
        return violationList;
    }

    /** Drop every recorded violation (start of a checking window). */
    void clear() { violationList.clear(); }

    /** Ok, or an InvariantViolation joining every recorded message. */
    Status status() const;

    // --- The conservation laws -----------------------------------------

    /** hits + misses + mshr_coalesced == read + write accesses, over
     *  the cache's whole lifetime (the law holds at every instant:
     *  both sides are bumped synchronously at access time). */
    void checkCacheConservation(const Cache &cache);

    /** sum(tile_dram) == the frame's tile-attributed DRAM accesses. */
    void checkDramAttribution(const std::vector<std::uint64_t> &tile_dram,
                              std::uint64_t attributed);

    /**
     * Every tile covered exactly once this frame: rendered+flushed or
     * skipped by Rendering Elimination, never both and never neither.
     * @p skip_count may be empty (no RE accounting: all-rendered).
     */
    void checkTileCoverage(
        const std::vector<std::uint32_t> &flush_count,
        const std::vector<std::uint32_t> &skip_count = {});

    /** The scheduler handed out its whole queue. */
    void checkSchedulerDrained(std::uint64_t tiles_remaining);

    /** RU @p ru's six per-frame phase deltas partition the frame. */
    void checkPhasePartition(
        std::size_t ru,
        const std::array<std::uint64_t, kNumRuPhases> &phases,
        std::uint64_t frame_cycles);

    /** coreMj + cacheMj + dramMj + fixedFunctionMj + staticMj
     *  == totalMj (to floating-point tolerance). */
    void checkEnergyBreakdown(const EnergyBreakdown &energy);

  private:
    std::vector<std::string> violationList;
};

} // namespace libra

#endif // LIBRA_CHECK_INVARIANT_CHECKER_HH
