/**
 * @file
 * Build-time switch for the fault-injection hooks (src/check/
 * fault_injector). Mirrors the LIBRA_TRACING pattern: the CMake option
 * LIBRA_FAULTS (default ON) leaves the macro at 1 so the hooks compile
 * in, runtime-gated by a null/zero check; configuring with
 * -DLIBRA_FAULTS=OFF defines LIBRA_FAULTS_ENABLED=0 and every hook
 * compiles to nothing.
 *
 * This header is include-anywhere: low-level model code (cache, DRAM)
 * includes it without pulling in the injector itself.
 */

#ifndef LIBRA_CHECK_FAULTS_BUILD_HH
#define LIBRA_CHECK_FAULTS_BUILD_HH

#ifndef LIBRA_FAULTS_ENABLED
#define LIBRA_FAULTS_ENABLED 1
#endif

namespace libra
{

/** True when the fault-injection hooks are compiled in. */
constexpr bool
faultsCompiledIn()
{
    return LIBRA_FAULTS_ENABLED != 0;
}

} // namespace libra

#endif // LIBRA_CHECK_FAULTS_BUILD_HH
