#include "check/snapshot.hh"

#include <array>
#include <bit>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/log.hh"
#include "common/rng.hh"
#include "trace/json.hh"

namespace libra
{

namespace
{

constexpr char kMagic[4] = {'L', 'S', 'N', 'P'};
constexpr const char *kManifestSchema = "libra.snapshot_manifest/1";
constexpr const char *kManifestFile = "manifest.json";

/** CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), lazy table. */
std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

void
appendU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
readU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

Result<std::uint64_t>
hexU64(const std::string &text, const char *what)
{
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(
        text.data(), text.data() + text.size(), value, 16);
    if (ec != std::errc() || ptr != text.data() + text.size()
        || text.empty()) {
        return Status::error(ErrorCode::CorruptData, "manifest: bad hex ",
                             what, ": '", text, "'");
    }
    return value;
}

/** Exact u64 from a JSON number via its preserved raw literal. */
Result<std::uint64_t>
asU64(const JsonValue *v, const char *what)
{
    if (!v || !v->isNumber()) {
        return Status::error(ErrorCode::CorruptData,
                             "manifest: missing ", what);
    }
    if (v->str.find_first_of(".eE+-") != std::string::npos) {
        return Status::error(ErrorCode::CorruptData, "manifest: ", what,
                             " is not a non-negative integer: '", v->str,
                             "'");
    }
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(
        v->str.data(), v->str.data() + v->str.size(), value);
    if (ec != std::errc() || ptr != v->str.data() + v->str.size()) {
        return Status::error(ErrorCode::CorruptData, "manifest: bad ",
                             what, ": '", v->str, "'");
    }
    return value;
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/" + kManifestFile;
}

/** Serializes every manifest read-modify-write in this process. */
std::mutex &
manifestMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

SnapshotWriter::SnapshotWriter(const SnapshotHeader &header)
{
    out.reserve(64);
    for (const char c : kMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    appendU32(out, kSnapshotFormatVersion);
    appendU64(out, header.configHash);
    appendU64(out, header.warmPrefixHash);
    appendU64(out, header.sceneHash);
    appendU32(out, header.codeVersion);
    appendU32(out, header.firstFrame);
    appendU32(out, header.framesDone);
}

void
SnapshotWriter::beginSection(SnapSection tag)
{
    libra_assert(!finished, "snapshot writer reused after finish()");
    libra_assert(!inSection, "nested snapshot section");
    appendU32(out, static_cast<std::uint32_t>(tag));
    appendU64(out, 0); // length backpatched by endSection()
    payloadStart = out.size();
    inSection = true;
}

void
SnapshotWriter::endSection()
{
    libra_assert(inSection, "endSection() outside a section");
    const std::uint64_t len = out.size() - payloadStart;
    for (int i = 0; i < 8; ++i) {
        out[payloadStart - 8 + i] =
            static_cast<std::uint8_t>(len >> (8 * i));
    }
    appendU32(out, crc32(out.data() + payloadStart,
                         static_cast<std::size_t>(len)));
    inSection = false;
}

void
SnapshotWriter::putU8(std::uint8_t v)
{
    libra_assert(inSection, "snapshot put outside a section");
    out.push_back(v);
}

void
SnapshotWriter::putU32(std::uint32_t v)
{
    libra_assert(inSection, "snapshot put outside a section");
    appendU32(out, v);
}

void
SnapshotWriter::putU64(std::uint64_t v)
{
    libra_assert(inSection, "snapshot put outside a section");
    appendU64(out, v);
}

void
SnapshotWriter::putDouble(double v)
{
    putU64(std::bit_cast<std::uint64_t>(v));
}

void
SnapshotWriter::putBool(bool v)
{
    putU8(v ? 1 : 0);
}

void
SnapshotWriter::putString(const std::string &s)
{
    putU64(s.size());
    libra_assert(inSection, "snapshot put outside a section");
    out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t>
SnapshotWriter::finish()
{
    libra_assert(!inSection, "finish() with an open section");
    finished = true;
    return std::move(out);
}

Result<SnapshotReader>
SnapshotReader::parse(std::vector<std::uint8_t> bytes)
{
    constexpr std::size_t kHeaderSize = 4 + 4 + 8 * 3 + 4 * 3;
    if (bytes.size() < kHeaderSize) {
        return Status::error(ErrorCode::CorruptData, "snapshot: ",
                             bytes.size(), " bytes is too short for a "
                             "header");
    }
    if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
        return Status::error(ErrorCode::CorruptData,
                             "snapshot: bad magic");
    }
    const std::uint32_t version = readU32(bytes.data() + 4);
    if (version != kSnapshotFormatVersion) {
        return Status::error(ErrorCode::CorruptData,
                             "snapshot: unsupported format version ",
                             version, " (this build reads ",
                             kSnapshotFormatVersion, ")");
    }

    SnapshotReader r;
    r.head.configHash = readU64(bytes.data() + 8);
    r.head.warmPrefixHash = readU64(bytes.data() + 16);
    r.head.sceneHash = readU64(bytes.data() + 24);
    r.head.codeVersion = readU32(bytes.data() + 32);
    r.head.firstFrame = readU32(bytes.data() + 36);
    r.head.framesDone = readU32(bytes.data() + 40);

    std::size_t at = kHeaderSize;
    while (at < bytes.size()) {
        if (bytes.size() - at < 12) {
            return Status::error(ErrorCode::CorruptData,
                                 "snapshot: truncated section frame at "
                                 "offset ", at);
        }
        const std::uint32_t tag = readU32(bytes.data() + at);
        const std::uint64_t len = readU64(bytes.data() + at + 4);
        at += 12;
        if (len > bytes.size() - at
            || bytes.size() - at - static_cast<std::size_t>(len) < 4) {
            return Status::error(ErrorCode::CorruptData,
                                 "snapshot: section ", tag,
                                 " overruns the file (len ", len, ")");
        }
        const auto payload_len = static_cast<std::size_t>(len);
        const std::uint32_t want =
            readU32(bytes.data() + at + payload_len);
        const std::uint32_t got = crc32(bytes.data() + at, payload_len);
        if (want != got) {
            return Status::error(ErrorCode::CorruptData,
                                 "snapshot: section ", tag,
                                 " CRC mismatch");
        }
        r.sections.push_back({static_cast<SnapSection>(tag), at,
                              at + payload_len});
        at += payload_len + 4;
    }
    r.data = std::move(bytes);
    return r;
}

void
SnapshotReader::openSection(SnapSection tag)
{
    if (!err.isOk())
        return;
    if (inSection) {
        fail("section opened inside a section");
        return;
    }
    if (sectionIdx >= sections.size()) {
        fail("section missing (file ends early)");
        return;
    }
    const SectionRef &s = sections[sectionIdx];
    if (s.tag != tag) {
        err = Status::error(ErrorCode::CorruptData,
                            "snapshot: expected section ",
                            static_cast<std::uint32_t>(tag), ", found ",
                            static_cast<std::uint32_t>(s.tag));
        return;
    }
    pos = s.begin;
    sectionEnd = s.end;
    inSection = true;
}

void
SnapshotReader::closeSection()
{
    if (!err.isOk())
        return;
    if (!inSection) {
        fail("closeSection() outside a section");
        return;
    }
    if (pos != sectionEnd) {
        err = Status::error(ErrorCode::CorruptData,
                            "snapshot: section ",
                            static_cast<std::uint32_t>(
                                sections[sectionIdx].tag),
                            " has ", sectionEnd - pos,
                            " unconsumed bytes");
        return;
    }
    inSection = false;
    ++sectionIdx;
}

bool
SnapshotReader::has(std::size_t n)
{
    if (!err.isOk())
        return false;
    if (!inSection || sectionEnd - pos < n) {
        fail("field read past section end");
        return false;
    }
    return true;
}

std::uint8_t
SnapshotReader::takeU8()
{
    if (!has(1))
        return 0;
    return data[pos++];
}

std::uint32_t
SnapshotReader::takeU32()
{
    if (!has(4))
        return 0;
    const std::uint32_t v = readU32(data.data() + pos);
    pos += 4;
    return v;
}

std::uint64_t
SnapshotReader::takeU64()
{
    if (!has(8))
        return 0;
    const std::uint64_t v = readU64(data.data() + pos);
    pos += 8;
    return v;
}

double
SnapshotReader::takeDouble()
{
    return std::bit_cast<double>(takeU64());
}

bool
SnapshotReader::takeBool()
{
    const std::uint8_t v = takeU8();
    check(v <= 1, "bool field out of range");
    return v == 1;
}

std::string
SnapshotReader::takeString()
{
    const std::uint64_t len = takeU64();
    if (!check(len <= sectionEnd - pos, "string overruns its section"))
        return {};
    if (!has(static_cast<std::size_t>(len)))
        return {};
    std::string s(reinterpret_cast<const char *>(data.data() + pos),
                  static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return s;
}

bool
SnapshotReader::check(bool cond, const char *what)
{
    if (!err.isOk())
        return false;
    if (!cond)
        fail(what);
    return cond;
}

void
SnapshotReader::fail(const char *what)
{
    if (err.isOk())
        err = Status::error(ErrorCode::CorruptData, "snapshot: ", what);
}

Status
SnapshotReader::finish() const
{
    if (!err.isOk())
        return err;
    if (inSection) {
        return Status::error(ErrorCode::CorruptData,
                             "snapshot: load ended inside a section");
    }
    if (sectionIdx != sections.size()) {
        return Status::error(ErrorCode::CorruptData, "snapshot: ",
                             sections.size() - sectionIdx,
                             " trailing unread section(s)");
    }
    return Status::ok();
}

std::uint64_t
snapshotSceneHash(const std::string &abbrev, std::uint32_t width,
                  std::uint32_t height)
{
    std::uint64_t h = 0x5ce'e4a5ull; // arbitrary fixed basis
    for (const char c : abbrev)
        h = hashCombine(h, static_cast<std::uint64_t>(
                               static_cast<unsigned char>(c)));
    h = hashCombine(h, width);
    h = hashCombine(h, height);
    return h;
}

std::string
snapshotFileName(std::uint64_t config_hash, std::uint64_t scene_hash,
                 std::uint32_t frames_done)
{
    return "ckpt_" + hex16(config_hash) + "_" + hex16(scene_hash) + "_f"
           + std::to_string(frames_done) + ".lsnp";
}

Status
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        return Status::error(ErrorCode::IoError, "snapshot: cannot open ",
                             path, " for writing: ",
                             std::strerror(errno));
    }
    const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool write_ok = n == bytes.size();
    const bool close_ok = std::fclose(f) == 0;
    if (!write_ok || !close_ok) {
        return Status::error(ErrorCode::IoError,
                             "snapshot: short write to ", path);
    }
    return Status::ok();
}

Result<std::vector<std::uint8_t>>
readSnapshotFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        return Status::error(ErrorCode::IoError, "snapshot: cannot open ",
                             path, ": ", std::strerror(errno));
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        return Status::error(ErrorCode::IoError, "snapshot: read of ",
                             path, " failed");
    }
    return bytes;
}

Result<std::vector<SnapshotManifestEntry>>
loadSnapshotManifest(const std::string &dir)
{
    std::vector<SnapshotManifestEntry> entries;
    const std::string path = manifestPath(dir);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return entries; // fresh checkpoint dir: no manifest yet
    std::string text;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        return Status::error(ErrorCode::IoError, "manifest: read of ",
                             path, " failed");
    }

    Result<JsonValue> doc = parseJson(text);
    if (!doc.isOk())
        return doc.status();
    const JsonValue *schema = doc->find("schema");
    if (!schema || !schema->isString()
        || schema->str != kManifestSchema) {
        return Status::error(ErrorCode::CorruptData, "manifest ", path,
                             ": wrong schema (expected ",
                             kManifestSchema, ")");
    }
    const JsonValue *snaps = doc->find("snapshots");
    if (!snaps || !snaps->isArray()) {
        return Status::error(ErrorCode::CorruptData, "manifest ", path,
                             ": missing snapshots array");
    }
    for (const JsonValue &row : snaps->items) {
        if (!row.isObject()) {
            return Status::error(ErrorCode::CorruptData, "manifest ",
                                 path, ": snapshot row is not an "
                                 "object");
        }
        SnapshotManifestEntry e;
        const JsonValue *cfg = row.find("config_hash");
        const JsonValue *scene = row.find("scene_hash");
        const JsonValue *file = row.find("file");
        if (!cfg || !cfg->isString() || !scene || !scene->isString()
            || !file || !file->isString()) {
            return Status::error(ErrorCode::CorruptData, "manifest ",
                                 path, ": row lacks hashes/file");
        }
        Result<std::uint64_t> ch = hexU64(cfg->str, "config_hash");
        if (!ch.isOk())
            return ch.status();
        e.configHash = *ch;
        Result<std::uint64_t> sh = hexU64(scene->str, "scene_hash");
        if (!sh.isOk())
            return sh.status();
        e.sceneHash = *sh;
        e.file = file->str;

        Result<std::uint64_t> cv =
            asU64(row.find("code_version"), "code_version");
        if (!cv.isOk())
            return cv.status();
        e.codeVersion = static_cast<std::uint32_t>(*cv);
        Result<std::uint64_t> ff =
            asU64(row.find("first_frame"), "first_frame");
        if (!ff.isOk())
            return ff.status();
        e.firstFrame = static_cast<std::uint32_t>(*ff);
        Result<std::uint64_t> fd =
            asU64(row.find("frames_done"), "frames_done");
        if (!fd.isOk())
            return fd.status();
        e.framesDone = static_cast<std::uint32_t>(*fd);
        entries.push_back(std::move(e));
    }
    return entries;
}

Status
recordSnapshotInManifest(const std::string &dir,
                         const SnapshotManifestEntry &entry)
{
    std::lock_guard<std::mutex> lock(manifestMutex());
    std::vector<SnapshotManifestEntry> entries;
    Result<std::vector<SnapshotManifestEntry>> loaded =
        loadSnapshotManifest(dir);
    if (loaded.isOk()) {
        entries = std::move(*loaded);
    } else {
        warn("checkpoint manifest in ", dir, " unreadable (",
             loaded.status().toString(), "); rewriting it");
    }

    bool replaced = false;
    for (SnapshotManifestEntry &e : entries) {
        if (e.configHash == entry.configHash
            && e.sceneHash == entry.sceneHash
            && e.firstFrame == entry.firstFrame
            && e.framesDone == entry.framesDone) {
            e = entry;
            replaced = true;
            break;
        }
    }
    if (!replaced)
        entries.push_back(entry);

    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value(kManifestSchema);
    w.key("snapshots");
    w.beginArray();
    for (const SnapshotManifestEntry &e : entries) {
        w.beginObject();
        w.key("config_hash");
        w.value(hex16(e.configHash));
        w.key("scene_hash");
        w.value(hex16(e.sceneHash));
        w.key("code_version");
        w.value(std::uint64_t(e.codeVersion));
        w.key("first_frame");
        w.value(std::uint64_t(e.firstFrame));
        w.key("frames_done");
        w.value(std::uint64_t(e.framesDone));
        w.key("file");
        w.value(e.file);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return writeTextFile(manifestPath(dir), w.str());
}

const SnapshotManifestEntry *
findSnapshotEntry(const std::vector<SnapshotManifestEntry> &entries,
                  std::uint64_t config_hash, std::uint64_t scene_hash,
                  std::uint32_t first_frame, std::uint32_t max_frames)
{
    const SnapshotManifestEntry *best = nullptr;
    for (const SnapshotManifestEntry &e : entries) {
        if (e.configHash != config_hash || e.sceneHash != scene_hash
            || e.codeVersion != kSnapshotCodeVersion
            || e.firstFrame != first_frame || e.framesDone > max_frames)
            continue;
        // Total order: freshest first (most frames done), ties broken
        // by file path ascending. Manifest enumeration order is append
        // order — a manifest rewritten after concurrent sweeps can list
        // equal-framesDone entries either way round, and resume must
        // pick the same snapshot every time.
        if (!best || e.framesDone > best->framesDone
            || (e.framesDone == best->framesDone && e.file < best->file))
            best = &e;
    }
    return best;
}

} // namespace libra
