#include "check/invariant_checker.hh"

#include <cmath>

#include "cache/cache.hh"

namespace libra
{

Status
InvariantChecker::status() const
{
    if (ok())
        return Status::ok();
    std::string joined;
    for (const std::string &v : violationList) {
        if (!joined.empty())
            joined += "; ";
        joined += v;
    }
    return Status::error(ErrorCode::InvariantViolation,
                         violationList.size(), " violation(s): ", joined);
}

void
InvariantChecker::checkCacheConservation(const Cache &cache)
{
    const std::uint64_t outcomes = cache.hits.value()
        + cache.misses.value() + cache.mshrCoalesced.value();
    const std::uint64_t accesses =
        cache.readAccesses.value() + cache.writeAccesses.value();
    if (outcomes != accesses) {
        violation(cache.cfg().name, ": hits ", cache.hits.value(),
                  " + misses ", cache.misses.value(), " + coalesced ",
                  cache.mshrCoalesced.value(), " = ", outcomes,
                  " != accesses ", accesses, " (reads ",
                  cache.readAccesses.value(), " + writes ",
                  cache.writeAccesses.value(), ")");
    }
}

void
InvariantChecker::checkDramAttribution(
    const std::vector<std::uint64_t> &tile_dram, std::uint64_t attributed)
{
    std::uint64_t sum = 0;
    for (const std::uint64_t v : tile_dram)
        sum += v;
    if (sum != attributed) {
        violation("per-tile DRAM feedback sums to ", sum,
                  " but the frame attributed ", attributed,
                  " DRAM accesses to tiles");
    }
}

void
InvariantChecker::checkTileCoverage(
    const std::vector<std::uint32_t> &flush_count,
    const std::vector<std::uint32_t> &skip_count)
{
    if (!skip_count.empty() && skip_count.size() != flush_count.size()) {
        violation("skip-count vector has ", skip_count.size(),
                  " tiles but the flush-count vector has ",
                  flush_count.size());
        return;
    }
    for (std::size_t t = 0; t < flush_count.size(); ++t) {
        const std::uint32_t skipped =
            skip_count.empty() ? 0 : skip_count[t];
        if (flush_count[t] + skipped != 1) {
            violation("tile ", t, " flushed ", flush_count[t],
                      " times and skipped ", skipped,
                      " times this frame (must be covered exactly "
                      "once)");
        }
    }
}

void
InvariantChecker::checkSchedulerDrained(std::uint64_t tiles_remaining)
{
    if (tiles_remaining != 0) {
        violation("scheduler still holds ", tiles_remaining,
                  " tiles at frame end");
    }
}

void
InvariantChecker::checkPhasePartition(
    std::size_t ru, const std::array<std::uint64_t, kNumRuPhases> &phases,
    std::uint64_t frame_cycles)
{
    std::uint64_t sum = 0;
    for (const std::uint64_t p : phases)
        sum += p;
    if (sum != frame_cycles) {
        violation("ru", ru, " phase counters sum to ", sum,
                  " but the frame took ", frame_cycles, " cycles");
    }
}

void
InvariantChecker::checkEnergyBreakdown(const EnergyBreakdown &energy)
{
    const double sum = energy.coreMj + energy.cacheMj + energy.dramMj
        + energy.fixedFunctionMj + energy.staticMj;
    // Relative tolerance: the components are accumulated in a different
    // order than the total, so allow a few ulps of drift.
    const double tol = 1e-9 * std::max(1.0, std::fabs(energy.totalMj));
    if (std::fabs(sum - energy.totalMj) > tol) {
        violation("energy components sum to ", sum, " mJ but totalMj is ",
                  energy.totalMj);
    }
}

} // namespace libra
