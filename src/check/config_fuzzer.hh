/**
 * @file
 * Seeded GPU-configuration fuzzer.
 *
 * Generates randomized — but always validate()-clean — GpuConfigs
 * covering the dimensions the model is most sensitive to: Raster-Unit /
 * core organization, cache geometry (line size, ways, sets), MSHR and
 * port counts, supertile bounds and every scheduling policy. Each
 * config has checkInvariants enabled, so sweeping fuzzed configs
 * through runBenchmark (typically via the SweepRunner) exercises the
 * conservation laws of src/check across the configuration space instead
 * of only at the paper's Table-I point.
 *
 * Determinism: the same Rng seed always yields the same config
 * sequence, so a CI failure reproduces locally from the seed alone.
 */

#ifndef LIBRA_CHECK_CONFIG_FUZZER_HH
#define LIBRA_CHECK_CONFIG_FUZZER_HH

#include <cstdint>

#include "common/rng.hh"
#include "gpu/gpu_config.hh"

namespace libra
{

/**
 * One random valid configuration at @p width x @p height. Consumes a
 * bounded number of Rng draws; panics (simulator bug) if the generated
 * config ever fails GpuConfig::validate().
 */
GpuConfig fuzzGpuConfig(Rng &rng, std::uint32_t width,
                        std::uint32_t height);

} // namespace libra

#endif // LIBRA_CHECK_CONFIG_FUZZER_HH
