/**
 * @file
 * Deterministic, seeded fault injection for robustness testing.
 *
 * A FaultPlan is a declarative list of faults to inject into a sweep —
 * watchdog trips at chosen frames, dropped cache fills (generalizing
 * Cache::testDropHitAccounting), DRAM request stalls, transient
 * job-level Status failures, trace-file corruption, and simulated
 * process kills in the journal path. Plans parse from / print to a
 * compact one-line spec so CI jobs and the chaos-soak test can name a
 * fault scenario by string + seed and reproduce it exactly:
 *
 *   seed=42;watchdog@frame=1;dropfill:l2@every=64;
 *   dramstall@every=128,ticks=500;transient@job=3,count=2;kill@append=5
 *
 * A FaultInjector is the armed, per-job/per-attempt view of a plan:
 * SweepRunner builds a fresh one for every job attempt (so a retried
 * attempt sees exactly the faults the first attempt saw) and hands it
 * to the Gpu via GpuConfig::faults. All injection decisions are pure
 * functions of (plan, job index, query arguments) — no wall clock, no
 * global state — which is what lets the chaos soak assert that
 * completed-job results are byte-identical to a fault-free run.
 *
 * Build-time gating: see faults_build.hh (LIBRA_FAULTS_ENABLED). With
 * the hooks compiled in but no plan armed, every hook is a null/zero
 * check; diff_check verifies counter dumps stay byte-identical.
 */

#ifndef LIBRA_CHECK_FAULT_INJECTOR_HH
#define LIBRA_CHECK_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "check/faults_build.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace libra
{

/** One fault to inject; which fields are meaningful depends on kind. */
enum class FaultKind
{
    WatchdogTrip,  //!< abort a frame as if the watchdog expired
    DropCacheFill, //!< discard every Nth returning fill in a cache
    DramStall,     //!< add latency to every Nth DRAM command
    TransientFail, //!< fail a sweep-job attempt with Unavailable
    CorruptTrace,  //!< damage .ltrc bytes (corpus generation)
    KillPoint,     //!< die mid-append in the journal path
};

/** Printable name of a FaultKind (the spec keyword, e.g. "dropfill"). */
const char *faultKindName(FaultKind kind);

struct FaultSpec
{
    FaultKind kind = FaultKind::WatchdogTrip;

    /** DropCacheFill: cache-name prefix ("l2", "tile_cache", "tex"). */
    std::string target;

    std::uint64_t frame = 0; //!< WatchdogTrip: frame index within a job
    std::uint64_t every = 0; //!< DropCacheFill/DramStall: period (Nth)
    std::uint64_t ticks = 0; //!< DramStall: extra latency per hit
    std::uint64_t job = 0;   //!< TransientFail: sweep job index
    std::uint64_t count = 1; //!< TransientFail: attempts to fail
    std::uint64_t offset = 0; //!< CorruptTrace byte / KillPoint append#
};

/** A seed plus the list of faults to inject. */
struct FaultPlan
{
    std::uint64_t seed = 0;
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /** Render as the one-line spec accepted by parse(). */
    std::string toString() const;

    /**
     * Parse a spec string (see file header for the grammar). The empty
     * string is the empty plan. Errors are InvalidArgument with the
     * offending item quoted.
     */
    static Result<FaultPlan> parse(const std::string &spec);
};

/**
 * Seeded random plan generator for the chaos soak: a reproducible mix
 * of watchdog trips, dropped fills, DRAM stalls and transient job
 * failures over a sweep of @p num_jobs jobs. Never emits KillPoint or
 * CorruptTrace — those need a cooperating harness; the soak's
 * kill-and-resume round-trip arms them separately.
 */
FaultPlan fuzzFaultPlan(std::uint64_t seed, std::uint64_t num_jobs);

/** Trace-corruption modes for corruptTrace(). */
enum class TraceCorruption
{
    TruncateMidRecord, //!< cut the byte stream inside the record area
    BitFlipHeader,     //!< flip one bit inside the 24-byte header
};

/**
 * Deterministically damage an in-memory .ltrc byte image. @p seed picks
 * the cut point / bit. Inputs shorter than a header come back
 * unchanged-but-truncated-to-empty (still a corrupt stream). Used by
 * test_trace_corruption to generate its corpus.
 */
std::vector<std::uint8_t> corruptTrace(std::vector<std::uint8_t> bytes,
                                       TraceCorruption mode,
                                       std::uint64_t seed);

/**
 * The armed, per-job view of a FaultPlan. Construct one per job
 * *attempt*; it carries the only mutable injection state (the frame
 * counter), so rebuilding the Gpu mid-job — the runner does that after
 * a watchdog skip — does not reset fault positions.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, std::uint64_t job_index)
        : thePlan(std::move(plan)), jobIndex(job_index)
    {}

    const FaultPlan &plan() const { return thePlan; }
    std::uint64_t job() const { return jobIndex; }

    /**
     * Called by Gpu::tryRenderFrame once per frame attempt; returns the
     * injector-local frame number (monotonic across Gpu rebuilds).
     */
    std::uint64_t frameStarted() { return framesStarted++; }

    /** Should frame @p frame abort as a watchdog trip? */
    bool tripWatchdogAtFrame(std::uint64_t frame) const;

    /** Drop-fill period for cache @p cache_name (0 = no injection). */
    std::uint64_t dropFillEvery(std::string_view cache_name) const;

    /** DRAM stall period (0 = no injection) and extra ticks. */
    std::uint64_t dramStallEvery() const;
    Tick dramStallTicks() const;

    /** Should job attempt @p attempt (0-based) fail as Unavailable? */
    bool failAttempt(std::uint64_t attempt) const;

    /** Journal kill point: die during the Nth append (0 = never). */
    std::uint64_t killAtAppend() const;

  private:
    FaultPlan thePlan;
    std::uint64_t jobIndex;
    std::uint64_t framesStarted = 0;
};

} // namespace libra

#endif // LIBRA_CHECK_FAULT_INJECTOR_HH
