#include "check/fault_injector.hh"

#include <charconv>
#include <sstream>

#include "common/rng.hh"

namespace libra
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::WatchdogTrip: return "watchdog";
      case FaultKind::DropCacheFill: return "dropfill";
      case FaultKind::DramStall: return "dramstall";
      case FaultKind::TransientFail: return "transient";
      case FaultKind::CorruptTrace: return "corrupt";
      case FaultKind::KillPoint: return "kill";
    }
    return "unknown";
}

namespace
{

/** Split @p s on @p sep into non-empty trimmed pieces. */
std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string_view::npos)
            end = s.size();
        std::string_view piece = s.substr(start, end - start);
        while (!piece.empty() && piece.front() == ' ')
            piece.remove_prefix(1);
        while (!piece.empty() && piece.back() == ' ')
            piece.remove_suffix(1);
        if (!piece.empty())
            out.emplace_back(piece);
        start = end + 1;
    }
    return out;
}

Result<std::uint64_t>
parseU64(std::string_view text, std::string_view what)
{
    std::uint64_t value = 0;
    const char *first = text.data();
    const char *last = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || text.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "fault plan: bad number for ", what, ": '",
                             std::string(text), "'");
    }
    return value;
}

/** One "k=v" pair applied onto @p spec; unknown keys are errors. */
Status
applyParam(FaultSpec &spec, std::string_view key, std::uint64_t value)
{
    if (key == "frame")
        spec.frame = value;
    else if (key == "every")
        spec.every = value;
    else if (key == "ticks")
        spec.ticks = value;
    else if (key == "job")
        spec.job = value;
    else if (key == "count")
        spec.count = value;
    else if (key == "offset" || key == "append")
        spec.offset = value;
    else {
        return Status::error(ErrorCode::InvalidArgument,
                             "fault plan: unknown parameter '",
                             std::string(key), "' for ",
                             faultKindName(spec.kind));
    }
    return Status::ok();
}

} // namespace

std::string
FaultPlan::toString() const
{
    if (faults.empty() && seed == 0)
        return ""; // the empty plan round-trips to the empty spec
    std::ostringstream os;
    os << "seed=" << seed;
    for (const FaultSpec &f : faults) {
        os << ';' << faultKindName(f.kind);
        switch (f.kind) {
          case FaultKind::WatchdogTrip:
            os << "@frame=" << f.frame;
            break;
          case FaultKind::DropCacheFill:
            os << ':' << f.target << "@every=" << f.every;
            break;
          case FaultKind::DramStall:
            os << "@every=" << f.every << ",ticks=" << f.ticks;
            break;
          case FaultKind::TransientFail:
            os << "@job=" << f.job << ",count=" << f.count;
            break;
          case FaultKind::CorruptTrace:
            os << ':' << f.target << "@offset=" << f.offset;
            break;
          case FaultKind::KillPoint:
            os << "@append=" << f.offset;
            break;
        }
    }
    return os.str();
}

Result<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &item : split(spec, ';')) {
        // item := keyword[:target][@k=v[,k=v...]]  |  seed=N
        const std::size_t at = item.find('@');
        std::string head = item.substr(0, at);
        const std::string params =
            at == std::string::npos ? "" : item.substr(at + 1);

        if (head.rfind("seed=", 0) == 0) {
            Result<std::uint64_t> s = parseU64(
                std::string_view(head).substr(5), "seed");
            if (!s.isOk())
                return s.status();
            plan.seed = *s;
            continue;
        }

        FaultSpec fault;
        const std::size_t colon = head.find(':');
        const std::string keyword = head.substr(0, colon);
        if (colon != std::string::npos)
            fault.target = head.substr(colon + 1);

        if (keyword == "watchdog")
            fault.kind = FaultKind::WatchdogTrip;
        else if (keyword == "dropfill")
            fault.kind = FaultKind::DropCacheFill;
        else if (keyword == "dramstall")
            fault.kind = FaultKind::DramStall;
        else if (keyword == "transient")
            fault.kind = FaultKind::TransientFail;
        else if (keyword == "corrupt")
            fault.kind = FaultKind::CorruptTrace;
        else if (keyword == "kill")
            fault.kind = FaultKind::KillPoint;
        else {
            return Status::error(ErrorCode::InvalidArgument,
                                 "fault plan: unknown fault '", item,
                                 "'");
        }

        for (const std::string &kv : split(params, ',')) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                return Status::error(ErrorCode::InvalidArgument,
                                     "fault plan: expected k=v, got '",
                                     kv, "' in '", item, "'");
            }
            Result<std::uint64_t> value =
                parseU64(std::string_view(kv).substr(eq + 1), kv);
            if (!value.isOk())
                return value.status();
            if (Status st = applyParam(
                    fault, std::string_view(kv).substr(0, eq), *value);
                !st.isOk())
                return st;
        }

        if (fault.kind == FaultKind::DropCacheFill
            && (fault.target.empty() || fault.every == 0)) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "fault plan: dropfill needs a :target "
                                 "and every>0 in '", item, "'");
        }
        if (fault.kind == FaultKind::DramStall && fault.every == 0) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "fault plan: dramstall needs every>0 "
                                 "in '", item, "'");
        }
        plan.faults.push_back(std::move(fault));
    }
    return plan;
}

FaultPlan
fuzzFaultPlan(std::uint64_t seed, std::uint64_t num_jobs)
{
    FaultPlan plan;
    plan.seed = seed;
    Rng rng(hashCombine(seed, 0x7a017'fa0175ull));

    // A reproducible mix: each category appears with its own
    // probability so plans range from benign to nasty. Periods and
    // magnitudes are kept in ranges that perturb timing visibly without
    // making small test sweeps run for minutes.
    if (rng.chance(0.35)) {
        FaultSpec f;
        f.kind = FaultKind::WatchdogTrip;
        f.frame = rng.below(3);
        plan.faults.push_back(f);
    }
    if (rng.chance(0.5)) {
        static const char *const targets[] = {"l2", "tile_cache",
                                              "vertex_cache", "tex"};
        FaultSpec f;
        f.kind = FaultKind::DropCacheFill;
        f.target = targets[rng.below(4)];
        f.every = 16 + rng.below(241); // 16..256
        plan.faults.push_back(f);
    }
    if (rng.chance(0.5)) {
        FaultSpec f;
        f.kind = FaultKind::DramStall;
        f.every = 64 + rng.below(961);  // 64..1024
        f.ticks = 100 + rng.below(1901); // 100..2000
        plan.faults.push_back(f);
    }
    if (rng.chance(0.6) && num_jobs > 0) {
        FaultSpec f;
        f.kind = FaultKind::TransientFail;
        f.job = rng.below(num_jobs);
        f.count = 1 + rng.below(2); // 1..2 failed attempts
        plan.faults.push_back(f);
    }
    return plan;
}

std::vector<std::uint8_t>
corruptTrace(std::vector<std::uint8_t> bytes, TraceCorruption mode,
             std::uint64_t seed)
{
    constexpr std::size_t header_bytes = 24; // see trace/frame_trace.cc
    std::uint64_t mix = hashCombine(seed, 0xc0a2u);
    switch (mode) {
      case TraceCorruption::TruncateMidRecord: {
        if (bytes.size() <= header_bytes + 1) {
            bytes.clear();
            return bytes;
        }
        // Cut strictly inside the record area: at least one byte of it
        // survives, at least one byte is lost.
        const std::size_t record_area = bytes.size() - header_bytes;
        const std::size_t keep =
            1 + static_cast<std::size_t>(mix % (record_area - 1));
        bytes.resize(header_bytes + keep);
        return bytes;
      }
      case TraceCorruption::BitFlipHeader: {
        if (bytes.empty())
            return bytes;
        const std::size_t limit =
            std::min<std::size_t>(header_bytes, bytes.size());
        const std::size_t byte = mix % limit;
        const unsigned bit = static_cast<unsigned>((mix / limit) % 8);
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
        return bytes;
      }
    }
    return bytes;
}

bool
FaultInjector::tripWatchdogAtFrame(std::uint64_t frame) const
{
    for (const FaultSpec &f : thePlan.faults) {
        if (f.kind == FaultKind::WatchdogTrip && f.frame == frame)
            return true;
    }
    return false;
}

std::uint64_t
FaultInjector::dropFillEvery(std::string_view cache_name) const
{
    for (const FaultSpec &f : thePlan.faults) {
        if (f.kind == FaultKind::DropCacheFill
            && cache_name.substr(0, f.target.size()) == f.target)
            return f.every;
    }
    return 0;
}

std::uint64_t
FaultInjector::dramStallEvery() const
{
    for (const FaultSpec &f : thePlan.faults) {
        if (f.kind == FaultKind::DramStall)
            return f.every;
    }
    return 0;
}

Tick
FaultInjector::dramStallTicks() const
{
    for (const FaultSpec &f : thePlan.faults) {
        if (f.kind == FaultKind::DramStall)
            return f.ticks;
    }
    return 0;
}

bool
FaultInjector::failAttempt(std::uint64_t attempt) const
{
    for (const FaultSpec &f : thePlan.faults) {
        if (f.kind == FaultKind::TransientFail && f.job == jobIndex
            && attempt < f.count)
            return true;
    }
    return false;
}

std::uint64_t
FaultInjector::killAtAppend() const
{
    for (const FaultSpec &f : thePlan.faults) {
        if (f.kind == FaultKind::KillPoint)
            return f.offset;
    }
    return 0;
}

} // namespace libra
