#include "check/result_cache.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "check/snapshot.hh"
#include "common/log.hh"

namespace libra
{

namespace
{

namespace fs = std::filesystem;

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
ResultCacheKey::toString() const
{
    return "cfg:" + hex16(configHash) + ":scene:" + hex16(sceneHash)
        + ":f" + std::to_string(frames) + "@"
        + std::to_string(firstFrame) + ":v"
        + std::to_string(codeVersion);
}

std::string
ResultCache::entryFileName(const ResultCacheKey &key)
{
    return "res_" + hex16(key.configHash) + "_" + hex16(key.sceneHash)
        + "_f" + std::to_string(key.frames) + "@"
        + std::to_string(key.firstFrame) + "_v"
        + std::to_string(key.codeVersion) + ".lrc";
}

std::vector<std::uint8_t>
buildResultCacheEntry(const ResultCacheKey &key,
                      const std::string &report_json)
{
    SnapshotHeader header;
    header.configHash = key.configHash;
    header.warmPrefixHash = 0; // unused by cache entries
    header.sceneHash = key.sceneHash;
    header.codeVersion = key.codeVersion;
    header.firstFrame = key.firstFrame;
    header.framesDone = key.frames;

    SnapshotWriter w(header);
    w.beginSection(SnapSection::CachedReport);
    w.putString(report_json);
    w.endSection();
    return w.finish();
}

Result<std::string>
parseResultCacheEntry(const ResultCacheKey &key,
                      std::vector<std::uint8_t> bytes)
{
    Result<SnapshotReader> parsed =
        SnapshotReader::parse(std::move(bytes));
    if (!parsed.isOk())
        return parsed.status();
    SnapshotReader &r = *parsed;

    const SnapshotHeader &h = r.header();
    const ResultCacheKey stored{h.configHash, h.sceneHash,
                                h.codeVersion, h.framesDone,
                                h.firstFrame};
    if (!(stored == key)) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "result cache: entry keyed ",
                             stored.toString(), " does not match ",
                             key.toString());
    }

    r.openSection(SnapSection::CachedReport);
    std::string report = r.takeString();
    r.closeSection();
    if (Status st = r.finish(); !st.isOk())
        return st;
    return report;
}

Result<ResultCache>
ResultCache::open(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        return Status::error(ErrorCode::IoError,
                             "result cache: cannot create ", dir, ": ",
                             ec.message());
    }
    return ResultCache(dir);
}

Result<std::string>
ResultCache::lookup(const ResultCacheKey &key) const
{
    const fs::path path = fs::path(dirPath) / entryFileName(key);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
        return Status::error(ErrorCode::NotFound,
                             "result cache: no entry for ",
                             key.toString());
    }
    Result<std::vector<std::uint8_t>> bytes =
        readSnapshotFile(path.string());
    if (!bytes.isOk())
        return bytes.status();
    return parseResultCacheEntry(key, std::move(*bytes));
}

Status
ResultCache::store(const ResultCacheKey &key,
                   const std::string &report_json)
{
    const std::vector<std::uint8_t> bytes =
        buildResultCacheEntry(key, report_json);
    // Unique temp name per store so concurrent writers never share a
    // partially-written file; rename is atomic within the directory.
    static std::atomic<std::uint64_t> tempSeq{0};
    const std::uint64_t seq =
        tempSeq.fetch_add(1, std::memory_order_relaxed);
    const fs::path dir(dirPath);
    const fs::path tmp =
        dir / (entryFileName(key) + ".tmp" + std::to_string(seq));
    const fs::path final_path = dir / entryFileName(key);
    if (Status st = writeSnapshotFile(tmp.string(), bytes); !st.isOk())
        return st;
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return Status::error(ErrorCode::IoError,
                             "result cache: cannot publish entry ",
                             final_path.string(), ": ", ec.message());
    }
    return Status::ok();
}

bool
ResultCache::contains(const ResultCacheKey &key) const
{
    return lookup(key).isOk();
}

Result<std::vector<std::string>>
ResultCache::entries() const
{
    std::vector<std::string> names;
    std::error_code ec;
    for (fs::directory_iterator it(dirPath, ec), end;
         !ec && it != end; it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (name.rfind("res_", 0) == 0
            && name.size() >= 4
            && name.compare(name.size() - 4, 4, ".lrc") == 0) {
            names.push_back(name);
        }
    }
    if (ec) {
        return Status::error(ErrorCode::IoError,
                             "result cache: cannot list ", dirPath,
                             ": ", ec.message());
    }
    std::sort(names.begin(), names.end());
    return names;
}

Result<std::uint64_t>
ResultCache::trim(std::uint64_t max_entries)
{
    Result<std::vector<std::string>> listed = entries();
    if (!listed.isOk())
        return listed.status();
    if (listed->size() <= max_entries)
        return std::uint64_t(0);

    struct Aged
    {
        fs::file_time_type mtime;
        std::string name;
    };
    std::vector<Aged> aged;
    aged.reserve(listed->size());
    for (const std::string &name : *listed) {
        std::error_code ec;
        const auto mtime =
            fs::last_write_time(fs::path(dirPath) / name, ec);
        if (ec)
            continue; // raced with a concurrent eviction; skip
        aged.push_back({mtime, name});
    }
    std::sort(aged.begin(), aged.end(), [](const Aged &a, const Aged &b) {
        return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
    });

    std::uint64_t removed = 0;
    for (const Aged &victim : aged) {
        if (aged.size() - removed <= max_entries)
            break;
        std::error_code ec;
        if (fs::remove(fs::path(dirPath) / victim.name, ec) && !ec)
            ++removed;
    }
    return removed;
}

} // namespace libra
