#include "check/config_fuzzer.hh"

#include <algorithm>

#include "common/log.hh"
#include "gpu/policy_registry.hh"

namespace libra
{

namespace
{

/** Random cache geometry: power-of-two sets/ways/line, small enough to
 *  keep fuzz simulations fast but varied enough to shift every set
 *  index and MSHR-pressure point. */
CacheConfig
fuzzCache(Rng &rng, const CacheConfig &base)
{
    CacheConfig c = base;
    c.lineBytes = 32u << rng.below(2);              // 32 or 64
    c.ways = 1u << rng.below(3);                    // 1, 2, 4
    const std::uint32_t sets = 1u << (2 + rng.below(5)); // 4 .. 64
    c.sizeBytes = c.lineBytes * c.ways * sets;
    c.hitLatency = static_cast<Tick>(1 + rng.below(4));
    c.mshrs = static_cast<std::uint32_t>(1 + rng.below(16));
    c.portsPerCycle = static_cast<std::uint32_t>(1 + rng.below(2));
    return c;
}

} // namespace

GpuConfig
fuzzGpuConfig(Rng &rng, std::uint32_t width, std::uint32_t height)
{
    GpuConfig cfg;
    cfg.screenWidth = width;
    cfg.screenHeight = height;
    cfg.tileSize = 16u << rng.below(2); // 16 or 32
    libra_assert(cfg.tileSize <= std::max(width, height),
                 "fuzz screen too small for the tile size");

    cfg.rasterUnits = static_cast<std::uint32_t>(1 + rng.below(3));
    cfg.coresPerRu = static_cast<std::uint32_t>(1 + rng.below(3));
    cfg.warpsPerCore = static_cast<std::uint32_t>(2 + rng.below(7));
    cfg.warpQuads = 2u << rng.below(3); // 2, 4, 8 (< 16x16/4 quads)
    cfg.pendingWarpsPerCore =
        static_cast<std::uint32_t>(1 + rng.below(4));
    cfg.fifoDepth = static_cast<std::uint32_t>(2 + rng.below(31));

    cfg.vertexCache = fuzzCache(rng, cfg.vertexCache);
    cfg.tileCache = fuzzCache(rng, cfg.tileCache);
    cfg.textureCache = fuzzCache(rng, cfg.textureCache);
    cfg.l2 = fuzzCache(rng, cfg.l2);
    cfg.dram.channels = static_cast<std::uint32_t>(1 + rng.below(2));
    cfg.dram.banksPerChannel = 4u << rng.below(2); // 4 or 8
    cfg.idealMemory = rng.chance(0.1);

    // Uniform draw over the policy registry, so every registered
    // mechanism — including Rendering Elimination — meets the
    // conservation laws across the fuzzed machine space.
    const std::vector<PolicyInfo> &policies = policyRegistry();
    const PolicyInfo &policy = policies[rng.below(policies.size())];
    cfg.sched.policy = policy.sched;
    cfg.renderingElimination = policy.renderingElimination;
    cfg.sched.minSupertileSize = 1u << rng.below(2); // 1 or 2
    cfg.sched.maxSupertileSize =
        cfg.sched.minSupertileSize << rng.below(4);  // up to x8
    cfg.sched.initialSupertileSize = std::clamp<std::uint32_t>(
        1u << rng.below(4), cfg.sched.minSupertileSize,
        cfg.sched.maxSupertileSize);
    cfg.sched.staticSupertileSize = 1u << rng.below(3); // 1, 2, 4
    cfg.sched.hotRasterUnits = cfg.rasterUnits > 1
        ? static_cast<std::uint32_t>(1 + rng.below(cfg.rasterUnits - 1))
        : 1;

    cfg.transactionElimination = rng.chance(0.3);
    cfg.fbCompressionRatio = rng.chance(0.3) ? rng.uniform(0.5, 1.0)
                                             : 1.0;

    // The fuzzer exists to drive the conservation laws over the whole
    // configuration space.
    cfg.checkInvariants = true;

    const Status st = cfg.validate();
    libra_assert(st.isOk(),
                 "config fuzzer produced an invalid config: ",
                 st.toString());
    return cfg;
}

} // namespace libra
