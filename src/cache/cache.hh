/**
 * @file
 * Set-associative, non-blocking, write-back timing cache.
 *
 * Used for all four cache types of the modeled TBR GPU (Table I): the
 * Vertex cache, the Tile cache, the per-core L1 Texture caches and the
 * shared L2. The model is timing-only (tags + LRU state, no data): on a
 * miss it allocates an MSHR, forwards a line fill to the next MemSink and
 * completes all coalesced requesters when the fill returns. Dirty
 * evictions post write-backs downstream.
 *
 * Sharing discipline: texture and geometry data are read-only and writes
 * from different producers target disjoint lines (parameter buffer,
 * frame buffer), so no coherence protocol is modeled — matching the
 * simple L1/L2 organization of mobile TBR GPUs the paper assumes.
 */

#ifndef LIBRA_CACHE_CACHE_HH
#define LIBRA_CACHE_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "cache/mem_system.hh"
#include "check/faults_build.hh"
#include "common/open_addr_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace libra
{

class SnapshotWriter;
class SnapshotReader;

/** Geometry and timing of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 64;
    Tick hitLatency = 2;
    std::uint32_t mshrs = 16;          //!< distinct outstanding misses
    std::uint32_t portsPerCycle = 1;   //!< accesses accepted per cycle
    bool writeAllocate = true;
    bool alwaysHit = false; //!< ideal-memory mode (Fig. 6a methodology)
};

/** One level of the cache hierarchy. */
class Cache : public MemSink
{
  public:
    Cache(EventQueue &eq, const CacheConfig &cfg, MemSink &next_level);

    void access(MemReq req) override;

    /** Drop every line (used between frames for the Tile cache, whose
     *  backing parameter buffer is rewritten by the next binning pass).
     *  Dirty lines are written back. Outstanding MSHR fills are marked
     *  stale: when such a fill returns it completes its waiters with the
     *  correct timing but does NOT install the line, so pre-invalidate
     *  data can never reappear as a post-invalidate hit. */
    void invalidateAll();

    /** Fraction of accesses that hit since construction (or reset). */
    double hitRatio() const;

    /** Distinct line fills currently in flight (occupied MSHRs). Used
     *  by the Raster-Unit phase attribution to distinguish waiting on
     *  a short L1 hit from waiting on the memory system. */
    std::size_t outstandingMisses() const { return mshrIndex.size(); }

    const CacheConfig &cfg() const { return config; }
    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

    /**
     * Serialize persistent state (tags/LRU/ports/fill sequence) for a
     * frame-boundary snapshot. Only legal while quiescent: occupied
     * MSHRs or stalled requests imply pending events and are asserted
     * against. Counters are restored separately via the StatGroup.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore what saveState() wrote (geometry must match). */
    void loadState(SnapshotReader &r);

    /** Install/evict hooks for cross-cache replication tracking. */
    std::function<void(Addr)> onInstall;
    std::function<void(Addr)> onEvict;

    // Statistics.
    Counter hits;
    Counter misses;
    Counter mshrCoalesced;  //!< miss merged into an in-flight fill
    Counter mshrStalls;     //!< requests that waited for a free MSHR
    Counter writebacks;
    Counter readAccesses;
    Counter writeAccesses;
    Counter invalidatedFills; //!< fills discarded by invalidateAll()

    /**
     * Test hook: when set, hit accesses are serviced normally but the
     * `hits` counter is not incremented — an injected accounting bug
     * that the InvariantChecker's conservation law must catch.
     */
    bool testDropHitAccounting = false;

    /**
     * Fault-injection hook (armed by Gpu from a FaultPlan; see
     * src/check/fault_injector): every Nth returning fill is discarded
     * exactly as if it had crossed an invalidateAll() — waiters keep
     * their timing, the line is not installed, `invalidatedFills` is
     * incremented (no new counter, so golden counter dumps keep their
     * shape). 0 disables. Compiled out with LIBRA_FAULTS=OFF.
     */
    std::uint64_t testDropFillEvery = 0;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    struct Mshr
    {
        Addr lineAddr;
        bool anyWrite = false;
        bool discardFill = false; //!< invalidated while in flight
        std::vector<MemCallback> waiters;
    };

    Addr lineAddr(Addr addr) const { return addr & ~(Addr(config.lineBytes) - 1); }

    /** Shared implementation; retried requests skip the counters. */
    void accessImpl(MemReq req, bool is_retry);
    std::size_t setIndex(Addr line_addr) const;

    /** Probe the set; returns way index or -1. */
    int findLine(Addr line_addr);

    /** Choose a victim way in the set of @p line_addr (LRU). */
    std::uint32_t victimWay(std::size_t set);

    /** Install @p line_addr, evicting as needed. */
    void installLine(Addr line_addr, bool dirty);

    /** Port arbitration: first tick this access can start. */
    Tick arbitratePort();

    /** Start a fill for the MSHR at @p index. */
    void issueFill(std::size_t index);

    /** Fill returned: install, drain waiters, retry stalled requests. */
    void handleFill(Addr line_addr, Tick when);

    EventQueue &queue;
    CacheConfig config;
    MemSink &next;

    std::uint32_t numSets;
    std::vector<Line> lines;   //!< numSets * ways, set-major
    std::uint64_t lruClock = 0;

    /** lineAddr → MSHR slot. Open-addressed: MSHR matching runs on
     *  every miss and every fill return, and the node-based
     *  unordered_map it replaces was a measurable slice of the whole
     *  simulator under gprof. */
    OpenAddrMap<std::uint32_t> mshrIndex;
    std::vector<Mshr> mshrSlots;
    std::vector<TrafficClass> mshrCls; //!< class of the triggering miss
    std::vector<std::uint32_t> mshrTag; //!< tile tag of the triggering miss
    std::vector<std::size_t> freeMshrs;
    std::deque<MemReq> stalledReqs; //!< waiting for an MSHR

    Tick portTick = 0;
    std::uint32_t portCount = 0;
    std::uint64_t fillSeq = 0; //!< fills returned, for testDropFillEvery

    StatGroup statGroup;
};

} // namespace libra

#endif // LIBRA_CACHE_CACHE_HH
