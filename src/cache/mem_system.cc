#include "cache/mem_system.hh"

#include "cache/cache.hh"

namespace libra
{

void
ReplicationTracker::attach(Cache &cache)
{
    // Chain behind any existing hooks so multiple observers compose.
    auto prev_install = cache.onInstall;
    cache.onInstall = [this, prev_install](Addr line) {
        recordInstall(line);
        if (prev_install)
            prev_install(line);
    };
    auto prev_evict = cache.onEvict;
    cache.onEvict = [this, prev_evict](Addr line) {
        recordEvict(line);
        if (prev_evict)
            prev_evict(line);
    };
}

void
ReplicationTracker::recordInstall(Addr line)
{
    ++totalInstalls;
    const auto count = ++refCount[line];
    if (count > 1)
        ++replicated;
}

void
ReplicationTracker::recordEvict(Addr line)
{
    if (std::uint32_t *refs = refCount.find(line)) {
        if (--*refs == 0)
            refCount.erase(line);
    }
}

std::uint64_t
ReplicationTracker::currentReplicas() const
{
    std::uint64_t count = 0;
    refCount.forEach([&count](Addr, std::uint32_t refs) {
        if (refs > 1)
            ++count;
    });
    return count;
}

} // namespace libra
