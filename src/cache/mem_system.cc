#include "cache/mem_system.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "cache/cache.hh"
#include "check/snapshot.hh"

namespace libra
{

void
ReplicationTracker::attach(Cache &cache)
{
    // Chain behind any existing hooks so multiple observers compose.
    auto prev_install = cache.onInstall;
    cache.onInstall = [this, prev_install](Addr line) {
        recordInstall(line);
        if (prev_install)
            prev_install(line);
    };
    auto prev_evict = cache.onEvict;
    cache.onEvict = [this, prev_evict](Addr line) {
        recordEvict(line);
        if (prev_evict)
            prev_evict(line);
    };
}

void
ReplicationTracker::recordInstall(Addr line)
{
    ++totalInstalls;
    const auto count = ++refCount[line];
    if (count > 1)
        ++replicated;
}

void
ReplicationTracker::recordEvict(Addr line)
{
    if (std::uint32_t *refs = refCount.find(line)) {
        if (--*refs == 0)
            refCount.erase(line);
    }
}

std::uint64_t
ReplicationTracker::currentReplicas() const
{
    std::uint64_t count = 0;
    refCount.forEach([&count](Addr, std::uint32_t refs) {
        if (refs > 1)
            ++count;
    });
    return count;
}

void
ReplicationTracker::exportState(SnapshotWriter &w) const
{
    w.putU64(totalInstalls);
    w.putU64(replicated);
    std::vector<std::pair<Addr, std::uint32_t>> entries;
    refCount.forEach([&entries](Addr line, std::uint32_t refs) {
        entries.emplace_back(line, refs);
    });
    std::sort(entries.begin(), entries.end());
    w.putU64(entries.size());
    for (const auto &[line, refs] : entries) {
        w.putU64(line);
        w.putU32(refs);
    }
}

void
ReplicationTracker::importState(SnapshotReader &r)
{
    totalInstalls = r.takeU64();
    replicated = r.takeU64();
    const std::uint64_t count = r.takeU64();
    for (std::uint64_t i = 0; r.ok() && i < count; ++i) {
        const Addr line = r.takeU64();
        const std::uint32_t refs = r.takeU32();
        if (!r.check(refs > 0, "replication refcount of zero"))
            return;
        refCount[line] = refs;
    }
}

} // namespace libra
