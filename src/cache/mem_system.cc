#include "cache/mem_system.hh"

#include "cache/cache.hh"

namespace libra
{

void
ReplicationTracker::attach(Cache &cache)
{
    // Chain behind any existing hooks so multiple observers compose.
    auto prev_install = cache.onInstall;
    cache.onInstall = [this, prev_install](Addr line) {
        ++totalInstalls;
        const auto count = ++refCount[line];
        if (count > 1)
            ++replicated;
        if (prev_install)
            prev_install(line);
    };
    auto prev_evict = cache.onEvict;
    cache.onEvict = [this, prev_evict](Addr line) {
        auto it = refCount.find(line);
        if (it != refCount.end()) {
            if (--it->second == 0)
                refCount.erase(it);
        }
        if (prev_evict)
            prev_evict(line);
    };
}

std::uint64_t
ReplicationTracker::currentReplicas() const
{
    std::uint64_t count = 0;
    for (const auto &[line, refs] : refCount) {
        if (refs > 1)
            ++count;
    }
    return count;
}

} // namespace libra
