#include "cache/cache.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "check/snapshot.hh"
#include "common/log.hh"

namespace libra
{

Cache::Cache(EventQueue &eq, const CacheConfig &cfg, MemSink &next_level)
    : queue(eq), config(cfg), next(next_level), mshrIndex(cfg.mshrs),
      statGroup(cfg.name)
{
    libra_assert(config.lineBytes > 0 && config.ways > 0, "bad cache cfg");
    libra_assert(config.sizeBytes % (config.lineBytes * config.ways) == 0,
                 config.name, ": size not divisible into sets");
    numSets = config.sizeBytes / (config.lineBytes * config.ways);
    libra_assert(numSets > 0, config.name, ": zero sets");
    lines.resize(static_cast<std::size_t>(numSets) * config.ways);

    mshrSlots.resize(config.mshrs);
    mshrCls.resize(config.mshrs, TrafficClass::Texture);
    mshrTag.resize(config.mshrs, invalidId);
    for (std::size_t i = 0; i < config.mshrs; ++i)
        freeMshrs.push_back(config.mshrs - 1 - i);

    statGroup.add("hits", &hits);
    statGroup.add("misses", &misses);
    statGroup.add("mshr_coalesced", &mshrCoalesced);
    statGroup.add("mshr_stalls", &mshrStalls);
    statGroup.add("writebacks", &writebacks);
    statGroup.add("read_accesses", &readAccesses);
    statGroup.add("write_accesses", &writeAccesses);
    statGroup.add("invalidated_fills", &invalidatedFills);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>((line_addr / config.lineBytes) % numSets);
}

int
Cache::findLine(Addr line_addr)
{
    const std::size_t set = setIndex(line_addr);
    for (std::uint32_t w = 0; w < config.ways; ++w) {
        Line &line = lines[set * config.ways + w];
        if (line.valid && line.tag == line_addr)
            return static_cast<int>(w);
    }
    return -1;
}

std::uint32_t
Cache::victimWay(std::size_t set)
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t w = 0; w < config.ways; ++w) {
        const Line &line = lines[set * config.ways + w];
        if (!line.valid)
            return w;
        if (line.lruStamp < oldest) {
            oldest = line.lruStamp;
            victim = w;
        }
    }
    return victim;
}

void
Cache::installLine(Addr line_addr, bool dirty)
{
    const std::size_t set = setIndex(line_addr);
    const std::uint32_t way = victimWay(set);
    Line &line = lines[set * config.ways + way];
    if (line.valid) {
        if (line.dirty) {
            // Dirty lines only arise from parameter-buffer writes (the
            // frame buffer streams directly to DRAM), so attribute
            // write-backs to that class.
            ++writebacks;
            next.access(MemReq{line.tag, config.lineBytes, true,
                               TrafficClass::ParameterBuffer, invalidId,
                               nullptr});
        }
        if (onEvict)
            onEvict(line.tag);
    }
    line.valid = true;
    line.dirty = dirty;
    line.tag = line_addr;
    line.lruStamp = ++lruClock;
    if (onInstall)
        onInstall(line_addr);
}

Tick
Cache::arbitratePort()
{
    Tick start = queue.now();
    if (portTick < start) {
        portTick = start;
        portCount = 0;
    }
    while (portCount >= config.portsPerCycle) {
        ++portTick;
        portCount = 0;
    }
    ++portCount;
    return portTick;
}

void
Cache::issueFill(std::size_t index)
{
    const Addr line_addr = mshrSlots[index].lineAddr;
    next.access(MemReq{line_addr, config.lineBytes, false,
                       mshrCls[index], mshrTag[index],
                       [this, line_addr](Tick when) {
                           handleFill(line_addr, when);
                       }});
}

void
Cache::handleFill(Addr line_addr, Tick when)
{
    const std::uint32_t *found = mshrIndex.find(line_addr);
    libra_assert(found != nullptr, config.name,
                 ": fill for unknown MSHR line");
    const std::size_t index = *found;
    Mshr &slot = mshrSlots[index];

    // A fill that crossed an invalidateAll() carries pre-invalidate
    // data: complete its waiters (the timing is real) but never install
    // the stale line.
    bool discard = slot.discardFill;
#if LIBRA_FAULTS_ENABLED
    if (testDropFillEvery != 0 && ++fillSeq % testDropFillEvery == 0)
        discard = true;
#endif
    if (discard)
        ++invalidatedFills;
    else
        installLine(line_addr, slot.anyWrite);

    const Tick done = when + config.hitLatency;
    for (auto &cb : slot.waiters) {
        if (cb)
            queue.schedule(done, [cb = std::move(cb), done]() mutable {
                cb(done);
            });
    }
    slot.waiters.clear();
    slot.anyWrite = false;
    slot.discardFill = false;
    mshrIndex.erase(line_addr);
    freeMshrs.push_back(index);

    // Retry stalled requests while MSHRs are available. A retried
    // request can only re-stall when the free list empties, which ends
    // the loop first, so each iteration strictly shrinks the queue.
    while (!freeMshrs.empty() && !stalledReqs.empty()) {
        MemReq req = std::move(stalledReqs.front());
        stalledReqs.pop_front();
        accessImpl(std::move(req), true);
    }
}

void
Cache::access(MemReq req)
{
    accessImpl(std::move(req), false);
}

void
Cache::accessImpl(MemReq req, bool is_retry)
{
    // Split multi-line requests into independent line accesses; the
    // caller's callback fires when the last line completes.
    const Addr first_line = lineAddr(req.addr);
    const Addr last_line = lineAddr(req.addr + std::max(req.size, 1u) - 1);
    if (first_line != last_line) {
        const std::size_t count =
            static_cast<std::size_t>((last_line - first_line)
                                     / config.lineBytes) + 1;
        auto join = std::make_shared<SplitJoin>(
            count, std::move(req.onComplete));
        for (Addr line = first_line; line <= last_line;
             line += config.lineBytes) {
            MemReq part;
            part.addr = line;
            part.size = config.lineBytes;
            part.write = req.write;
            part.cls = req.cls;
            part.tileTag = req.tileTag;
            part.onComplete = splitJoinPart(join);
            accessImpl(std::move(part), is_retry);
        }
        return;
    }

    if (!is_retry) {
        if (req.write)
            ++writeAccesses;
        else
            ++readAccesses;
    }

    const Addr line_addr = first_line;
    const Tick start = arbitratePort();

    if (config.alwaysHit) {
        // Ideal-memory methodology (Fig. 6a): every access behaves as an
        // L1 hit; no traffic propagates downstream.
        if (!testDropHitAccounting)
            ++hits;
        if (req.onComplete) {
            const Tick done = start + config.hitLatency;
            auto cb = std::move(req.onComplete);
            queue.schedule(done, [cb = std::move(cb), done]() mutable {
                cb(done);
            });
        }
        return;
    }

    const int way = findLine(line_addr);
    if (way >= 0) {
        // Hit. Retried requests were already counted (as the miss they
        // originally were).
        if (!is_retry && !testDropHitAccounting)
            ++hits;
        Line &line = lines[setIndex(line_addr) * config.ways
                           + static_cast<std::uint32_t>(way)];
        line.lruStamp = ++lruClock;
        if (req.write)
            line.dirty = true;
        if (req.onComplete) {
            const Tick done = start + config.hitLatency;
            auto cb = std::move(req.onComplete);
            queue.schedule(done, [cb = std::move(cb), done]() mutable {
                cb(done);
            });
        }
        return;
    }

    // Miss while a fill for the same line is outstanding: coalesce.
    if (const std::uint32_t *in_flight = mshrIndex.find(line_addr)) {
        if (!is_retry)
            ++mshrCoalesced;
        Mshr &slot = mshrSlots[*in_flight];
        slot.anyWrite |= req.write;
        slot.waiters.push_back(std::move(req.onComplete));
        return;
    }

    if (!is_retry)
        ++misses;

    // Streaming writes bypass allocation when configured to.
    if (req.write && !config.writeAllocate) {
        MemReq fwd = std::move(req);
        next.access(std::move(fwd));
        return;
    }

    if (freeMshrs.empty()) {
        if (!is_retry)
            ++mshrStalls;
        stalledReqs.push_back(std::move(req));
        return;
    }

    const std::size_t index = freeMshrs.back();
    freeMshrs.pop_back();
    Mshr &slot = mshrSlots[index];
    slot.lineAddr = line_addr;
    slot.anyWrite = req.write;
    slot.discardFill = false;
    slot.waiters.clear();
    slot.waiters.push_back(std::move(req.onComplete));
    mshrIndex.insert(line_addr, static_cast<std::uint32_t>(index));
    mshrCls[index] = req.cls;
    mshrTag[index] = req.tileTag;
    issueFill(index);
}

void
Cache::invalidateAll()
{
    for (auto &line : lines) {
        if (line.valid && line.dirty) {
            ++writebacks;
            next.access(MemReq{line.tag, config.lineBytes, true,
                               TrafficClass::ParameterBuffer, invalidId,
                               nullptr});
        }
        if (line.valid && onEvict)
            onEvict(line.tag);
        line.valid = false;
        line.dirty = false;
    }
    // In-flight fills were requested before the invalidate; installing
    // them afterwards would resurrect stale lines. Let them complete
    // (waiters keep their timing) but drop the install.
    mshrIndex.forEach([this](Addr, std::uint32_t index) {
        mshrSlots[index].discardFill = true;
    });
}

double
Cache::hitRatio() const
{
    const std::uint64_t total = hits.value() + misses.value();
    return total == 0 ? 1.0 : static_cast<double>(hits.value()) / total;
}

void
Cache::saveState(SnapshotWriter &w) const
{
    libra_assert(mshrIndex.size() == 0 && stalledReqs.empty(),
                 "cache snapshot with in-flight misses: ", config.name);
    w.putU64(lines.size());
    for (const Line &line : lines) {
        w.putBool(line.valid);
        w.putBool(line.dirty);
        w.putU64(line.tag);
        w.putU64(line.lruStamp);
    }
    w.putU64(lruClock);
    w.putU64(portTick);
    w.putU32(portCount);
    w.putU64(fillSeq);
}

void
Cache::loadState(SnapshotReader &r)
{
    const std::uint64_t count = r.takeU64();
    if (!r.check(count == lines.size(),
                 "cache line count mismatches the configuration"))
        return;
    for (Line &line : lines) {
        line.valid = r.takeBool();
        line.dirty = r.takeBool();
        line.tag = r.takeU64();
        line.lruStamp = r.takeU64();
    }
    lruClock = r.takeU64();
    portTick = r.takeU64();
    portCount = r.takeU32();
    fillSeq = r.takeU64();
}

} // namespace libra
