/**
 * @file
 * Common memory-request plumbing shared by caches and DRAM.
 *
 * Every level of the hierarchy implements MemSink: it accepts a MemReq
 * and promises to invoke the request's completion callback at the tick
 * the data is available (reads) or accepted (writes). Requests carry a
 * TrafficClass for routing/statistics and a tile tag so DRAM traffic can
 * be attributed to the screen tile that caused it — the raw signal the
 * LIBRA temperature table (paper §III-B) is built from.
 */

#ifndef LIBRA_CACHE_MEM_SYSTEM_HH
#define LIBRA_CACHE_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>

#include "common/open_addr_map.hh"
#include "common/types.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"

namespace libra
{

/**
 * Physical address map of the modeled GPU. Regions are disjoint and far
 * apart so the workload generator can lay out textures, geometry, the
 * parameter buffer and the frame buffer without collisions.
 */
namespace addr_map
{

constexpr Addr vertexBase = 0x1000'0000ull;        //!< scene geometry
constexpr Addr parameterBufferBase = 0x2000'0000ull; //!< per-tile lists
constexpr Addr textureBase = 0x4000'0000ull;       //!< texture pool
constexpr Addr frameBufferBase = 0x8000'0000ull;   //!< final image

} // namespace addr_map

/**
 * Completion callback; argument is the completion tick. Move-only and
 * allocation-free: 24 bytes of inline capture (e.g. an owner pointer
 * plus a shared_ptr to per-request state) — enough for every producer
 * in the tree, and small enough that the cache/DRAM completion wraps
 * (callback + completion tick) still fit inside an EventCallback.
 */
using MemCallback = SmallCallback<void(Tick), 24>;

/** A memory request traveling down the hierarchy. */
struct MemReq
{
    Addr addr = 0;
    std::uint32_t size = 64;         //!< bytes; one cache line by default
    bool write = false;
    TrafficClass cls = TrafficClass::Texture;
    std::uint32_t tileTag = invalidId; //!< originating screen tile
    MemCallback onComplete;            //!< may be empty for posted writes
};

/**
 * Fan-in state for requests split into multiple line-sized parts: the
 * original callback fires once, when the last part completes, with the
 * latest completion tick. One shared block per split request keeps the
 * per-part capture to a single shared_ptr.
 */
struct SplitJoin
{
    SplitJoin(std::size_t count, MemCallback callback)
        : remaining(count), cb(std::move(callback))
    {}

    std::size_t remaining;
    Tick latest = 0;
    MemCallback cb;
};

/** Completion callback for one part of a split request. */
inline MemCallback
splitJoinPart(const std::shared_ptr<SplitJoin> &join)
{
    return [join](Tick when) {
        if (when > join->latest)
            join->latest = when;
        if (--join->remaining == 0 && join->cb)
            join->cb(join->latest);
    };
}

/** Anything that can accept memory requests. */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /** Accept a request at the current tick. */
    virtual void access(MemReq req) = 0;
};

/**
 * Fixed-latency, infinite-bandwidth memory. With latency zero it builds
 * the "ideal memory" configuration behind Figure 6a (every access
 * completes instantly); it also serves as a test double for the caches.
 */
class IdealMemory : public MemSink
{
  public:
    IdealMemory(EventQueue &eq, Tick latency = 0)
        : queue(eq), lat(latency)
    {}

    void
    access(MemReq req) override
    {
        ++accesses;
        if (req.write)
            ++writes;
        if (!req.onComplete)
            return;
        if (lat == 0) {
            req.onComplete(queue.now());
        } else {
            auto cb = std::move(req.onComplete);
            const Tick done = queue.now() + lat;
            queue.schedule(done,
                           [cb = std::move(cb), done]() mutable {
                               cb(done);
                           });
        }
    }

    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;

  private:
    EventQueue &queue;
    Tick lat;
};

class Cache;
class SnapshotWriter;
class SnapshotReader;

/**
 * Tracks line replication across a group of sibling caches (the per-core
 * L1 texture caches of one or more Raster Units). A line installed while
 * already resident in another sibling is a replicated install: the same
 * 64 bytes occupy multiple L1s and the aggregate effective capacity
 * shrinks. The paper reports LIBRA's supertile scheduling cuts this
 * replication by 32.5% versus PTR alone (§V-A.3).
 */
class ReplicationTracker
{
  public:
    /** Register a sibling cache's install/evict hooks. */
    void attach(Cache &cache);

    /**
     * Direct recording interface, used instead of attach() by the
     * sharded engine: install/evict hooks fire on worker threads there,
     * so each shard buffers its events and the coordinator replays them
     * here in a fixed (shard, sequence) order at window barriers.
     */
    void recordInstall(Addr line);
    void recordEvict(Addr line);

    std::uint64_t installs() const { return totalInstalls; }
    std::uint64_t replicatedInstalls() const { return replicated; }

    /** Fraction of installs that duplicated a sibling-resident line. */
    double
    replicationRatio() const
    {
        return totalInstalls == 0
            ? 0.0
            : static_cast<double>(replicated) / totalInstalls;
    }

    /** Lines currently resident in more than one sibling. */
    std::uint64_t currentReplicas() const;

    void
    reset()
    {
        totalInstalls = 0;
        replicated = 0;
    }

    /**
     * Serialize counters and the live refcount table for a
     * frame-boundary snapshot. Entries are emitted sorted by line
     * address so the byte image is independent of hash-table layout.
     */
    void exportState(SnapshotWriter &w) const;

    /** Restore what exportState() wrote into this (fresh) tracker. */
    void importState(SnapshotReader &r);

  private:
    /** Sized for a texture-heavy L1 working set; grows if exceeded. The
     *  install/evict hooks fire on every L1 line turn-over, so this map
     *  shares the open-addressed design of the MSHR index. */
    OpenAddrMap<std::uint32_t> refCount{4096};
    std::uint64_t totalInstalls = 0;
    std::uint64_t replicated = 0;
};

} // namespace libra

#endif // LIBRA_CACHE_MEM_SYSTEM_HH
