#include "core/tile_scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace libra
{

namespace
{

/**
 * The adaptive resizer must keep enough supertiles for the hot/cold
 * pairing to mean anything: with fewer than ~4 per Raster Unit the
 * "hot end / cold end" split degenerates. At FHD this leaves the
 * paper's 16x16 maximum intact for 2 RUs; at reduced resolutions (or
 * many RUs) the maximum shrinks accordingly.
 */
SchedulerConfig
clampToGrid(SchedulerConfig cfg, const TileGrid &grid,
            std::uint32_t num_rus)
{
    while (cfg.maxSupertileSize > cfg.minSupertileSize
           && grid.superTileCount(cfg.maxSupertileSize) < 4 * num_rus) {
        cfg.maxSupertileSize /= 2;
    }
    cfg.initialSupertileSize = std::min(cfg.initialSupertileSize,
                                        cfg.maxSupertileSize);

    // The hot/cold split needs 1 <= hotRasterUnits < numRus to leave
    // both a hot and a cold end. GpuConfig::validate() rejects bad
    // values at the library boundary; a standalone scheduler (tests,
    // ablations) gets them clamped so nextTile() never degenerates —
    // e.g. hotRasterUnits = 0 on one RU would silently pull every tile
    // from the cold/back end, reversing the entire traversal.
    const std::uint32_t max_hot = num_rus > 1 ? num_rus - 1 : 1;
    const std::uint32_t clamped =
        std::clamp<std::uint32_t>(cfg.hotRasterUnits, 1, max_hot);
    if (clamped != cfg.hotRasterUnits) {
        warn("scheduler: hotRasterUnits ", cfg.hotRasterUnits,
             " out of range [1, ", max_hot, "] for ", num_rus,
             " RUs; clamped to ", clamped);
        cfg.hotRasterUnits = clamped;
    }
    return cfg;
}

} // namespace

TileScheduler::TileScheduler(const SchedulerConfig &cfg,
                             const TileGrid &tile_grid,
                             std::uint32_t num_rus)
    : config(clampToGrid(cfg, tile_grid, num_rus)), grid(tile_grid),
      numRus(num_rus), adaptive(config)
{
    libra_assert(num_rus > 0, "scheduler needs at least one RU");
    cursors.resize(num_rus);
}

void
TileScheduler::beginFrame(const FrameFeedback &prev)
{
    for (auto &cursor : cursors) {
        libra_assert(cursor.idx == cursor.tiles.size(),
                     "beginFrame with tiles still queued");
        cursor.tiles.clear();
        cursor.idx = 0;
    }
    buildQueue(prev);
}

void
TileScheduler::buildQueue(const FrameFeedback &prev)
{
    stQueue.clear();
    rankingCycles = 0;

    switch (config.policy) {
      case SchedulerPolicy::ZOrder:
      case SchedulerPolicy::Scanline:
        tempOrder = false;
        stSize = 1;
        break;
      case SchedulerPolicy::StaticSupertile:
        tempOrder = false;
        stSize = config.staticSupertileSize;
        break;
      case SchedulerPolicy::TemperatureStatic:
        tempOrder = prev.valid;
        stSize = config.staticSupertileSize;
        break;
      case SchedulerPolicy::Libra: {
        FrameObservation obs;
        obs.valid = prev.valid;
        obs.rasterCycles = prev.rasterCycles;
        obs.textureHitRatio = prev.textureHitRatio;
        const ScheduleDecision decision = adaptive.decide(obs);
        tempOrder = decision.temperatureOrder && prev.valid;
        stSize = decision.supertileSize;
        break;
      }
    }

    if (config.policy == SchedulerPolicy::Scanline) {
        for (const TileId t : grid.scanlineOrder())
            stQueue.push_back(t);
        return;
    }

    if (tempOrder) {
        libra_assert(prev.tileDramAccesses.size() == grid.tileCount(),
                     "temperature order needs per-tile feedback");
        TemperatureTable table(grid.tileCount());
        table.load(prev.tileDramAccesses, prev.tileInstructions);
        const auto ranks = table.rank(grid, stSize);
        for (const auto &rank : ranks)
            stQueue.push_back(rank.id);
        rankingCycles = TemperatureTable::hardwareCost(
            static_cast<std::uint32_t>(ranks.size())).rankingCycles;
    } else {
        for (SuperTileId s : grid.superTileZOrder(stSize))
            stQueue.push_back(s);
    }
}

std::optional<TileId>
TileScheduler::nextTile(std::uint32_t ru)
{
    libra_assert(ru < numRus, "bad RU index");
    RuCursor &cursor = cursors[ru];

    while (cursor.idx == cursor.tiles.size()) {
        if (stQueue.empty())
            return std::nullopt;
        SuperTileId s;
        const bool cold_ru = ru >= config.hotRasterUnits;
        if (tempOrder && cold_ru && numRus > config.hotRasterUnits) {
            // Cold Raster Units pull from the cold end of the ranking;
            // the first hotRasterUnits (paper: one) take the hot end
            // (§III-D / §V-D).
            s = stQueue.back();
            stQueue.pop_back();
        } else {
            s = stQueue.front();
            stQueue.pop_front();
        }
        cursor.tiles = grid.tilesInSuperTile(s, stSize);
        cursor.idx = 0;
    }
    return cursor.tiles[cursor.idx++];
}

std::uint64_t
TileScheduler::tilesRemaining() const
{
    std::uint64_t total = 0;
    for (const SuperTileId s : stQueue)
        total += grid.tilesInSuperTile(s, stSize).size();
    for (const auto &cursor : cursors)
        total += cursor.tiles.size() - cursor.idx;
    return total;
}

void
TileScheduler::exportState(SnapshotWriter &w) const
{
    libra_assert(tilesRemaining() == 0,
                 "scheduler snapshot mid-frame: tiles still queued");
    adaptive.exportState(w);
}

void
TileScheduler::importState(SnapshotReader &r)
{
    adaptive.importState(r);
}

} // namespace libra
