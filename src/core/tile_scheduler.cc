#include "core/tile_scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace libra
{

namespace
{

/**
 * The adaptive resizer must keep enough supertiles for the hot/cold
 * pairing to mean anything: with fewer than ~4 per Raster Unit the
 * "hot end / cold end" split degenerates. At FHD this leaves the
 * paper's 16x16 maximum intact for 2 RUs; at reduced resolutions (or
 * many RUs) the maximum shrinks accordingly.
 */
SchedulerConfig
clampToGrid(SchedulerConfig cfg, const TileGrid &grid,
            std::uint32_t num_rus)
{
    while (cfg.maxSupertileSize > cfg.minSupertileSize
           && grid.superTileCount(cfg.maxSupertileSize) < 4 * num_rus) {
        cfg.maxSupertileSize /= 2;
    }
    cfg.initialSupertileSize = std::min(cfg.initialSupertileSize,
                                        cfg.maxSupertileSize);

    // The hot/cold split needs 1 <= hotRasterUnits < numRus to leave
    // both a hot and a cold end. GpuConfig::validate() rejects bad
    // values at the library boundary; a standalone scheduler (tests,
    // ablations) gets them clamped so nextTile() never degenerates —
    // e.g. hotRasterUnits = 0 on one RU would silently pull every tile
    // from the cold/back end, reversing the entire traversal.
    const std::uint32_t max_hot = num_rus > 1 ? num_rus - 1 : 1;
    const std::uint32_t clamped =
        std::clamp<std::uint32_t>(cfg.hotRasterUnits, 1, max_hot);
    if (clamped != cfg.hotRasterUnits) {
        warn("scheduler: hotRasterUnits ", cfg.hotRasterUnits,
             " out of range [1, ", max_hot, "] for ", num_rus,
             " RUs; clamped to ", clamped);
        cfg.hotRasterUnits = clamped;
    }
    return cfg;
}

} // namespace

TileScheduler::TileScheduler(const SchedulerConfig &cfg,
                             const TileGrid &tile_grid,
                             std::uint32_t num_rus)
    : config(clampToGrid(cfg, tile_grid, num_rus)), grid(tile_grid),
      numRus(num_rus), policy(makeSchedulingPolicy(config, tile_grid))
{
    libra_assert(num_rus > 0, "scheduler needs at least one RU");
    cursors.resize(num_rus);
}

void
TileScheduler::beginFrame(const FrameFeedback &prev)
{
    for (auto &cursor : cursors) {
        libra_assert(cursor.idx == cursor.tiles.size(),
                     "beginFrame with tiles still queued");
        cursor.tiles.clear();
        cursor.idx = 0;
    }
    plan = policy->planFrame(prev);
}

std::optional<TileId>
TileScheduler::nextTile(std::uint32_t ru)
{
    libra_assert(ru < numRus, "bad RU index");
    RuCursor &cursor = cursors[ru];

    while (cursor.idx == cursor.tiles.size()) {
        if (plan.queue.empty())
            return std::nullopt;
        SuperTileId s;
        const bool cold_ru = ru >= config.hotRasterUnits;
        if (plan.temperatureOrder && cold_ru
            && numRus > config.hotRasterUnits) {
            // Cold Raster Units pull from the cold end of the ranking;
            // the first hotRasterUnits (paper: one) take the hot end
            // (§III-D / §V-D).
            s = plan.queue.back();
            plan.queue.pop_back();
        } else {
            s = plan.queue.front();
            plan.queue.pop_front();
        }
        cursor.tiles = grid.tilesInSuperTile(s, plan.supertileSize);
        cursor.idx = 0;

        if (skipTile) {
            // Rendering Elimination: unchanged tiles are discarded at
            // handout, never reaching the Tile Fetcher; the Gpu's
            // onTileSkipped accounting keeps exactly-once coverage.
            std::vector<TileId> kept;
            kept.reserve(cursor.tiles.size());
            for (const TileId t : cursor.tiles) {
                if (skipTile(t)) {
                    if (onTileSkipped)
                        onTileSkipped(t);
                } else {
                    kept.push_back(t);
                }
            }
            cursor.tiles = std::move(kept);
        }
    }
    return cursor.tiles[cursor.idx++];
}

std::uint64_t
TileScheduler::tilesRemaining() const
{
    std::uint64_t total = 0;
    for (const SuperTileId s : plan.queue)
        total += grid.tilesInSuperTile(s, plan.supertileSize).size();
    for (const auto &cursor : cursors)
        total += cursor.tiles.size() - cursor.idx;
    return total;
}

void
TileScheduler::exportState(SnapshotWriter &w) const
{
    libra_assert(tilesRemaining() == 0,
                 "scheduler snapshot mid-frame: tiles still queued");
    policy->exportState(w);
}

void
TileScheduler::importState(SnapshotReader &r)
{
    policy->importState(r);
}

} // namespace libra
