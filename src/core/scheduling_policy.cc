#include "core/scheduling_policy.hh"

#include "common/log.hh"
#include "core/adaptive_controller.hh"
#include "core/temperature_table.hh"

namespace libra
{

void
SchedulingPolicy::exportState(SnapshotWriter &) const
{
}

void
SchedulingPolicy::importState(SnapshotReader &)
{
}

namespace
{

/** Z-order queue of supertiles at @p st_size (the non-ranked orders). */
void
fillZOrder(FramePlan &plan, const TileGrid &grid)
{
    for (const SuperTileId s : grid.superTileZOrder(plan.supertileSize))
        plan.queue.push_back(s);
}

/**
 * Temperature ranking from last frame's per-tile feedback, hottest
 * first, charging the ranking hardware's cycles to the plan (§III-D).
 */
void
fillTemperatureRanked(FramePlan &plan, const TileGrid &grid,
                      const FrameFeedback &prev)
{
    libra_assert(prev.tileDramAccesses.size() == grid.tileCount(),
                 "temperature order needs per-tile feedback");
    TemperatureTable table(grid.tileCount());
    table.load(prev.tileDramAccesses, prev.tileInstructions);
    const auto ranks = table.rank(grid, plan.supertileSize);
    for (const auto &rank : ranks)
        plan.queue.push_back(rank.id);
    plan.rankingCycles = TemperatureTable::hardwareCost(
        static_cast<std::uint32_t>(ranks.size())).rankingCycles;
}

/** Interleaved Z-order dispatch of single tiles (the PTR baseline). */
class ZOrderPolicy final : public SchedulingPolicy
{
  public:
    explicit ZOrderPolicy(const TileGrid &g) : grid(g) {}

    const char *name() const override { return "z-order"; }

    FramePlan
    planFrame(const FrameFeedback &) override
    {
        FramePlan plan;
        plan.supertileSize = 1;
        fillZOrder(plan, grid);
        return plan;
    }

  private:
    const TileGrid &grid;
};

/** Row-major traversal (the less cache-friendly order of §II-B). */
class ScanlinePolicy final : public SchedulingPolicy
{
  public:
    explicit ScanlinePolicy(const TileGrid &g) : grid(g) {}

    const char *name() const override { return "scanline"; }

    FramePlan
    planFrame(const FrameFeedback &) override
    {
        FramePlan plan;
        plan.supertileSize = 1;
        for (const TileId t : grid.scanlineOrder())
            plan.queue.push_back(t);
        return plan;
    }

  private:
    const TileGrid &grid;
};

/** Fixed-size supertiles in Z-order (Fig. 16's static points). */
class StaticSupertilePolicy final : public SchedulingPolicy
{
  public:
    StaticSupertilePolicy(const SchedulerConfig &cfg, const TileGrid &g)
        : grid(g), stSize(cfg.staticSupertileSize)
    {
    }

    const char *name() const override { return "static-supertile"; }

    FramePlan
    planFrame(const FrameFeedback &) override
    {
        FramePlan plan;
        plan.supertileSize = stSize;
        fillZOrder(plan, grid);
        return plan;
    }

  private:
    const TileGrid &grid;
    const std::uint32_t stSize;
};

/** Temperature-ranked hot/cold order at a fixed supertile size. */
class TemperatureStaticPolicy final : public SchedulingPolicy
{
  public:
    TemperatureStaticPolicy(const SchedulerConfig &cfg,
                            const TileGrid &g)
        : grid(g), stSize(cfg.staticSupertileSize)
    {
    }

    const char *name() const override { return "temperature-static"; }

    FramePlan
    planFrame(const FrameFeedback &prev) override
    {
        FramePlan plan;
        plan.temperatureOrder = prev.valid;
        plan.supertileSize = stSize;
        if (plan.temperatureOrder)
            fillTemperatureRanked(plan, grid, prev);
        else
            fillZOrder(plan, grid);
        return plan;
    }

  private:
    const TileGrid &grid;
    const std::uint32_t stSize;
};

/** Full LIBRA: the adaptive controller chooses order and size. */
class LibraPolicy final : public SchedulingPolicy
{
  public:
    LibraPolicy(const SchedulerConfig &cfg, const TileGrid &g)
        : grid(g), adaptive(cfg)
    {
    }

    const char *name() const override { return "libra"; }

    FramePlan
    planFrame(const FrameFeedback &prev) override
    {
        FrameObservation obs;
        obs.valid = prev.valid;
        obs.rasterCycles = prev.rasterCycles;
        obs.textureHitRatio = prev.textureHitRatio;
        const ScheduleDecision decision = adaptive.decide(obs);

        FramePlan plan;
        plan.temperatureOrder = decision.temperatureOrder && prev.valid;
        plan.supertileSize = decision.supertileSize;
        if (plan.temperatureOrder)
            fillTemperatureRanked(plan, grid, prev);
        else
            fillZOrder(plan, grid);
        return plan;
    }

    void
    exportState(SnapshotWriter &w) const override
    {
        adaptive.exportState(w);
    }

    void
    importState(SnapshotReader &r) override
    {
        adaptive.importState(r);
    }

  private:
    const TileGrid &grid;
    AdaptiveController adaptive;
};

} // namespace

std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const SchedulerConfig &cfg, const TileGrid &grid)
{
    switch (cfg.policy) {
      case SchedulerPolicy::ZOrder:
        return std::make_unique<ZOrderPolicy>(grid);
      case SchedulerPolicy::Scanline:
        return std::make_unique<ScanlinePolicy>(grid);
      case SchedulerPolicy::StaticSupertile:
        return std::make_unique<StaticSupertilePolicy>(cfg, grid);
      case SchedulerPolicy::TemperatureStatic:
        return std::make_unique<TemperatureStaticPolicy>(cfg, grid);
      case SchedulerPolicy::Libra:
        return std::make_unique<LibraPolicy>(cfg, grid);
    }
    panic("unknown scheduling policy ",
          static_cast<int>(cfg.policy));
}

} // namespace libra
