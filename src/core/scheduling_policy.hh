/**
 * @file
 * The scheduling-policy interface: one object per tile-ordering
 * mechanism (paper §III-B/§III-D and the ablation variants).
 *
 * TileScheduler historically owned a switch over SchedulerPolicy that
 * mixed three concerns: the per-frame *decision* (traversal order and
 * supertile size), the *ranking* (temperature table) and the handout
 * mechanics (per-RU cursors, hot/cold ends). The decision + ranking
 * half is what varies between mechanisms, so it is extracted here: a
 * SchedulingPolicy consumes last frame's feedback and returns a
 * FramePlan; TileScheduler keeps only the handout mechanics.
 *
 * The contract every policy must satisfy (enforced mechanically by
 * tests/test_policy_conformance.cc, see DESIGN.md §13):
 *
 *  - planFrame() is deterministic: same feedback sequence, same plans;
 *  - the plan is complete: its supertile queue covers every tile of
 *    the grid exactly once at the plan's supertile size;
 *  - rankingCycles is attributed honestly: a policy that performed no
 *    ranking this frame must report 0 (the FramePlan it returns is a
 *    fresh value object, so stale attribution from a previous frame is
 *    impossible by construction);
 *  - cross-frame state, if any, round-trips through exportState() /
 *    importState() (the default implementations are for stateless
 *    policies and serialize nothing).
 */

#ifndef LIBRA_CORE_SCHEDULING_POLICY_HH
#define LIBRA_CORE_SCHEDULING_POLICY_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/scheduler_config.hh"
#include "gpu/tiling/tile_grid.hh"

namespace libra
{

class SnapshotWriter;
class SnapshotReader;

/** Everything a policy may use from the previous frame. */
struct FrameFeedback
{
    bool valid = false;
    std::uint64_t rasterCycles = 0;
    double textureHitRatio = 1.0;
    std::vector<std::uint64_t> tileDramAccesses;
    std::vector<std::uint64_t> tileInstructions;
};

/**
 * One frame's schedule, returned by value from planFrame() so every
 * field is freshly attributed each frame.
 */
struct FramePlan
{
    /** Hot/cold handout: RU 0..hot-1 pull the front, the rest the
     *  back. False = plain FIFO handout of the queue. */
    bool temperatureOrder = false;

    /** Supertile side the queue below is expressed in. */
    std::uint32_t supertileSize = 1;

    /** Cycles the ranking hardware spent building this plan; 0 when
     *  the policy did not rank (§III-E hides this under geometry). */
    std::uint64_t rankingCycles = 0;

    /** Supertiles to hand out: hot/front ... cold/back. */
    std::deque<SuperTileId> queue;
};

class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Stable identifier (schedulerPolicyName of the mechanism). */
    virtual const char *name() const = 0;

    /** Build the coming frame's plan from last frame's feedback. */
    virtual FramePlan planFrame(const FrameFeedback &prev) = 0;

    /** Serialize/restore cross-frame policy state. The defaults are
     *  the stateless contract: nothing written, nothing read. */
    virtual void exportState(SnapshotWriter &w) const;
    virtual void importState(SnapshotReader &r);
};

/**
 * Factory: the policy object for @p cfg.policy, planning over @p grid.
 * @p cfg must already be clamped to the grid (TileScheduler does this
 * before constructing its policy).
 */
std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const SchedulerConfig &cfg, const TileGrid &grid);

} // namespace libra

#endif // LIBRA_CORE_SCHEDULING_POLICY_HH
