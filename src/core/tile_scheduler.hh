/**
 * @file
 * The tile scheduler: decides which tile each Raster Unit renders next
 * (paper §III-B/§III-D).
 *
 * The Tile Fetcher pulls tiles per Raster Unit. The per-frame plan
 * (traversal order, supertile size, ranking) is produced by a
 * SchedulingPolicy object (core/scheduling_policy.hh); this class
 * keeps only the handout mechanics shared by every policy: the
 * supertile queue, the per-RU cursors and the hot/cold split —
 * RU 0..hotRasterUnits-1 pull the hot/front end of a
 * temperature-ordered queue, every other RU the cold/back end.
 *
 * Rendering Elimination hooks in here too: when the Gpu installs a
 * skipTile predicate, tiles whose input signature is unchanged are
 * discarded at handout time — before they ever reach the Tile Fetcher
 * — and reported through onTileSkipped so frame accounting still sees
 * them exactly once. Both callbacks run on the shared/coordinator
 * event domain in the sharded engine (nextTile() is only ever called
 * from the fetcher), so skip decisions stay deterministic.
 */

#ifndef LIBRA_CORE_TILE_SCHEDULER_HH
#define LIBRA_CORE_TILE_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/scheduler_config.hh"
#include "core/scheduling_policy.hh"
#include "gpu/tiling/tile_grid.hh"

namespace libra
{

class TileScheduler
{
  public:
    TileScheduler(const SchedulerConfig &cfg, const TileGrid &grid,
                  std::uint32_t num_rus);

    /** Prepare the schedule for the coming frame. */
    void beginFrame(const FrameFeedback &prev);

    /**
     * Next tile for Raster Unit @p ru, or nullopt when the frame's
     * tiles are exhausted. Within a supertile, tiles come in Z-order.
     */
    std::optional<TileId> nextTile(std::uint32_t ru);

    /**
     * Rendering Elimination hook (installed by the Gpu when
     * GpuConfig::renderingElimination is set): a tile for which
     * skipTile returns true is dropped at handout instead of being
     * returned from nextTile(), and onTileSkipped is invoked for it so
     * the frame's exactly-once coverage accounting still holds.
     */
    std::function<bool(TileId)> skipTile;
    std::function<void(TileId)> onTileSkipped;

    // --- Introspection (tests, benches, reports) -----------------------
    bool temperatureOrderActive() const { return plan.temperatureOrder; }
    std::uint32_t supertileSize() const { return plan.supertileSize; }
    std::uint64_t lastRankingCycles() const { return plan.rankingCycles; }

    /** The policy object planning this scheduler's frames. */
    const SchedulingPolicy &schedulingPolicy() const { return *policy; }

    /**
     * Tiles not yet handed out this frame (queued supertiles plus
     * partially consumed per-RU cursors). 64-bit: a supertile count
     * times tiles-per-supertile overflows 32 bits on extreme grids.
     */
    std::uint64_t tilesRemaining() const;

    /**
     * Serialize/restore cross-frame scheduler state. The supertile
     * queue, cursors and ranking cost are rebuilt by beginFrame(), so
     * this delegates to the policy object — only a policy with
     * cross-frame state (LIBRA's adaptive controller) writes anything.
     */
    void exportState(SnapshotWriter &w) const;
    void importState(SnapshotReader &r);

  private:
    SchedulerConfig config;
    const TileGrid &grid;
    std::uint32_t numRus;
    std::unique_ptr<SchedulingPolicy> policy;

    /** This frame's plan, replaced wholesale every beginFrame(). */
    FramePlan plan;

    /** Per-RU current supertile contents. */
    struct RuCursor
    {
        std::vector<TileId> tiles;
        std::size_t idx = 0;
    };
    std::vector<RuCursor> cursors;
};

} // namespace libra

#endif // LIBRA_CORE_TILE_SCHEDULER_HH
