/**
 * @file
 * The tile scheduler: decides which tile each Raster Unit renders next
 * (paper §III-B/§III-D).
 *
 * The Tile Fetcher pulls tiles per Raster Unit. Depending on policy:
 *
 *  - ZOrder: one shared Z-order stream; any RU pulls the next tile —
 *    the interleaved-assignment PTR baseline.
 *  - StaticSupertile: a Z-order stream of fixed-size supertiles; a
 *    whole supertile is pulled by one RU.
 *  - TemperatureStatic: supertiles ranked hottest→coldest from the
 *    previous frame's temperature table; RU 0 pulls from the hot end,
 *    every other RU pulls from the cold end.
 *  - Libra: TemperatureStatic/ZOrder chosen per frame by the
 *    AdaptiveController, with dynamic supertile resizing.
 */

#ifndef LIBRA_CORE_TILE_SCHEDULER_HH
#define LIBRA_CORE_TILE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/adaptive_controller.hh"
#include "core/scheduler_config.hh"
#include "core/temperature_table.hh"
#include "gpu/tiling/tile_grid.hh"

namespace libra
{

/** Everything the scheduler may use from the previous frame. */
struct FrameFeedback
{
    bool valid = false;
    std::uint64_t rasterCycles = 0;
    double textureHitRatio = 1.0;
    std::vector<std::uint64_t> tileDramAccesses;
    std::vector<std::uint64_t> tileInstructions;
};

class TileScheduler
{
  public:
    TileScheduler(const SchedulerConfig &cfg, const TileGrid &grid,
                  std::uint32_t num_rus);

    /** Prepare the schedule for the coming frame. */
    void beginFrame(const FrameFeedback &prev);

    /**
     * Next tile for Raster Unit @p ru, or nullopt when the frame's
     * tiles are exhausted. Within a supertile, tiles come in Z-order.
     */
    std::optional<TileId> nextTile(std::uint32_t ru);

    // --- Introspection (tests, benches, reports) -----------------------
    bool temperatureOrderActive() const { return tempOrder; }
    std::uint32_t supertileSize() const { return stSize; }
    std::uint64_t lastRankingCycles() const { return rankingCycles; }

    /**
     * Tiles not yet handed out this frame (queued supertiles plus
     * partially consumed per-RU cursors). 64-bit: a supertile count
     * times tiles-per-supertile overflows 32 bits on extreme grids.
     */
    std::uint64_t tilesRemaining() const;

    /**
     * Serialize/restore cross-frame scheduler state. Only the adaptive
     * controller carries state across frames — the supertile queue,
     * cursors and ranking cost are rebuilt by beginFrame() — so this
     * delegates to AdaptiveController.
     */
    void exportState(SnapshotWriter &w) const;
    void importState(SnapshotReader &r);

  private:
    void buildQueue(const FrameFeedback &prev);

    SchedulerConfig config;
    const TileGrid &grid;
    std::uint32_t numRus;
    AdaptiveController adaptive;

    bool tempOrder = false;
    std::uint32_t stSize = 1;
    std::uint64_t rankingCycles = 0;

    /** Supertiles to hand out: hot/front ... cold/back. */
    std::deque<SuperTileId> stQueue;

    /** Per-RU current supertile contents. */
    struct RuCursor
    {
        std::vector<TileId> tiles;
        std::size_t idx = 0;
    };
    std::vector<RuCursor> cursors;
};

} // namespace libra

#endif // LIBRA_CORE_TILE_SCHEDULER_HH
