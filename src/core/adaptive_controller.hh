/**
 * @file
 * LIBRA's adaptive per-frame controller (paper §III-D, Fig. 10).
 *
 * Once per frame, using only last-frame observables (frame-to-frame
 * coherence makes them predictive), the controller decides:
 *
 *  1. the tile traversal order — conventional Z-order vs the
 *     temperature-aware hot/cold order. Z-order is preferred while the
 *     texture-L1 hit ratio stays above a threshold (80%: memory
 *     congestion unlikely); decisions only change when performance
 *     varied significantly (3%); and when both hit ratio and
 *     performance degraded, the controller flips to the alternative
 *     ordering regardless (the escape case of §III-D).
 *
 *  2. the supertile size — hill-climbing on frame time over
 *     {2x2, 4x4, 8x8, 16x16}: keep growing while performance improves,
 *     reverse direction when it degrades, with a 0.25% dead zone.
 */

#ifndef LIBRA_CORE_ADAPTIVE_CONTROLLER_HH
#define LIBRA_CORE_ADAPTIVE_CONTROLLER_HH

#include <cstdint>

#include "core/scheduler_config.hh"

namespace libra
{

class SnapshotWriter;
class SnapshotReader;

/** Per-frame observables the controller consumes. */
struct FrameObservation
{
    bool valid = false;
    std::uint64_t rasterCycles = 0;
    double textureHitRatio = 1.0;
};

/** The controller's decision for the coming frame. */
struct ScheduleDecision
{
    bool temperatureOrder = false;
    std::uint32_t supertileSize = 4;
};

class AdaptiveController
{
  public:
    explicit AdaptiveController(const SchedulerConfig &cfg);

    /**
     * Consume the previous frame's observation and produce the decision
     * for the next frame.
     */
    ScheduleDecision decide(const FrameObservation &obs);

    /** Current state, for tests and reporting. */
    bool temperatureOrder() const { return useTemperature; }
    std::uint32_t supertileSize() const { return stSize; }

    /** Serialize/restore the controller's cross-frame window (the
     *  current decision plus the retained frame-N-1 observation). */
    void exportState(SnapshotWriter &w) const;
    void importState(SnapshotReader &r);

  private:
    /** Relative change later vs earlier; 0 when either is missing. */
    static double relDelta(std::uint64_t earlier, std::uint64_t later);

    SchedulerConfig config;

    bool useTemperature = false;
    std::uint32_t stSize;
    bool growing = true;

    /**
     * Frame N-1, the only retained observation: every §III-D rule is a
     * two-frame comparison of the incoming observation (frame N) against
     * this one, so no older history is kept.
     */
    FrameObservation prev;
};

} // namespace libra

#endif // LIBRA_CORE_ADAPTIVE_CONTROLLER_HH
