#include "core/temperature_table.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace libra
{

TemperatureTable::TemperatureTable(std::uint32_t tile_count)
{
    dram.resize(tile_count, 0);
    instr.resize(tile_count, 0);
}

void
TemperatureTable::reset()
{
    std::fill(dram.begin(), dram.end(), 0);
    std::fill(instr.begin(), instr.end(), 0);
}

void
TemperatureTable::addDramAccess(TileId tile, std::uint64_t n)
{
    libra_assert(tile < dram.size(), "tile id out of range");
    dram[tile] += n;
}

void
TemperatureTable::addInstructions(TileId tile, std::uint64_t n)
{
    libra_assert(tile < instr.size(), "tile id out of range");
    instr[tile] += n;
}

void
TemperatureTable::load(const std::vector<std::uint64_t> &dram_accesses,
                       const std::vector<std::uint64_t> &instructions)
{
    libra_assert(dram_accesses.size() == dram.size()
                     && instructions.size() == instr.size(),
                 "feedback vector size mismatch");
    dram = dram_accesses;
    instr = instructions;
}

std::uint32_t
TemperatureTable::quantizeTemperature(std::uint64_t accesses,
                                      std::uint64_t instructions)
{
    // Saturate to the hardware counter widths first (§III-E).
    const std::uint64_t a = std::min<std::uint64_t>(accesses,
                                                    accessSaturation);
    const std::uint64_t i = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(instructions, instrSaturation));
    // 15-bit fixed-point ratio, saturating.
    const std::uint64_t q = (a * ratioScale) / i;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(q, (1u << 15) - 1));
}

std::vector<SuperTileRank>
TemperatureTable::rank(const TileGrid &grid, std::uint32_t st) const
{
    const std::uint32_t count = grid.superTileCount(st);
    std::vector<SuperTileRank> ranks(count);
    for (SuperTileId s = 0; s < count; ++s)
        ranks[s].id = s;

    for (TileId tile = 0; tile < grid.tileCount(); ++tile) {
        SuperTileRank &r = ranks[grid.superTileOf(tile, st)];
        r.accesses += dram[tile];
        r.instructions += instr[tile];
    }
    for (auto &r : ranks)
        r.temperature = quantizeTemperature(r.accesses, r.instructions);

    std::stable_sort(ranks.begin(), ranks.end(),
                     [](const SuperTileRank &a, const SuperTileRank &b) {
                         if (a.temperature != b.temperature)
                             return a.temperature > b.temperature;
                         return a.id < b.id;
                     });
    return ranks;
}

HardwareCost
TemperatureTable::hardwareCost(std::uint32_t supertile_entries)
{
    HardwareCost cost;
    cost.entries = supertile_entries;
    // 16b accesses + 24b instructions + 15b ratio + 9b id = 64 bits.
    cost.entryBits = 16 + 24 + 15 + 9;
    cost.storageBits = static_cast<std::uint64_t>(cost.entryBits)
        * supertile_entries;
    // O(n log n) compare-and-swap passes, 3 cycles each (2 reads, 1
    // compare, writes overlapped) — the paper's conservative estimate.
    const double n = std::max(1u, supertile_entries);
    // Truncating n*log2(n) reproduces the paper's 4587 comparisons for
    // n = 510.
    const std::uint64_t comparisons =
        static_cast<std::uint64_t>(n * std::log2(n));
    cost.rankingCycles = 3 * comparisons;
    return cost;
}

} // namespace libra
