/**
 * @file
 * Configuration of the tile scheduler (paper §III-B/C/D).
 */

#ifndef LIBRA_CORE_SCHEDULER_CONFIG_HH
#define LIBRA_CORE_SCHEDULER_CONFIG_HH

#include <cstdint>

namespace libra
{

/** Which tile scheduling policy the Tile Fetcher follows. */
enum class SchedulerPolicy
{
    /**
     * Conventional Z-order (Morton) traversal. With multiple Raster
     * Units, tiles are handed out in that order to whichever RU has
     * space — the "interleaved tile assignment" PTR baseline (§III-A).
     */
    ZOrder,

    /**
     * Z-order traversal over fixed-size supertiles; each supertile is
     * assigned whole to one RU (Fig. 16's static points). Temperature
     * ranking is disabled.
     */
    StaticSupertile,

    /**
     * Full LIBRA: adaptive per-frame choice between Z-order and the
     * temperature-based order, hot/cold RU pairing, and dynamic
     * supertile resizing (§III-D).
     */
    Libra,

    /**
     * Ablation: temperature-based hot/cold ordering with a fixed
     * supertile size (no adaptivity).
     */
    TemperatureStatic,

    /**
     * Ablation: scanline (row-major) traversal instead of Morton —
     * the less cache-friendly conventional order of §II-B.
     */
    Scanline
};

const char *schedulerPolicyName(SchedulerPolicy policy);

inline const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::ZOrder: return "z-order";
      case SchedulerPolicy::StaticSupertile: return "static-supertile";
      case SchedulerPolicy::Libra: return "libra";
      case SchedulerPolicy::TemperatureStatic: return "temperature-static";
      case SchedulerPolicy::Scanline: return "scanline";
    }
    return "?";
}

/** Scheduler knobs; defaults are the paper's chosen values. */
struct SchedulerConfig
{
    SchedulerPolicy policy = SchedulerPolicy::ZOrder;

    /** Supertile side for StaticSupertile / TemperatureStatic. */
    std::uint32_t staticSupertileSize = 4;

    /** Initial supertile side for LIBRA's dynamic resizing. */
    std::uint32_t initialSupertileSize = 4;

    /**
     * Texture-L1 hit-ratio threshold: above it, memory congestion is
     * unlikely and Z-order is used (§III-D; 80%).
     */
    double hitRatioThreshold = 0.80;

    /**
     * Performance-variation threshold that triggers switching the tile
     * ordering scheme (§III-D; 3%).
     */
    double orderSwitchThreshold = 0.03;

    /**
     * Performance-variation threshold for resizing supertiles
     * (§III-D; 0.25%).
     */
    double resizeThreshold = 0.0025;

    /** Supertile sizes the resizer may choose among (powers of two). */
    std::uint32_t minSupertileSize = 2;
    std::uint32_t maxSupertileSize = 16;

    /**
     * Raster Units dedicated to the hot end of the ranking; the rest
     * pull from the cold end. The paper fixes this at one so at most
     * one RU processes high-demand tiles at any time (§V-D); exposed
     * here for the ablation bench.
     */
    std::uint32_t hotRasterUnits = 1;
};

} // namespace libra

#endif // LIBRA_CORE_SCHEDULER_CONFIG_HH
