#include "core/adaptive_controller.hh"

#include <algorithm>
#include <cmath>

#include "check/snapshot.hh"
#include "common/log.hh"

namespace libra
{

AdaptiveController::AdaptiveController(const SchedulerConfig &cfg)
    : config(cfg), stSize(cfg.initialSupertileSize)
{
    stSize = std::clamp(stSize, config.minSupertileSize,
                        config.maxSupertileSize);
}

double
AdaptiveController::relDelta(std::uint64_t earlier, std::uint64_t later)
{
    if (earlier == 0)
        return 0.0;
    return (static_cast<double>(later) - static_cast<double>(earlier))
        / static_cast<double>(earlier);
}

ScheduleDecision
AdaptiveController::decide(const FrameObservation &obs)
{
    if (!obs.valid) {
        // First frame: no history, render in Z-order.
        prev = obs;
        return {false, stSize};
    }

    // perf_delta > 0 means the last frame got SLOWER than the one
    // before it.
    const bool have_history = prev.valid;
    const double perf_delta = have_history
        ? relDelta(prev.rasterCycles, obs.rasterCycles)
        : 0.0;

    // ---- Tile traversal order (Fig. 10) -------------------------------
    if (!have_history) {
        // Second frame: first chance to use profiled data; pick by the
        // hit-ratio rule alone.
        useTemperature = obs.textureHitRatio < config.hitRatioThreshold;
    } else if (std::fabs(perf_delta) > config.orderSwitchThreshold) {
        const bool hit_degraded =
            obs.textureHitRatio < prev.textureHitRatio;
        const bool perf_degraded = perf_delta > 0.0;
        if (hit_degraded && perf_degraded) {
            // Both metrics degraded: the current scheme is failing even
            // if the hit-ratio rule would keep it — flip (§III-D).
            useTemperature = !useTemperature;
        } else {
            useTemperature =
                obs.textureHitRatio < config.hitRatioThreshold;
        }
    }
    // else: performance stable — keep the current ordering.

    // ---- Supertile size (hill climbing, §III-D) ------------------------
    if (have_history) {
        const bool improved = perf_delta < -config.resizeThreshold;
        const bool degraded = perf_delta > config.resizeThreshold;
        if (improved) {
            // Keep moving in the current direction.
            stSize = growing
                ? std::min(stSize * 2, config.maxSupertileSize)
                : std::max(stSize / 2, config.minSupertileSize);
        } else if (degraded) {
            // Reverse direction.
            growing = !growing;
            stSize = growing
                ? std::min(stSize * 2, config.maxSupertileSize)
                : std::max(stSize / 2, config.minSupertileSize);
        }
        // Inside the dead zone: keep the current size.
    }

    prev = obs;
    return {useTemperature, stSize};
}

void
AdaptiveController::exportState(SnapshotWriter &w) const
{
    w.putBool(useTemperature);
    w.putU32(stSize);
    w.putBool(growing);
    w.putBool(prev.valid);
    w.putU64(prev.rasterCycles);
    w.putDouble(prev.textureHitRatio);
}

void
AdaptiveController::importState(SnapshotReader &r)
{
    useTemperature = r.takeBool();
    stSize = r.takeU32();
    growing = r.takeBool();
    prev.valid = r.takeBool();
    prev.rasterCycles = r.takeU64();
    prev.textureHitRatio = r.takeDouble();
    r.check(stSize >= config.minSupertileSize
                && stSize <= config.maxSupertileSize,
            "supertile size outside the configured range");
}

} // namespace libra
