/**
 * @file
 * LIBRA's temperature table (paper §III-B, §III-E).
 *
 * Hardware counters accumulate, per screen tile, the number of DRAM
 * accesses and the number of executed instructions during a frame. The
 * "temperature" of a (super)tile is the ratio DRAM-accesses per
 * instruction — a proxy for memory intensity. At the next frame's
 * geometry phase the table is aggregated at the chosen supertile
 * granularity and ranked hottest→coldest; the ranking latency hides
 * completely under the Geometry Pipeline (§III-E), which this model
 * checks explicitly.
 *
 * The hardware quantization of §III-E is modeled faithfully: 16-bit
 * saturating access counters, 24-bit instruction counters, a 15-bit
 * fixed-point ratio and a 9-bit supertile id, 64 bits per entry.
 */

#ifndef LIBRA_CORE_TEMPERATURE_TABLE_HH
#define LIBRA_CORE_TEMPERATURE_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpu/tiling/tile_grid.hh"

namespace libra
{

/** One ranked supertile. */
struct SuperTileRank
{
    SuperTileId id = 0;
    std::uint32_t temperature = 0; //!< 15-bit fixed-point accesses/instr
    std::uint64_t accesses = 0;
    std::uint64_t instructions = 0;
};

/** Hardware cost estimate for the table + ranking logic (§III-E). */
struct HardwareCost
{
    std::uint32_t entryBits = 64;
    std::uint32_t entries = 0;
    std::uint64_t storageBits = 0;
    std::uint64_t rankingCycles = 0; //!< 3 cycles per compare, n log2 n
};

class TemperatureTable
{
  public:
    /** Fixed-point scale of the stored ratio (15-bit field). */
    static constexpr std::uint32_t ratioScale = 1u << 15;
    static constexpr std::uint32_t accessSaturation = 0xffffu;   // 16 bits
    static constexpr std::uint32_t instrSaturation = 0xffffffu;  // 24 bits

    explicit TemperatureTable(std::uint32_t tile_count);

    /** Clear all per-tile counters (start of a frame). */
    void reset();

    void addDramAccess(TileId tile, std::uint64_t n = 1);
    void addInstructions(TileId tile, std::uint64_t n);

    std::uint64_t dramAccesses(TileId tile) const { return dram[tile]; }
    std::uint64_t instructions(TileId tile) const { return instr[tile]; }

    const std::vector<std::uint64_t> &dramVector() const { return dram; }
    const std::vector<std::uint64_t> &instrVector() const { return instr; }

    /** Load previously collected per-tile counters (frame feedback). */
    void load(const std::vector<std::uint64_t> &dram_accesses,
              const std::vector<std::uint64_t> &instructions);

    /**
     * Aggregate at supertile side @p st and rank hottest→coldest.
     * Ties break by supertile id for determinism.
     */
    std::vector<SuperTileRank> rank(const TileGrid &grid,
                                    std::uint32_t st) const;

    /**
     * Quantized temperature of one aggregated supertile, exactly as the
     * 64-bit table entry would store it.
     */
    static std::uint32_t quantizeTemperature(std::uint64_t accesses,
                                             std::uint64_t instructions);

    /** §III-E cost model for @p supertile_entries table entries. */
    static HardwareCost hardwareCost(std::uint32_t supertile_entries);

  private:
    std::vector<std::uint64_t> dram;
    std::vector<std::uint64_t> instr;
};

} // namespace libra

#endif // LIBRA_CORE_TEMPERATURE_TABLE_HH
