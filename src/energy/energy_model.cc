#include "energy/energy_model.hh"

namespace libra
{

EnergyBreakdown
computeEnergy(const EnergyParams &params, const EnergyEvents &events)
{
    constexpr double pj_to_mj = 1e-9;

    EnergyBreakdown out;
    out.coreMj = pj_to_mj
        * (static_cast<double>(events.warpInstructions) * params.aluOpPj
           + static_cast<double>(events.vertices) * params.vertexPj);
    out.cacheMj = pj_to_mj
        * (static_cast<double>(events.l1Accesses) * params.l1AccessPj
           + static_cast<double>(events.l2Accesses) * params.l2AccessPj);
    out.dramMj = pj_to_mj
        * (static_cast<double>(events.dramLines) * params.dramLinePj
           + static_cast<double>(events.dramActivates)
                 * params.dramActivatePj);
    out.fixedFunctionMj = pj_to_mj
        * (static_cast<double>(events.rasterQuads) * params.rasterQuadPj
           + static_cast<double>(events.blendQuads) * params.blendQuadPj);
    out.staticMj = pj_to_mj
        * static_cast<double>(events.cycles) * params.staticPjPerCycle;
    out.totalMj = out.coreMj + out.cacheMj + out.dramMj
        + out.fixedFunctionMj + out.staticMj;
    return out;
}

} // namespace libra
