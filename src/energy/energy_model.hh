/**
 * @file
 * Event-energy model — the McPAT/DRAMsim3-energy substitute.
 *
 * Energy = sum over event classes of (count x per-event energy) plus
 * static (leakage + clock tree) power integrated over execution time.
 * The per-event constants are plausible 22 nm mobile-GPU values; the
 * paper's energy results are first-order driven by (a) execution-time
 * reduction (static share) and (b) DRAM traffic/latency, both of which
 * this captures. All energies in picojoules, results in millijoules.
 */

#ifndef LIBRA_ENERGY_ENERGY_MODEL_HH
#define LIBRA_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

namespace libra
{

/** Per-event energies (pJ) and static power (pJ per GPU cycle). */
struct EnergyParams
{
    double aluOpPj = 6.0;          //!< per warp-instruction executed
    double l1AccessPj = 14.0;      //!< per L1 cache access (any L1)
    double l2AccessPj = 75.0;      //!< per L2 access
    double dramLinePj = 6200.0;    //!< per 64B DRAM read/write burst
    double dramActivatePj = 1900.0; //!< per row activation (ACT+PRE)
    double rasterQuadPj = 4.0;     //!< rasterizer + Early-Z per quad
    double blendQuadPj = 3.0;      //!< blend + color-buffer write
    double vertexPj = 60.0;        //!< per vertex processed
    double staticPjPerCycle = 500.0; //!< leakage + clock, 0.4 W @ 800MHz
};

/** Event counts for an interval (usually one frame or one run). */
struct EnergyEvents
{
    std::uint64_t warpInstructions = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t dramLines = 0;
    std::uint64_t dramActivates = 0;
    std::uint64_t rasterQuads = 0;
    std::uint64_t blendQuads = 0;
    std::uint64_t vertices = 0;
    std::uint64_t cycles = 0;
};

/** Energy totals in millijoules. */
struct EnergyBreakdown
{
    double coreMj = 0.0;
    double cacheMj = 0.0;
    double dramMj = 0.0;
    double fixedFunctionMj = 0.0;
    double staticMj = 0.0;
    double totalMj = 0.0;
};

/** Fold events into a breakdown under @p params. */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const EnergyEvents &events);

} // namespace libra

#endif // LIBRA_ENERGY_ENERGY_MODEL_HH
