#include "farm/farm_server.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "check/snapshot.hh"
#include "common/log.hh"
#include "trace/json.hh"
#include "trace/run_report.hh"
#include "workload/benchmarks.hh"

namespace libra
{

namespace
{

namespace fs = std::filesystem;

/** One journal line: the accepted request, re-parseable for replay. */
std::string
journalLine(const std::string &key, const FarmRequest &req)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value(kFarmJournalSchema);
    w.key("key");
    w.value(key);
    // The request rides along as a string so replay reuses
    // parseFarmRequest verbatim instead of a second schema walk.
    w.key("request_line");
    w.value(farmRequestLine(req));
    w.endObject();
    return w.str();
}

} // namespace

/** One client connection. The fd is written under writeMtx only, and
 *  close happens under the same mutex, so a worker responding can never
 *  race a concurrently-closing reader onto a reused descriptor. */
struct FarmServer::Connection
{
    int fd = -1;
    std::mutex writeMtx;
    bool open = true; //!< under writeMtx
    std::atomic<std::uint32_t> pending{0}; //!< unanswered accepted reqs
};

/** One unit of simulation work, shared by every coalesced waiter. */
struct FarmServer::Task
{
    FarmRequest req;
    ResultCacheKey key;
    std::string keyStr;
    std::uint64_t configHash = 0;

    struct Waiter
    {
        std::shared_ptr<Connection> conn;
        std::string id;
        FarmCacheState state = FarmCacheState::Miss;
    };

    std::mutex mtx;
    bool done = false;                //!< under mtx
    std::vector<Waiter> waiters;      //!< under mtx
    std::string report;               //!< set by the worker before done
    Status failure = Status::ok();    //!< set by the worker before done
};

Result<std::unique_ptr<FarmServer>>
FarmServer::start(FarmOptions options)
{
    if (options.cacheDir.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm: cacheDir is required");
    }
    if (options.socketPath.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm: socketPath is required");
    }
    sockaddr_un addr{};
    if (options.socketPath.size() >= sizeof(addr.sun_path)) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm: socket path longer than ",
                             sizeof(addr.sun_path) - 1, " bytes: ",
                             options.socketPath);
    }
    if (options.workers == 0)
        options.workers = 1;

    std::unique_ptr<FarmServer> srv(new FarmServer);
    srv->opt = std::move(options);

    Result<ResultCache> cache = ResultCache::open(srv->opt.cacheDir);
    if (!cache.isOk())
        return cache.status();
    srv->cache = std::move(*cache);

    // Recovery before the socket opens: every previously accepted
    // request is completed into the cache (or warned away as
    // permanently failing) before any client can connect.
    if (Status st = srv->recoverFromJournal(); !st.isOk())
        return st;

    if (!srv->opt.journalPath.empty()) {
        // Recovery drained the journal into the cache, so truncate —
        // the cache entry, not the journal line, is the durable record
        // of completed work.
        srv->journal = std::fopen(srv->opt.journalPath.c_str(), "wb");
        if (!srv->journal) {
            return Status::error(ErrorCode::IoError,
                                 "farm: cannot open journal ",
                                 srv->opt.journalPath, ": ",
                                 std::strerror(errno));
        }
    }

    std::error_code ec;
    fs::remove(srv->opt.socketPath, ec); // stale socket from a kill -9

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status::error(ErrorCode::IoError, "farm: socket(): ",
                             std::strerror(errno));
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, srv->opt.socketPath.c_str(),
                srv->opt.socketPath.size() + 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0
        || ::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::error(ErrorCode::IoError, "farm: cannot listen "
                             "on ", srv->opt.socketPath, ": ",
                             std::strerror(err));
    }
    srv->listenFd = fd;

    for (unsigned i = 0; i < srv->opt.workers; ++i)
        srv->workers.emplace_back([s = srv.get()] { s->workerLoop(); });
    srv->listener = std::thread([s = srv.get()] { s->listenerLoop(); });
    inform("farm: serving on ", srv->opt.socketPath, " (",
           srv->opt.workers, " workers, cache ", srv->opt.cacheDir, ")");
    return srv;
}

FarmServer::~FarmServer()
{
    stop();
    if (listener.joinable())
        listener.join();
    for (std::thread &w : workers)
        w.join();
    reapConnThreads(/*all=*/true);
    if (journal)
        std::fclose(journal);
    if (listenFd >= 0)
        ::close(listenFd);
    std::error_code ec;
    fs::remove(opt.socketPath, ec);
}

void
FarmServer::wait()
{
    std::unique_lock<std::mutex> lock(waitMtx);
    waitCv.wait(lock, [this] { return stopped; });
}

void
FarmServer::stop()
{
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true))
        return;
    if (listenFd >= 0)
        ::shutdown(listenFd, SHUT_RDWR);
    {
        std::lock_guard<std::mutex> lock(connMtx);
        for (const std::shared_ptr<Connection> &c : conns) {
            std::lock_guard<std::mutex> wl(c->writeMtx);
            if (c->open)
                ::shutdown(c->fd, SHUT_RDWR);
        }
    }
    {
        // `stopping` is set outside taskMtx, so notify while holding
        // it: a worker that just saw stopping==false must reach the cv
        // wait (releasing taskMtx) before this notify can fire, or the
        // wakeup is lost and shutdown wedges on the join.
        std::lock_guard<std::mutex> lock(taskMtx);
        taskCv.notify_all();
    }
    {
        std::lock_guard<std::mutex> lock(waitMtx);
        stopped = true;
    }
    waitCv.notify_all();
}

FarmStats
FarmServer::stats() const
{
    std::lock_guard<std::mutex> lock(statsMtx);
    return counters;
}

Status
FarmServer::recoverFromJournal()
{
    if (opt.journalPath.empty())
        return Status::ok();

    std::FILE *f = std::fopen(opt.journalPath.c_str(), "rb");
    if (!f)
        return Status::ok(); // no journal yet: nothing accepted

    std::string text;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        return Status::error(ErrorCode::IoError, "farm journal: read "
                             "of ", opt.journalPath, " failed");
    }

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        if (end > start)
            lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }

    std::vector<std::pair<std::string, FarmRequest>> pending;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const bool last = i + 1 == lines.size();
        const bool has_newline =
            last ? !text.empty() && text.back() == '\n' : true;
        Result<JsonValue> doc = parseJson(lines[i]);
        if (!doc.isOk() || !has_newline) {
            if (last) {
                // Same contract as the sweep journal: a record is only
                // durable once its newline hit the disk.
                warn("farm journal ", opt.journalPath, ": discarding "
                     "torn trailing line (", lines[i].size(),
                     " bytes) — interrupted append");
                break;
            }
            return Status::error(ErrorCode::CorruptData, "farm journal ",
                                 opt.journalPath, ": line ", i + 1,
                                 " is unparseable: ",
                                 doc.status().message());
        }
        const JsonValue *schema = doc->find("schema");
        const JsonValue *key = doc->find("key");
        const JsonValue *line = doc->find("request_line");
        if (!schema || !schema->isString()
            || schema->str != kFarmJournalSchema || !key
            || !key->isString() || !line || !line->isString()) {
            return Status::error(ErrorCode::CorruptData, "farm journal ",
                                 opt.journalPath, ": line ", i + 1,
                                 " is not a ", kFarmJournalSchema,
                                 " record");
        }
        Result<FarmRequest> req = parseFarmRequest(line->str);
        if (!req.isOk()) {
            return Status::error(ErrorCode::CorruptData, "farm journal ",
                                 opt.journalPath, ": line ", i + 1, ": ",
                                 req.status().message());
        }
        // Last entry for a key wins; earlier duplicates describe the
        // same work (the key pins benchmark, config, frame range).
        bool seen = false;
        for (auto &[k, r] : pending) {
            if (k == key->str) {
                r = *req;
                seen = true;
                break;
            }
        }
        if (!seen)
            pending.emplace_back(key->str, *req);
    }

    for (const auto &[keyStr, req] : pending) {
        Result<const BenchmarkSpec *> spec =
            tryFindBenchmark(req.benchmark);
        Result<GpuConfig> cfg = farmRequestConfig(req);
        if (!spec.isOk() || !cfg.isOk()) {
            warn("farm journal: dropping unreplayable request ", keyStr,
                 ": ", (spec.isOk() ? cfg.status() : spec.status())
                           .message());
            continue;
        }
        const ResultCacheKey key{
            cfg->configHash(),
            snapshotSceneHash((*spec)->abbrev, req.width, req.height),
            kResultCacheCodeVersion, req.frames, req.firstFrame};
        if (cache.contains(key))
            continue; // completed before the crash
        inform("farm: recovering journaled request ", keyStr);
        Result<std::string> report = simulate(req, key);
        if (!report.isOk()) {
            warn("farm journal: replay of ", keyStr, " failed "
                 "permanently: ", report.status().message());
            continue;
        }
        if (Status st = cache.store(key, *report); !st.isOk())
            return st;
        std::lock_guard<std::mutex> lock(statsMtx);
        ++counters.recovered;
    }
    return Status::ok();
}

void
FarmServer::reapConnThreads(bool all)
{
    // Collect joinable handles under connMtx, but join with the lock
    // released: an exiting connection thread takes connMtx to
    // deregister itself, so joining under the lock would deadlock
    // against any thread still on its way out.
    std::vector<std::thread> done;
    {
        std::lock_guard<std::mutex> lock(connMtx);
        if (all) {
            done.swap(connThreads);
        } else {
            for (const std::thread::id id : doneConnThreads) {
                for (auto it = connThreads.begin();
                     it != connThreads.end(); ++it) {
                    if (it->get_id() == id) {
                        done.push_back(std::move(*it));
                        connThreads.erase(it);
                        break;
                    }
                }
            }
        }
        doneConnThreads.clear();
    }
    for (std::thread &t : done)
        t.join();
}

void
FarmServer::listenerLoop()
{
    while (!stopping.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        // A resident daemon sees an unbounded stream of short-lived CLI
        // connections; join the finished readers as we go so neither
        // the thread table nor the kernel's zombie threads accumulate.
        reapConnThreads(/*all=*/false);
        if (stopping.load())
            break;
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(statsMtx);
            ++counters.connections;
        }
        std::lock_guard<std::mutex> lock(connMtx);
        conns.push_back(conn);
        connThreads.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

void
FarmServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    std::string acc;
    char buf[4096];
    while (!stopping.load()) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        acc.append(buf, static_cast<std::size_t>(n));
        std::size_t start = 0;
        while (true) {
            const std::size_t end = acc.find('\n', start);
            if (end == std::string::npos)
                break;
            if (end > start)
                handleLine(conn, acc.substr(start, end - start));
            start = end + 1;
        }
        acc.erase(0, start);
    }
    {
        std::lock_guard<std::mutex> lock(conn->writeMtx);
        conn->open = false;
        ::close(conn->fd);
        conn->fd = -1;
    }
    std::lock_guard<std::mutex> lock(connMtx);
    for (auto it = conns.begin(); it != conns.end(); ++it) {
        if (it->get() == conn.get()) {
            conns.erase(it);
            break;
        }
    }
    // Announce completion last: once the id is visible the listener
    // (or destructor) may join this thread, which then only waits for
    // the return below.
    doneConnThreads.push_back(std::this_thread::get_id());
}

void
FarmServer::handleLine(const std::shared_ptr<Connection> &conn,
                       const std::string &line)
{
    {
        std::lock_guard<std::mutex> lock(statsMtx);
        ++counters.requests;
    }
    Result<FarmRequest> parsed = parseFarmRequest(line);
    if (!parsed.isOk()) {
        FarmResponse resp;
        resp.status = "error";
        resp.code = errorCodeName(parsed.status().code());
        resp.message = parsed.status().message();
        respond(conn, resp);
        return;
    }
    const FarmRequest &req = *parsed;
    switch (req.op) {
      case FarmOp::Simulate:
        handleSimulate(conn, req);
        return;
      case FarmOp::Ping: {
        FarmResponse resp;
        resp.id = req.id;
        resp.status = "ok";
        respond(conn, resp);
        return;
      }
      case FarmOp::Stats: {
        const FarmStats s = stats();
        JsonWriter w;
        w.beginObject();
        w.key("connections"); w.value(s.connections);
        w.key("requests"); w.value(s.requests);
        w.key("cache_hits"); w.value(s.cacheHits);
        w.key("coalesced"); w.value(s.coalesced);
        w.key("simulations"); w.value(s.simulations);
        w.key("failures"); w.value(s.failures);
        w.key("rejected"); w.value(s.rejected);
        w.key("recovered"); w.value(s.recovered);
        w.key("evicted"); w.value(s.evicted);
        w.endObject();
        FarmResponse resp;
        resp.id = req.id;
        resp.status = "ok";
        resp.payload = w.str();
        respond(conn, resp);
        return;
      }
      case FarmOp::Shutdown: {
        FarmResponse resp;
        resp.id = req.id;
        resp.status = "ok";
        respond(conn, resp);
        inform("farm: shutdown requested by client");
        stop();
        return;
      }
    }
}

void
FarmServer::handleSimulate(const std::shared_ptr<Connection> &conn,
                           const FarmRequest &req)
{
    FarmResponse resp;
    resp.id = req.id;

    Result<const BenchmarkSpec *> spec = tryFindBenchmark(req.benchmark);
    if (!spec.isOk()) {
        resp.status = "error";
        resp.code = errorCodeName(spec.status().code());
        resp.message = spec.status().message();
        respond(conn, resp);
        return;
    }
    Result<GpuConfig> cfg = farmRequestConfig(req);
    if (!cfg.isOk()) {
        resp.status = "error";
        resp.code = errorCodeName(cfg.status().code());
        resp.message = cfg.status().message();
        respond(conn, resp);
        return;
    }

    const ResultCacheKey key{
        cfg->configHash(),
        snapshotSceneHash((*spec)->abbrev, req.width, req.height),
        kResultCacheCodeVersion, req.frames, req.firstFrame};
    resp.key = key.toString();

    // Fast path: serve a hit without touching the task lock.
    Result<std::string> hit = cache.lookup(key);
    if (hit.isOk()) {
        resp.status = "ok";
        resp.cache = FarmCacheState::Hit;
        resp.reportBytes = hit->size();
        {
            std::lock_guard<std::mutex> lock(statsMtx);
            ++counters.cacheHits;
        }
        respond(conn, resp, &*hit);
        return;
    }
    if (hit.status().code() != ErrorCode::NotFound) {
        warn("farm: unusable cache entry for ", resp.key, " (",
             hit.status().message(), ") — re-simulating");
    }

    // Admission bookkeeping under taskMtx — no I/O here (replies go
    // out after the lock drops), so coalesce attaches and quota
    // rejections from other connections never serialize behind a
    // journal fsync, a cache file read, or a stalled client's socket.
    bool turnedAway = false;
    {
        std::lock_guard<std::mutex> lock(taskMtx);

        const auto it = opt.quarantineThreshold != 0
            ? strikes.find(key.configHash) : strikes.end();
        if (it != strikes.end()
            && it->second >= opt.quarantineThreshold) {
            resp.status = "error";
            resp.code = errorCodeName(ErrorCode::FailedPrecondition);
            resp.message = "config quarantined after "
                + std::to_string(it->second) + " failures";
            turnedAway = true;
        } else if (conn->pending.load() >= opt.clientQuota) {
            resp.status = "rejected";
            resp.code = errorCodeName(ErrorCode::Unavailable);
            resp.message = "per-client quota of "
                + std::to_string(opt.clientQuota)
                + " outstanding requests reached";
            std::lock_guard<std::mutex> slock(statsMtx);
            ++counters.rejected;
            turnedAway = true;
        } else if (tryAttachLocked(conn, req.id, resp.key)) {
            return;
        } else if (queue.size() >= opt.maxQueue) {
            resp.status = "rejected";
            resp.code = errorCodeName(ErrorCode::Unavailable);
            resp.message = "farm queue full ("
                + std::to_string(opt.maxQueue) + " tasks)";
            std::lock_guard<std::mutex> slock(statsMtx);
            ++counters.rejected;
            turnedAway = true;
        }
    }
    if (turnedAway) {
        respond(conn, resp);
        return;
    }

    // The fast-path lookup raced a concurrent completion if the entry
    // appeared since (store lands before the in-flight entry is
    // erased, so a finished task is visible here); re-check before
    // paying for a journal append and a simulation.
    if (Result<std::string> again = cache.lookup(key); again.isOk()) {
        resp.status = "ok";
        resp.cache = FarmCacheState::Hit;
        resp.reportBytes = again->size();
        {
            std::lock_guard<std::mutex> slock(statsMtx);
            ++counters.cacheHits;
        }
        respond(conn, resp, &*again);
        return;
    }

    // Accept: journal first (fsync'd, own mutex), so a kill -9 between
    // here and the cache store loses no accepted work. A duplicate
    // line for a key already admitted by a racing connection is
    // harmless — replay dedups on the key.
    if (journal) {
        std::string jline = journalLine(resp.key, req);
        jline += '\n';
        std::lock_guard<std::mutex> jlock(journalMtx);
        if (std::fwrite(jline.data(), 1, jline.size(), journal)
                != jline.size()
            || std::fflush(journal) != 0
            || ::fsync(::fileno(journal)) != 0) {
            resp.status = "error";
            resp.code = errorCodeName(ErrorCode::IoError);
            resp.message = "farm journal append failed: "
                + std::string(std::strerror(errno));
            respond(conn, resp);
            return;
        }
    }

    {
        std::lock_guard<std::mutex> lock(taskMtx);

        // Both admission races can re-open while the journal write
        // runs unlocked: an identical request may have been admitted
        // (attach to it) and the queue may have filled (reject; the
        // stray journal line only costs a redundant, cache-checked
        // replay at next start).
        if (tryAttachLocked(conn, req.id, resp.key))
            return;
        if (queue.size() >= opt.maxQueue) {
            resp.status = "rejected";
            resp.code = errorCodeName(ErrorCode::Unavailable);
            resp.message = "farm queue full ("
                + std::to_string(opt.maxQueue) + " tasks)";
            std::lock_guard<std::mutex> slock(statsMtx);
            ++counters.rejected;
        } else {
            auto task = std::make_shared<Task>();
            task->req = req;
            task->key = key;
            task->keyStr = resp.key;
            task->configHash = key.configHash;
            task->waiters.push_back({conn, req.id, FarmCacheState::Miss});
            conn->pending.fetch_add(1);
            inflight.emplace(task->keyStr, task);
            queue.push_back(std::move(task));
            taskCv.notify_one();
            return;
        }
    }
    respond(conn, resp);
}

bool
FarmServer::tryAttachLocked(const std::shared_ptr<Connection> &conn,
                            const std::string &id,
                            const std::string &keyStr)
{
    const auto it = inflight.find(keyStr);
    if (it == inflight.end())
        return false;
    const std::shared_ptr<Task> &task = it->second;
    std::lock_guard<std::mutex> tlock(task->mtx);
    libra_assert(!task->done,
                 "finished task still registered in-flight");
    task->waiters.push_back({conn, id, FarmCacheState::Coalesced});
    conn->pending.fetch_add(1);
    std::lock_guard<std::mutex> slock(statsMtx);
    ++counters.coalesced;
    return true;
}

Result<std::string>
FarmServer::simulate(const FarmRequest &req, const ResultCacheKey &key)
{
    Result<const BenchmarkSpec *> spec = tryFindBenchmark(req.benchmark);
    if (!spec.isOk())
        return spec.status();
    Result<GpuConfig> cfg = farmRequestConfig(req);
    if (!cfg.isOk())
        return cfg.status();

    SweepJob job;
    job.spec = *spec;
    job.config = *cfg;
    job.frames = req.frames;
    job.firstFrame = req.firstFrame;

    // PR 6 failure machinery per attempt; quarantine stays farm-level
    // (threshold 0 here) so strikes are not double-counted.
    SweepPolicy policy;
    policy.deadlineMs = opt.deadlineMs;
    policy.maxRetries = opt.maxRetries;
    policy.backoffMs = opt.backoffMs;

    SweepRunner runner(1);
    SweepOutcome outcome =
        runner.runWithPolicy({job}, policy, &scenes);
    libra_assert(outcome.jobs.size() == 1,
                 "single-job sweep produced ", outcome.jobs.size(),
                 " outcomes");
    JobOutcome &result = outcome.jobs[0];
    if (!result.result.isOk())
        return result.result.status();
    (void)key;
    return runReportJson(*result.result);
}

void
FarmServer::workerLoop()
{
    while (true) {
        std::shared_ptr<Task> task;
        {
            std::unique_lock<std::mutex> lock(taskMtx);
            taskCv.wait(lock, [this] {
                return stopping.load() || !queue.empty();
            });
            if (stopping.load())
                return; // journaled work recovers on restart
            task = std::move(queue.front());
            queue.pop_front();
        }

        Result<std::string> report = simulate(task->req, task->key);
        if (report.isOk()) {
            task->report = std::move(*report);
            if (Status st = cache.store(task->key, task->report);
                !st.isOk()) {
                // Waiters still get the in-memory bytes; only
                // memoization is lost.
                warn("farm: cannot persist result for ", task->keyStr,
                     ": ", st.message());
            }
            if (opt.cacheMaxEntries != 0) {
                Result<std::uint64_t> evicted =
                    cache.trim(opt.cacheMaxEntries);
                if (evicted.isOk() && *evicted != 0) {
                    std::lock_guard<std::mutex> lock(statsMtx);
                    counters.evicted += *evicted;
                }
            }
            std::lock_guard<std::mutex> lock(statsMtx);
            ++counters.simulations;
        } else {
            task->failure = report.status();
            std::lock_guard<std::mutex> lock(taskMtx);
            ++strikes[task->configHash];
        }
        finishTask(task);
    }
}

void
FarmServer::finishTask(const std::shared_ptr<Task> &task)
{
    {
        // De-register first: a request arriving after this sees the
        // cache entry (hit); one arriving before blocks on taskMtx and
        // attaches before done is set below.
        std::lock_guard<std::mutex> lock(taskMtx);
        inflight.erase(task->keyStr);
    }
    std::vector<Task::Waiter> waiters;
    {
        std::lock_guard<std::mutex> lock(task->mtx);
        task->done = true;
        waiters.swap(task->waiters);
    }
    if (!task->failure.isOk()) {
        // One failed task is one failure, however many coalesced
        // waiters hear about it.
        std::lock_guard<std::mutex> lock(statsMtx);
        ++counters.failures;
    }
    for (const Task::Waiter &w : waiters) {
        FarmResponse resp;
        resp.id = w.id;
        resp.key = task->keyStr;
        if (task->failure.isOk()) {
            resp.status = "ok";
            resp.cache = w.state;
            resp.reportBytes = task->report.size();
            respond(w.conn, resp, &task->report);
        } else {
            resp.status = "error";
            resp.code = errorCodeName(task->failure.code());
            resp.message = task->failure.message();
            respond(w.conn, resp);
        }
        w.conn->pending.fetch_sub(1);
    }
}

void
FarmServer::respond(const std::shared_ptr<Connection> &conn,
                    const FarmResponse &resp, const std::string *report)
{
    std::string out = farmResponseLine(resp);
    out += '\n';
    // The header advertises report_bytes only when it is nonzero, so a
    // zero-length report must not emit its terminating newline either —
    // the client would never consume it and the next reply on the
    // connection would desync.
    if (report && !report->empty()) {
        libra_assert(report->find('\n') == std::string::npos,
                     "run report contains a raw newline");
        out += *report;
        out += '\n';
    }
    std::lock_guard<std::mutex> lock(conn->writeMtx);
    if (!conn->open)
        return; // client went away; journaled work still completes
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(conn->fd, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            warn("farm: dropping response for '", resp.id,
                 "': client connection lost");
            conn->open = false;
            return;
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace libra
