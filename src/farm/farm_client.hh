/**
 * @file
 * Blocking sim-farm client: connect to a FarmServer socket, send one
 * request line, read back the response header and (for successful
 * simulate replies) the verbatim report bytes. One connection can carry
 * many sequential calls; libra-farm and the smoke tests are built on
 * this.
 */

#ifndef LIBRA_FARM_FARM_CLIENT_HH
#define LIBRA_FARM_FARM_CLIENT_HH

#include <string>

#include "common/status.hh"
#include "farm/farm_protocol.hh"

namespace libra
{

/** A simulate reply: parsed header plus the raw report bytes (exactly
 *  header.reportBytes of them; empty for non-simulate ops). */
struct FarmReply
{
    FarmResponse header;
    std::string report;
};

class FarmClient
{
  public:
    /** Connect to the server socket at @p socketPath. */
    static Result<FarmClient> connect(const std::string &socketPath);

    FarmClient() = default;
    ~FarmClient();

    FarmClient(FarmClient &&o) noexcept;
    FarmClient &operator=(FarmClient &&o) noexcept;
    FarmClient(const FarmClient &) = delete;
    FarmClient &operator=(const FarmClient &) = delete;

    bool connected() const { return fd >= 0; }

    /**
     * Send @p req and block for the reply. The transport can fail
     * (IoError, CorruptData on a bad header); an "error"/"rejected"
     * reply is NOT a transport failure — it comes back as an Ok reply
     * whose header carries status/code/message.
     */
    Result<FarmReply> call(const FarmRequest &req);

  private:
    Result<std::string> readLine();
    Status readExact(std::string &out, std::size_t n);

    int fd = -1;
    std::string buffer; //!< bytes received but not yet consumed
};

} // namespace libra

#endif // LIBRA_FARM_FARM_CLIENT_HH
