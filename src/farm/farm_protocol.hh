/**
 * @file
 * Wire protocol of the sim-farm (DESIGN.md §12): newline-delimited JSON
 * over a local stream socket.
 *
 * Every request is one `libra.farm_request/1` JSON line; every reply
 * starts with one `libra.farm_response/1` header line. A successful
 * simulate reply is followed by exactly `report_bytes` bytes of
 * `libra.run_report/1` JSON plus a terminating newline — the stored
 * report is streamed verbatim, so a cache hit is byte-identical to the
 * miss that populated it (reports never contain raw newlines; the
 * explicit byte count makes that a checked property, not an
 * assumption).
 *
 * Request ops:
 *   simulate (default) — run/memoize one (benchmark, resolution,
 *                        config, frame range) simulation
 *   ping               — liveness probe, status "ok"
 *   stats              — server counters as a JSON object (one line)
 *   shutdown           — stop the server after acknowledging
 *
 * Config specs are compact strings over the GpuConfig presets:
 *   "baseline[:C]"        one RU, C shader cores (default 8)
 *   "ptr[:RxC]"           R RUs of C cores, Z-order dispatch
 *   "libra[:RxC]"         R RUs of C cores, LIBRA scheduler
 *   "supertile:S[:RxC]"   static supertiles of size S
 */

#ifndef LIBRA_FARM_FARM_PROTOCOL_HH
#define LIBRA_FARM_FARM_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/status.hh"
#include "gpu/gpu_config.hh"

namespace libra
{

inline constexpr const char *kFarmRequestSchema = "libra.farm_request/1";
inline constexpr const char *kFarmResponseSchema =
    "libra.farm_response/1";

/** Request operations. */
enum class FarmOp
{
    Simulate,
    Ping,
    Stats,
    Shutdown,
};

const char *farmOpName(FarmOp op);

/** One parsed request line. */
struct FarmRequest
{
    FarmOp op = FarmOp::Simulate;
    std::string id; //!< client-chosen correlation tag, echoed back

    // Simulate payload:
    std::string benchmark;     //!< abbrev, e.g. "CCS"
    std::uint32_t width = 960;
    std::uint32_t height = 544;
    std::uint32_t frames = 4;
    std::uint32_t firstFrame = 0;
    std::string config = "libra:2x4"; //!< config spec (file header)
    std::uint32_t simThreads = 0;     //!< sharded-engine threads
    std::string figure;               //!< free-form figure tag, echoed
};

/** How a simulate reply was produced. */
enum class FarmCacheState
{
    None,      //!< not a simulate reply
    Hit,       //!< served from the persistent result cache
    Miss,      //!< simulated by this request
    Coalesced, //!< attached to an identical in-flight request
    Recovered, //!< journal replay completed it before serving
};

const char *farmCacheStateName(FarmCacheState state);

/** One reply header line. */
struct FarmResponse
{
    std::string id;          //!< echo of the request id
    std::string status;      //!< "ok" | "error" | "rejected"
    FarmCacheState cache = FarmCacheState::None;
    std::string key;         //!< ResultCacheKey::toString() (simulate)
    std::string code;        //!< errorCodeName (non-ok)
    std::string message;     //!< human-readable failure (non-ok)
    std::uint64_t reportBytes = 0; //!< raw report bytes that follow
    std::string payload;     //!< inline payload (stats JSON, pings)

    bool ok() const { return status == "ok"; }
};

/** Serialize @p req as one JSON line (no trailing newline). */
std::string farmRequestLine(const FarmRequest &req);

/** Parse one request line; InvalidArgument/CorruptData on bad input. */
Result<FarmRequest> parseFarmRequest(const std::string &line);

/** Serialize @p resp as one JSON header line (no trailing newline). */
std::string farmResponseLine(const FarmResponse &resp);

/** Parse one response header line. */
Result<FarmResponse> parseFarmResponse(const std::string &line);

/**
 * Build the GpuConfig a request describes: preset spec + resolution +
 * simThreads. The config is validated; InvalidArgument names the bad
 * field so the client sees an attributable error.
 */
Result<GpuConfig> farmRequestConfig(const FarmRequest &req);

/** Parse a config spec string alone (resolution left at defaults). */
Result<GpuConfig> parseConfigSpec(const std::string &spec);

} // namespace libra

#endif // LIBRA_FARM_FARM_PROTOCOL_HH
