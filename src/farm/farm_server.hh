/**
 * @file
 * Resident sim-farm server (ROADMAP item 2, DESIGN.md §12).
 *
 * Accepts simulation requests over a local (AF_UNIX) stream socket in
 * the newline-delimited JSON protocol of farm_protocol.hh, and serves
 * each from a persistent ResultCache keyed on (config hash, scene hash,
 * code version, frame range):
 *
 *  - **cache hit** — the stored `libra.run_report/1` bytes are streamed
 *    back verbatim, byte-identical to the run that produced them;
 *  - **in-flight dedup** — a request identical to one currently being
 *    simulated attaches to it ("coalesced") instead of re-queuing the
 *    work; every waiter gets the same bytes;
 *  - **cache miss** — the request is journaled (crash safety), queued
 *    under admission control (bounded queue + per-connection quota) and
 *    simulated on the worker pool via SweepRunner::runWithPolicy, which
 *    supplies the PR 6 failure machinery: per-attempt wall-clock
 *    deadlines (watchdog CancelToken), bounded exponential-backoff
 *    retries, and attributable "job N [key]:" failure messages. A
 *    farm-level quarantine fails repeat-offender configs fast so one
 *    poisoned config cannot wedge the farm.
 *
 * Crash safety: every accepted (journaled) request is either completed
 * into the cache or re-run at the next start() — recovery replays the
 * journal before the socket opens, so a kill -9 loses no accepted work
 * and a re-sent request is a byte-identical cache hit. The journal is
 * truncated once recovery lands everything in the cache.
 *
 * Scenes are shared through one SceneCache: concurrent requests against
 * the same (benchmark, resolution) build geometry/textures once (the
 * Thread-Batching observation — correlated requests share working
 * sets).
 */

#ifndef LIBRA_FARM_FARM_SERVER_HH
#define LIBRA_FARM_FARM_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "check/result_cache.hh"
#include "common/status.hh"
#include "farm/farm_protocol.hh"
#include "sim/sweep.hh"

namespace libra
{

inline constexpr const char *kFarmJournalSchema = "libra.farm_journal/1";

/** Server configuration. */
struct FarmOptions
{
    std::string socketPath; //!< AF_UNIX path (stale file is replaced)
    std::string cacheDir;   //!< ResultCache directory (required)
    std::string journalPath; //!< accepted-request journal; "" = none

    unsigned workers = 1;        //!< simulation worker threads
    std::uint32_t maxQueue = 64; //!< queued-task bound (admission)
    std::uint32_t clientQuota = 16; //!< un-answered requests per conn
    std::uint64_t cacheMaxEntries = 0; //!< trim target; 0 = unlimited

    // Failure policy forwarded into SweepPolicy per simulation.
    std::uint64_t deadlineMs = 0;
    std::uint32_t maxRetries = 0;
    std::uint64_t backoffMs = 0;
    /** Permanent failures of one configHash before its requests fail
     *  fast (farm-level quarantine); 0 disables. */
    std::uint32_t quarantineThreshold = 0;
};

/** Monotonic server counters (stats op; test assertions). */
struct FarmStats
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;   //!< parsed request lines
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;  //!< attached to in-flight work
    std::uint64_t simulations = 0; //!< actually executed (misses)
    std::uint64_t failures = 0;   //!< failed simulate tasks (per task,
                                  //!< not per coalesced waiter)
    std::uint64_t rejected = 0;   //!< admission-control rejections
    std::uint64_t recovered = 0;  //!< journal-replay completions
    std::uint64_t evicted = 0;    //!< cache entries trimmed
};

class FarmServer
{
  public:
    /**
     * Open cache + journal, replay unfinished journaled work into the
     * cache (recovery), bind the socket and start the listener/worker
     * threads. On error nothing is left running.
     */
    static Result<std::unique_ptr<FarmServer>> start(FarmOptions opt);

    ~FarmServer();

    FarmServer(const FarmServer &) = delete;
    FarmServer &operator=(const FarmServer &) = delete;

    /** Block until the server stops (shutdown request or stop()). */
    void wait();

    /** Ask the server to stop; idempotent, returns immediately. */
    void stop();

    FarmStats stats() const;

    const std::string &socketPath() const { return opt.socketPath; }

  private:
    struct Connection;
    struct Task;

    FarmServer() = default;

    Status recoverFromJournal();
    void listenerLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);
    void workerLoop();

    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void handleSimulate(const std::shared_ptr<Connection> &conn,
                        const FarmRequest &req);
    /** Attach to an identical in-flight task if one exists (taskMtx
     *  must be held); true if the request was coalesced. */
    bool tryAttachLocked(const std::shared_ptr<Connection> &conn,
                         const std::string &id,
                         const std::string &keyStr);
    /** Join connection threads that announced completion (or, with
     *  @p all, every connection thread). Joins happen with connMtx
     *  released so an exiting thread can still deregister itself. */
    void reapConnThreads(bool all);
    /** Run one simulate request to a report (shared by workers and
     *  journal recovery); status carries the attributable failure. */
    Result<std::string> simulate(const FarmRequest &req,
                                 const ResultCacheKey &key);
    void finishTask(const std::shared_ptr<Task> &task);

    void respond(const std::shared_ptr<Connection> &conn,
                 const FarmResponse &resp,
                 const std::string *report = nullptr);

    FarmOptions opt;
    ResultCache cache;
    SceneCache scenes;

    int listenFd = -1;
    std::atomic<bool> stopping{false};

    std::thread listener;
    std::vector<std::thread> workers;

    mutable std::mutex connMtx;
    std::vector<std::shared_ptr<Connection>> conns;
    std::vector<std::thread> connThreads; //!< reaped by the listener
    /** Threads that finished connectionLoop and can be joined without
     *  blocking; ids are appended by the exiting thread itself and
     *  consumed by reapConnThreads (both under connMtx). */
    std::vector<std::thread::id> doneConnThreads;

    std::mutex taskMtx; //!< guards queue + inflight + strikes
    std::condition_variable taskCv;
    std::deque<std::shared_ptr<Task>> queue;
    std::unordered_map<std::string, std::shared_ptr<Task>> inflight;
    std::unordered_map<std::uint64_t, std::uint32_t> strikes;
    /** Accepted-request journal; appends serialize on journalMtx only,
     *  so admission control never waits behind an fsync. */
    std::mutex journalMtx;
    std::FILE *journal = nullptr; //!< append handle; null = no journal

    mutable std::mutex statsMtx;
    FarmStats counters;

    std::mutex waitMtx;
    std::condition_variable waitCv;
    bool stopped = false;
};

} // namespace libra

#endif // LIBRA_FARM_FARM_SERVER_HH
