#include "farm/farm_client.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace libra
{

Result<FarmClient>
FarmClient::connect(const std::string &socketPath)
{
    sockaddr_un addr{};
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm client: socket path too long: ",
                             socketPath);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status::error(ErrorCode::IoError,
                             "farm client: socket(): ",
                             std::strerror(errno));
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::error(ErrorCode::Unavailable,
                             "farm client: cannot connect to ",
                             socketPath, ": ", std::strerror(err));
    }
    FarmClient client;
    client.fd = fd;
    return client;
}

FarmClient::~FarmClient()
{
    if (fd >= 0)
        ::close(fd);
}

FarmClient::FarmClient(FarmClient &&o) noexcept
    : fd(std::exchange(o.fd, -1)), buffer(std::move(o.buffer))
{
}

FarmClient &
FarmClient::operator=(FarmClient &&o) noexcept
{
    if (this != &o) {
        if (fd >= 0)
            ::close(fd);
        fd = std::exchange(o.fd, -1);
        buffer = std::move(o.buffer);
    }
    return *this;
}

Result<FarmReply>
FarmClient::call(const FarmRequest &req)
{
    if (fd < 0) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "farm client: not connected");
    }
    std::string line = farmRequestLine(req);
    line += '\n';
    std::size_t sent = 0;
    while (sent < line.size()) {
        const ssize_t n = ::send(fd, line.data() + sent,
                                 line.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            return Status::error(ErrorCode::IoError,
                                 "farm client: send failed: ",
                                 std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }

    Result<std::string> header_line = readLine();
    if (!header_line.isOk())
        return header_line.status();
    Result<FarmResponse> header = parseFarmResponse(*header_line);
    if (!header.isOk())
        return header.status();

    FarmReply reply;
    reply.header = std::move(*header);
    if (reply.header.reportBytes != 0) {
        if (Status st = readExact(reply.report,
                                  reply.header.reportBytes);
            !st.isOk()) {
            return st;
        }
        // The report is newline-terminated on the wire; the byte count
        // excludes the terminator.
        std::string nl;
        if (Status st = readExact(nl, 1); !st.isOk())
            return st;
        if (nl != "\n") {
            return Status::error(ErrorCode::CorruptData,
                                 "farm client: report not newline-"
                                 "terminated after ",
                                 reply.header.reportBytes, " bytes");
        }
    }
    return reply;
}

Result<std::string>
FarmClient::readLine()
{
    while (true) {
        const std::size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            return line;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            return Status::error(ErrorCode::IoError,
                                 "farm client: connection closed "
                                 "mid-reply");
        }
        buffer.append(buf, static_cast<std::size_t>(n));
    }
}

Status
FarmClient::readExact(std::string &out, std::size_t n)
{
    while (buffer.size() < n) {
        char buf[65536];
        const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
        if (got <= 0) {
            return Status::error(ErrorCode::IoError,
                                 "farm client: connection closed after ",
                                 buffer.size(), " of ", n,
                                 " report bytes");
        }
        buffer.append(buf, static_cast<std::size_t>(got));
    }
    out = buffer.substr(0, n);
    buffer.erase(0, n);
    return Status::ok();
}

} // namespace libra
