#include "farm/farm_protocol.hh"

#include <charconv>

#include "trace/json.hh"

namespace libra
{

namespace
{

/** Exact u32 from a JSON number (raw-literal path, like the journal). */
Result<std::uint32_t>
asU32(const JsonValue *v, const char *what)
{
    if (!v || !v->isNumber()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm request: missing ", what);
    }
    if (v->str.find_first_of(".eE+-") != std::string::npos) {
        return Status::error(ErrorCode::InvalidArgument, "farm request: ",
                             what, " is not a non-negative integer: '",
                             v->str, "'");
    }
    std::uint32_t value = 0;
    auto [ptr, ec] = std::from_chars(
        v->str.data(), v->str.data() + v->str.size(), value);
    if (ec != std::errc() || ptr != v->str.data() + v->str.size()) {
        return Status::error(ErrorCode::InvalidArgument, "farm request: bad ",
                             what, ": '", v->str, "'");
    }
    return value;
}

Result<std::string>
asString(const JsonValue *v, const char *what)
{
    if (!v || !v->isString()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm request: missing ", what);
    }
    return v->str;
}

/** "RxC" → (raster units, cores per RU). */
Result<std::pair<std::uint32_t, std::uint32_t>>
parseShape(const std::string &text)
{
    const auto x = text.find('x');
    std::uint32_t r = 0, c = 0;
    const char *rb = text.data();
    const char *re = text.data() + (x == std::string::npos ? 0 : x);
    auto [rp, rec] = std::from_chars(rb, re, r);
    bool ok = x != std::string::npos && rec == std::errc() && rp == re;
    if (ok) {
        const char *cb = text.data() + x + 1;
        const char *ce = text.data() + text.size();
        auto [cp, cec] = std::from_chars(cb, ce, c);
        ok = cec == std::errc() && cp == ce && r > 0 && c > 0;
    }
    if (!ok) {
        return Status::error(ErrorCode::InvalidArgument,
                             "config spec: expected RxC shape, got '",
                             text, "'");
    }
    return std::pair{r, c};
}

Result<std::uint32_t>
parseCount(const std::string &text, const char *what)
{
    std::uint32_t v = 0;
    auto [p, ec] = std::from_chars(text.data(),
                                   text.data() + text.size(), v);
    if (ec != std::errc() || p != text.data() + text.size() || v == 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "config spec: bad ", what, " '", text, "'");
    }
    return v;
}

/** Re-render a parsed subtree as compact JSON (payload round-trip).
 *  Numbers reuse the parser's raw literal so values survive exactly. */
void
renderJson(JsonWriter &w, const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        w.null();
        return;
      case JsonValue::Kind::Bool:
        w.value(v.boolean);
        return;
      case JsonValue::Kind::Number:
        w.raw(v.str);
        return;
      case JsonValue::Kind::String:
        w.value(v.str);
        return;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue &item : v.items)
            renderJson(w, item);
        w.endArray();
        return;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &[name, member] : v.members) {
            w.key(name);
            renderJson(w, member);
        }
        w.endObject();
        return;
    }
}

} // namespace

const char *
farmOpName(FarmOp op)
{
    switch (op) {
      case FarmOp::Simulate: return "simulate";
      case FarmOp::Ping: return "ping";
      case FarmOp::Stats: return "stats";
      case FarmOp::Shutdown: return "shutdown";
    }
    return "?";
}

const char *
farmCacheStateName(FarmCacheState state)
{
    switch (state) {
      case FarmCacheState::None: return "none";
      case FarmCacheState::Hit: return "hit";
      case FarmCacheState::Miss: return "miss";
      case FarmCacheState::Coalesced: return "coalesced";
      case FarmCacheState::Recovered: return "recovered";
    }
    return "?";
}

std::string
farmRequestLine(const FarmRequest &req)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value(kFarmRequestSchema);
    w.key("op");
    w.value(farmOpName(req.op));
    w.key("id");
    w.value(req.id);
    if (req.op == FarmOp::Simulate) {
        w.key("benchmark");
        w.value(req.benchmark);
        w.key("width");
        w.value(req.width);
        w.key("height");
        w.value(req.height);
        w.key("frames");
        w.value(req.frames);
        w.key("first_frame");
        w.value(req.firstFrame);
        w.key("config");
        w.value(req.config);
        w.key("sim_threads");
        w.value(req.simThreads);
        if (!req.figure.empty()) {
            w.key("figure");
            w.value(req.figure);
        }
    }
    w.endObject();
    return w.str();
}

Result<FarmRequest>
parseFarmRequest(const std::string &line)
{
    Result<JsonValue> doc = parseJson(line);
    if (!doc.isOk())
        return doc.status();
    if (!doc->isObject()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm request: not a JSON object");
    }
    const JsonValue *schema = doc->find("schema");
    if (!schema || !schema->isString()
        || schema->str != kFarmRequestSchema) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm request: wrong schema (expected ",
                             kFarmRequestSchema, ")");
    }

    FarmRequest req;
    if (const JsonValue *id = doc->find("id");
        id && id->isString()) {
        req.id = id->str;
    }

    std::string op = "simulate";
    if (const JsonValue *opv = doc->find("op")) {
        if (!opv->isString()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "farm request: op is not a string");
        }
        op = opv->str;
    }
    if (op == "simulate") {
        req.op = FarmOp::Simulate;
    } else if (op == "ping") {
        req.op = FarmOp::Ping;
        return req;
    } else if (op == "stats") {
        req.op = FarmOp::Stats;
        return req;
    } else if (op == "shutdown") {
        req.op = FarmOp::Shutdown;
        return req;
    } else {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm request: unknown op '", op, "'");
    }

    Result<std::string> bench =
        asString(doc->find("benchmark"), "benchmark");
    if (!bench.isOk())
        return bench.status();
    req.benchmark = *bench;

    Result<std::uint32_t> width = asU32(doc->find("width"), "width");
    if (!width.isOk())
        return width.status();
    req.width = *width;
    Result<std::uint32_t> height = asU32(doc->find("height"), "height");
    if (!height.isOk())
        return height.status();
    req.height = *height;
    Result<std::uint32_t> frames = asU32(doc->find("frames"), "frames");
    if (!frames.isOk())
        return frames.status();
    req.frames = *frames;
    if (req.frames == 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm request: frames must be >= 1");
    }
    if (const JsonValue *ff = doc->find("first_frame")) {
        Result<std::uint32_t> v = asU32(ff, "first_frame");
        if (!v.isOk())
            return v.status();
        req.firstFrame = *v;
    }
    Result<std::string> config = asString(doc->find("config"), "config");
    if (!config.isOk())
        return config.status();
    req.config = *config;
    if (const JsonValue *st = doc->find("sim_threads")) {
        Result<std::uint32_t> v = asU32(st, "sim_threads");
        if (!v.isOk())
            return v.status();
        req.simThreads = *v;
    }
    if (const JsonValue *fig = doc->find("figure");
        fig && fig->isString()) {
        req.figure = fig->str;
    }
    return req;
}

std::string
farmResponseLine(const FarmResponse &resp)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value(kFarmResponseSchema);
    w.key("id");
    w.value(resp.id);
    w.key("status");
    w.value(resp.status);
    if (resp.cache != FarmCacheState::None) {
        w.key("cache");
        w.value(farmCacheStateName(resp.cache));
    }
    if (!resp.key.empty()) {
        w.key("key");
        w.value(resp.key);
    }
    if (!resp.code.empty()) {
        w.key("code");
        w.value(resp.code);
    }
    if (!resp.message.empty()) {
        w.key("message");
        w.value(resp.message);
    }
    if (resp.reportBytes != 0) {
        w.key("report_bytes");
        w.value(resp.reportBytes);
    }
    if (!resp.payload.empty()) {
        w.key("payload");
        w.raw(resp.payload);
    }
    w.endObject();
    return w.str();
}

Result<FarmResponse>
parseFarmResponse(const std::string &line)
{
    Result<JsonValue> doc = parseJson(line);
    if (!doc.isOk())
        return doc.status();
    const JsonValue *schema = doc->find("schema");
    if (!schema || !schema->isString()
        || schema->str != kFarmResponseSchema) {
        return Status::error(ErrorCode::CorruptData,
                             "farm response: wrong schema");
    }
    FarmResponse resp;
    if (const JsonValue *id = doc->find("id"); id && id->isString())
        resp.id = id->str;
    const JsonValue *status = doc->find("status");
    if (!status || !status->isString()) {
        return Status::error(ErrorCode::CorruptData,
                             "farm response: missing status");
    }
    resp.status = status->str;
    if (const JsonValue *cache = doc->find("cache");
        cache && cache->isString()) {
        for (const FarmCacheState s :
             {FarmCacheState::Hit, FarmCacheState::Miss,
              FarmCacheState::Coalesced, FarmCacheState::Recovered}) {
            if (cache->str == farmCacheStateName(s))
                resp.cache = s;
        }
    }
    if (const JsonValue *key = doc->find("key"); key && key->isString())
        resp.key = key->str;
    if (const JsonValue *code = doc->find("code");
        code && code->isString()) {
        resp.code = code->str;
    }
    if (const JsonValue *msg = doc->find("message");
        msg && msg->isString()) {
        resp.message = msg->str;
    }
    if (const JsonValue *payload = doc->find("payload")) {
        JsonWriter w;
        renderJson(w, *payload);
        resp.payload = w.str();
    }
    if (const JsonValue *rb = doc->find("report_bytes")) {
        if (!rb->isNumber() || rb->number < 0) {
            return Status::error(ErrorCode::CorruptData,
                                 "farm response: bad report_bytes");
        }
        resp.reportBytes = static_cast<std::uint64_t>(rb->number);
    }
    return resp;
}

Result<GpuConfig>
parseConfigSpec(const std::string &spec)
{
    // Split on ':' into head + args.
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = spec.find(':', start);
        parts.push_back(spec.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    const std::string &head = parts[0];

    if (head == "baseline") {
        std::uint32_t cores = 8;
        if (parts.size() > 2) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "config spec: baseline takes at most "
                                 "one :C argument");
        }
        if (parts.size() == 2) {
            Result<std::uint32_t> c = parseCount(parts[1], "core count");
            if (!c.isOk())
                return c.status();
            cores = *c;
        }
        return GpuConfig::baseline(cores);
    }
    if (head == "ptr" || head == "libra" || head == "re" ||
        head == "re-libra") {
        std::uint32_t rus = 2, cores = 4;
        if (parts.size() > 2) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "config spec: ", head, " takes at most "
                                 "one :RxC argument");
        }
        if (parts.size() == 2) {
            Result<std::pair<std::uint32_t, std::uint32_t>> shape =
                parseShape(parts[1]);
            if (!shape.isOk())
                return shape.status();
            rus = shape->first;
            cores = shape->second;
        }
        GpuConfig cfg = (head == "ptr" || head == "re")
                            ? GpuConfig::ptr(rus, cores)
                            : GpuConfig::libra(rus, cores);
        if (head == "re" || head == "re-libra")
            cfg.renderingElimination = true;
        return cfg;
    }
    if (head == "supertile") {
        if (parts.size() < 2 || parts.size() > 3) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "config spec: supertile needs "
                                 "supertile:S[:RxC]");
        }
        Result<std::uint32_t> size =
            parseCount(parts[1], "supertile size");
        if (!size.isOk())
            return size.status();
        std::uint32_t rus = 2, cores = 4;
        if (parts.size() == 3) {
            Result<std::pair<std::uint32_t, std::uint32_t>> shape =
                parseShape(parts[2]);
            if (!shape.isOk())
                return shape.status();
            rus = shape->first;
            cores = shape->second;
        }
        return GpuConfig::staticSupertile(*size, rus, cores);
    }
    return Status::error(ErrorCode::InvalidArgument,
                         "config spec: unknown preset '", head,
                         "' (want baseline/ptr/libra/supertile/re/"
                         "re-libra)");
}

Result<GpuConfig>
farmRequestConfig(const FarmRequest &req)
{
    Result<GpuConfig> cfg = parseConfigSpec(req.config);
    if (!cfg.isOk())
        return cfg.status();
    cfg->screenWidth = req.width;
    cfg->screenHeight = req.height;
    cfg->simThreads = req.simThreads;
    if (Status st = cfg->validate(); !st.isOk()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "farm request '", req.id, "': ",
                             st.message());
    }
    return cfg;
}

} // namespace libra
