/**
 * @file
 * Heatmap output: renders per-tile scalar fields (e.g. DRAM accesses per
 * tile, Fig. 2/Fig. 9 of the paper) as PPM images, one pixel block per
 * tile, using a cold-to-hot color ramp.
 */

#ifndef LIBRA_TRACE_HEATMAP_HH
#define LIBRA_TRACE_HEATMAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/tiling/tile_grid.hh"

namespace libra
{

/**
 * Write @p values (one per tile, row-major by tile id) as a PPM file.
 * Each tile becomes a @p cell x @p cell pixel block. Values are
 * normalized to the observed max.
 * @return true on success.
 */
bool writeHeatmapPpm(const std::string &path, const TileGrid &grid,
                     const std::vector<std::uint64_t> &values,
                     std::uint32_t cell = 8);

/** ASCII-art variant for quick terminal inspection (rows of 0-9/#). */
std::string heatmapAscii(const TileGrid &grid,
                         const std::vector<std::uint64_t> &values);

} // namespace libra

#endif // LIBRA_TRACE_HEATMAP_HH
