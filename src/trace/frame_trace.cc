#include "trace/frame_trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/log.hh"

namespace libra
{

namespace
{

constexpr char magic[4] = {'L', 'T', 'R', 'C'};
constexpr std::uint32_t version = 1;

// On-disk record sizes, used to bound untrusted counts against the
// bytes actually present in the file before any allocation happens.
constexpr std::uint64_t headerBytes = 24; //!< magic + 5 x u32
constexpr std::uint64_t textureBytes = 8; //!< u32 w, u32 h
constexpr std::uint64_t drawHeaderBytes = 18; //!< u64+u32+u16+u32
constexpr std::uint64_t triangleBytes = 68;   //!< 15 x f32 + 4+2+1+1

/** RAII FILE handle. */
struct File
{
    explicit File(std::FILE *fp) : fp(fp) {}
    ~File()
    {
        if (fp)
            std::fclose(fp);
    }
    File(const File &) = delete;
    File &operator=(const File &) = delete;
    std::FILE *fp;
};

template <typename T>
bool
put(std::FILE *fp, const T &value)
{
    return std::fwrite(&value, sizeof(T), 1, fp) == 1;
}

template <typename T>
bool
get(std::FILE *fp, T &value)
{
    return std::fread(&value, sizeof(T), 1, fp) == 1;
}

bool
putTriangle(std::FILE *fp, const Triangle &tri)
{
    for (const auto &v : tri.v) {
        if (!put(fp, v.pos.x) || !put(fp, v.pos.y) || !put(fp, v.pos.z)
            || !put(fp, v.uv.x) || !put(fp, v.uv.y)) {
            return false;
        }
    }
    const std::uint8_t flags = (tri.blend ? 1u : 0u)
        | (tri.useMips ? 2u : 0u);
    return put(fp, tri.textureId) && put(fp, tri.shaderAluOps)
        && put(fp, tri.texSamples) && put(fp, flags);
}

bool
getTriangle(std::FILE *fp, Triangle &tri)
{
    for (auto &v : tri.v) {
        if (!get(fp, v.pos.x) || !get(fp, v.pos.y) || !get(fp, v.pos.z)
            || !get(fp, v.uv.x) || !get(fp, v.uv.y)) {
            return false;
        }
    }
    std::uint8_t flags = 0;
    if (!get(fp, tri.textureId) || !get(fp, tri.shaderAluOps)
        || !get(fp, tri.texSamples) || !get(fp, flags)) {
        return false;
    }
    tri.blend = (flags & 1) != 0;
    tri.useMips = (flags & 2) != 0;
    return true;
}

Status
corrupt(const std::string &path, const std::string &what)
{
    return Status::error(ErrorCode::CorruptData, path, ": ", what);
}

} // namespace

Status
writeTrace(const std::string &path, std::uint32_t screen_w,
           std::uint32_t screen_h,
           const std::vector<std::pair<std::uint32_t,
                                       std::uint32_t>> &texture_dims,
           const std::vector<FrameData> &frames)
{
    File file(std::fopen(path.c_str(), "wb"));
    if (!file.fp) {
        return Status::error(ErrorCode::IoError,
                             "cannot open trace file for writing: ",
                             path);
    }
    std::FILE *fp = file.fp;
    const auto io_fail = [&path] {
        return Status::error(ErrorCode::IoError, "short write to ", path);
    };

    if (std::fwrite(magic, 1, 4, fp) != 4 || !put(fp, version)
        || !put(fp, screen_w) || !put(fp, screen_h)
        || !put(fp, static_cast<std::uint32_t>(texture_dims.size()))
        || !put(fp, static_cast<std::uint32_t>(frames.size()))) {
        return io_fail();
    }
    for (const auto &[w, h] : texture_dims) {
        if (!put(fp, w) || !put(fp, h))
            return io_fail();
    }
    for (const auto &frame : frames) {
        if (!put(fp, static_cast<std::uint32_t>(frame.draws.size())))
            return io_fail();
        for (const auto &draw : frame.draws) {
            if (!put(fp, draw.vertexAddr) || !put(fp, draw.vertexCount)
                || !put(fp, draw.vertexCostCycles)
                || !put(fp,
                        static_cast<std::uint32_t>(draw.tris.size()))) {
                return io_fail();
            }
            for (const auto &tri : draw.tris) {
                if (!putTriangle(fp, tri))
                    return io_fail();
            }
        }
    }
    if (std::fflush(fp) != 0)
        return io_fail();
    return Status::ok();
}

Status
writeTrace(const std::string &path, const Scene &scene,
           std::uint32_t first_frame, std::uint32_t count)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> dims;
    for (std::uint32_t i = 0; i < scene.textures().count(); ++i) {
        const Texture &tex = scene.textures().get(i);
        dims.emplace_back(tex.width(), tex.height());
    }
    std::vector<FrameData> frames;
    frames.reserve(count);
    for (std::uint32_t f = 0; f < count; ++f)
        frames.push_back(scene.frame(first_frame + f));
    return writeTrace(path, scene.screenWidth(), scene.screenHeight(),
                      dims, frames);
}

Status
FrameTrace::load(const std::string &path)
{
    Status st = loadImpl(path);
    if (!st.isOk()) {
        // Leave the trace empty rather than half-loaded on failure.
        screenW = 0;
        screenH = 0;
        pool = TexturePool();
        frames.clear();
    }
    return st;
}

Status
FrameTrace::loadImpl(const std::string &path)
{
    // Replace any previous content.
    screenW = 0;
    screenH = 0;
    pool = TexturePool();
    frames.clear();

    File file(std::fopen(path.c_str(), "rb"));
    if (!file.fp) {
        return Status::error(ErrorCode::IoError,
                             "cannot open trace file: ", path);
    }
    std::FILE *fp = file.fp;

    // Every on-disk count is validated against the bytes that are
    // actually left in the file before it is used to size anything.
    if (std::fseek(fp, 0, SEEK_END) != 0)
        return Status::error(ErrorCode::IoError, "cannot seek: ", path);
    const long file_size = std::ftell(fp);
    if (file_size < 0)
        return Status::error(ErrorCode::IoError, "cannot tell: ", path);
    if (std::fseek(fp, 0, SEEK_SET) != 0)
        return Status::error(ErrorCode::IoError, "cannot seek: ", path);
    if (static_cast<std::uint64_t>(file_size) < headerBytes)
        return corrupt(path, "truncated header");
    std::uint64_t remaining =
        static_cast<std::uint64_t>(file_size) - headerBytes;

    char m[4];
    std::uint32_t ver = 0, tex_count = 0, frame_count = 0;
    if (std::fread(m, 1, 4, fp) != 4 || std::memcmp(m, magic, 4) != 0)
        return corrupt(path, "not a LTRC trace (bad magic)");
    if (!get(fp, ver))
        return corrupt(path, "truncated header");
    if (ver != version) {
        return corrupt(path, detail::format("unsupported trace version ",
                                            ver));
    }
    if (!get(fp, screenW) || !get(fp, screenH) || !get(fp, tex_count)
        || !get(fp, frame_count)) {
        return corrupt(path, "truncated header");
    }
    if (screenW == 0 || screenH == 0
        || screenW > trace_limits::maxScreenDim
        || screenH > trace_limits::maxScreenDim) {
        return corrupt(path, detail::format("bad screen size ", screenW,
                                            "x", screenH));
    }
    if (tex_count > trace_limits::maxTextures) {
        return corrupt(path, detail::format("implausible texture count ",
                                            tex_count));
    }
    if (std::uint64_t(tex_count) * textureBytes > remaining) {
        return corrupt(path,
                       detail::format("texture table needs ",
                                      std::uint64_t(tex_count)
                                          * textureBytes,
                                      " bytes, ", remaining, " left"));
    }
    if (frame_count > trace_limits::maxFrames) {
        return corrupt(path, detail::format("implausible frame count ",
                                            frame_count));
    }
    if (std::uint64_t(frame_count) * 4 > remaining) {
        return corrupt(path,
                       detail::format("frame table needs ",
                                      std::uint64_t(frame_count) * 4,
                                      " bytes, ", remaining, " left"));
    }

    for (std::uint32_t i = 0; i < tex_count; ++i) {
        std::uint32_t w = 0, h = 0;
        if (!get(fp, w) || !get(fp, h))
            return corrupt(path, "truncated texture table");
        remaining -= textureBytes;
        if (w == 0 || h == 0 || w > trace_limits::maxTextureDim
            || h > trace_limits::maxTextureDim) {
            return corrupt(path,
                           detail::format("bad texture ", i, ": ", w,
                                          "x", h));
        }
        pool.create(w, h);
    }

    frames.reserve(frame_count);
    for (std::uint32_t f = 0; f < frame_count; ++f) {
        FrameData frame;
        frame.frameIndex = f;
        std::uint32_t draw_count = 0;
        if (!get(fp, draw_count))
            return corrupt(path, "truncated frame table");
        remaining -= std::min<std::uint64_t>(remaining, 4);
        if (draw_count > trace_limits::maxDrawsPerFrame) {
            return corrupt(path,
                           detail::format("frame ", f,
                                          ": implausible draw count ",
                                          draw_count));
        }
        if (std::uint64_t(draw_count) * drawHeaderBytes > remaining) {
            return corrupt(path,
                           detail::format("frame ", f, ": ", draw_count,
                                          " draws need ",
                                          std::uint64_t(draw_count)
                                              * drawHeaderBytes,
                                          " bytes, ", remaining,
                                          " left"));
        }
        frame.draws.resize(draw_count);
        for (auto &draw : frame.draws) {
            std::uint32_t tri_count = 0;
            if (!get(fp, draw.vertexAddr) || !get(fp, draw.vertexCount)
                || !get(fp, draw.vertexCostCycles)
                || !get(fp, tri_count)) {
                return corrupt(path, "truncated draw header");
            }
            remaining -=
                std::min<std::uint64_t>(remaining, drawHeaderBytes);
            if (tri_count > trace_limits::maxTrisPerDraw) {
                return corrupt(
                    path, detail::format("implausible triangle count ",
                                         tri_count));
            }
            if (std::uint64_t(tri_count) * triangleBytes > remaining) {
                return corrupt(
                    path, detail::format(tri_count,
                                         " triangles need ",
                                         std::uint64_t(tri_count)
                                             * triangleBytes,
                                         " bytes, ", remaining,
                                         " left"));
            }
            draw.tris.resize(tri_count);
            for (auto &tri : draw.tris) {
                if (!getTriangle(fp, tri))
                    return corrupt(path, "truncated triangle data");
                remaining -=
                    std::min<std::uint64_t>(remaining, triangleBytes);
                // Replay indexes the texture pool with this id; an
                // unchecked id would panic mid-simulation.
                if (tri.textureId >= tex_count) {
                    return corrupt(
                        path, detail::format("triangle references "
                                             "texture ",
                                             tri.textureId, " of ",
                                             tex_count));
                }
            }
        }
        frames.push_back(std::move(frame));
    }
    return Status::ok();
}

const FrameData &
FrameTrace::frame(std::size_t index) const
{
    libra_assert(index < frames.size(), "trace frame ", index,
                 " out of range (", frames.size(), " frames loaded)");
    return frames[index];
}

void
FrameTrace::set(std::uint32_t screen_w, std::uint32_t screen_h,
                std::vector<std::pair<std::uint32_t,
                                      std::uint32_t>> texture_dims,
                std::vector<FrameData> frame_data)
{
    screenW = screen_w;
    screenH = screen_h;
    pool = TexturePool();
    for (const auto &[w, h] : texture_dims)
        pool.create(w, h);
    frames = std::move(frame_data);
}

} // namespace libra
