#include "trace/frame_trace.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/log.hh"

namespace libra
{

namespace
{

constexpr char magic[4] = {'L', 'T', 'R', 'C'};
constexpr std::uint32_t version = 1;

/** RAII FILE handle. */
struct File
{
    explicit File(std::FILE *fp) : fp(fp) {}
    ~File()
    {
        if (fp)
            std::fclose(fp);
    }
    File(const File &) = delete;
    File &operator=(const File &) = delete;
    std::FILE *fp;
};

template <typename T>
bool
put(std::FILE *fp, const T &value)
{
    return std::fwrite(&value, sizeof(T), 1, fp) == 1;
}

template <typename T>
bool
get(std::FILE *fp, T &value)
{
    return std::fread(&value, sizeof(T), 1, fp) == 1;
}

bool
putTriangle(std::FILE *fp, const Triangle &tri)
{
    for (const auto &v : tri.v) {
        if (!put(fp, v.pos.x) || !put(fp, v.pos.y) || !put(fp, v.pos.z)
            || !put(fp, v.uv.x) || !put(fp, v.uv.y)) {
            return false;
        }
    }
    const std::uint8_t flags = (tri.blend ? 1u : 0u)
        | (tri.useMips ? 2u : 0u);
    return put(fp, tri.textureId) && put(fp, tri.shaderAluOps)
        && put(fp, tri.texSamples) && put(fp, flags);
}

bool
getTriangle(std::FILE *fp, Triangle &tri)
{
    for (auto &v : tri.v) {
        if (!get(fp, v.pos.x) || !get(fp, v.pos.y) || !get(fp, v.pos.z)
            || !get(fp, v.uv.x) || !get(fp, v.uv.y)) {
            return false;
        }
    }
    std::uint8_t flags = 0;
    if (!get(fp, tri.textureId) || !get(fp, tri.shaderAluOps)
        || !get(fp, tri.texSamples) || !get(fp, flags)) {
        return false;
    }
    tri.blend = (flags & 1) != 0;
    tri.useMips = (flags & 2) != 0;
    return true;
}

} // namespace

bool
writeTrace(const std::string &path, std::uint32_t screen_w,
           std::uint32_t screen_h,
           const std::vector<std::pair<std::uint32_t,
                                       std::uint32_t>> &texture_dims,
           const std::vector<FrameData> &frames)
{
    File file(std::fopen(path.c_str(), "wb"));
    if (!file.fp) {
        warn("cannot open trace file ", path);
        return false;
    }
    std::FILE *fp = file.fp;

    if (std::fwrite(magic, 1, 4, fp) != 4 || !put(fp, version)
        || !put(fp, screen_w) || !put(fp, screen_h)
        || !put(fp, static_cast<std::uint32_t>(texture_dims.size()))
        || !put(fp, static_cast<std::uint32_t>(frames.size()))) {
        return false;
    }
    for (const auto &[w, h] : texture_dims) {
        if (!put(fp, w) || !put(fp, h))
            return false;
    }
    for (const auto &frame : frames) {
        if (!put(fp, static_cast<std::uint32_t>(frame.draws.size())))
            return false;
        for (const auto &draw : frame.draws) {
            if (!put(fp, draw.vertexAddr) || !put(fp, draw.vertexCount)
                || !put(fp, draw.vertexCostCycles)
                || !put(fp,
                        static_cast<std::uint32_t>(draw.tris.size()))) {
                return false;
            }
            for (const auto &tri : draw.tris) {
                if (!putTriangle(fp, tri))
                    return false;
            }
        }
    }
    return true;
}

bool
writeTrace(const std::string &path, const Scene &scene,
           std::uint32_t first_frame, std::uint32_t count)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> dims;
    for (std::uint32_t i = 0; i < scene.textures().count(); ++i) {
        const Texture &tex = scene.textures().get(i);
        dims.emplace_back(tex.width(), tex.height());
    }
    std::vector<FrameData> frames;
    frames.reserve(count);
    for (std::uint32_t f = 0; f < count; ++f)
        frames.push_back(scene.frame(first_frame + f));
    return writeTrace(path, scene.screenWidth(), scene.screenHeight(),
                      dims, frames);
}

bool
FrameTrace::load(const std::string &path)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file.fp) {
        warn("cannot open trace file ", path);
        return false;
    }
    std::FILE *fp = file.fp;

    char m[4];
    std::uint32_t ver = 0, tex_count = 0, frame_count = 0;
    if (std::fread(m, 1, 4, fp) != 4 || std::memcmp(m, magic, 4) != 0) {
        warn(path, ": not a LTRC trace");
        return false;
    }
    if (!get(fp, ver) || ver != version) {
        warn(path, ": unsupported trace version ", ver);
        return false;
    }
    if (!get(fp, screenW) || !get(fp, screenH) || !get(fp, tex_count)
        || !get(fp, frame_count)) {
        return false;
    }

    pool = TexturePool();
    for (std::uint32_t i = 0; i < tex_count; ++i) {
        std::uint32_t w = 0, h = 0;
        if (!get(fp, w) || !get(fp, h))
            return false;
        pool.create(w, h);
    }

    frames.clear();
    frames.reserve(frame_count);
    for (std::uint32_t f = 0; f < frame_count; ++f) {
        FrameData frame;
        frame.frameIndex = f;
        std::uint32_t draw_count = 0;
        if (!get(fp, draw_count))
            return false;
        frame.draws.resize(draw_count);
        for (auto &draw : frame.draws) {
            std::uint32_t tri_count = 0;
            if (!get(fp, draw.vertexAddr) || !get(fp, draw.vertexCount)
                || !get(fp, draw.vertexCostCycles)
                || !get(fp, tri_count)) {
                return false;
            }
            draw.tris.resize(tri_count);
            for (auto &tri : draw.tris) {
                if (!getTriangle(fp, tri))
                    return false;
            }
        }
        frames.push_back(std::move(frame));
    }
    return true;
}

const FrameData &
FrameTrace::frame(std::size_t index) const
{
    libra_assert(index < frames.size(), "trace frame out of range");
    return frames[index];
}

void
FrameTrace::set(std::uint32_t screen_w, std::uint32_t screen_h,
                std::vector<std::pair<std::uint32_t,
                                      std::uint32_t>> texture_dims,
                std::vector<FrameData> frame_data)
{
    screenW = screen_w;
    screenH = screen_h;
    pool = TexturePool();
    for (const auto &[w, h] : texture_dims)
        pool.create(w, h);
    frames = std::move(frame_data);
}

} // namespace libra
