#include "trace/json.hh"

#include <cctype>
#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace libra
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return; // the key already emitted the comma
    }
    if (!hasEntry.empty()) {
        if (hasEntry.back())
            out += ',';
        hasEntry.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    separate();
    out += '{';
    hasEntry.push_back(false);
}

void
JsonWriter::endObject()
{
    libra_assert(!hasEntry.empty(), "endObject outside a container");
    hasEntry.pop_back();
    out += '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out += '[';
    hasEntry.push_back(false);
}

void
JsonWriter::endArray()
{
    libra_assert(!hasEntry.empty(), "endArray outside a container");
    hasEntry.pop_back();
    out += ']';
}

void
JsonWriter::key(const std::string &name)
{
    libra_assert(!hasEntry.empty(), "key outside an object");
    if (hasEntry.back())
        out += ',';
    hasEntry.back() = true;
    out += '"';
    out += jsonEscape(name);
    out += "\":";
    pendingKey = true;
}

void
JsonWriter::value(const std::string &s)
{
    separate();
    out += '"';
    out += jsonEscape(s);
    out += '"';
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(double d)
{
    separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    out += std::to_string(v);
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    out += std::to_string(v);
}

void
JsonWriter::value(bool b)
{
    separate();
    out += b ? "true" : "false";
}

void
JsonWriter::null()
{
    separate();
    out += "null";
}

void
JsonWriter::raw(const std::string &json)
{
    separate();
    out += json;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, val] : members) {
        if (key == name)
            return &val;
    }
    return nullptr;
}

namespace
{

/** Recursive-descent JSON parser over a string, tracking position for
 *  error messages. Depth-limited against pathological nesting. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Result<JsonValue>
    parse()
    {
        JsonValue root;
        if (Status st = parseValue(root, 0); !st.isOk())
            return st;
        skipSpace();
        if (pos != s.size()) {
            return fail("trailing content after the JSON document");
        }
        return root;
    }

  private:
    static constexpr int kMaxDepth = 64;

    Status
    fail(const char *what) const
    {
        return Status::error(ErrorCode::CorruptData, "JSON: ", what,
                             " at byte ", pos);
    }

    void
    skipSpace()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'
                   || s[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Status
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return Status::ok();
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("dangling escape");
                const char e = s[pos];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 >= s.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s[pos + 1 + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    pos += 4;
                    // UTF-8 encode (surrogate pairs not recombined —
                    // the exporters never emit them).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80
                                                 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++pos;
            } else {
                out += c;
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    Status
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (consume('-')) {}
        while (pos < s.size()
               && std::isdigit(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
        if (pos == start || (s[start] == '-' && pos == start + 1))
            return fail("expected digits");
        const std::size_t int_start =
            start + (s[start] == '-' ? 1 : 0);
        if (s[int_start] == '0' && pos > int_start + 1)
            return fail("leading zero");
        if (consume('.')) {
            const std::size_t frac = pos;
            while (pos < s.size()
                   && std::isdigit(static_cast<unsigned char>(s[pos]))) {
                ++pos;
            }
            if (pos == frac)
                return fail("expected fraction digits");
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            const std::size_t exp = pos;
            while (pos < s.size()
                   && std::isdigit(static_cast<unsigned char>(s[pos]))) {
                ++pos;
            }
            if (pos == exp)
                return fail("expected exponent digits");
        }
        out.kind = JsonValue::Kind::Number;
        out.str = s.substr(start, pos - start); //!< raw text, exact
        out.number = std::strtod(out.str.c_str(), nullptr);
        return Status::ok();
    }

    Status
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= s.size())
            return fail("unexpected end of input");
        const char c = s[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (consume('}'))
                return Status::ok();
            while (true) {
                skipSpace();
                std::string key;
                if (Status st = parseString(key); !st.isOk())
                    return st;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue member;
                if (Status st = parseValue(member, depth + 1);
                    !st.isOk()) {
                    return st;
                }
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return Status::ok();
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (consume(']'))
                return Status::ok();
            while (true) {
                JsonValue item;
                if (Status st = parseValue(item, depth + 1); !st.isOk())
                    return st;
                out.items.push_back(std::move(item));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return Status::ok();
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (s.compare(pos, 4, "true") == 0) {
            pos += 4;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return Status::ok();
        }
        if (s.compare(pos, 5, "false") == 0) {
            pos += 5;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return Status::ok();
        }
        if (s.compare(pos, 4, "null") == 0) {
            pos += 4;
            out.kind = JsonValue::Kind::Null;
            return Status::ok();
        }
        return parseNumber(out);
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

Result<JsonValue>
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

Status
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    if (fp == nullptr) {
        return Status::error(ErrorCode::IoError, "cannot open ", path,
                             " for writing");
    }
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), fp);
    const int close_rc = std::fclose(fp);
    if (written != content.size() || close_rc != 0) {
        return Status::error(ErrorCode::IoError, "short write to ",
                             path);
    }
    return Status::ok();
}

} // namespace libra
