/**
 * @file
 * Machine-readable run reports.
 *
 * A RunReport is a JSON document describing one (benchmark, config)
 * run: the configuration that produced it, a per-frame phase/bandwidth
 * breakdown and the full cumulative counter dump. Every bench binary
 * and every SweepRunner job can emit one (--report-out), so downstream
 * tooling reads structured data instead of scraping stdout tables.
 *
 * Reports are deterministic by construction: no wall-clock times, no
 * host names, counters in sorted order, "%.17g" doubles — identical
 * simulations yield byte-identical documents regardless of worker
 * count. The determinism test suite locks this down.
 */

#ifndef LIBRA_TRACE_RUN_REPORT_HH
#define LIBRA_TRACE_RUN_REPORT_HH

#include <string>
#include <vector>

#include "gpu/runner.hh"

namespace libra
{

/** Schema tag embedded in every report ("schema" member). */
inline constexpr const char *kRunReportSchema = "libra.run_report/1";

/** Schema tag of a multi-run report set. */
inline constexpr const char *kRunReportSetSchema =
    "libra.run_report_set/1";

/** Render one run as a RunReport JSON document. */
std::string runReportJson(const RunResult &result);

/** Render several runs (e.g. one sweep) as one report-set document. */
std::string sweepReportJson(const std::vector<RunResult> &results);

/**
 * One failed sweep job, for the report set's "failures" section.
 * Plain strings (code via errorCodeName) so the report layer does not
 * depend on the sweep engine.
 */
struct ReportFailure
{
    std::uint64_t jobIndex = 0;
    std::string key;     //!< sweepJobKey: bench, resolution, cfg hash
    std::string code;    //!< errorCodeName of the final Status
    std::string message;
    std::uint32_t attempts = 0;
    bool quarantined = false;
    bool notRun = false;
};

/**
 * Report set with per-job failure outcomes (graceful degradation: a
 * sweep with failures still emits every completed run plus a machine-
 * readable account of what did not complete). The "failures" member is
 * always present — empty on a clean sweep — so a resumed sweep's
 * report is byte-identical to an uninterrupted one.
 */
std::string sweepReportJson(const std::vector<RunResult> &results,
                            const std::vector<ReportFailure> &failures);

} // namespace libra

#endif // LIBRA_TRACE_RUN_REPORT_HH
