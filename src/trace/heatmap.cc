#include "trace/heatmap.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace libra
{

namespace
{

/** Cold(blue) → hot(red) ramp for t in [0, 1]. */
void
ramp(double t, std::uint8_t &r, std::uint8_t &g, std::uint8_t &b)
{
    t = std::clamp(t, 0.0, 1.0);
    // Piecewise blue → cyan → yellow → red.
    double rr, gg, bb;
    if (t < 0.33) {
        const double u = t / 0.33;
        rr = 0.0; gg = u; bb = 1.0;
    } else if (t < 0.66) {
        const double u = (t - 0.33) / 0.33;
        rr = u; gg = 1.0; bb = 1.0 - u;
    } else {
        const double u = (t - 0.66) / 0.34;
        rr = 1.0; gg = 1.0 - u; bb = 0.0;
    }
    r = static_cast<std::uint8_t>(rr * 255.0);
    g = static_cast<std::uint8_t>(gg * 255.0);
    b = static_cast<std::uint8_t>(bb * 255.0);
}

} // namespace

bool
writeHeatmapPpm(const std::string &path, const TileGrid &grid,
                const std::vector<std::uint64_t> &values,
                std::uint32_t cell)
{
    libra_assert(values.size() == grid.tileCount(),
                 "heatmap needs one value per tile");
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    if (!fp) {
        warn("cannot open ", path);
        return false;
    }
    const std::uint64_t max_value =
        std::max<std::uint64_t>(1, *std::max_element(values.begin(),
                                                     values.end()));
    const std::uint32_t w = grid.tilesX() * cell;
    const std::uint32_t h = grid.tilesY() * cell;
    std::fprintf(fp, "P6\n%u %u\n255\n", w, h);
    std::vector<std::uint8_t> row(static_cast<std::size_t>(w) * 3);
    for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            const TileId tile = grid.tileAt(x / cell, y / cell);
            const double t = static_cast<double>(values[tile])
                / static_cast<double>(max_value);
            ramp(t, row[x * 3], row[x * 3 + 1], row[x * 3 + 2]);
        }
        std::fwrite(row.data(), 1, row.size(), fp);
    }
    std::fclose(fp);
    return true;
}

std::string
heatmapAscii(const TileGrid &grid,
             const std::vector<std::uint64_t> &values)
{
    libra_assert(values.size() == grid.tileCount(),
                 "heatmap needs one value per tile");
    static const char ramp_chars[] = " .:-=+*#%@";
    const std::uint64_t max_value =
        std::max<std::uint64_t>(1, *std::max_element(values.begin(),
                                                     values.end()));
    std::string out;
    out.reserve(static_cast<std::size_t>(grid.tileCount())
                + grid.tilesY());
    for (std::uint32_t y = 0; y < grid.tilesY(); ++y) {
        for (std::uint32_t x = 0; x < grid.tilesX(); ++x) {
            const double t =
                static_cast<double>(values[grid.tileAt(x, y)])
                / static_cast<double>(max_value);
            const auto idx = static_cast<std::size_t>(
                t * (sizeof(ramp_chars) - 2));
            out.push_back(ramp_chars[std::min<std::size_t>(
                idx, sizeof(ramp_chars) - 2)]);
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace libra
