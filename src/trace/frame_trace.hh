/**
 * @file
 * Frame trace capture and replay.
 *
 * The evaluation methodology of the paper replays GPU traces captured
 * from commercial games. This module provides the equivalent workflow
 * for libra-sim: serialize a sequence of frames (the screen-space draw
 * stream plus the texture pool geometry) into a compact binary ".ltrc"
 * file, and replay it later — decoupling workload generation from
 * timing simulation, enabling trace sharing, and guaranteeing that two
 * experiments consumed byte-identical inputs.
 *
 * Format (little-endian):
 *   header:  magic "LTRC", u32 version, u32 screenW, u32 screenH,
 *            u32 textureCount, u32 frameCount
 *   texture: u32 width, u32 height                  (xtextureCount)
 *   frame:   u32 drawCount                          (xframeCount)
 *     draw:  u64 vertexAddr, u32 vertexCount, u16 vertexCost,
 *            u32 triCount
 *       tri: 3 x (f32 x,y,z, f32 u,v), u32 textureId, u16 aluOps,
 *            u8 texSamples, u8 flags (bit0 blend, bit1 useMips)
 *
 * Hard format limits, enforced by the loader (a file that violates any
 * of them is rejected with ErrorCode::CorruptData — the loader never
 * trusts an on-disk count without checking it against these ceilings
 * AND against the bytes actually remaining in the file, so a truncated
 * or bit-flipped trace can neither crash the process nor trigger a
 * count-driven huge allocation):
 *   screen dimensions:    1 .. 16384 pixels per axis
 *   textures:             0 .. 4096, each 1 .. 16384 per axis
 *   frames:               0 .. 65536
 *   draws per frame:      0 .. 1048576 (and >= 18 bytes each on disk)
 *   triangles per draw:   0 .. 4194304 (and 68 bytes each on disk)
 */

#ifndef LIBRA_TRACE_FRAME_TRACE_HH
#define LIBRA_TRACE_FRAME_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "workload/scene.hh"
#include "workload/texture.hh"

namespace libra
{

/** Loader-enforced .ltrc limits (see the format comment above). */
namespace trace_limits
{
constexpr std::uint32_t maxScreenDim = 16384;
constexpr std::uint32_t maxTextures = 4096;
constexpr std::uint32_t maxTextureDim = 16384;
constexpr std::uint32_t maxFrames = 1u << 16;
constexpr std::uint32_t maxDrawsPerFrame = 1u << 20;
constexpr std::uint32_t maxTrisPerDraw = 1u << 22;
} // namespace trace_limits

/** A loaded trace: everything needed to drive Gpu::renderFrame. */
class FrameTrace
{
  public:
    FrameTrace() = default;

    /**
     * Load a trace file, replacing any previous content. On failure the
     * trace is left empty and the Status carries IoError (unreadable
     * file) or CorruptData (structural validation failed).
     */
    Status load(const std::string &path);

    std::uint32_t screenWidth() const { return screenW; }
    std::uint32_t screenHeight() const { return screenH; }
    std::size_t frameCount() const { return frames.size(); }

    /** @p index must be < frameCount(); out of range is a caller bug. */
    const FrameData &frame(std::size_t index) const;

    const TexturePool &textures() const { return pool; }

    /** In-memory construction (used by the writer and the tests). */
    void
    set(std::uint32_t screen_w, std::uint32_t screen_h,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> texture_dims,
        std::vector<FrameData> frame_data);

  private:
    Status loadImpl(const std::string &path);

    std::uint32_t screenW = 0;
    std::uint32_t screenH = 0;
    TexturePool pool;
    std::vector<FrameData> frames;
};

/**
 * Capture @p count frames of @p scene starting at @p first_frame into
 * @p path. @return IoError on write failure.
 */
Status writeTrace(const std::string &path, const Scene &scene,
                  std::uint32_t first_frame, std::uint32_t count);

/** Serialize an in-memory trace (lower-level entry point). */
Status writeTrace(const std::string &path, std::uint32_t screen_w,
                  std::uint32_t screen_h,
                  const std::vector<std::pair<std::uint32_t,
                                              std::uint32_t>> &texture_dims,
                  const std::vector<FrameData> &frames);

} // namespace libra

#endif // LIBRA_TRACE_FRAME_TRACE_HH
