/**
 * @file
 * Frame trace capture and replay.
 *
 * The evaluation methodology of the paper replays GPU traces captured
 * from commercial games. This module provides the equivalent workflow
 * for libra-sim: serialize a sequence of frames (the screen-space draw
 * stream plus the texture pool geometry) into a compact binary ".ltrc"
 * file, and replay it later — decoupling workload generation from
 * timing simulation, enabling trace sharing, and guaranteeing that two
 * experiments consumed byte-identical inputs.
 *
 * Format (little-endian):
 *   header:  magic "LTRC", u32 version, u32 screenW, u32 screenH,
 *            u32 textureCount, u32 frameCount
 *   texture: u32 width, u32 height                  (xtextureCount)
 *   frame:   u32 drawCount                          (xframeCount)
 *     draw:  u64 vertexAddr, u32 vertexCount, u16 vertexCost,
 *            u32 triCount
 *       tri: 3 x (f32 x,y,z, f32 u,v), u32 textureId, u16 aluOps,
 *            u8 texSamples, u8 flags (bit0 blend, bit1 useMips)
 */

#ifndef LIBRA_TRACE_FRAME_TRACE_HH
#define LIBRA_TRACE_FRAME_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/scene.hh"
#include "workload/texture.hh"

namespace libra
{

/** A loaded trace: everything needed to drive Gpu::renderFrame. */
class FrameTrace
{
  public:
    FrameTrace() = default;

    /** Load a trace file. @return false (with a warning) on failure. */
    bool load(const std::string &path);

    std::uint32_t screenWidth() const { return screenW; }
    std::uint32_t screenHeight() const { return screenH; }
    std::size_t frameCount() const { return frames.size(); }

    const FrameData &frame(std::size_t index) const;
    const TexturePool &textures() const { return pool; }

    /** In-memory construction (used by the writer and the tests). */
    void
    set(std::uint32_t screen_w, std::uint32_t screen_h,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> texture_dims,
        std::vector<FrameData> frame_data);

  private:
    std::uint32_t screenW = 0;
    std::uint32_t screenH = 0;
    TexturePool pool;
    std::vector<FrameData> frames;
};

/**
 * Capture @p count frames of @p scene starting at @p first_frame into
 * @p path. @return false on I/O failure.
 */
bool writeTrace(const std::string &path, const Scene &scene,
                std::uint32_t first_frame, std::uint32_t count);

/** Serialize an in-memory trace (lower-level entry point). */
bool writeTrace(const std::string &path, std::uint32_t screen_w,
                std::uint32_t screen_h,
                const std::vector<std::pair<std::uint32_t,
                                            std::uint32_t>> &texture_dims,
                const std::vector<FrameData> &frames);

} // namespace libra

#endif // LIBRA_TRACE_FRAME_TRACE_HH
