/**
 * @file
 * Minimal in-tree JSON support: a streaming writer used by the trace
 * and report exporters, and a small validating parser used by the
 * exporter test suite (and by any tool that wants to re-read a
 * RunReport without an external dependency).
 *
 * The writer produces deterministic output: identical inputs yield
 * byte-identical text (fixed key order is the caller's responsibility;
 * number formatting uses a fixed "%.17g" for doubles so values
 * round-trip exactly). That determinism is what the golden determinism
 * test locks down.
 */

#ifndef LIBRA_TRACE_JSON_HH
#define LIBRA_TRACE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace libra
{

/** Escape @p s for inclusion inside a JSON string literal (quotes not
 *  included). Control characters become \u00XX sequences. */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer with automatic comma placement.
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("name"); w.value("CCS");
 *   w.key("frames"); w.beginArray();
 *   w.value(1); w.value(2);
 *   w.endArray();
 *   w.endObject();
 *   std::string text = w.str();
 *
 * The writer does not pretty-print nested containers beyond newlines
 * between top-level-ish entries; output is compact and diffable.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object member key; must be followed by exactly one value. */
    void key(const std::string &name);

    void value(const std::string &s);
    void value(const char *s);
    void value(double d);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool b);
    void null();

    /** Insert a pre-rendered JSON fragment as one value. */
    void raw(const std::string &json);

    const std::string &str() const { return out; }

  private:
    /** Emit a comma if the current container already has an entry. */
    void separate();

    std::string out;
    std::vector<bool> hasEntry; //!< per open container
    bool pendingKey = false;
};

/**
 * Parsed JSON document node. A deliberately small DOM: enough for the
 * exporter tests to walk traces and reports, not a general library.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;                          //!< Array
    std::vector<std::pair<std::string, JsonValue>> members; //!< Object

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
};

/**
 * Parse @p text as one JSON document. Returns CorruptData with a
 * byte-offset diagnostic on the first syntax error; trailing non-space
 * content after the document is also an error.
 */
Result<JsonValue> parseJson(const std::string &text);

/** Write @p content to @p path atomically enough for our purposes
 *  (plain fopen/fwrite); IoError on failure. */
Status writeTextFile(const std::string &path, const std::string &content);

} // namespace libra

#endif // LIBRA_TRACE_JSON_HH
