#include "trace/run_report.hh"

#include "trace/json.hh"

namespace libra
{

namespace
{

void
writeConfig(JsonWriter &w, const RunResult &result)
{
    const GpuConfig &cfg = result.config;
    w.beginObject();
    w.key("benchmark");
    w.value(result.benchmark);
    w.key("screen_width");
    w.value(cfg.screenWidth);
    w.key("screen_height");
    w.value(cfg.screenHeight);
    w.key("tile_size");
    w.value(cfg.tileSize);
    w.key("raster_units");
    w.value(cfg.rasterUnits);
    w.key("cores_per_ru");
    w.value(cfg.coresPerRu);
    w.key("warps_per_core");
    w.value(cfg.warpsPerCore);
    w.key("scheduler");
    w.value(schedulerPolicyName(cfg.sched.policy));
    w.key("ideal_memory");
    w.value(cfg.idealMemory);
    w.key("transaction_elimination");
    w.value(cfg.transactionElimination);
    w.key("trace_events");
    w.value(cfg.traceEvents);
    w.key("dram_timeline_interval");
    w.value(cfg.dramTimelineInterval);
    w.key("frames");
    w.value(static_cast<std::uint64_t>(result.frames.size()));
    w.endObject();
}

void
writeFrame(JsonWriter &w, const FrameStats &fs)
{
    w.beginObject();
    w.key("index");
    w.value(fs.frameIndex);
    w.key("total_cycles");
    w.value(static_cast<std::uint64_t>(fs.totalCycles));
    w.key("geom_cycles");
    w.value(static_cast<std::uint64_t>(fs.geomCycles));
    w.key("raster_cycles");
    w.value(static_cast<std::uint64_t>(fs.rasterCycles));
    w.key("dram_reads");
    w.value(fs.dramReads);
    w.key("dram_writes");
    w.value(fs.dramWrites);
    w.key("texture_hit_ratio");
    w.value(fs.textureHitRatio);
    w.key("l2_hit_ratio");
    w.value(fs.l2HitRatio);
    w.key("instructions");
    w.value(fs.instructions);
    w.key("fragments");
    w.value(fs.fragments);

    // Cycle attribution: one object per Raster Unit, the six phases
    // keyed by ruPhaseName(). Each object's values sum to total_cycles.
    w.key("ru_phases");
    w.beginArray();
    for (const auto &phases : fs.ruPhases) {
        w.beginObject();
        for (std::size_t p = 0; p < kNumRuPhases; ++p) {
            w.key(ruPhaseName(static_cast<RuPhase>(p)));
            w.value(phases[p]);
        }
        w.endObject();
    }
    w.endArray();

    // Fig. 7 DRAM-bandwidth timeline of the raster phase.
    w.key("dram_timeline");
    w.beginObject();
    w.key("interval");
    w.value(fs.dramTimelineInterval);
    w.key("samples");
    w.beginArray();
    for (const std::uint32_t s : fs.dramTimeline)
        w.value(s);
    w.endArray();
    w.endObject();

    w.endObject();
}

void
writeRun(JsonWriter &w, const RunResult &result)
{
    w.beginObject();
    w.key("schema");
    w.value(kRunReportSchema);
    w.key("config");
    writeConfig(w, result);

    w.key("frames");
    w.beginArray();
    for (const FrameStats &fs : result.frames)
        writeFrame(w, fs);
    w.endArray();

    w.key("skipped_frames");
    w.beginArray();
    for (const std::uint32_t f : result.skippedFrames)
        w.value(f);
    w.endArray();

    // Cumulative counter dump; std::map iteration gives sorted,
    // deterministic order.
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : result.counters) {
        w.key(name);
        w.value(value);
    }
    w.endObject();

    w.endObject();
}

} // namespace

std::string
runReportJson(const RunResult &result)
{
    JsonWriter w;
    writeRun(w, result);
    return w.str();
}

std::string
sweepReportJson(const std::vector<RunResult> &results)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value(kRunReportSetSchema);
    w.key("runs");
    w.beginArray();
    for (const RunResult &r : results)
        writeRun(w, r);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
sweepReportJson(const std::vector<RunResult> &results,
                const std::vector<ReportFailure> &failures)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value(kRunReportSetSchema);
    w.key("runs");
    w.beginArray();
    for (const RunResult &r : results)
        writeRun(w, r);
    w.endArray();
    w.key("failures");
    w.beginArray();
    for (const ReportFailure &f : failures) {
        w.beginObject();
        w.key("job");
        w.value(f.jobIndex);
        w.key("key");
        w.value(f.key);
        w.key("code");
        w.value(f.code);
        w.key("message");
        w.value(f.message);
        w.key("attempts");
        w.value(std::uint64_t(f.attempts));
        w.key("quarantined");
        w.value(f.quarantined);
        w.key("not_run");
        w.value(f.notRun);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace libra
