/**
 * @file
 * Plain-text table/CSV reporting used by every bench binary so the
 * regenerated "figures" print in a consistent, diffable format.
 */

#ifndef LIBRA_TRACE_REPORT_HH
#define LIBRA_TRACE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace libra
{

/** Fixed-width text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns. */
    std::string str() const;

    /** Render as CSV (RFC 4180 quoting for cells that need it). */
    std::string csv() const;

    /** Quote one CSV cell if it contains a comma, quote or newline. */
    static std::string csvQuote(const std::string &cell);

    void print() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Print a section banner ("==== Figure 11 ... ===="). */
void banner(const std::string &title);

} // namespace libra

#endif // LIBRA_TRACE_REPORT_HH
