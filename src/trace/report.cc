#include "trace/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace libra
{

Table::Table(std::vector<std::string> headers) : head(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    libra_assert(cells.size() == head.size(),
                 "row width mismatch: ", cells.size(), " vs ",
                 head.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };
    emit(head);
    std::size_t total = 0;
    for (const std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

std::string
Table::csvQuote(const std::string &cell)
{
    // RFC 4180: cells containing a comma, quote, CR or LF must be
    // quoted, with embedded quotes doubled. Everything else passes
    // through untouched so existing numeric output stays diffable.
    if (cell.find_first_of(",\"\r\n") == std::string::npos)
        return cell;
    std::string out;
    out.reserve(cell.size() + 2);
    out += '"';
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << csvQuote(cells[c]);
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(head);
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace libra
