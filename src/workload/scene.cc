#include "workload/scene.hh"

#include <algorithm>
#include <cmath>

#include "cache/mem_system.hh"
#include "common/log.hh"

namespace libra
{

namespace
{

constexpr float pi = 3.14159265358979f;

/** Clamp texture dimensions to keep footprints plausible for mobile. */
std::uint32_t
clampTexDim(float v)
{
    return static_cast<std::uint32_t>(
        std::clamp(v, 16.0f, 2048.0f));
}

} // namespace

Scene::Scene(const BenchmarkSpec &spec, std::uint32_t screen_w,
             std::uint32_t screen_h)
    : benchSpec(spec), screenW(screen_w), screenH(screen_h)
{
    libra_assert(screen_w > 0 && screen_h > 0, "empty screen");
    epochLength = std::max(1u, spec.epochFrames);

    Rng rng(spec.seed);

    // --- Textures -----------------------------------------------------
    std::vector<std::uint32_t> bg_tex;
    for (std::uint32_t i = 0; i < spec.bgLayers; ++i) {
        const float scale = spec.bgDetail * (i == 0 ? 1.0f : 0.6f);
        bg_tex.push_back(pool.create(clampTexDim(screenW * scale),
                                     clampTexDim(screenH * scale)).id());
    }

    std::uint32_t mesh_tex = 0;
    if (spec.meshCols > 0 && spec.meshRows > 0) {
        const std::uint32_t dim =
            clampTexDim(512.0f * std::max(spec.meshDetail, 0.5f));
        mesh_tex = pool.create(dim, dim).id();
    }

    std::vector<std::uint32_t> sprite_tex;
    for (std::uint32_t i = 0; i < std::max(spec.spriteTextures, 1u); ++i) {
        const std::uint32_t dim =
            clampTexDim(256.0f * std::max(spec.spriteDetail, 0.5f));
        sprite_tex.push_back(pool.create(dim, dim).id());
    }

    std::uint32_t particle_tex = 0;
    if (spec.particleCount > 0)
        particle_tex = pool.create(64, 64).id();

    std::uint32_t hud_tex = 0;
    if (spec.hudBars > 0) {
        hud_tex = pool.create(clampTexDim(screenW * spec.hudDetail),
                              clampTexDim(96.0f * spec.hudDetail)).id();
    }

    // --- Objects (construction order; draw order fixed below) ---------
    std::vector<Object> opaque;
    std::vector<Object> blended;
    std::vector<Object> hud;

    for (std::uint32_t i = 0; i < spec.bgLayers; ++i) {
        Object obj;
        obj.kind = Object::Kind::Background;
        obj.textureId = bg_tex[i];
        obj.sizeX = static_cast<float>(screenW);
        obj.sizeY = static_cast<float>(screenH);
        obj.depth = 0.95f - 0.02f * static_cast<float>(i);
        obj.aluOps = spec.bgAluOps;
        obj.blend = i > 0; // parallax layers blend over the base
        obj.useMips = spec.bgUseMips;
        obj.detail = spec.bgDetail;
        obj.anchor = {0.0f, 0.0f};
        obj.uvScrollX = spec.bgScrollX / static_cast<float>(screenW)
            * (1.0f + 0.35f * static_cast<float>(i));
        obj.uvScrollY = spec.bgScrollY / static_cast<float>(screenH);
        obj.vertexCost = spec.vertexCostCycles;
        (obj.blend ? blended : opaque).push_back(obj);
    }

    if (spec.meshCols > 0 && spec.meshRows > 0) {
        Object obj;
        obj.kind = Object::Kind::Mesh;
        obj.textureId = mesh_tex;
        obj.meshCols = spec.meshCols;
        obj.meshRows = spec.meshRows;
        obj.sizeX = static_cast<float>(screenW);
        obj.sizeY = static_cast<float>(screenH) * 0.7f;
        obj.anchor = {0.0f, static_cast<float>(screenH) * 0.3f};
        obj.depth = 0.6f; // per-row gradient applied at emission
        obj.aluOps = spec.meshAluOps;
        obj.texSamples = spec.meshTexSamples;
        obj.blend = false;
        obj.useMips = true;
        obj.detail = spec.meshDetail;
        obj.uvScrollY = spec.meshScroll;
        obj.vertexCost = spec.vertexCostCycles;
        opaque.push_back(obj);
    }

    for (std::uint32_t i = 0; i < spec.spriteCount; ++i) {
        Object obj;
        obj.kind = Object::Kind::Sprite;
        obj.textureId =
            sprite_tex[rng.below(sprite_tex.size())];
        const float size = static_cast<float>(
            rng.uniform(spec.spriteMinSize, spec.spriteMaxSize));
        obj.sizeX = size;
        obj.sizeY = size * static_cast<float>(rng.uniform(0.8, 1.25));
        obj.depth = 0.2f + 0.25f * static_cast<float>(rng.uniform());
        obj.aluOps = spec.spriteAluOps;
        obj.texSamples = spec.spriteTexSamples;
        obj.blend = rng.chance(spec.spriteBlendFraction);
        obj.useMips = spec.spriteUseMips;
        obj.detail = spec.spriteDetail;
        obj.hotspot = spec.hotspots == 0
            ? -1
            : static_cast<int>(i % spec.hotspots);
        obj.anchor = {static_cast<float>(rng.gaussian())
                          * spec.hotspotSpread,
                      static_cast<float>(rng.gaussian())
                          * spec.hotspotSpread * 0.7f};
        obj.wobbleAmp = static_cast<float>(rng.uniform(0.0, 12.0));
        obj.wobbleFreq = static_cast<float>(rng.uniform(0.05, 0.3));
        obj.wobblePhase = static_cast<float>(rng.uniform(0.0, 2.0 * pi));
        obj.drift = {static_cast<float>(rng.uniform(-1.0, 1.0))
                         * spec.spriteSpeed,
                     static_cast<float>(rng.uniform(-0.4, 0.4))
                         * spec.spriteSpeed};
        obj.vertexCost = spec.vertexCostCycles;
        (obj.blend ? blended : opaque).push_back(obj);
    }

    for (std::uint32_t i = 0; i < spec.particleCount; ++i) {
        Object obj;
        obj.kind = Object::Kind::Particle;
        obj.textureId = particle_tex;
        obj.particleIndex = i;
        obj.sizeX = spec.particleSize;
        obj.sizeY = spec.particleSize;
        obj.depth = 0.12f;
        obj.aluOps = spec.particleAluOps;
        obj.blend = true;
        obj.useMips = false;
        obj.detail = 1.0f;
        obj.vertexCost = spec.vertexCostCycles;
        blended.push_back(obj);
    }

    for (std::uint32_t i = 0; i < spec.hudBars; ++i) {
        Object obj;
        obj.kind = Object::Kind::Hud;
        obj.textureId = hud_tex;
        obj.sizeX = static_cast<float>(screenW)
            * (i < 2 ? 1.0f : 0.25f);
        obj.sizeY = i < 2 ? 84.0f : 120.0f;
        obj.depth = 0.05f;
        obj.aluOps = spec.hudAluOps;
        obj.blend = true;
        obj.useMips = false;
        obj.detail = spec.hudDetail;
        switch (i % 4) {
          case 0: obj.anchor = {0.0f, 0.0f}; break;
          case 1:
            obj.anchor = {0.0f, static_cast<float>(screenH) - obj.sizeY};
            break;
          case 2: obj.anchor = {12.0f, 100.0f}; break;
          default:
            obj.anchor = {static_cast<float>(screenW) - obj.sizeX - 12.0f,
                          100.0f};
            break;
        }
        obj.vertexCost = spec.vertexCostCycles;
        hud.push_back(obj);
    }

    // Draw order. 3D engines submit opaque geometry front-to-back so
    // Early-Z can kill occluded fragments; 2D/2.5D games paint
    // back-to-front with blending. Translucent geometry and the HUD
    // always come last, back-to-front.
    if (spec.genre == Genre::G3D) {
        std::stable_sort(opaque.begin(), opaque.end(),
                         [](const Object &a, const Object &b) {
                             return a.depth < b.depth;
                         });
    } else {
        std::stable_sort(opaque.begin(), opaque.end(),
                         [](const Object &a, const Object &b) {
                             return a.depth > b.depth;
                         });
    }
    std::stable_sort(blended.begin(), blended.end(),
                     [](const Object &a, const Object &b) {
                         return a.depth > b.depth;
                     });

    objects.reserve(opaque.size() + blended.size() + hud.size());
    for (auto &obj : opaque)
        objects.push_back(obj);
    for (auto &obj : blended)
        objects.push_back(obj);
    for (auto &obj : hud)
        objects.push_back(obj);

    // Assign per-object uv origins (stable sprite-sheet regions) and
    // vertex storage.
    Rng uv_rng(hashCombine(spec.seed, 0x75764f52ull)); // "uvOR"
    Addr vertex_cursor = addr_map::vertexBase;
    drawVertexAddr.reserve(objects.size());
    for (const auto &obj : objects) {
        drawVertexAddr.push_back(vertex_cursor);
        const std::uint32_t verts = obj.kind == Object::Kind::Mesh
            ? (obj.meshCols + 1) * (obj.meshRows + 1)
            : 4;
        vertex_cursor += static_cast<Addr>(verts) * 32;
    }
    // Sprites sample one of a small palette of shared art regions per
    // sheet: real games draw many instances of the same asset (candies,
    // coins, track tiles), so the per-frame unique-texel footprint is
    // bounded by the art set, not by the instance count. Every instance
    // of a region samples the SAME fixed texel extent — sprites stretch
    // the art to their own screen size, exactly like real 2D engines.
    uvOrigins.resize(objects.size());
    uvSpans.resize(objects.size());
    const std::uint32_t regions =
        std::max(1u, benchSpec.spriteRegionsPerSheet);
    for (std::size_t i = 0; i < objects.size(); ++i) {
        if (objects[i].kind != Object::Kind::Sprite) {
            uvOrigins[i] = {0.0f, 0.0f};
            uvSpans[i] = {0.0f, 0.0f};
            continue;
        }
        const Texture &tex = pool.get(objects[i].textureId);
        const float region_texels = std::clamp(
            64.0f * objects[i].detail, 16.0f,
            static_cast<float>(tex.width()) * 0.45f);
        // The sprite samples the region at its own screen size; the
        // effective texel:pixel ratio is region_texels / sizeX.
        const Vec2 span{region_texels / static_cast<float>(tex.width()),
                        region_texels / static_cast<float>(tex.height())};
        const auto r = static_cast<float>(uv_rng.below(regions));
        const float fx = r * 0.381966f - std::floor(r * 0.381966f);
        const float fy = r * 0.618034f - std::floor(r * 0.618034f);
        uvOrigins[i] = {fx * (1.0f - span.x), fy * (1.0f - span.y)};
        uvSpans[i] = span;
    }
}

std::uint32_t
Scene::epochOf(std::uint32_t frame_index) const
{
    return frame_index / epochLength;
}

std::uint32_t
Scene::epochStart(std::uint32_t epoch) const
{
    return epoch * epochLength;
}

Vec2
Scene::hotspotCenter(int hotspot, std::uint32_t frame_index) const
{
    const std::uint32_t epoch = epochOf(frame_index);
    const float t = static_cast<float>(frame_index - epochStart(epoch));

    // Epoch-stable base position plus slow drift: coherent within an
    // epoch, discontinuous across scene cuts.
    std::uint64_t h = hashCombine(benchSpec.seed,
                                  hashCombine(epoch + 1,
                                              static_cast<std::uint64_t>(
                                                  hotspot + 17)));
    const float base_x = 0.15f + 0.7f * static_cast<float>(
        (h & 0xffff) / 65536.0);
    const float base_y = 0.2f + 0.6f * static_cast<float>(
        ((h >> 16) & 0xffff) / 65536.0);
    const float dir = 2.0f * pi * static_cast<float>(
        ((h >> 32) & 0xffff) / 65536.0);

    return {base_x * static_cast<float>(screenW)
                + std::cos(dir) * benchSpec.hotspotDrift * t,
            base_y * static_cast<float>(screenH)
                + std::sin(dir) * benchSpec.hotspotDrift * t * 0.5f};
}

Vec2
Scene::objectPos(const Object &obj, std::uint32_t frame_index) const
{
    const float t = static_cast<float>(frame_index);
    switch (obj.kind) {
      case Object::Kind::Background:
      case Object::Kind::Hud:
      case Object::Kind::Mesh:
        return obj.anchor;
      case Object::Kind::Particle: {
        // Fully random per frame: effects flash anywhere on screen.
        const std::uint64_t h = hashCombine(
            benchSpec.seed,
            hashCombine(frame_index + 1, obj.particleIndex + 101));
        return {static_cast<float>(h & 0xffff) / 65536.0f
                    * static_cast<float>(screenW),
                static_cast<float>((h >> 16) & 0xffff) / 65536.0f
                    * static_cast<float>(screenH)};
      }
      case Object::Kind::Sprite: {
        Vec2 pos = obj.hotspot >= 0
            ? hotspotCenter(obj.hotspot, frame_index) + obj.anchor
            : obj.anchor;
        pos = pos + obj.drift * t;
        pos.x += obj.wobbleAmp
            * std::sin(obj.wobbleFreq * t + obj.wobblePhase);
        pos.y += obj.wobbleAmp * 0.6f
            * std::cos(obj.wobbleFreq * t + obj.wobblePhase * 1.3f);
        // Keep drifting sprites on screen by reflecting off the borders.
        const float w = static_cast<float>(screenW);
        const float h = static_cast<float>(screenH);
        pos.x = std::fabs(std::remainder(pos.x, 2.0f * w));
        pos.y = std::fabs(std::remainder(pos.y, 2.0f * h));
        if (pos.x > w)
            pos.x = 2.0f * w - pos.x;
        if (pos.y > h)
            pos.y = 2.0f * h - pos.y;
        return pos - Vec2{obj.sizeX * 0.5f, obj.sizeY * 0.5f};
      }
    }
    return obj.anchor;
}

void
Scene::emitQuad(DrawCall &draw, Vec2 top_left, Vec2 size, float depth,
                const Object &obj, Vec2 uv0, Vec2 uv1) const
{
    const Vec3 p00{top_left.x, top_left.y, depth};
    const Vec3 p10{top_left.x + size.x, top_left.y, depth};
    const Vec3 p01{top_left.x, top_left.y + size.y, depth};
    const Vec3 p11{top_left.x + size.x, top_left.y + size.y, depth};

    Triangle tri;
    tri.textureId = obj.textureId;
    tri.shaderAluOps = obj.aluOps;
    tri.texSamples = obj.texSamples;
    tri.blend = obj.blend;
    tri.useMips = obj.useMips;

    tri.v[0] = {p00, {uv0.x, uv0.y}};
    tri.v[1] = {p10, {uv1.x, uv0.y}};
    tri.v[2] = {p11, {uv1.x, uv1.y}};
    draw.tris.push_back(tri);

    tri.v[0] = {p00, {uv0.x, uv0.y}};
    tri.v[1] = {p11, {uv1.x, uv1.y}};
    tri.v[2] = {p01, {uv0.x, uv1.y}};
    draw.tris.push_back(tri);
}

void
Scene::emitMesh(DrawCall &draw, const Object &obj,
                std::uint32_t frame_index) const
{
    const Texture &tex = pool.get(obj.textureId);
    const float cell_w = obj.sizeX / static_cast<float>(obj.meshCols);
    const float cell_h = obj.sizeY / static_cast<float>(obj.meshRows);

    // uv span per cell so the base level supplies obj.detail texels per
    // pixel; the world scrolls via a v offset.
    const float cell_u = cell_w * obj.detail
        / static_cast<float>(tex.width());
    const float cell_v = cell_h * obj.detail
        / static_cast<float>(tex.height());
    const float v_offset = obj.uvScrollY * static_cast<float>(frame_index);

    for (std::uint32_t r = 0; r < obj.meshRows; ++r) {
        // Depth gradient: nearer rows (bottom of screen) are closer.
        const float row_frac = static_cast<float>(r)
            / static_cast<float>(obj.meshRows);
        const float depth = 0.85f - 0.35f * row_frac;
        for (std::uint32_t c = 0; c < obj.meshCols; ++c) {
            const Vec2 top_left{obj.anchor.x
                                    + cell_w * static_cast<float>(c),
                                obj.anchor.y
                                    + cell_h * static_cast<float>(r)};
            const Vec2 uv0{cell_u * static_cast<float>(c),
                           cell_v * static_cast<float>(r) + v_offset};
            const Vec2 uv1{uv0.x + cell_u, uv0.y + cell_v};
            emitQuad(draw, top_left, {cell_w, cell_h}, depth, obj, uv0,
                     uv1);
        }
    }
}

FrameData
Scene::frame(std::uint32_t index) const
{
    FrameData out;
    out.frameIndex = index;
    out.draws.reserve(objects.size());

    for (std::size_t i = 0; i < objects.size(); ++i) {
        const Object &obj = objects[i];
        DrawCall draw;
        draw.vertexAddr = drawVertexAddr[i];
        draw.vertexCostCycles = obj.vertexCost;

        const Texture &tex = pool.get(obj.textureId);
        const Vec2 pos = objectPos(obj, index);

        switch (obj.kind) {
          case Object::Kind::Mesh:
            emitMesh(draw, obj, index);
            draw.vertexCount = (obj.meshCols + 1) * (obj.meshRows + 1);
            break;
          case Object::Kind::Background: {
            const float span_u = obj.sizeX * obj.detail
                / static_cast<float>(tex.width());
            const float span_v = obj.sizeY * obj.detail
                / static_cast<float>(tex.height());
            const float scroll_u = obj.uvScrollX
                * static_cast<float>(index);
            const float scroll_v = obj.uvScrollY
                * static_cast<float>(index);
            emitQuad(draw, pos, {obj.sizeX, obj.sizeY}, obj.depth, obj,
                     {scroll_u, scroll_v},
                     {scroll_u + span_u, scroll_v + span_v});
            draw.vertexCount = 4;
            break;
          }
          case Object::Kind::Particle: {
            // Particles share one small sheet; sample its center.
            const float span = 32.0f / static_cast<float>(tex.width());
            emitQuad(draw, pos, {obj.sizeX, obj.sizeY}, obj.depth, obj,
                     {0.25f, 0.25f}, {0.25f + span, 0.25f + span});
            draw.vertexCount = 4;
            break;
          }
          case Object::Kind::Sprite: {
            // Fixed shared art region, stretched to the sprite size.
            const Vec2 origin = uvOrigins[i];
            const Vec2 span = uvSpans[i];
            emitQuad(draw, pos, {obj.sizeX, obj.sizeY}, obj.depth, obj,
                     origin, {origin.x + span.x, origin.y + span.y});
            draw.vertexCount = 4;
            break;
          }
          case Object::Kind::Hud: {
            const Vec2 origin = uvOrigins[i];
            const float span_u = obj.sizeX * obj.detail
                / static_cast<float>(tex.width());
            const float span_v = obj.sizeY * obj.detail
                / static_cast<float>(tex.height());
            emitQuad(draw, pos, {obj.sizeX, obj.sizeY}, obj.depth, obj,
                     origin, {origin.x + span_u, origin.y + span_v});
            draw.vertexCount = 4;
            break;
          }
        }
        out.draws.push_back(std::move(draw));
    }
    return out;
}

} // namespace libra
