/**
 * @file
 * The benchmark suite: 32 synthetic game archetypes standing in for the
 * commercial Android titles of the paper's Table II.
 *
 * Abbreviations that the paper's figures name explicitly (CCS, SuS, HCR,
 * CoC, AAt, BlB, GrT, Gra, RoK, BBR, AmU, CrS, Jet, HoW, RoM, GDL) keep
 * those abbreviations here; the remaining titles are plausible fillers.
 * Per the paper, 16 of the 32 are memory-intensive (>= 25% of execution
 * time on memory accesses) and 16 are compute-intensive.
 */

#ifndef LIBRA_WORKLOAD_BENCHMARKS_HH
#define LIBRA_WORKLOAD_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace libra
{

/** Visual style, matching Table II's 2D / 2.5D / 3D classification. */
enum class Genre
{
    G2D,
    G25D,
    G3D
};

const char *genreName(Genre genre);

/** Tunable description of one synthetic game. */
struct BenchmarkSpec
{
    std::string abbrev;  //!< e.g. "CCS"
    std::string title;   //!< e.g. "Candy Crush Saga"
    Genre genre = Genre::G2D;
    std::uint64_t seed = 1;

    /**
     * Whether the archetype targets the paper's memory-intensive class.
     * Used only for reporting/grouping; the actual classification in the
     * benches is measured, as in the paper (>= 25% time on memory).
     */
    bool memoryIntensive = false;

    // --- Background layers -------------------------------------------
    std::uint32_t bgLayers = 1;        //!< full-screen layers
    float bgDetail = 1.0f;             //!< texels per pixel, base level
    bool bgUseMips = true;
    float bgScrollX = 0.0f;            //!< uv scroll, pixels per frame
    float bgScrollY = 0.0f;
    std::uint16_t bgAluOps = 4;

    // --- Terrain / world mesh ----------------------------------------
    std::uint32_t meshCols = 0;        //!< 0 disables the mesh
    std::uint32_t meshRows = 0;
    float meshDetail = 1.0f;
    std::uint16_t meshAluOps = 16;
    std::uint8_t meshTexSamples = 1;
    float meshScroll = 0.0f;           //!< world scroll, uv per frame

    // --- Sprites -----------------------------------------------------
    std::uint32_t spriteCount = 40;
    float spriteMinSize = 24.0f;
    float spriteMaxSize = 96.0f;
    float spriteDetail = 1.0f;
    bool spriteUseMips = true;
    std::uint16_t spriteAluOps = 8;
    std::uint8_t spriteTexSamples = 1;
    float spriteBlendFraction = 0.3f;  //!< translucent fraction
    std::uint32_t spriteTextures = 8;  //!< distinct sprite sheets
    /**
     * Distinct art regions per sheet. Real games draw many instances of
     * the same asset (candies, coins, tiles); sprites pick one of these
     * shared regions, which bounds the per-frame texture footprint.
     */
    std::uint32_t spriteRegionsPerSheet = 6;
    float spriteSpeed = 2.0f;          //!< pixels per frame drift

    // --- Hotspot clustering ------------------------------------------
    std::uint32_t hotspots = 3;
    float hotspotSpread = 180.0f;      //!< sprite scatter radius, px
    float hotspotDrift = 1.0f;         //!< hotspot motion, px per frame

    // --- Particles -----------------------------------------------------
    /**
     * Effect particles (sparkles, debris, exhaust) with fully random
     * per-frame positions: the incoherent component of real frames
     * that caps how predictable per-tile memory pressure can be
     * (Fig. 8's CDF does not reach 100%).
     */
    std::uint32_t particleCount = 0;
    float particleSize = 14.0f;
    std::uint16_t particleAluOps = 4;

    // --- HUD ---------------------------------------------------------
    std::uint32_t hudBars = 2;
    float hudDetail = 1.5f;
    std::uint16_t hudAluOps = 4;

    // --- Geometry-pipeline weight -------------------------------------
    std::uint16_t vertexCostCycles = 8;

    // --- Animation ----------------------------------------------------
    std::uint32_t epochFrames = 240;   //!< frames between scene cuts
};

/** The full 32-entry suite, in suite order. */
const std::vector<BenchmarkSpec> &benchmarkSuite();

/**
 * Look up one spec by abbreviation. Library entry point: unknown names
 * return a NotFound Status (whose message lists the valid
 * abbreviations) instead of killing the process.
 */
Result<const BenchmarkSpec *> tryFindBenchmark(const std::string &abbrev);

/**
 * Look up one spec by abbreviation; fatal when unknown. CLI-boundary
 * convenience over tryFindBenchmark() for benches/examples where a
 * typo should end the run.
 */
const BenchmarkSpec &findBenchmark(const std::string &abbrev);

/** Abbreviations of the archetypes designed as memory-intensive. */
std::vector<std::string> memoryIntensiveSet();

/** Abbreviations of the archetypes designed as compute-intensive. */
std::vector<std::string> computeIntensiveSet();

} // namespace libra

#endif // LIBRA_WORKLOAD_BENCHMARKS_HH
