#include "workload/texture.hh"

#include <algorithm>
#include <cmath>

#include "cache/mem_system.hh"
#include "common/log.hh"

namespace libra
{

namespace
{

std::uint32_t
roundUpPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Texture::Texture(std::uint32_t id, std::uint32_t width, std::uint32_t height,
                 Addr base)
    : _id(id), _width(width), _height(height)
{
    libra_assert(width > 0 && height > 0, "degenerate texture");
    // Lay out the mip chain contiguously, each level block-tiled.
    Addr offset = base;
    std::uint32_t w = width;
    std::uint32_t h = height;
    while (true) {
        mipBase.push_back(offset);
        const std::uint64_t blocks_x = (w + blockDim - 1) / blockDim;
        const std::uint64_t blocks_y = (h + blockDim - 1) / blockDim;
        offset += blocks_x * blocks_y * blockDim * blockDim * bytesPerTexel;
        if (w == 1 && h == 1)
            break;
        w = std::max(1u, w >> 1);
        h = std::max(1u, h >> 1);
    }
    _footprint = offset - base;
}

Addr
Texture::lineAddr(float u, float v, std::uint32_t mip) const
{
    mip = std::min(mip, mipLevels() - 1);
    const std::uint32_t w = mipWidth(mip);
    const std::uint32_t h = mipHeight(mip);

    // Repeat addressing: wrap into [0, 1).
    u -= std::floor(u);
    v -= std::floor(v);

    const std::uint32_t tx = std::min(
        w - 1, static_cast<std::uint32_t>(u * static_cast<float>(w)));
    const std::uint32_t ty = std::min(
        h - 1, static_cast<std::uint32_t>(v * static_cast<float>(h)));

    const std::uint32_t blocks_x = (w + blockDim - 1) / blockDim;
    const std::uint32_t bx = tx / blockDim;
    const std::uint32_t by = ty / blockDim;
    const std::uint64_t block = static_cast<std::uint64_t>(by) * blocks_x
        + bx;
    return mipBase[mip]
        + block * blockDim * blockDim * bytesPerTexel;
}

std::uint32_t
Texture::selectMip(float texels_per_pixel) const
{
    if (texels_per_pixel <= 1.0f)
        return 0;
    const float lod = std::log2(texels_per_pixel);
    const auto mip = static_cast<std::uint32_t>(lod + 0.5f);
    return std::min(mip, mipLevels() - 1);
}

TexturePool::TexturePool() = default;

const Texture &
TexturePool::create(std::uint32_t width, std::uint32_t height)
{
    width = roundUpPow2(std::max(width, 1u));
    height = roundUpPow2(std::max(height, 1u));
    const auto id = static_cast<std::uint32_t>(textures.size());
    textures.emplace_back(id, width, height,
                          addr_map::textureBase + nextOffset);
    nextOffset += textures.back().footprintBytes();
    // Keep every texture line-aligned.
    nextOffset = (nextOffset + 63) & ~std::uint64_t(63);
    return textures.back();
}

const Texture &
TexturePool::get(std::uint32_t id) const
{
    libra_assert(id < textures.size(), "texture id out of range: ", id);
    return textures[id];
}

} // namespace libra
