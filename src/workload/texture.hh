/**
 * @file
 * Texture objects and the texture memory pool.
 *
 * Textures are the dominant DRAM consumers in the raster pipeline (paper
 * §III-B), so their memory layout matters: we store each mip level in
 * 4x4-texel blocks (64 bytes at 4 B/texel, exactly one cache line) so
 * spatially adjacent samples land in the same line — the locality that
 * tile-based traversal, and LIBRA's supertiles, exist to exploit.
 */

#ifndef LIBRA_WORKLOAD_TEXTURE_HH
#define LIBRA_WORKLOAD_TEXTURE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace libra
{

/** An immutable 2-D texture with a full mip chain. */
class Texture
{
  public:
    static constexpr std::uint32_t bytesPerTexel = 4;
    static constexpr std::uint32_t blockDim = 4; //!< 4x4 texels per line

    Texture(std::uint32_t id, std::uint32_t width, std::uint32_t height,
            Addr base);

    std::uint32_t id() const { return _id; }
    std::uint32_t width() const { return _width; }
    std::uint32_t height() const { return _height; }
    std::uint32_t mipLevels() const
    {
        return static_cast<std::uint32_t>(mipBase.size());
    }

    /** Total bytes including the mip chain. */
    std::uint64_t footprintBytes() const { return _footprint; }

    /**
     * Address of the cache line holding texel (u, v) of @p mip.
     * u and v are normalized [0, 1) and wrap (repeat addressing).
     */
    Addr lineAddr(float u, float v, std::uint32_t mip) const;

    /**
     * Pick the mip level for a sampling density of @p texels_per_pixel
     * at the base level (standard log2 LOD selection, clamped).
     */
    std::uint32_t selectMip(float texels_per_pixel) const;

    /** Base-level dimensions of @p mip. */
    std::uint32_t mipWidth(std::uint32_t mip) const
    {
        return std::max(1u, _width >> mip);
    }
    std::uint32_t mipHeight(std::uint32_t mip) const
    {
        return std::max(1u, _height >> mip);
    }

  private:
    std::uint32_t _id;
    std::uint32_t _width;
    std::uint32_t _height;
    std::vector<Addr> mipBase;
    std::uint64_t _footprint = 0;
};

/**
 * Allocates textures in the GPU address map's texture region. One pool
 * per benchmark scene; the pool owns the textures and hands out stable
 * ids that triangles reference.
 */
class TexturePool
{
  public:
    TexturePool();

    /** Create a texture; dimensions are rounded up to powers of two. */
    const Texture &create(std::uint32_t width, std::uint32_t height);

    const Texture &get(std::uint32_t id) const;
    std::size_t count() const { return textures.size(); }

    /** Total allocated texture bytes (mips included). */
    std::uint64_t totalBytes() const { return nextOffset; }

  private:
    std::vector<Texture> textures;
    std::uint64_t nextOffset = 0;
};

} // namespace libra

#endif // LIBRA_WORKLOAD_TEXTURE_HH
