#include "workload/benchmarks.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace libra
{

const char *
genreName(Genre genre)
{
    switch (genre) {
      case Genre::G2D: return "2D";
      case Genre::G25D: return "2.5D";
      case Genre::G3D: return "3D";
    }
    return "?";
}

namespace
{

/**
 * Archetype bases. Individual titles below start from one of these and
 * perturb the knobs so the suite covers the spread of Table II: casual
 * 2D puzzlers, 2.5D strategy/base-builders and 3D runners/racers, half
 * memory-intensive and half compute-intensive.
 */
BenchmarkSpec
base2dCasual()
{
    BenchmarkSpec spec;
    spec.genre = Genre::G2D;
    spec.bgLayers = 2;
    spec.bgDetail = 0.55f;
    spec.bgUseMips = false;
    spec.bgScrollX = 0.0f;
    spec.spriteCount = 90;
    spec.spriteMinSize = 40.0f;
    spec.spriteMaxSize = 120.0f;
    spec.spriteDetail = 1.05f;
    spec.spriteUseMips = false;
    spec.spriteAluOps = 6;
    spec.spriteBlendFraction = 0.8f;
    spec.spriteTextures = 8;
    spec.spriteRegionsPerSheet = 8;
    spec.spriteSpeed = 1.0f;
    spec.hotspots = 4;
    spec.hotspotSpread = 220.0f;
    spec.hotspotDrift = 0.6f;
    spec.hudBars = 2;
    spec.hudDetail = 1.2f;
    spec.vertexCostCycles = 6;
    return spec;
}

BenchmarkSpec
base25dStrategy()
{
    BenchmarkSpec spec;
    spec.genre = Genre::G25D;
    spec.bgLayers = 1;
    spec.bgDetail = 0.5f;
    spec.bgUseMips = false;
    spec.meshCols = 24;
    spec.meshRows = 16;
    spec.meshDetail = 1.0f;
    spec.meshAluOps = 10;
    spec.meshScroll = 0.002f;
    spec.spriteCount = 110;
    spec.spriteMinSize = 28.0f;
    spec.spriteMaxSize = 80.0f;
    spec.spriteDetail = 1.0f;
    spec.spriteUseMips = false;
    spec.spriteAluOps = 8;
    spec.spriteBlendFraction = 0.5f;
    spec.spriteTextures = 9;
    spec.spriteRegionsPerSheet = 8;
    spec.spriteSpeed = 0.6f;
    spec.hotspots = 5;
    spec.hotspotSpread = 170.0f;
    spec.hotspotDrift = 0.4f;
    spec.hudBars = 3;
    spec.hudDetail = 1.6f;
    spec.vertexCostCycles = 8;
    return spec;
}

BenchmarkSpec
base3dRunner()
{
    BenchmarkSpec spec;
    spec.genre = Genre::G3D;
    spec.bgLayers = 1;
    spec.bgDetail = 0.4f;
    spec.bgUseMips = true;
    spec.meshCols = 30;
    spec.meshRows = 22;
    spec.meshDetail = 1.1f;
    spec.meshAluOps = 22;
    spec.meshTexSamples = 2;
    spec.meshScroll = 0.015f;
    spec.spriteCount = 70;
    spec.spriteMinSize = 32.0f;
    spec.spriteMaxSize = 140.0f;
    spec.spriteDetail = 0.9f;
    spec.spriteUseMips = true;
    spec.spriteAluOps = 18;
    spec.spriteBlendFraction = 0.25f;
    spec.spriteTextures = 7;
    spec.spriteRegionsPerSheet = 8;
    spec.spriteSpeed = 3.0f;
    spec.hotspots = 3;
    spec.hotspotSpread = 200.0f;
    spec.hotspotDrift = 1.2f;
    spec.hudBars = 3;
    spec.hudDetail = 1.4f;
    spec.vertexCostCycles = 12;
    return spec;
}

BenchmarkSpec
baseComputeHeavy(Genre genre)
{
    BenchmarkSpec spec = genre == Genre::G3D ? base3dRunner()
        : genre == Genre::G25D ? base25dStrategy()
        : base2dCasual();
    // Compute-bound: mipmapped modest textures with heavy asset reuse,
    // and heavy fragment shaders.
    spec.bgDetail = 0.25f;
    spec.bgUseMips = true;
    spec.bgAluOps = 24;
    spec.meshDetail = 0.6f;
    spec.meshAluOps = 48;
    spec.spriteDetail = 0.55f;
    spec.spriteUseMips = true;
    spec.spriteAluOps = 40;
    spec.spriteBlendFraction = 0.2f;
    spec.spriteTextures = 6;
    spec.spriteRegionsPerSheet = 4;
    spec.hudDetail = 0.7f;
    spec.hudAluOps = 16;
    return spec;
}

/** Deterministically jitter the continuous knobs so titles differ. */
void
individualize(BenchmarkSpec &spec, std::uint64_t salt)
{
    Rng rng(hashCombine(0xb19a5eedull, salt));
    auto scale = [&rng](float &v, double lo, double hi) {
        v *= static_cast<float>(rng.uniform(lo, hi));
    };
    scale(spec.bgDetail, 0.85, 1.2);
    scale(spec.spriteDetail, 0.85, 1.25);
    scale(spec.meshDetail, 0.85, 1.2);
    scale(spec.hotspotSpread, 0.8, 1.3);
    scale(spec.spriteSpeed, 0.7, 1.4);
    scale(spec.hotspotDrift, 0.7, 1.4);
    spec.spriteCount = static_cast<std::uint32_t>(
        spec.spriteCount * rng.uniform(0.8, 1.3));
    spec.hotspots = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(spec.hotspots
                                      * rng.uniform(0.7, 1.5)));
    spec.seed = hashCombine(salt, 0x5eedull);
}

std::vector<BenchmarkSpec>
buildSuite()
{
    std::vector<BenchmarkSpec> suite;
    std::uint64_t salt = 1;

    auto add = [&suite, &salt](BenchmarkSpec spec, const char *abbrev,
                               const char *title, bool memory) {
        spec.abbrev = abbrev;
        spec.title = title;
        spec.memoryIntensive = memory;
        individualize(spec, salt++);
        suite.push_back(std::move(spec));
    };

    // ---- Memory-intensive half (16 titles) ---------------------------
    {
        BenchmarkSpec s = base2dCasual();
        s.bgScrollX = 6.0f;
        s.bgLayers = 3;
        s.spriteDetail = 1.0f;
        add(s, "AAt", "Alto's Ascent", true);
    }
    {
        BenchmarkSpec s = base2dCasual();
        s.spriteCount = 70;
        s.spriteMaxSize = 90.0f;
        s.hotspots = 6;
        add(s, "AmU", "Among Us", true);
    }
    {
        BenchmarkSpec s = base3dRunner();
        s.meshDetail = 1.2f;
        s.meshAluOps = 14;
        s.spriteDetail = 1.1f;
        s.spriteUseMips = false;
        s.particleCount = 25;
        add(s, "BBR", "Beach Buggy Racing", true);
    }
    {
        BenchmarkSpec s = base2dCasual();
        s.spriteCount = 130;
        s.spriteBlendFraction = 0.9f;
        s.spriteDetail = 1.05f;
        add(s, "BlB", "Block Blast", true);
    }
    {
        BenchmarkSpec s = base2dCasual();
        s.spriteCount = 140;
        s.spriteMinSize = 56.0f;
        s.spriteMaxSize = 110.0f;
        s.spriteDetail = 1.05f;
        s.spriteTextures = 12;
        s.spriteRegionsPerSheet = 8;
        s.spriteBlendFraction = 0.95f;
        s.hotspots = 5;
        s.hotspotSpread = 320.0f;
        s.particleCount = 20;
        add(s, "CCS", "Candy Crush Saga", true);
    }
    {
        BenchmarkSpec s = base25dStrategy();
        s.spriteCount = 150;
        s.meshCols = 28;
        s.meshRows = 20;
        add(s, "CoC", "Clash of Clans", true);
    }
    {
        BenchmarkSpec s = base2dCasual();
        s.bgLayers = 3;
        s.bgScrollX = 3.0f;
        s.spriteDetail = 1.1f;
        add(s, "Gra", "Gardenscapes", true);
    }
    {
        BenchmarkSpec s = base3dRunner();
        s.meshDetail = 1.25f;
        s.meshTexSamples = 2;
        s.spriteDetail = 1.1f;
        s.spriteUseMips = false;
        s.meshScroll = 0.02f;
        s.particleCount = 20;
        add(s, "GrT", "Grand Truck Driver", true);
    }
    {
        BenchmarkSpec s = base25dStrategy();
        s.genre = Genre::G25D;
        s.bgScrollX = 4.0f;
        s.meshScroll = 0.012f;
        s.spriteCount = 60;
        s.spriteDetail = 1.15f;
        add(s, "HCR", "Hill Climb Racing", true);
    }
    {
        BenchmarkSpec s = base25dStrategy();
        s.spriteCount = 170;
        s.spriteTextures = 12;
        s.spriteRegionsPerSheet = 10;
        s.spriteDetail = 1.0f;
        s.meshDetail = 1.1f;
        add(s, "HoW", "Heroes of War", true);
    }
    {
        BenchmarkSpec s = base2dCasual();
        s.bgLayers = 2;
        s.bgScrollX = 10.0f;
        s.spriteCount = 55;
        s.spriteDetail = 1.0f;
        s.particleCount = 35;
        add(s, "Jet", "Jetpack Joyride", true);
    }
    {
        BenchmarkSpec s = base25dStrategy();
        s.spriteCount = 160;
        s.meshCols = 30;
        s.meshRows = 22;
        s.meshDetail = 1.15f;
        add(s, "RoK", "Rise of Kingdoms", true);
    }
    {
        BenchmarkSpec s = base25dStrategy();
        s.spriteCount = 180;
        s.spriteDetail = 1.0f;
        s.spriteTextures = 14;
        s.spriteRegionsPerSheet = 10;
        add(s, "RoM", "Realm of Mages", true);
    }
    {
        BenchmarkSpec s = base3dRunner();
        s.meshScroll = 0.025f;
        s.spriteCount = 80;
        s.particleCount = 30;
        s.spriteDetail = 1.05f;
        s.spriteUseMips = false;
        s.hudBars = 4;
        add(s, "SuS", "Subway Surfers", true);
    }
    {
        BenchmarkSpec s = base3dRunner();
        s.meshScroll = 0.022f;
        s.meshDetail = 1.15f;
        s.spriteCount = 60;
        add(s, "TeR", "Temple Rush", true);
    }
    {
        BenchmarkSpec s = base3dRunner();
        s.meshCols = 36;
        s.meshRows = 26;
        s.meshDetail = 1.2f;
        s.meshTexSamples = 2;
        s.spriteCount = 90;
        add(s, "WoT", "World of Tanks Blitz", true);
    }

    // ---- Compute-intensive half (16 titles) --------------------------
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteAluOps = 56;
        s.spriteCount = 50;
        add(s, "GDL", "Geometry Dash Lite", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 45;
        s.spriteSpeed = 4.0f;
        add(s, "CrS", "Crossy Street", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 35;
        s.spriteMaxSize = 160.0f;
        add(s, "AnB", "Angry Birds Reloaded", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G25D);
        s.spriteCount = 90;
        s.spriteAluOps = 48;
        add(s, "ArK", "Arknights", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 75;
        s.spriteBlendFraction = 0.4f;
        add(s, "BaB", "Bubble Blaze", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 20;
        s.spriteAluOps = 64;
        s.hudBars = 1;
        add(s, "ChE", "Chess Elite", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 30;
        s.spriteMaxSize = 130.0f;
        add(s, "CuT", "Cut the Rope Remastered", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G3D);
        s.meshAluOps = 56;
        s.spriteAluOps = 44;
        s.particleCount = 15;
        add(s, "DrR", "Dragon Racers", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 85;
        s.spriteSpeed = 2.5f;
        s.particleCount = 20;
        add(s, "FrF", "Fruit Frenzy", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 40;
        s.hotspots = 2;
        add(s, "LuD", "Ludo King", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G3D);
        s.meshCols = 34;
        s.meshRows = 24;
        s.meshAluOps = 52;
        s.spriteCount = 40;
        add(s, "MiN", "MineNow", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G3D);
        s.meshAluOps = 44;
        s.spriteCount = 25;
        s.hudBars = 2;
        add(s, "PoG", "Polygon Golf", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 60;
        s.spriteSpeed = 5.0f;
        add(s, "SnK", "Snake Rush", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G3D);
        s.meshCols = 28;
        s.meshRows = 20;
        s.spriteCount = 55;
        s.spriteAluOps = 36;
        add(s, "SoC", "Soccer Clash", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G25D);
        s.spriteCount = 70;
        s.meshAluOps = 40;
        add(s, "StV", "Star Valley", false);
    }
    {
        BenchmarkSpec s = baseComputeHeavy(Genre::G2D);
        s.spriteCount = 65;
        s.spriteBlendFraction = 0.35f;
        add(s, "ZuM", "Zuma Blitz", false);
    }

    libra_assert(suite.size() == 32, "suite must have 32 entries");
    return suite;
}

} // namespace

const std::vector<BenchmarkSpec> &
benchmarkSuite()
{
    static const std::vector<BenchmarkSpec> suite = buildSuite();
    return suite;
}

Result<const BenchmarkSpec *>
tryFindBenchmark(const std::string &abbrev)
{
    for (const auto &spec : benchmarkSuite()) {
        if (spec.abbrev == abbrev)
            return &spec;
    }
    std::string known;
    for (const auto &spec : benchmarkSuite()) {
        if (!known.empty())
            known += ",";
        known += spec.abbrev;
    }
    return Status::error(ErrorCode::NotFound, "unknown benchmark '",
                         abbrev, "' (known: ", known, ")");
}

const BenchmarkSpec &
findBenchmark(const std::string &abbrev)
{
    const Result<const BenchmarkSpec *> spec = tryFindBenchmark(abbrev);
    if (!spec.isOk())
        fatal(spec.status().message());
    return **spec;
}

std::vector<std::string>
memoryIntensiveSet()
{
    std::vector<std::string> out;
    for (const auto &spec : benchmarkSuite()) {
        if (spec.memoryIntensive)
            out.push_back(spec.abbrev);
    }
    return out;
}

std::vector<std::string>
computeIntensiveSet()
{
    std::vector<std::string> out;
    for (const auto &spec : benchmarkSuite()) {
        if (!spec.memoryIntensive)
            out.push_back(spec.abbrev);
    }
    return out;
}

} // namespace libra
