/**
 * @file
 * Synthetic scene model standing in for the commercial Android game
 * traces of the paper's evaluation (Table II).
 *
 * A Scene is a deterministic pure function from frame index to a list of
 * draw calls of screen-space triangles. It is constructed from a
 * BenchmarkSpec (see benchmarks.hh) and reproduces the workload
 * properties the paper's mechanisms depend on:
 *
 *  - frame-to-frame coherence: object positions evolve smoothly, so
 *    consecutive frames touch nearly the same per-tile footprints
 *    (Fig. 8); occasional "scene cuts" rebase the animation.
 *  - spatial hot/cold clustering: sprites gather around a few moving
 *    hotspots, HUD bars pin hot rows at the screen edges, backgrounds
 *    and simple terrain leave cold areas (Fig. 2 / Fig. 9).
 *  - genre-dependent intensity: 2D games draw back-to-front with
 *    blending and mip-less high-detail art (memory-bound); 3D games
 *    draw mostly opaque, mipmapped geometry front-to-back with heavier
 *    fragment shaders (compute-bound).
 */

#ifndef LIBRA_WORKLOAD_SCENE_HH
#define LIBRA_WORKLOAD_SCENE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/geom.hh"
#include "common/rng.hh"
#include "workload/benchmarks.hh"
#include "workload/texture.hh"

namespace libra
{

/** One draw call: shared state plus a triangle batch. */
struct DrawCall
{
    std::vector<Triangle> tris;
    Addr vertexAddr = 0;        //!< first vertex in the geometry region
    std::uint32_t vertexCount = 0;
    std::uint16_t vertexCostCycles = 8; //!< vertex-shader cycles/vertex
};

/** Everything the GPU needs to render one frame. */
struct FrameData
{
    std::uint32_t frameIndex = 0;
    std::vector<DrawCall> draws;

    std::size_t
    triangleCount() const
    {
        std::size_t n = 0;
        for (const auto &draw : draws)
            n += draw.tris.size();
        return n;
    }

    std::size_t
    vertexCount() const
    {
        std::size_t n = 0;
        for (const auto &draw : draws)
            n += draw.vertexCount;
        return n;
    }
};

/** Deterministic animated scene for one benchmark. */
class Scene
{
  public:
    Scene(const BenchmarkSpec &spec, std::uint32_t screen_w,
          std::uint32_t screen_h);

    /** Generate frame @p index (pure: same index → same frame). */
    FrameData frame(std::uint32_t index) const;

    const TexturePool &textures() const { return pool; }
    const BenchmarkSpec &spec() const { return benchSpec; }
    std::uint32_t screenWidth() const { return screenW; }
    std::uint32_t screenHeight() const { return screenH; }

  private:
    /** A renderable entity with its animation parameters. */
    struct Object
    {
        enum class Kind
        {
            Background, //!< full-screen layer, optional scrolling
            Mesh,       //!< terrain/building grid with depth gradient
            Sprite,     //!< small quad clustered around a hotspot
            Particle,   //!< effect quad, random position every frame
            Hud         //!< screen-edge overlay bar
        };

        Kind kind = Kind::Sprite;
        std::uint32_t textureId = 0;
        float sizeX = 64.0f;
        float sizeY = 64.0f;
        float depth = 0.5f;
        std::uint16_t aluOps = 8;
        std::uint8_t texSamples = 1;
        bool blend = false;
        bool useMips = true;
        float detail = 1.0f;     //!< base-level texels per pixel

        Vec2 anchor;             //!< base position (or top-left for bars)
        Vec2 drift;              //!< pixels per frame
        float wobbleAmp = 0.0f;
        float wobbleFreq = 0.1f;
        float wobblePhase = 0.0f;
        int hotspot = -1;        //!< cluster this sprite orbits, or -1
        std::uint32_t particleIndex = 0; //!< Particle: hash stream id
        float uvScrollX = 0.0f;  //!< normalized uv scroll per frame
        float uvScrollY = 0.0f;
        std::uint32_t meshCols = 0;
        std::uint32_t meshRows = 0;
        std::uint16_t vertexCost = 8;
    };

    /** Epoch = animation segment between scene cuts. */
    std::uint32_t epochOf(std::uint32_t frame_index) const;
    std::uint32_t epochStart(std::uint32_t epoch) const;

    /** Hotspot center at a given frame (drifts within an epoch). */
    Vec2 hotspotCenter(int hotspot, std::uint32_t frame_index) const;

    /** Object position at a frame. */
    Vec2 objectPos(const Object &obj, std::uint32_t frame_index) const;

    /** Emit a textured quad as two triangles. */
    void emitQuad(DrawCall &draw, Vec2 top_left, Vec2 size, float depth,
                  const Object &obj, Vec2 uv0, Vec2 uv1) const;

    /** Emit a terrain mesh. */
    void emitMesh(DrawCall &draw, const Object &obj,
                  std::uint32_t frame_index) const;

    BenchmarkSpec benchSpec;
    std::uint32_t screenW;
    std::uint32_t screenH;
    TexturePool pool;
    std::vector<Object> objects; //!< in draw order
    std::uint32_t epochLength;
    std::vector<Addr> drawVertexAddr; //!< per-object vertex base
    std::vector<Vec2> uvOrigins;      //!< per-object sprite-sheet region
    std::vector<Vec2> uvSpans;        //!< fixed region extent (sprites)
};

} // namespace libra

#endif // LIBRA_WORKLOAD_SCENE_HH
