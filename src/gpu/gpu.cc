#include "gpu/gpu.hh"

#include <algorithm>
#include <sstream>

#include "check/fault_injector.hh"
#include "check/snapshot.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sim/watchdog.hh"

namespace libra
{

Gpu::Gpu(const GpuConfig &cfg)
    : config(cfg),
      grid(cfg.screenWidth, cfg.screenHeight, cfg.tileSize),
      tempTable(grid.tileCount())
{
    libra_assert(config.rasterUnits > 0 && config.coresPerRu > 0,
                 "GPU needs Raster Units and cores");

    // Sharded engine: one event-queue shard per RU; `queue` becomes
    // the shared L2/DRAM/scheduler shard. Everything RU-private below
    // (texture L1s, the units and their cores) is built against its
    // shard queue and reaches the shared domain through the engine's
    // boundary links.
    const bool sharded = config.simThreads > 0;
    if (sharded) {
        engine = std::make_unique<ShardEngine>(
            queue, config.rasterUnits, config.simThreads,
            config.shardLookahead(), config.fifoDepth);
    }
    const auto shard_queue = [&](std::uint32_t ru) -> EventQueue & {
        return sharded ? engine->shardQueue(ru) : queue;
    };

    dramModel = std::make_unique<Dram>(queue, config.dram);
    idealSink = std::make_unique<IdealMemory>(queue, 0);

    CacheConfig l2_cfg = config.l2;
    CacheConfig vtx_cfg = config.vertexCache;
    CacheConfig tile_cfg = config.tileCache;
    if (config.idealMemory) {
        l2_cfg.alwaysHit = true;
        vtx_cfg.alwaysHit = true;
        tile_cfg.alwaysHit = true;
    }

    l2 = std::make_unique<Cache>(queue, l2_cfg, *dramModel);
    vertexCache = std::make_unique<Cache>(queue, vtx_cfg, *l2);
    tileCache = std::make_unique<Cache>(queue, tile_cfg, *l2);

    MemSink &fb_sink = config.idealMemory
        ? static_cast<MemSink &>(*idealSink)
        : static_cast<MemSink &>(*dramModel);

    if (sharded)
        engine->setDownstreams(*l2, fb_sink);

    // One private texture L1 per shader core, all behind the shared L2.
    // Sharded, the L1 lives on its RU's shard and misses cross through
    // the shard's texture link; replication events are buffered per
    // shard and replayed into the tracker at the window barrier.
    for (std::uint32_t ru = 0; ru < config.rasterUnits; ++ru) {
        for (std::uint32_t c = 0; c < config.coresPerRu; ++c) {
            CacheConfig tex_cfg = config.textureCache;
            std::ostringstream name;
            name << "tex_l1_ru" << ru << "_c" << c;
            tex_cfg.name = name.str();
            if (config.idealMemory)
                tex_cfg.alwaysHit = true;
            MemSink &tex_next = sharded
                ? static_cast<MemSink &>(engine->texLink(ru))
                : static_cast<MemSink &>(*l2);
            texL1s.push_back(std::make_unique<Cache>(
                shard_queue(ru), tex_cfg, tex_next));
            if (sharded) {
                Cache &tex = *texL1s.back();
                tex.onInstall = [this, ru](Addr line) {
                    engine->bufferReplEvent(ru, line, true);
                };
                tex.onEvict = [this, ru](Addr line) {
                    engine->bufferReplEvent(ru, line, false);
                };
            } else {
                replTracker.attach(*texL1s.back());
            }
        }
    }
    if (sharded)
        engine->replTracker = &replTracker;

    GeometryConfig geom_cfg;
    geom_cfg.vertexProcessors = config.vertexProcessors;
    geom_cfg.binEntriesPerCycle = config.binTilesPerCycle;
    geometry = std::make_unique<GeometryPipeline>(queue, geom_cfg,
                                                  *vertexCache, *l2);

    for (std::uint32_t ru = 0; ru < config.rasterUnits; ++ru) {
        RasterUnitConfig ru_cfg;
        ru_cfg.index = ru;
        ru_cfg.tileSize = config.tileSize;
        ru_cfg.cores = config.coresPerRu;
        ru_cfg.warpsPerCore = config.warpsPerCore;
        ru_cfg.warpQuads = config.warpQuads;
        ru_cfg.pendingWarpsPerCore = config.pendingWarpsPerCore;
        ru_cfg.rasterQuadsPerCycle = config.rasterQuadsPerCycle;
        ru_cfg.earlyZQuadsPerCycle = config.earlyZQuadsPerCycle;
        ru_cfg.blendQuadsPerCycle = config.blendQuadsPerCycle;
        ru_cfg.flushLinesPerCycle = config.flushLinesPerCycle;
        ru_cfg.fifoDepth = config.fifoDepth;
        ru_cfg.captureImage = config.captureImage;
        ru_cfg.transactionElimination = config.transactionElimination;
        ru_cfg.fbCompressionRatio = config.fbCompressionRatio;

        std::vector<Cache *> l1s;
        for (std::uint32_t c = 0; c < config.coresPerRu; ++c)
            l1s.push_back(texL1s[ru * config.coresPerRu + c].get());

        // Sharded, the unit runs entirely on its shard: flush writes go
        // through the shard's framebuffer link and finished tiles are
        // buffered for the coordinator (applyTileDone touches shared
        // frame accounting). flushNeeded stays direct — tileSignatures
        // is pre-sized and tiles are disjoint across shards.
        MemSink &unit_fb = sharded
            ? static_cast<MemSink &>(engine->fbLink(ru))
            : fb_sink;
        rus.push_back(std::make_unique<RasterUnit>(
            shard_queue(ru), ru_cfg, grid, unit_fb, l1s));
        RasterUnit *unit = rus.back().get();
        unit->flushNeeded = [this](TileId tile, std::uint64_t sig) {
            const bool changed = tileSignatures[tile] != sig;
            tileSignatures[tile] = sig;
            return changed;
        };
        if (sharded) {
            unit->onTileDone = [this, ru](const TileDoneInfo &info) {
                engine->bufferTileDone(ru, info);
            };
            unit->onSpaceFreed = [this, ru] {
                engine->rasterLink(ru).returnCredit();
            };
            engine->rasterLink(ru).setTarget(*unit);
        } else {
            unit->onTileDone = [this](const TileDoneInfo &info) {
                applyTileDone(info);
            };
        }
    }
    if (sharded) {
        engine->applyTileDone = [this](const TileDoneInfo &info) {
            applyTileDone(info);
        };
    }

    tileSched = std::make_unique<TileScheduler>(config.sched, grid,
                                                config.rasterUnits);
    if (config.renderingElimination) {
        // Skip decisions read the precomputed per-frame skip set; both
        // hooks run at scheduler handout, which only ever happens on
        // the shared/coordinator event domain (the fetcher), so the
        // sharded engine stays deterministic with no new event
        // ownership.
        tileSched->skipTile = [this](TileId tile) {
            return reSkipTile[tile] != 0;
        };
        tileSched->onTileSkipped = [this](TileId tile) {
            applyTileSkipped(tile);
        };
    }
    // The fetcher lives in the shared domain; sharded, it pushes into
    // the credit-tracking raster links instead of the units directly.
    std::vector<RasterSink *> ru_ptrs;
    for (std::uint32_t r = 0; r < config.rasterUnits; ++r) {
        ru_ptrs.push_back(sharded
            ? static_cast<RasterSink *>(&engine->rasterLink(r))
            : static_cast<RasterSink *>(rus[r].get()));
    }
    fetcher = std::make_unique<TileFetcher>(queue, *tileCache, ru_ptrs,
                                            *tileSched);

    // DRAM observer: attribute accesses to tiles (temperature table) and
    // sample the Fig. 7 bandwidth timeline during the raster phase.
    dramModel->setObserver([this](const DramAccessInfo &info) {
        if (info.tileTag != invalidId
            && info.tileTag < grid.tileCount()) {
            tempTable.addDramAccess(info.tileTag);
            ++frameAttributedDram;
        }
        if (rasterActive)
            dramSampler.record(info.queued);
    });

    // Register the full stat tree.
    statGroup.addChild(dramModel->stats());
    statGroup.addChild(l2->stats());
    statGroup.addChild(vertexCache->stats());
    statGroup.addChild(tileCache->stats());
    for (auto &tex : texL1s)
        statGroup.addChild(tex->stats());
    for (auto &unit : rus)
        statGroup.addChild(unit->stats());

#if LIBRA_FAULTS_ENABLED
    // Arm the low-level injection knobs from the attached fault plan.
    // The injector is shared across Gpu rebuilds (the runner builds a
    // fresh Gpu after a watchdog skip), but the knobs are plain
    // periods, so re-arming them on a fresh model is exactly the
    // "machine rebooted" semantics the fault model wants.
    if (FaultInjector *f = config.faults.get()) {
        l2->testDropFillEvery = f->dropFillEvery(l2_cfg.name);
        vertexCache->testDropFillEvery = f->dropFillEvery(vtx_cfg.name);
        tileCache->testDropFillEvery = f->dropFillEvery(tile_cfg.name);
        for (auto &tex : texL1s)
            tex->testDropFillEvery = f->dropFillEvery(tex->cfg().name);
        dramModel->testStallEvery = f->dramStallEvery();
        dramModel->testStallTicks = f->dramStallTicks();
    }
#endif

    if (config.renderingElimination) {
        reStats.add("tiles_skipped", &reTilesSkipped);
        reStats.add("signature_collisions", &reSignatureCollisions);
        statGroup.addChild(reStats);
        reWeakSig.resize(grid.tileCount(), 0);
        reStrongSig.resize(grid.tileCount(), 0);
        reSkipTile.resize(grid.tileCount(), 0);
    }

    tileInstr.resize(grid.tileCount(), 0);
    tileFlushCount.resize(grid.tileCount(), 0);
    tileSkipCount.resize(grid.tileCount(), 0);
    // Seed with a sentinel so every tile flushes on the first frame.
    tileSignatures.resize(grid.tileCount(),
                          0xfeedfacecafebeefull);
    if (config.captureImage) {
        image.resize(static_cast<std::size_t>(config.screenWidth)
                     * config.screenHeight, 0);
    }
}

Gpu::~Gpu() = default;

void
Gpu::setTraceSink(TraceSink *sink)
{
    traceSink = sink;
    if (!sink) {
        gpuLane = nullptr;
        dramLane = nullptr;
        for (auto &unit : rus)
            unit->setTraceLane(nullptr, 0);
        return;
    }
    gpuLane = &sink->lane("gpu");
    dramLane = &sink->lane("dram");
    nameFrame = sink->nameId("frame");
    nameGeometry = sink->nameId("geometry");
    nameRaster = sink->nameId("raster");
    nameDramRequests = sink->nameId("dram_requests");
    const std::uint32_t tile_name = sink->nameId("tile");
    for (std::size_t i = 0; i < rus.size(); ++i) {
        TraceSink::Lane &lane =
            sink->lane("ru" + std::to_string(i));
        rus[i]->setTraceLane(&lane, tile_name);
    }
}

Gpu::RawTotals
Gpu::collectTotals() const
{
    RawTotals t;
    for (const auto &tex : texL1s) {
        // Secondary misses (coalesced into an in-flight fill) count as
        // hits: they are texture-unit request merging, not extra DRAM
        // pressure, matching how trace-driven GPU models report the
        // texture-cache hit ratio.
        t.texHits += tex->hits.value() + tex->mshrCoalesced.value();
        t.texMisses += tex->misses.value();
        t.l1Accesses += tex->readAccesses.value()
            + tex->writeAccesses.value();
    }
    t.l1Accesses += vertexCache->readAccesses.value()
        + vertexCache->writeAccesses.value()
        + tileCache->readAccesses.value()
        + tileCache->writeAccesses.value();
    t.l2Accesses = l2->readAccesses.value() + l2->writeAccesses.value();
    t.l2Hits = l2->hits.value();
    t.l2Misses = l2->misses.value();
    t.dramReads = dramModel->reads.value();
    t.dramWrites = dramModel->writes.value();
    t.dramActs = dramModel->activates.value();
    t.dramReadLatSum = dramModel->totalReadLatency.value();
    for (const auto &unit : rus) {
        t.texLatSum += unit->texLatencySum.value();
        t.texReqs += unit->texRequests.value();
        t.quads += unit->quadsProduced.value();
    }
    t.vertices = geometry->verticesProcessed.value();
    t.replInstalls = replTracker.installs();
    t.replReplicated = replTracker.replicatedInstalls();
    return t;
}

double
Gpu::textureHitRatio() const
{
    const RawTotals t = collectTotals();
    const std::uint64_t total = t.texHits + t.texMisses;
    return total == 0 ? 1.0
                      : static_cast<double>(t.texHits) / total;
}

std::string
Gpu::diagnosticState() const
{
    std::ostringstream os;
    os << "tick " << (engine ? engine->maxNow() : queue.now())
       << ", tiles flushed " << tilesFlushed
       << "/" << grid.tileCount() << ", pending events "
       << queue.pending();
    if (engine)
        os << " (+" << engine->shardPendingEvents() << " sharded)";
    os << ", outstanding DRAM requests "
       << dramModel->pendingRequests();
    for (std::size_t i = 0; i < rus.size(); ++i) {
        const RasterUnit &unit = *rus[i];
        os << "; RU" << i << ": ";
        if (unit.idle()) {
            os << "idle";
            continue;
        }
        os << "tile ";
        if (unit.currentTile() == invalidId)
            os << "-";
        else
            os << unit.currentTile();
        if (unit.aheadTile() != invalidId)
            os << " (ahead " << unit.aheadTile() << ")";
        os << ", fifo " << unit.fifoEntries() << "/" << config.fifoDepth
           << ", pending warps " << unit.pendingWarpCount();
    }
    return os.str();
}

Status
Gpu::wedge(const Status &st, const char *phase)
{
    isWedged = true;
    rasterActive = false;
    const std::string diag = diagnosticState();
    warn("watchdog: ", phase, " phase wedged: ", st.toString(), " [",
         diag, "]");
    return Status::error(st.code(), phase, " phase: ", st.message(),
                         " [", diag, "]");
}

void
Gpu::applyTileDone(const TileDoneInfo &info)
{
    ++tilesFlushed;
    ++tileFlushCount[info.tile];
    tileInstr[info.tile] += info.instructions;
    tempTable.addInstructions(info.tile, info.instructions);
    frameInstructions += info.instructions;
    frameFragments += info.fragments;
    frameWarps += info.warps;
    if (config.captureImage && info.colorBuffer) {
        const IRect &r = info.rect;
        for (std::int32_t y = r.y0; y < r.y1; ++y) {
            for (std::int32_t x = r.x0; x < r.x1; ++x) {
                image[static_cast<std::size_t>(y) * config.screenWidth
                      + static_cast<std::size_t>(x)] =
                    (*info.colorBuffer)
                        [static_cast<std::size_t>(y - r.y0)
                             * config.tileSize
                         + static_cast<std::size_t>(x - r.x0)];
            }
        }
    }
}

void
Gpu::applyTileSkipped(TileId tile)
{
    // A skipped tile is covered for this frame without rendering: it
    // counts toward the frame's flush total (the raster loop's
    // termination condition) and into its own per-tile vector so the
    // coverage law can assert rendered + skipped == 1 per tile.
    ++tilesFlushed;
    ++tileSkipCount[tile];
    ++reTilesSkipped;
    ++frameTilesSkipped;
}

void
Gpu::computeReSignatures(const BinnedFrame &binned)
{
    // Distinct fixed bases so the weak and strong hashes of identical
    // content never agree by construction; the strong hash additionally
    // perturbs every primitive hash so the two chains diverge.
    constexpr std::uint64_t weak_basis = 0x5eba5e17ad09f00dull;
    constexpr std::uint64_t strong_basis = 0x0ddba11c0ffee123ull;
    constexpr std::uint64_t strong_xor = 0x9e3779b97f4a7c15ull;

    for (TileId t = 0; t < grid.tileCount(); ++t) {
        std::uint64_t weak = weak_basis;
        std::uint64_t strong = strong_basis;
        for (const std::uint32_t idx : binned.tileLists[t]) {
            const std::uint64_t h = primContentHash(binned.tris[idx]);
            weak = hashCombine(weak, h);
            strong = hashCombine(strong, h ^ strong_xor);
        }
        // Skip iff the weak input signature matches the previous
        // frame's (the hardware decision). A strong mismatch under a
        // weak match is an aliasing event: the tile is still skipped —
        // modeling the real mechanism's (vanishingly rare) error — but
        // counted so the model's exposure is observable.
        bool skip = false;
        if (reSigValid && weak == reWeakSig[t]) {
            skip = true;
            if (strong != reStrongSig[t])
                ++reSignatureCollisions;
        }
        reSkipTile[t] = skip ? 1 : 0;
        reWeakSig[t] = weak;
        reStrongSig[t] = strong;
    }
    reSigValid = true;
}

Status
Gpu::runShardedRaster(Watchdog &watchdog)
{
    // Window loop: raster phase and straggler drain in one condition —
    // a frame is done when every tile flushed AND no queue or boundary
    // link holds work (the sequential engine's two loops, fused).
    std::uint32_t last_flushed = tilesFlushed;
    while (tilesFlushed < grid.tileCount() || engine->anyPending()) {
        if (tilesFlushed != last_flushed) {
            last_flushed = tilesFlushed;
            watchdog.progress(engine->maxNow());
        }
        const char *phase =
            tilesFlushed < grid.tileCount() ? "raster" : "drain";
        if (Status st = watchdog.check(engine->maxNow()); !st.isOk())
            return wedge(st, phase);
        if (!engine->anyPending()) {
            return wedge(
                Status::error(ErrorCode::NoProgress,
                              "event queues drained with ",
                              grid.tileCount() - tilesFlushed,
                              " tiles pending"),
                "raster");
        }
        engine->runWindow();
    }
    watchdog.progress(engine->maxNow());
    return Status::ok();
}

FrameStats
Gpu::renderFrame(const FrameData &frame, const TexturePool &pool)
{
    Result<FrameStats> result = tryRenderFrame(frame, pool);
    if (!result.isOk())
        panic("renderFrame: ", result.status().toString());
    return std::move(*result);
}

Result<FrameStats>
Gpu::tryRenderFrame(const FrameData &frame, const TexturePool &pool)
{
    if (isWedged) {
        return Status::error(
            ErrorCode::FailedPrecondition,
            "Gpu was wedged by an earlier watchdog error; simulated "
            "state is inconsistent — build a fresh Gpu");
    }

    // Sharded, the RU shard clocks can trail the shared clock by up to
    // one window at frame end; align every queue so this frame starts
    // from a single well-defined tick.
    const Tick frame_start = engine ? engine->alignClocks()
                                    : queue.now();
    Watchdog watchdog(config.watchdog, frame_start);

#if LIBRA_FAULTS_ENABLED
    // Injected watchdog trip: abort this frame exactly as a genuine
    // expiry would (the Gpu wedges; the runner's skip path rebuilds).
    // Keyed on the injector's own frame counter, which is monotonic
    // across rebuilds, so a trip at frame N fires once per attempt.
    if (FaultInjector *f = config.faults.get()) {
        const std::uint64_t injector_frame = f->frameStarted();
        if (f->tripWatchdogAtFrame(injector_frame)) {
            return wedge(Status::error(ErrorCode::WatchdogExpired,
                                       "injected watchdog trip (fault "
                                       "plan frame ", injector_frame,
                                       ")"),
                         "geometry");
        }
    }
#endif

    const RawTotals before = collectTotals();

    // Per-RU phase attribution: close the pre-frame span so the deltas
    // taken at frame end partition exactly [frame_start, frame_end).
    std::vector<std::array<std::uint64_t, kNumRuPhases>> phase_base;
    phase_base.reserve(rus.size());
    for (auto &unit : rus) {
        unit->syncPhase(frame_start);
        phase_base.push_back(unit->phases().snapshot());
    }

    LIBRA_TRACE_BEGIN(gpuLane, nameFrame, frame_start, framesRendered);
    LIBRA_TRACE_BEGIN(gpuLane, nameGeometry, frame_start, 0);

    // Functional binning (the timing is charged by GeometryPipeline).
    const BinnedFrame binned = binFrame(frame, grid);

    // Rendering Elimination input-signature stage: hash every tile's
    // binned content and fix this frame's skip set before any tile is
    // handed out. Functional (zero modeled cycles): real hardware folds
    // this hashing into the binning writes of the *previous* frame.
    if (config.renderingElimination)
        computeReSignatures(binned);

    // Scheduler decision for this frame, from last frame's feedback —
    // the ranking happens in parallel with the geometry phase (§III-E).
    tileSched->beginFrame(feedback);

    // The parameter buffer is rewritten every frame: stale Tile-cache
    // lines from the previous frame must not hit.
    tileCache->invalidateAll();

    tempTable.reset();
    frameAttributedDram = 0;
    std::fill(tileFlushCount.begin(), tileFlushCount.end(), 0u);
    std::fill(tileSkipCount.begin(), tileSkipCount.end(), 0u);
    std::fill(tileInstr.begin(), tileInstr.end(), 0);
    frameTilesSkipped = 0;
    // Under Rendering Elimination the frame buffer persists: a skipped
    // tile's pixels must remain from the previous frame, and every
    // rendered tile overwrites its whole rect anyway.
    if (config.captureImage && !config.renderingElimination)
        std::fill(image.begin(), image.end(), 0);
    tilesFlushed = 0;
    frameInstructions = 0;
    frameFragments = 0;
    frameWarps = 0;

    // --- Geometry phase ------------------------------------------------
    bool geom_done = false;
    Tick geom_end = frame_start;
    geometry->run(frame, binned, [&](Tick when) {
        geom_done = true;
        geom_end = when;
    });
    while (!geom_done) {
        if (Status st = watchdog.check(queue.now()); !st.isOk())
            return wedge(st, "geometry");
        if (!queue.runOne()) {
            return wedge(Status::error(ErrorCode::NoProgress,
                                       "event queue drained with the "
                                       "geometry phase incomplete"),
                         "geometry");
        }
    }
    watchdog.progress(queue.now());
    LIBRA_TRACE_END(gpuLane, geom_end); // geometry

    // The temperature ranking must hide under the geometry phase
    // (§III-E). Warn if a configuration ever violates that.
    if (tileSched->lastRankingCycles() > geom_end - frame_start) {
        warn("ranking (", tileSched->lastRankingCycles(),
             " cycles) exceeds the geometry phase (",
             geom_end - frame_start, " cycles)");
    }

    // --- Raster phase ----------------------------------------------------
    // Geometry runs purely on the shared queue, so sharded the RU shard
    // clocks still sit at frame_start — re-align before the units start
    // scheduling, or their traffic would inject into the shared
    // domain's past.
    rasterStartTick = engine ? engine->alignClocks() : queue.now();
    dramSampler.reset(rasterStartTick, config.dramTimelineInterval);
    rasterActive = true;
    LIBRA_TRACE_BEGIN(gpuLane, nameRaster, rasterStartTick, 0);
    for (auto &unit : rus)
        unit->beginFrame(binned, pool);
    fetcher->beginFrame(binned);

    if (engine) {
        if (Status st = runShardedRaster(watchdog); !st.isOk())
            return st;
    } else {
        std::uint32_t last_flushed = tilesFlushed;
        while (tilesFlushed < grid.tileCount()) {
            if (tilesFlushed != last_flushed) {
                last_flushed = tilesFlushed;
                watchdog.progress(queue.now());
            }
            if (Status st = watchdog.check(queue.now()); !st.isOk())
                return wedge(st, "raster");
            if (!queue.runOne()) {
                return wedge(
                    Status::error(ErrorCode::NoProgress,
                                  "event queue drained with ",
                                  grid.tileCount() - tilesFlushed,
                                  " tiles pending"),
                    "raster");
            }
        }
        watchdog.progress(queue.now());
        // Drain stragglers (in-flight write-backs, bookkeeping
        // events), still under the watchdog's eye.
        while (!queue.empty()) {
            if (Status st = watchdog.check(queue.now()); !st.isOk())
                return wedge(st, "drain");
            queue.runOne();
        }
    }
    rasterActive = false;

    for (auto &unit : rus)
        libra_assert(unit->idle(), "Raster Unit not idle at frame end");

    const Tick frame_end = engine ? engine->maxNow() : queue.now();
    for (auto &unit : rus)
        unit->syncPhase(frame_end);
    LIBRA_TRACE_END(gpuLane, frame_end); // raster
    LIBRA_TRACE_END(gpuLane, frame_end); // frame
#if LIBRA_TRACING_ENABLED
    if (dramLane)
        dramSampler.flushTo(*dramLane, nameDramRequests);
#endif
    const RawTotals after = collectTotals();

    // --- Package the stats ----------------------------------------------
    FrameStats fs;
    fs.frameIndex = framesRendered++;
    fs.totalCycles = frame_end - frame_start;
    fs.geomCycles = geom_end - frame_start;
    fs.rasterCycles = frame_end - rasterStartTick;

    fs.dramReads = after.dramReads - before.dramReads;
    fs.dramWrites = after.dramWrites - before.dramWrites;
    fs.dramActivates = after.dramActs - before.dramActs;
    fs.avgDramReadLatency = fs.dramReads == 0
        ? 0.0
        : static_cast<double>(after.dramReadLatSum
                              - before.dramReadLatSum)
            / static_cast<double>(fs.dramReads);

    const std::uint64_t tex_hits = after.texHits - before.texHits;
    const std::uint64_t tex_misses = after.texMisses - before.texMisses;
    fs.textureHitRatio = tex_hits + tex_misses == 0
        ? 1.0
        : static_cast<double>(tex_hits) / (tex_hits + tex_misses);
    fs.textureMisses = tex_misses;
    fs.textureL1Accesses = tex_hits + tex_misses;
    fs.textureRequests = after.texReqs - before.texReqs;
    fs.avgTextureLatency = fs.textureRequests == 0
        ? 0.0
        : static_cast<double>(after.texLatSum - before.texLatSum)
            / static_cast<double>(fs.textureRequests);

    const std::uint64_t l2_hits = after.l2Hits - before.l2Hits;
    const std::uint64_t l2_misses = after.l2Misses - before.l2Misses;
    fs.l2HitRatio = l2_hits + l2_misses == 0
        ? 1.0
        : static_cast<double>(l2_hits) / (l2_hits + l2_misses);

    const std::uint64_t repl_installs =
        after.replInstalls - before.replInstalls;
    const std::uint64_t repl_repl =
        after.replReplicated - before.replReplicated;
    fs.replicationRatio = repl_installs == 0
        ? 0.0
        : static_cast<double>(repl_repl)
            / static_cast<double>(repl_installs);

    fs.instructions = frameInstructions;
    fs.fragments = frameFragments;
    fs.warps = frameWarps;
    fs.quads = after.quads - before.quads;

    fs.tileDram = tempTable.dramVector();
    fs.tileInstr = tileInstr;
    fs.dramTimeline = dramSampler.samples();
    fs.dramTimelineInterval =
        static_cast<std::uint32_t>(dramSampler.intervalTicks());

    fs.ruPhases.reserve(rus.size());
    for (std::size_t i = 0; i < rus.size(); ++i) {
        const auto snap = rus[i]->phases().snapshot();
        std::array<std::uint64_t, kNumRuPhases> delta{};
        for (std::size_t p = 0; p < kNumRuPhases; ++p)
            delta[p] = snap[p] - phase_base[i][p];
        fs.ruPhases.push_back(delta);
    }

    fs.temperatureOrder = tileSched->temperatureOrderActive();
    fs.supertileSize = tileSched->supertileSize();
    fs.rankingCycles = tileSched->lastRankingCycles();

    if (config.renderingElimination) {
        fs.reTilesSkipped = frameTilesSkipped;
        fs.reSkippedTiles.assign(reSkipTile.begin(), reSkipTile.end());
    }

    EnergyEvents ev;
    ev.warpInstructions = frameInstructions;
    ev.l1Accesses = after.l1Accesses - before.l1Accesses;
    ev.l2Accesses = after.l2Accesses - before.l2Accesses;
    ev.dramLines = fs.dramReads + fs.dramWrites;
    ev.dramActivates = fs.dramActivates;
    ev.rasterQuads = fs.quads;
    ev.blendQuads = fs.quads;
    ev.vertices = after.vertices - before.vertices;
    ev.cycles = fs.totalCycles;
    fs.energy = computeEnergy(energyParams, ev);

    if (config.captureImage)
        fs.image = image;

    if (config.checkInvariants) {
        if (Status st = checkFrameInvariants(fs); !st.isOk())
            return st;
    }

    // Feedback for the next frame's scheduling decisions.
    feedback.valid = true;
    feedback.rasterCycles = fs.rasterCycles;
    feedback.textureHitRatio = fs.textureHitRatio;
    feedback.tileDramAccesses = fs.tileDram;
    feedback.tileInstructions = fs.tileInstr;

    return fs;
}

void
Gpu::saveState(SnapshotWriter &w) const
{
    libra_assert(!isWedged, "snapshot of a wedged Gpu");
    libra_assert(!rasterActive, "snapshot taken mid-frame");
    for (const auto &unit : rus)
        libra_assert(unit->idle(), "snapshot with a busy Raster Unit");

    w.beginSection(SnapSection::Engine);
    queue.exportState(w);
    if (engine)
        engine->saveState(w);
    w.endSection();

    w.beginSection(SnapSection::Caches);
    l2->saveState(w);
    vertexCache->saveState(w);
    tileCache->saveState(w);
    w.putU64(texL1s.size());
    for (const auto &tex : texL1s)
        tex->saveState(w);
    w.endSection();

    w.beginSection(SnapSection::Dram);
    dramModel->saveState(w);
    w.endSection();

    w.beginSection(SnapSection::Replication);
    replTracker.exportState(w);
    w.endSection();

    w.beginSection(SnapSection::Scheduler);
    tileSched->exportState(w);
    w.endSection();

    w.beginSection(SnapSection::RasterUnits);
    w.putU64(rus.size());
    for (const auto &unit : rus)
        unit->saveState(w);
    w.endSection();

    w.beginSection(SnapSection::GpuCore);
    w.putU32(framesRendered);
    w.putU64(tileSignatures.size());
    for (const std::uint64_t sig : tileSignatures)
        w.putU64(sig);
    // Rendering Elimination signature table (empty when the mechanism
    // is off; the restore target has the same config, so the layout
    // matches). Serialized state layout change: kSnapshotCodeVersion 2.
    w.putBool(reSigValid);
    w.putU64(reWeakSig.size());
    for (const std::uint64_t sig : reWeakSig)
        w.putU64(sig);
    w.putU64(reStrongSig.size());
    for (const std::uint64_t sig : reStrongSig)
        w.putU64(sig);
    w.putBool(feedback.valid);
    w.putU64(feedback.rasterCycles);
    w.putDouble(feedback.textureHitRatio);
    w.putU64(feedback.tileDramAccesses.size());
    for (const std::uint64_t v : feedback.tileDramAccesses)
        w.putU64(v);
    w.putU64(feedback.tileInstructions.size());
    for (const std::uint64_t v : feedback.tileInstructions)
        w.putU64(v);
    w.putU64(geometry->verticesProcessed.value());
    w.putU64(geometry->drawsProcessed.value());
    w.putU64(geometry->binEntriesWritten.value());
    w.putU64(geometry->primRecordsWritten.value());
    w.endSection();

    // The flat counter tree last: names pin the machine's wiring, so a
    // restore onto a differently shaped build fails loudly here even
    // if every structural check above happened to pass.
    w.beginSection(SnapSection::Counters);
    const std::map<std::string, std::uint64_t> values =
        statGroup.values();
    w.putU64(values.size());
    for (const auto &[name, value] : values) {
        w.putString(name);
        w.putU64(value);
    }
    w.endSection();
}

Status
Gpu::loadState(SnapshotReader &r)
{
    r.openSection(SnapSection::Engine);
    queue.importState(r);
    if (engine)
        engine->loadState(r);
    r.closeSection();

    r.openSection(SnapSection::Caches);
    l2->loadState(r);
    vertexCache->loadState(r);
    tileCache->loadState(r);
    if (r.check(r.takeU64() == texL1s.size(),
                "texture-L1 count mismatches the configuration")) {
        for (auto &tex : texL1s)
            tex->loadState(r);
    }
    r.closeSection();

    r.openSection(SnapSection::Dram);
    dramModel->loadState(r);
    r.closeSection();

    r.openSection(SnapSection::Replication);
    replTracker.importState(r);
    r.closeSection();

    r.openSection(SnapSection::Scheduler);
    tileSched->importState(r);
    r.closeSection();

    r.openSection(SnapSection::RasterUnits);
    if (r.check(r.takeU64() == rus.size(),
                "Raster Unit count mismatches the configuration")) {
        for (auto &unit : rus)
            unit->loadState(r);
    }
    r.closeSection();

    r.openSection(SnapSection::GpuCore);
    framesRendered = r.takeU32();
    if (r.check(r.takeU64() == tileSignatures.size(),
                "tile-signature count mismatches the grid")) {
        for (std::uint64_t &sig : tileSignatures)
            sig = r.takeU64();
    }
    reSigValid = r.takeBool();
    if (r.check(r.takeU64() == reWeakSig.size(),
                "RE weak-signature count mismatches the configuration")) {
        for (std::uint64_t &sig : reWeakSig)
            sig = r.takeU64();
    }
    if (r.check(r.takeU64() == reStrongSig.size(),
                "RE strong-signature count mismatches the "
                "configuration")) {
        for (std::uint64_t &sig : reStrongSig)
            sig = r.takeU64();
    }
    feedback.valid = r.takeBool();
    feedback.rasterCycles = r.takeU64();
    feedback.textureHitRatio = r.takeDouble();
    const std::uint64_t n_dram = r.takeU64();
    if (r.check(n_dram == 0 || n_dram == grid.tileCount(),
                "feedback DRAM vector length mismatches the grid")) {
        feedback.tileDramAccesses.assign(n_dram, 0);
        for (std::uint64_t &v : feedback.tileDramAccesses)
            v = r.takeU64();
    }
    const std::uint64_t n_instr = r.takeU64();
    if (r.check(n_instr == 0 || n_instr == grid.tileCount(),
                "feedback instruction vector length mismatches the "
                "grid")) {
        feedback.tileInstructions.assign(n_instr, 0);
        for (std::uint64_t &v : feedback.tileInstructions)
            v = r.takeU64();
    }
    geometry->verticesProcessed.set(r.takeU64());
    geometry->drawsProcessed.set(r.takeU64());
    geometry->binEntriesWritten.set(r.takeU64());
    geometry->primRecordsWritten.set(r.takeU64());
    r.closeSection();

    r.openSection(SnapSection::Counters);
    std::map<std::string, std::uint64_t> values;
    const std::uint64_t n_counters = r.takeU64();
    for (std::uint64_t i = 0; i < n_counters && r.ok(); ++i) {
        std::string name = r.takeString();
        const std::uint64_t value = r.takeU64();
        values.emplace(std::move(name), value);
    }
    r.closeSection();
    if (r.ok()) {
        if (Status st = statGroup.restoreValues(values); !st.isOk())
            return st;
    }
    return r.status();
}

Status
Gpu::checkFrameInvariants(const FrameStats &fs)
{
    invariantChecker.clear();

    // Cache-counter conservation holds cumulatively: both sides of the
    // law are bumped synchronously on every non-retried access, and the
    // frame boundary is quiescent (the event queue drained).
    invariantChecker.checkCacheConservation(*l2);
    invariantChecker.checkCacheConservation(*vertexCache);
    invariantChecker.checkCacheConservation(*tileCache);
    for (const auto &tex : texL1s)
        invariantChecker.checkCacheConservation(*tex);

    invariantChecker.checkDramAttribution(fs.tileDram,
                                          frameAttributedDram);
    invariantChecker.checkTileCoverage(tileFlushCount, tileSkipCount);
    invariantChecker.checkSchedulerDrained(tileSched->tilesRemaining());
    for (std::size_t i = 0; i < fs.ruPhases.size(); ++i) {
        invariantChecker.checkPhasePartition(i, fs.ruPhases[i],
                                             fs.totalCycles);
    }
    invariantChecker.checkEnergyBreakdown(fs.energy);

    Status st = invariantChecker.status();
    if (st.isOk())
        return st;
    return Status::error(st.code(), "frame ", fs.frameIndex, ": ",
                         st.message());
}

} // namespace libra
